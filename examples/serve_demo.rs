//! Online serving demo: run the co-design workflow, save/reopen the tuned
//! index `mmap`-backed (the restart story), walk the live-mutation
//! lifecycle (insert -> delete -> compact, with probe equivalence), then
//! put the generated accelerator behind the `QueryEngine` with a
//! query-result cache in front of admission and drive it with a
//! Zipf-skewed open-loop Poisson load generator — the workload shape the
//! cache is built for.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use fanns::framework::{Fanns, FannsRequest};
use fanns::serve::loadgen::{run_open_loop, OpenLoopConfig};
use fanns::serve::{
    open_mapped_backend, BatchPolicy, EngineConfig, MutableBackend, QueryEngine, QueryResultCache,
    ResultCacheConfig, SearchBackend, TelemetryConfig, TelemetryRegistry,
};
use fanns_dataset::synth::SyntheticSpec;
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::segmented::{SegmentedConfig, SegmentedIndex};
use fanns_ivf::CpuSearcher;

fn main() {
    // 1. Offline: co-design an accelerator for the workload (steps 1-7).
    let (database, queries) = SyntheticSpec::sift_medium(42)
        .with_vectors(20_000)
        .with_queries(256)
        .generate();
    let mut request = FannsRequest::recall_goal(10, 0.40);
    request.explorer.nlist_grid = vec![64, 128];
    let generated = Fanns::new(request)
        .run(&database, &queries)
        .expect("co-design should succeed on this workload");
    println!("{}\n", generated.summary());

    // 2. Persist: save the tuned index in the on-disk format and reopen it
    //    `mmap`-backed — the restart story. A redeployed serving process
    //    skips retraining entirely: the cold start below is the *whole*
    //    cost of coming back up, and the mapped backend must answer exactly
    //    like the index it was saved from.
    let snapshot_dir =
        std::env::temp_dir().join(format!("fanns-serve-demo-{}", std::process::id()));
    std::fs::create_dir_all(&snapshot_dir).expect("create snapshot dir");
    let snapshot = snapshot_dir.join("codesigned.fanns");
    let saved_bytes = generated
        .index
        .write_index(&snapshot)
        .expect("persist the tuned index");
    let restart = std::time::Instant::now();
    let params = IvfPqParams::new(
        generated.index.nlist(),
        (generated.index.nlist() / 8).max(1),
        10,
    )
    .with_m(generated.index.m());
    let (mapped_backend, _mapped) =
        open_mapped_backend(&snapshot, params, None).expect("reopen the saved index");
    let cold_start_ms = restart.elapsed().as_secs_f64() * 1e3;
    println!(
        "restart: saved {:.1} MiB, mmap-open + warm in {cold_start_ms:.1} ms ({})",
        saved_bytes as f64 / (1024.0 * 1024.0),
        mapped_backend.name()
    );
    let probe = mapped_backend.search_batch(&[queries.get(0)]);
    let reference = CpuSearcher::new(&generated.index, params).search_one(queries.get(0));
    assert_eq!(
        probe[0].results, reference,
        "mapped backend must answer exactly like the index it was saved from"
    );
    drop(mapped_backend);
    let _ = std::fs::remove_dir_all(&snapshot_dir);

    // 2b. Mutate live: wrap the tuned index in the segmented mutable layer
    //     and walk the full lifecycle from docs/MUTATION.md — insert,
    //     delete, compact — proving each observable along the way. A fresh
    //     insert is findable the instant it returns (the write segment is
    //     scanned exactly), a delete vanishes immediately (tombstone), and
    //     a compaction seals + merges + reclaims without changing what a
    //     full-probe search returns.
    let segmented = Arc::new(SegmentedIndex::new(
        generated.index.clone(),
        SegmentedConfig::default(),
    ));
    let mutable = MutableBackend::new(Arc::clone(&segmented), params);
    let full_probe = generated.index.nlist();
    let fresh = queries.get(1);
    let new_id = mutable
        .insert(fresh)
        .expect("segmented backend accepts inserts");
    let hits = segmented.search(fresh, 10, full_probe);
    assert_eq!(
        hits.first().map(|r| (r.id, r.distance)),
        Some((new_id, 0.0)),
        "a fresh insert must be findable immediately, at exact distance 0"
    );
    let victim = hits[1].id;
    assert!(mutable.delete(victim), "victim id must be live");
    let before: HashSet<u32> = segmented
        .search(fresh, segmented.live() + 4, full_probe)
        .iter()
        .map(|r| r.id)
        .collect();
    assert!(
        !before.contains(&victim),
        "a tombstoned id must vanish at once"
    );
    let report = mutable.compact();
    assert!(
        !report.skipped,
        "one write vector + one tombstone: must swap"
    );
    let after: HashSet<u32> = segmented
        .search(fresh, segmented.live() + 4, full_probe)
        .iter()
        .map(|r| r.id)
        .collect();
    assert_eq!(
        before, after,
        "compaction must not change what a full-probe search returns"
    );
    let stats = segmented.stats();
    assert_eq!(
        stats.pending_tombstones, 0,
        "compaction reclaims tombstones"
    );
    assert_eq!(stats.sealed_segments, 1, "compaction merges to one segment");
    println!(
        "mutation: inserted id {new_id}, deleted id {victim}, compaction sealed {} / dropped {} -> {} live in {} segment(s), generation {}",
        report.sealed_from_write,
        report.dropped_tombstones,
        report.live,
        stats.sealed_segments,
        report.generation
    );

    // 3. Deploy: the generated accelerator becomes an online backend behind
    //    the dynamic-batching engine, with a 2 ms end-to-end SLO and a
    //    query-result cache in front of admission. Real traffic repeats
    //    itself; the cache answers the hot set in ~a microsecond without
    //    touching the accelerator.
    //    Tracing rides along: every 8th query emits per-stage span events,
    //    and the shutdown report carries the stage-attribution breakdown.
    let backend = Arc::new(generated.into_backend());
    let cache = Arc::new(QueryResultCache::new(ResultCacheConfig::new(128)));
    let telemetry = Arc::new(TelemetryRegistry::new(TelemetryConfig::new()));
    let engine = QueryEngine::start_with_telemetry(
        backend,
        EngineConfig::new(BatchPolicy::new(64, Duration::from_micros(500)))
            .with_workers(2)
            .with_queue_depth(4_096)
            .with_slo_us(2_000.0),
        Some(Arc::clone(&cache)),
        Some(Arc::clone(&telemetry)),
    );

    // 4. Serve: open-loop Poisson arrivals at a fixed offered rate, query
    //    popularity following Zipf(1.0) over the 256-query pool.
    let target_qps = 5_000.0;
    let outcome = run_open_loop(
        &engine,
        &queries,
        OpenLoopConfig::new(target_qps, 20_000).with_zipf(1.0),
    );
    println!(
        "load generator: offered {} arrivals at {:.0} QPS target ({:.0} actual), {} accepted, {} shed",
        outcome.offered, target_qps, outcome.offered_qps, outcome.accepted, outcome.shed
    );

    // 5. Report: QPS plus the latency distribution, SLO attainment, and the
    //    cache's share of the work.
    engine.publish_gauges();
    let report = engine.shutdown();
    println!("\n{}", report.summary());
    println!(
        "  queueing: mean {:.0} us | service: mean {:.0} us/batch | batches: {} (mean size {:.1})",
        report.mean_queue_us, report.mean_service_us, report.batches, report.mean_batch_size
    );
    if let (Some(p50), Some(p99)) = (report.simulated_p50_us, report.simulated_p99_us) {
        println!("  simulated device latency: p50 {p50:.1} us, p99 {p99:.1} us");
    }
    if let (Some(slo), Some(att)) = (report.slo_us, report.slo_attainment) {
        println!(
            "  SLO {:.0} us attained for {:.2}% of queries",
            slo,
            att * 100.0
        );
    }
    let cache_report = report.cache.as_ref().expect("cache attached");
    println!(
        "  result cache: {} hits / {} misses ({:.1}% hit rate) | hit p50 {:.1} us vs miss p50 {:.1} us | {} entries of {}",
        cache_report.hits,
        cache_report.misses,
        cache_report.hit_rate * 100.0,
        cache_report.hit_p50_us,
        cache_report.miss_p50_us,
        cache_report.entries,
        cache_report.capacity
    );

    // 6. Where did the time go? The one-screen per-stage breakdown — the
    //    live-serving analogue of the paper's Fig. 3 bottleneck analysis.
    let stages = report.stages.as_ref().expect("telemetry attached");
    println!("\n{}", stages.table());

    assert!(report.qps > 0.0, "demo must achieve positive throughput");
    assert!(
        stages.sampled_queries > 0,
        "sampled queries must reach a terminal stage"
    );
    assert!(
        (0.90..=1.10).contains(&stages.reconciliation),
        "stage sums must account for wall latency (reconciliation {:.3})",
        stages.reconciliation
    );
    assert!(
        report.p50_us <= report.p99_us,
        "latency percentiles must be ordered"
    );
    assert!(
        cache_report.hits > 0,
        "Zipf-skewed replay must produce cache hits"
    );
    assert!(
        cache_report.hit_p50_us <= cache_report.miss_p50_us,
        "cache hits must not be slower than the backend path"
    );
    println!("\nserve_demo OK");
}
