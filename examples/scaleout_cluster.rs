//! Example: distributed vector search over an accelerator cluster
//! (the Figure 1 / Figure 12 methodology).
//!
//! Builds a small index, simulates the per-node FPGA latency distribution and
//! an analytic GPU latency distribution, then estimates distributed-query
//! latency for growing cluster sizes with the LogGP network model.
//!
//! ```sh
//! cargo run --release --example scaleout_cluster
//! ```

use fanns_baselines::gpu::GpuModel;
use fanns_dataset::synth::SyntheticSpec;
use fanns_hwsim::accelerator::Accelerator;
use fanns_hwsim::config::AcceleratorConfig;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_perfmodel::qps::WorkloadModel;
use fanns_scaleout::cluster::{sweep_accelerator_counts, ClusterSpec};
use fanns_scaleout::latency::LatencyDistribution;
use fanns_scaleout::loggp::LogGpParams;

fn main() {
    // One partition's worth of data (each accelerator hosts a shard).
    let (database, queries) = SyntheticSpec::sift_medium(7)
        .with_vectors(20_000)
        .with_queries(128)
        .generate();
    let index = IvfPqIndex::build(
        &database,
        &IvfPqTrainConfig::new(128)
            .with_m(16)
            .with_train_sample(20_000)
            .with_seed(1),
    );
    let params = IvfPqParams::new(128, 8, 10).with_m(16);

    // Per-node FPGA latency: simulate the accelerator, add the TCP/IP RTT.
    let accelerator = Accelerator::new(&index, AcceleratorConfig::balanced(), params).unwrap();
    let report = accelerator.simulate_batch(&queries, false);
    let fpga_node = LatencyDistribution::new(
        report
            .latencies_us
            .iter()
            .map(|l| l + LogGpParams::hardware_tcp_rtt_us())
            .collect(),
    );

    // Per-node GPU latency: the analytic model with its scheduling tail.
    let gpu_node = GpuModel::v100().online_latency_distribution(
        &WorkloadModel::from_index(&index, &params),
        4_000,
        99,
    );

    println!(
        "per-node latency    FPGA: median {:.0} us, P99 {:.0} us | GPU model: median {:.0} us, P99 {:.0} us\n",
        fpga_node.median(),
        fpga_node.percentile(99.0),
        gpu_node.median(),
        gpu_node.percentile(99.0)
    );

    let counts = [8usize, 64, 512];
    let spec = ClusterSpec::eight_accelerators();
    let net = LogGpParams::paper_infiniband();
    let fpga = sweep_accelerator_counts(&counts, &spec, &fpga_node, &net);
    let gpu = sweep_accelerator_counts(&counts, &spec, &gpu_node, &net);

    println!(
        "{:>6} {:>16} {:>16} {:>12}",
        "nodes", "FPGA P99 (us)", "GPU P99 (us)", "speedup"
    );
    for i in 0..counts.len() {
        println!(
            "{:>6} {:>16.0} {:>16.0} {:>11.1}x",
            counts[i],
            fpga[i].p99_us,
            gpu[i].p99_us,
            gpu[i].p99_us / fpga[i].p99_us
        );
    }
    println!("\nThe FPGA's flat latency distribution is what makes it scale: the max over N nodes barely moves, while the GPU's tail dominates ever more often.");
}
