//! Failover demo: a replicated deployment survives a mid-run replica death.
//!
//! Three replica slots (sharing one CPU IVF-PQ index) serve an open-loop
//! Poisson stream behind the deadline-aware `QueryEngine`. A third of the way
//! through the run, one replica is killed via its `FaultInjector`; the
//! `ReplicaSet` reroutes its traffic to the survivors (failover), quarantines
//! it, and — once it is revived — probes and restores it. The final report
//! must show failovers happened, goodput stayed positive, and p99 stayed
//! finite: the tail survives the fault.
//!
//! ```sh
//! cargo run --release --example serve_failover
//! ```

use std::sync::Arc;
use std::time::Duration;

use fanns_dataset::synth::SyntheticSpec;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_serve::loadgen::{run_open_loop, OpenLoopConfig};
use fanns_serve::{
    BatchPolicy, CpuBackend, EngineConfig, FaultInjector, FaultMode, PickupOrder, QueryEngine,
    ReplicaHealthConfig, ReplicaSet, SearchBackend,
};

fn main() {
    // 1. Offline: build one IVF-PQ index; replicas share it in memory.
    let (database, queries) = SyntheticSpec::sift_medium(42)
        .with_vectors(20_000)
        .with_queries(256)
        .generate();
    let nlist = 64;
    let index = IvfPqIndex::build(
        &database,
        &IvfPqTrainConfig::new(nlist)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(10_000)
            .with_seed(7),
    );
    let executor: Arc<dyn SearchBackend> = Arc::new(CpuBackend::new(
        index,
        IvfPqParams::new(nlist, 8, 10).with_m(16),
    ));

    // 2. Deploy: three fault-injectable replica slots behind least-loaded
    //    routing, a 100 ms quarantine, and a 5 ms end-to-end SLO with
    //    deadline shedding and earliest-deadline-first pickup.
    let mut handles = Vec::new();
    let slots: Vec<Box<dyn SearchBackend>> = (0..3)
        .map(|_| {
            let (injector, handle) =
                FaultInjector::new(Box::new(Arc::clone(&executor)) as Box<dyn SearchBackend>);
            handles.push(handle);
            Box::new(injector) as Box<dyn SearchBackend>
        })
        .collect();
    let health = ReplicaHealthConfig::default().with_quarantine(Duration::from_millis(100));
    let set = ReplicaSet::new(slots, health, None);
    let stats = set.stats();
    println!("deployment: {}", set.name());

    let engine = QueryEngine::start(
        Arc::new(set),
        EngineConfig::new(
            BatchPolicy::new(32, Duration::from_micros(500))
                .with_pickup(PickupOrder::EarliestDeadlineFirst),
        )
        .with_workers(2)
        .with_queue_depth(4_096)
        .with_slo_us(5_000.0)
        .with_deadline_shedding(),
    );

    // 3. Chaos: kill replica 0 a third of the way through the run, revive it
    //    two thirds through. The load generator never notices.
    let killer = {
        let handle = handles[0].clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(350));
            println!("[chaos] replica 0 killed");
            handle.set(FaultMode::Error);
            std::thread::sleep(Duration::from_millis(350));
            handle.set(FaultMode::Healthy);
            println!("[chaos] replica 0 revived");
        })
    };

    // 4. Serve: open-loop Poisson arrivals for ~1 s of traffic.
    let outcome = run_open_loop(&engine, &queries, OpenLoopConfig::new(4_000.0, 4_000));
    killer.join().expect("chaos thread");
    println!(
        "load generator: offered {} arrivals ({:.0} QPS), {} accepted, {} rejected at the queue, {} deadline-shed, {} failed",
        outcome.offered,
        outcome.offered_qps,
        outcome.accepted,
        outcome.shed,
        outcome.deadline_shed,
        outcome.failed
    );

    // 5. Report: failovers, goodput and the latency tail, per replica.
    let report = engine.shutdown().with_replica_stats(&[stats]);
    println!("\n{}", report.summary());
    println!(
        "  goodput {:.0} QPS | failovers {} | injected faults {}",
        report.goodput_qps,
        report.failover_count,
        handles.iter().map(|h| h.injected_faults()).sum::<u64>()
    );
    for r in &report.replicas {
        println!(
            "  replica {}: {} queries, {} errors, {} quarantines, utilization {:.1}%, {}",
            r.replica,
            r.completed_queries,
            r.errors,
            r.quarantines,
            r.utilization * 100.0,
            if r.healthy {
                "in rotation"
            } else {
                "quarantined"
            }
        );
    }

    assert!(
        report.failover_count > 0,
        "the killed replica must have caused failovers"
    );
    assert!(report.goodput_qps > 0.0, "goodput must survive the fault");
    assert!(
        report.p99_us.is_finite() && report.p99_us > 0.0,
        "p99 must stay bounded through the fault"
    );
    assert_eq!(
        report.queries + report.shed + report.failed,
        outcome.accepted as u64,
        "every accepted query must be accounted for"
    );
    println!("\nserve_failover OK");
}
