//! Quickstart: run the full FANNS co-design workflow on a synthetic SIFT-like
//! dataset and query the generated (simulated) accelerator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fanns::framework::{Fanns, FannsRequest};
use fanns_dataset::ground_truth::ground_truth;
use fanns_dataset::recall::recall_at_k;
use fanns_dataset::synth::SyntheticSpec;

fn main() {
    // 1. A dataset and a sample query set (stand-ins for SIFT100M).
    let (database, queries) = SyntheticSpec::sift_medium(42)
        .with_vectors(30_000)
        .with_queries(128)
        .generate();
    println!(
        "dataset: {} vectors x {} dims, {} sample queries",
        database.len(),
        database.dim(),
        queries.len()
    );

    // 2. The deployment requirement: R@10 >= 40% on this dataset, Alveo U55C.
    //    (Full-probe recall on the 30K-vector synthetic workload is PQ-bound
    //    at ~47%, so 40% exercises a non-trivial but reachable goal.)
    let mut request = FannsRequest::recall_goal(10, 0.40);
    request.explorer.nlist_grid = vec![64, 128, 256];

    // 3. Run the co-design workflow: explore indexes, enumerate designs,
    //    predict the optimum, generate the accelerator.
    let generated = Fanns::new(request)
        .run(&database, &queries)
        .expect("co-design should succeed on this workload");
    println!("\n{}", generated.summary());
    println!("\nindex candidates that met the goal:");
    for (label, nprobe, recall) in &generated.candidates_summary {
        println!(
            "  {label:<14} min nprobe {nprobe:>3}  recall {:.1}%",
            recall * 100.0
        );
    }

    // 4. Serve queries on the generated accelerator (cycle-level simulation).
    let report = generated.simulate(&queries);
    println!(
        "\nsimulated accelerator: {:.0} QPS, median latency {:.1} us, P95 {:.1} us, bottleneck {}",
        report.qps,
        report.latency_percentile(50.0),
        report.latency_percentile(95.0),
        report.bottleneck.name()
    );

    // 5. Verify the deployed recall on the accelerator's actual results.
    let gt = ground_truth(&database, &queries, 10);
    let plan = &generated.plan;
    let accelerator = fanns_codegen::plan::instantiate(plan, &generated.index).unwrap();
    let results: Vec<Vec<usize>> = (0..queries.len())
        .map(|q| {
            accelerator
                .simulate_query_fast(queries.get(q))
                .results
                .iter()
                .map(|r| r.id as usize)
                .collect()
        })
        .collect();
    let recall = recall_at_k(&results, &gt, 10);
    println!(
        "deployed recall on the simulated accelerator: R@10 = {:.1}% (goal was 40%)",
        recall.recall_at_k * 100.0
    );

    // 6. Peek at the generated kernel plan (the pseudo-HLS artifact).
    println!("\ngenerated kernel plan (first 16 lines):");
    for line in generated.kernel_plan.lines().take(16) {
        println!("  {line}");
    }
}
