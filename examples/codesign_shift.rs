//! Example: how the optimal hardware design shifts with algorithm parameters
//! (the intuition behind §3.3 and Figure 9), using only the performance and
//! resource models — no index needs to be trained.
//!
//! ```sh
//! cargo run --release --example codesign_shift
//! ```

use fanns_hwsim::config::AcceleratorConfig;
use fanns_ivf::params::IvfPqParams;
use fanns_perfmodel::device::FpgaDevice;
use fanns_perfmodel::enumerate::{enumerate_designs, EnumerationSpace};
use fanns_perfmodel::qps::{predict_qps, WorkloadModel};
use fanns_perfmodel::resources::DesignContext;

fn best_design(workload: &WorkloadModel, device: &FpgaDevice) -> (AcceleratorConfig, f64) {
    let ctx = DesignContext {
        dim: workload.dim,
        m: workload.m,
        ksub: workload.ksub,
        nlist: workload.nlist,
        nprobe: workload.nprobe,
        k: workload.k,
        with_network_stack: false,
    };
    enumerate_designs(&EnumerationSpace::standard(), device, &ctx, workload.opq)
        .into_iter()
        .map(|d| {
            let qps = predict_qps(workload, &d).qps;
            (d, qps)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("at least one design fits the U55C")
}

fn main() {
    let device = FpgaDevice::alveo_u55c();
    println!(
        "device: {} (60% utilisation ceiling, {} MHz)\n",
        device.name, device.target_freq_mhz
    );

    // A SIFT100M-scale workload evaluated purely analytically.
    let scenarios = [
        ("low nprobe, small nlist", IvfPqParams::new(1 << 11, 2, 10)),
        (
            "high nprobe, small nlist",
            IvfPqParams::new(1 << 11, 64, 10),
        ),
        ("low nprobe, huge nlist", IvfPqParams::new(1 << 17, 2, 10)),
        ("K = 1", IvfPqParams::new(1 << 13, 16, 1)),
        ("K = 100", IvfPqParams::new(1 << 13, 16, 100)),
    ];

    for (label, params) in scenarios {
        let workload = WorkloadModel::analytic(128, 16, 256, 100_000_000, &params);
        let (design, qps) = best_design(&workload, &device);
        println!(
            "scenario: {label}  (nlist={}, nprobe={}, K={})",
            params.nlist, params.nprobe, params.k
        );
        println!("  best design : {}", design.summary());
        println!("  predicted   : {qps:.0} QPS\n");
    }

    println!("Observation (matches §3.3): parameter choices reshape the optimal area split — more nprobe pulls area into PQDist/SelK, more nlist into IVFDist, bigger K into SelK priority queues.");
}
