//! Integration tests for the online serving path: the batched, sharded
//! engine must be *correct* (identical results to single-threaded sequential
//! search) and its measurements must be sane under load.

use std::sync::Arc;
use std::time::Duration;

use fanns::framework::{Fanns, FannsRequest};
use fanns_dataset::synth::SyntheticSpec;
use fanns_ivf::flat::FlatIndex;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::search::search;
use fanns_scaleout::loggp::LogGpParams;
use fanns_serve::loadgen::{run_closed_loop, run_open_loop, OpenLoopConfig};
use fanns_serve::{
    shard_flat_backends, BatchPolicy, CpuBackend, EngineConfig, QueryEngine, Ticket,
};

#[test]
fn batched_engine_matches_sequential_search() {
    // The engine batches and parallelises; results must equal the plain
    // single-threaded sequential search on the same index, query for query.
    let (db, queries) = SyntheticSpec::sift_small(2024).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000),
    );
    let params = IvfPqParams::new(16, 4, 10).with_m(16);

    let expected: Vec<_> = (0..queries.len())
        .map(|q| search(&index, queries.get(q), 10, 4))
        .collect();

    let engine = QueryEngine::start(
        Arc::new(CpuBackend::new(index, params)),
        EngineConfig::new(BatchPolicy::new(16, Duration::from_micros(300))).with_workers(4),
    );
    let tickets: Vec<Ticket> = (0..queries.len())
        .map(|q| engine.submit(queries.get(q).to_vec()).unwrap())
        .collect();
    for (q, ticket) in tickets.into_iter().enumerate() {
        let reply = ticket.wait().expect("reply delivered");
        assert_eq!(
            reply.results, expected[q],
            "query {q} diverged under batching"
        );
    }
    let report = engine.shutdown();
    assert_eq!(report.queries as usize, queries.len());
}

#[test]
fn sharded_dispatch_matches_sequential_topk() {
    // Exact backends make sharding exactly mergeable: the scatter/gather
    // over 4 partitions must reproduce global sequential top-k.
    let (db, queries) = SyntheticSpec::sift_small(2025).generate();
    let global = FlatIndex::new(db.clone());
    let sharded = shard_flat_backends(&db, 4, 10, Some(LogGpParams::paper_infiniband()));

    let engine = QueryEngine::start(
        Arc::new(sharded),
        EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(300))).with_workers(2),
    );
    let n = queries.len().min(64);
    let tickets: Vec<Ticket> = (0..n)
        .map(|q| engine.submit(queries.get(q).to_vec()).unwrap())
        .collect();
    for (q, ticket) in tickets.into_iter().enumerate() {
        let reply = ticket.wait().expect("reply delivered");
        let expected = global.search(queries.get(q), 10);
        assert_eq!(
            reply.results, expected,
            "query {q}: sharded merge diverged from sequential top-k"
        );
        // The LogGP fan-out cost is charged on the simulated path only when
        // shard backends simulate hardware; flat shards are native, so the
        // reply's wall latency is the observable quantity here.
        assert!(reply.latency_us.is_finite() && reply.latency_us >= 0.0);
    }
    engine.shutdown();
}

#[test]
fn generated_accelerator_serves_online() {
    // End-to-end: co-design -> into_backend -> engine -> load -> report.
    let (db, queries) = SyntheticSpec::sift_small(2026).generate();
    let request = FannsRequest::recall_goal(10, 0.35).test_scale();
    let generated = Fanns::new(request)
        .run(&db, &queries)
        .expect("co-design succeeds");
    let backend = Arc::new(generated.into_backend());

    let engine = QueryEngine::start(
        backend,
        EngineConfig::new(BatchPolicy::new(32, Duration::from_micros(500)))
            .with_workers(2)
            .with_slo_us(50_000.0),
    );
    let outcome = run_closed_loop(&engine, &queries, 8, 300);
    assert_eq!(outcome.completed, 300);

    let report = engine.shutdown();
    assert_eq!(report.queries, 300);
    assert!(report.qps > 0.0, "QPS must be positive: {}", report.qps);
    assert!(report.p50_us > 0.0 && report.p50_us.is_finite());
    assert!(report.p50_us <= report.p99_us, "p50 must not exceed p99");
    let sim_p50 = report
        .simulated_p50_us
        .expect("accelerator reports simulated latency");
    assert!(sim_p50.is_finite() && sim_p50 > 0.0);
    assert!(report.slo_attainment.is_some());
}

#[test]
fn open_loop_load_generator_measures_finite_nonzero_rates() {
    let (db, queries) = SyntheticSpec::sift_small(2027).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000),
    );
    let engine = QueryEngine::start(
        Arc::new(CpuBackend::new(
            index,
            IvfPqParams::new(16, 4, 10).with_m(16),
        )),
        EngineConfig::new(BatchPolicy::new(32, Duration::from_micros(500))).with_workers(2),
    );
    let outcome = run_open_loop(&engine, &queries, OpenLoopConfig::new(5_000.0, 500));
    assert_eq!(outcome.accepted + outcome.shed, 500);
    assert_eq!(outcome.completed, outcome.accepted);
    assert!(outcome.offered_qps.is_finite() && outcome.offered_qps > 0.0);
    assert!(outcome.achieved_qps.is_finite() && outcome.achieved_qps > 0.0);

    let report = engine.shutdown();
    assert!(
        report.qps.is_finite() && report.qps > 0.0,
        "measured QPS: {}",
        report.qps
    );
    assert!(
        report.p99_us.is_finite() && report.p99_us > 0.0,
        "measured p99: {}",
        report.p99_us
    );
    assert!(report.p50_us <= report.p99_us);
}
