//! Integration tests for the online serving path: the batched, sharded
//! engine must be *correct* (identical results to single-threaded sequential
//! search) and its measurements must be sane under load.

use std::sync::Arc;
use std::time::Duration;

use fanns::framework::{Fanns, FannsRequest};
use fanns_dataset::synth::SyntheticSpec;
use fanns_ivf::flat::FlatIndex;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::search::search;
use fanns_scaleout::loggp::LogGpParams;
use fanns_serve::loadgen::{run_closed_loop, run_open_loop, OpenLoopConfig};
use fanns_serve::{
    analyze_critical_paths, chrome_trace_json, shard_flat_backends, BatchPolicy, CpuBackend,
    EngineConfig, FaultInjector, FaultMode, FlatBackend, QueryEngine, QueryResultCache,
    QueryStatus, ReplicaHealthConfig, ReplicaSet, ResultCacheConfig, SearchBackend,
    TelemetryConfig, TelemetryRegistry, Ticket,
};

#[test]
fn batched_engine_matches_sequential_search() {
    // The engine batches and parallelises; results must equal the plain
    // single-threaded sequential search on the same index, query for query.
    let (db, queries) = SyntheticSpec::sift_small(2024).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000),
    );
    let params = IvfPqParams::new(16, 4, 10).with_m(16);

    let expected: Vec<_> = (0..queries.len())
        .map(|q| search(&index, queries.get(q), 10, 4))
        .collect();

    let engine = QueryEngine::start(
        Arc::new(CpuBackend::new(index, params)),
        EngineConfig::new(BatchPolicy::new(16, Duration::from_micros(300))).with_workers(4),
    );
    let tickets: Vec<Ticket> = (0..queries.len())
        .map(|q| engine.submit(queries.get(q).to_vec()).unwrap())
        .collect();
    for (q, ticket) in tickets.into_iter().enumerate() {
        let reply = ticket.wait().expect("reply delivered");
        assert_eq!(
            reply.results, expected[q],
            "query {q} diverged under batching"
        );
    }
    let report = engine.shutdown();
    assert_eq!(report.queries as usize, queries.len());
}

#[test]
fn sharded_dispatch_matches_sequential_topk() {
    // Exact backends make sharding exactly mergeable: the scatter/gather
    // over 4 partitions must reproduce global sequential top-k.
    let (db, queries) = SyntheticSpec::sift_small(2025).generate();
    let global = FlatIndex::new(db.clone());
    let sharded = shard_flat_backends(&db, 4, 10, Some(LogGpParams::paper_infiniband()));

    let engine = QueryEngine::start(
        Arc::new(sharded),
        EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(300))).with_workers(2),
    );
    let n = queries.len().min(64);
    let tickets: Vec<Ticket> = (0..n)
        .map(|q| engine.submit(queries.get(q).to_vec()).unwrap())
        .collect();
    for (q, ticket) in tickets.into_iter().enumerate() {
        let reply = ticket.wait().expect("reply delivered");
        let expected = global.search(queries.get(q), 10);
        assert_eq!(
            reply.results, expected,
            "query {q}: sharded merge diverged from sequential top-k"
        );
        // The LogGP fan-out cost is charged on the simulated path only when
        // shard backends simulate hardware; flat shards are native, so the
        // reply's wall latency is the observable quantity here.
        assert!(reply.latency_us.is_finite() && reply.latency_us >= 0.0);
    }
    engine.shutdown();
}

#[test]
fn generated_accelerator_serves_online() {
    // End-to-end: co-design -> into_backend -> engine -> load -> report.
    let (db, queries) = SyntheticSpec::sift_small(2026).generate();
    let request = FannsRequest::recall_goal(10, 0.35).test_scale();
    let generated = Fanns::new(request)
        .run(&db, &queries)
        .expect("co-design succeeds");
    let backend = Arc::new(generated.into_backend());

    let engine = QueryEngine::start(
        backend,
        EngineConfig::new(BatchPolicy::new(32, Duration::from_micros(500)))
            .with_workers(2)
            .with_slo_us(50_000.0),
    );
    let outcome = run_closed_loop(&engine, &queries, 8, 300);
    assert_eq!(outcome.completed, 300);

    let report = engine.shutdown();
    assert_eq!(report.queries, 300);
    assert!(report.qps > 0.0, "QPS must be positive: {}", report.qps);
    assert!(report.p50_us > 0.0 && report.p50_us.is_finite());
    assert!(report.p50_us <= report.p99_us, "p50 must not exceed p99");
    let sim_p50 = report
        .simulated_p50_us
        .expect("accelerator reports simulated latency");
    assert!(sim_p50.is_finite() && sim_p50 > 0.0);
    assert!(report.slo_attainment.is_some());
}

/// Builds a 3-replica set of exact flat backends over a shared index, each
/// behind a fault injector, and returns the set with the fault handles.
fn fault_injectable_flat_replicas(
    db: &fanns_dataset::types::VectorDataset,
    k: usize,
) -> (ReplicaSet, Vec<fanns_serve::FaultHandle>) {
    let shared: std::sync::Arc<dyn SearchBackend> =
        Arc::new(FlatBackend::new(FlatIndex::new(db.clone()), k));
    let mut handles = Vec::new();
    let slots: Vec<Box<dyn SearchBackend>> = (0..3)
        .map(|_| {
            let (injector, handle) =
                FaultInjector::new(Box::new(Arc::clone(&shared)) as Box<dyn SearchBackend>);
            handles.push(handle);
            Box::new(injector) as Box<dyn SearchBackend>
        })
        .collect();
    (
        ReplicaSet::new(slots, ReplicaHealthConfig::default(), None),
        handles,
    )
}

#[test]
fn failover_preserves_ground_truth_results() {
    // (a) With one replica killed mid-run, every completed query must still
    // equal the sequential exact search: failover changes *where* a query
    // runs, never *what* it answers.
    let (db, queries) = SyntheticSpec::sift_small(2028).generate();
    let global = FlatIndex::new(db.clone());
    let (set, handles) = fault_injectable_flat_replicas(&db, 10);
    let stats = set.stats();

    let engine = QueryEngine::start(
        Arc::new(set),
        EngineConfig::new(BatchPolicy::new(4, Duration::from_micros(200))).with_workers(2),
    );
    let n = queries.len().min(64);
    let mut tickets: Vec<(usize, Ticket)> = Vec::new();
    for (i, q) in (0..n).map(|i| (i, queries.get(i))).collect::<Vec<_>>() {
        // Kill replica 0 a third of the way through the stream.
        if i == n / 3 {
            handles[0].set(FaultMode::Error);
        }
        tickets.push((i, engine.submit(q.to_vec()).unwrap()));
    }
    for (i, ticket) in tickets {
        let reply = ticket.wait().expect("reply delivered");
        assert_eq!(reply.status, QueryStatus::Completed, "query {i}");
        let expected = global.search(queries.get(i), 10);
        assert_eq!(
            reply.results, expected,
            "query {i}: failover diverged from sequential ground truth"
        );
    }
    let report = engine.shutdown().with_replica_stats(&[stats]);
    assert_eq!(report.queries as usize, n);
    assert_eq!(report.failed, 0, "survivors must absorb the killed replica");
    assert!(
        report.failover_count > 0,
        "the killed replica must have caused failovers"
    );
    let killed = &report.replicas[0];
    assert!(
        killed.quarantines >= 1,
        "killed replica must be quarantined"
    );
}

#[test]
fn shed_queries_always_resolve_their_tickets() {
    // (b) Deadline shedding must never silently drop a query: every accepted
    // ticket resolves with Completed or Shed, even under an impossible SLO.
    let (db, queries) = SyntheticSpec::sift_small(2029).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000),
    );
    let engine = QueryEngine::start(
        Arc::new(CpuBackend::new(
            index,
            IvfPqParams::new(16, 8, 10).with_m(16),
        )),
        EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(100)))
            .with_workers(1)
            // 50 µs end-to-end SLO: essentially every query expires in queue
            // once the service estimate warms up.
            .with_slo_us(50.0)
            .with_deadline_shedding()
            .with_service_estimate_us(100.0),
    );
    let tickets: Vec<Ticket> = (0..300)
        .map(|i| {
            engine
                .submit(queries.get(i % queries.len()).to_vec())
                .unwrap()
        })
        .collect();
    let mut completed = 0u64;
    let mut shed = 0u64;
    for t in tickets {
        match t.wait().expect("every accepted ticket resolves").status {
            QueryStatus::Completed => completed += 1,
            QueryStatus::Shed => shed += 1,
            QueryStatus::Failed => panic!("no backend failures in this test"),
        }
    }
    assert_eq!(completed + shed, 300, "nothing may vanish");
    assert!(shed > 0, "an impossible SLO must shed");
    let report = engine.shutdown();
    assert_eq!(report.queries, completed);
    assert_eq!(report.shed, shed);
}

#[test]
fn goodput_counters_reconcile_with_offered_load() {
    // (c) The report's accounting identity: completed + shed + failed equals
    // accepted, accepted + rejected equals offered, and goodput counts only
    // in-SLO completions.
    let (db, queries) = SyntheticSpec::sift_small(2030).generate();
    let (set, handles) = fault_injectable_flat_replicas(&db, 10);
    let stats = set.stats();
    // Flaky replicas: every 25th call on each replica errors, so failovers
    // happen while most traffic completes.
    for h in &handles {
        h.set(FaultMode::ErrorEveryNth(25));
    }
    let engine = QueryEngine::start(
        Arc::new(set),
        EngineConfig::new(BatchPolicy::new(16, Duration::from_micros(300)))
            .with_workers(2)
            .with_queue_depth(64)
            .with_slo_us(20_000.0)
            .with_deadline_shedding(),
    );
    let outcome = run_open_loop(&engine, &queries, OpenLoopConfig::new(30_000.0, 1_000));
    let report = engine.shutdown().with_replica_stats(&[stats]);

    assert_eq!(outcome.offered, 1_000);
    assert_eq!(outcome.accepted + outcome.shed, outcome.offered);
    assert_eq!(report.rejected as usize, outcome.shed);
    assert_eq!(
        report.queries + report.shed + report.failed,
        outcome.accepted as u64,
        "every accepted query resolves exactly once"
    );
    assert_eq!(report.queries as usize, outcome.completed);
    assert_eq!(report.shed as usize, outcome.deadline_shed);
    assert_eq!(report.failed as usize, outcome.failed);
    // Goodput can never exceed throughput, and with an SLO configured it is
    // exactly in-SLO completions over the wall window.
    assert!(report.goodput_qps <= report.qps + 1e-9);
    let attainment = report.slo_attainment.expect("slo configured");
    assert!(
        (report.goodput_qps - attainment * report.qps).abs() <= report.qps * 1e-6 + 1e-9,
        "goodput {} must equal attainment {} x qps {}",
        report.goodput_qps,
        attainment,
        report.qps
    );
}

#[test]
fn cached_engine_matches_uncached_engine_on_a_replayed_trace() {
    // The result cache (exact fingerprints) and the backend's centroid/LUT
    // cache must be semantically invisible: a replayed query trace gets
    // bit-identical results with caching on and off, even though most of
    // the cached run never touches the backend.
    let (db, queries) = SyntheticSpec::sift_small(2031).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000),
    );
    let params = IvfPqParams::new(16, 4, 10).with_m(16);
    let expected: Vec<_> = (0..queries.len())
        .map(|q| search(&index, queries.get(q), 10, 4))
        .collect();

    // A trace that revisits a 16-query hot set many times.
    let trace: Vec<usize> = (0..300).map(|i| i % 16).collect();

    let cache = Arc::new(QueryResultCache::new(ResultCacheConfig::new(64)));
    let engine = QueryEngine::start_with_cache(
        Arc::new(CpuBackend::new(index, params).with_centroid_cache(64)),
        EngineConfig::new(BatchPolicy::new(16, Duration::from_micros(300))).with_workers(4),
        Some(Arc::clone(&cache)),
    );
    // Warm pass: one synchronous round over the hot set fills the cache
    // (workers insert before delivering the reply), so the async replay
    // below actually exercises the hit path instead of racing 300
    // not-yet-cached submissions into the queue at once.
    for (q, expected) in expected.iter().enumerate().take(16) {
        let reply = engine
            .submit(queries.get(q).to_vec())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(reply.results, *expected, "warm query {q}");
    }
    let tickets: Vec<(usize, Ticket)> = trace
        .iter()
        .map(|&q| (q, engine.submit(queries.get(q).to_vec()).unwrap()))
        .collect();
    for (q, ticket) in tickets {
        let reply = ticket.wait().expect("reply delivered");
        assert_eq!(reply.status, QueryStatus::Completed);
        assert_eq!(
            reply.results, expected[q],
            "query {q}: cached serving diverged from sequential search"
        );
    }
    let report = engine.shutdown();
    assert_eq!(report.queries as usize, trace.len() + 16);
    let cache_report = report.cache.expect("cache section present");
    assert_eq!(
        cache_report.hits,
        trace.len() as u64,
        "after the warm pass every replayed submission must hit"
    );
    assert_eq!(
        cache_report.hits + cache_report.misses,
        (trace.len() + 16) as u64,
        "every submission consults the cache exactly once"
    );
}

#[test]
fn tiny_cache_never_serves_stale_results_across_an_index_swap() {
    // A capacity-4 cache under a 64-query stream churns through eviction
    // constantly; after the backend's dataset is swapped and the cache
    // invalidated, every reply must reflect the *new* dataset — a stale hit
    // would reproduce the old dataset's neighbours instead.
    let (db_a, queries) = SyntheticSpec::sift_small(2032).generate();
    let (db_b, _) = SyntheticSpec::sift_small(9932).generate();
    let truth_a = FlatIndex::new(db_a.clone());
    let truth_b = FlatIndex::new(db_b.clone());
    let cache = Arc::new(QueryResultCache::new(
        ResultCacheConfig::new(4).with_shards(1),
    ));

    // Serve dataset A twice over (fills, evicts, and hits), checking against
    // A's ground truth.
    let engine_a = QueryEngine::start_with_cache(
        Arc::new(FlatBackend::new(FlatIndex::new(db_a), 10)),
        EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(200))).with_workers(2),
        Some(Arc::clone(&cache)),
    );
    // Each query runs twice back-to-back: the first fills, the immediate
    // repeat hits while the entry is still resident (the cyclic scan itself
    // evicts constantly at capacity 4).
    for i in 0..queries.len() {
        for rep in 0..2 {
            let reply = engine_a
                .submit(queries.get(i).to_vec())
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(
                reply.results,
                truth_a.search(queries.get(i), 10),
                "rep {rep}, query {i}: wrong results against dataset A"
            );
        }
    }
    let report_a = engine_a.shutdown();
    let stats_a = report_a.cache.expect("cache section");
    assert!(
        stats_a.evictions > 0,
        "a capacity-4 cache under 64 distinct queries must evict"
    );

    // Swap the index: new backend over dataset B, same cache object. The
    // invalidation makes every surviving entry (and any in-flight insert
    // keyed against the old generation) unservable.
    cache.invalidate_all();
    let engine_b = QueryEngine::start_with_cache(
        Arc::new(FlatBackend::new(FlatIndex::new(db_b), 10)),
        EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(200))).with_workers(2),
        Some(Arc::clone(&cache)),
    );
    for i in 0..queries.len() {
        for rep in 0..2 {
            let reply = engine_b
                .submit(queries.get(i).to_vec())
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(
                reply.results,
                truth_b.search(queries.get(i), 10),
                "rep {rep}, query {i}: stale dataset-A results served after the swap"
            );
        }
    }
    let report_b = engine_b.shutdown();
    let stats_b = report_b.cache.expect("cache section");
    assert!(
        stats_b.hits > 0,
        "immediate repeats over dataset B must hit B-generation entries"
    );
}

#[test]
fn open_loop_load_generator_measures_finite_nonzero_rates() {
    let (db, queries) = SyntheticSpec::sift_small(2027).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000),
    );
    let engine = QueryEngine::start(
        Arc::new(CpuBackend::new(
            index,
            IvfPqParams::new(16, 4, 10).with_m(16),
        )),
        EngineConfig::new(BatchPolicy::new(32, Duration::from_micros(500))).with_workers(2),
    );
    let outcome = run_open_loop(&engine, &queries, OpenLoopConfig::new(5_000.0, 500));
    assert_eq!(outcome.accepted + outcome.shed, 500);
    assert_eq!(outcome.completed, outcome.accepted);
    assert!(outcome.offered_qps.is_finite() && outcome.offered_qps > 0.0);
    assert!(outcome.achieved_qps.is_finite() && outcome.achieved_qps > 0.0);

    let report = engine.shutdown();
    assert!(
        report.qps.is_finite() && report.qps > 0.0,
        "measured QPS: {}",
        report.qps
    );
    assert!(
        report.p99_us.is_finite() && report.p99_us > 0.0,
        "measured p99: {}",
        report.p99_us
    );
    assert!(report.p50_us <= report.p99_us);
}

#[test]
fn traced_engine_matches_untraced_engine_and_reconciles_stage_sums() {
    // Tracing is observational: with the registry attached (sampling every
    // query) results must be bit-identical to the untraced engine, the
    // report must carry the per-stage breakdown, and the telescoping stage
    // spans must account for measured wall latency.
    let (db, queries) = SyntheticSpec::sift_small(2028).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000),
    );
    let params = IvfPqParams::new(16, 4, 10).with_m(16);

    let run = |telemetry: Option<Arc<TelemetryRegistry>>| {
        let mut backend = CpuBackend::new(index.clone(), params);
        if let Some(reg) = &telemetry {
            backend = backend.with_telemetry(reg.sink());
        }
        let engine = QueryEngine::start_with_telemetry(
            Arc::new(backend),
            EngineConfig::new(BatchPolicy::new(16, Duration::from_micros(300))).with_workers(2),
            None,
            telemetry,
        );
        let tickets: Vec<Ticket> = (0..queries.len())
            .map(|q| engine.submit(queries.get(q).to_vec()).unwrap())
            .collect();
        let replies: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("reply delivered").results)
            .collect();
        (replies, engine.shutdown())
    };

    let (untraced_replies, untraced_report) = run(None);
    let registry = Arc::new(TelemetryRegistry::new(
        TelemetryConfig::new().with_sample_every(1),
    ));
    let (traced_replies, traced_report) = run(Some(Arc::clone(&registry)));

    assert_eq!(
        traced_replies, untraced_replies,
        "tracing must not change results"
    );
    assert!(untraced_report.stages.is_none());

    let stages = traced_report.stages.expect("traced report has breakdown");
    assert_eq!(stages.sample_every, 1);
    assert_eq!(stages.sampled_queries as usize, queries.len());
    assert_eq!(stages.dropped, 0, "rings must not overflow at this volume");
    assert!(
        (0.95..=1.05).contains(&stages.reconciliation),
        "path-stage sums must reconcile with wall latency, got {:.3}",
        stages.reconciliation
    );
    // Every query-path stage the engine walks must be present with one span
    // per query; backend sub-stages must cover every query too.
    for name in [
        "submit",
        "queue_wait",
        "batch_form",
        "service",
        "reply",
        "wall",
    ] {
        let row = stages
            .rows
            .iter()
            .find(|r| r.stage == name)
            .unwrap_or_else(|| panic!("stage `{name}` missing from breakdown"));
        assert_eq!(row.count as usize, queries.len(), "stage `{name}` count");
    }
    for name in ["coarse", "build_lut", "scan"] {
        let row = stages
            .rows
            .iter()
            .find(|r| r.stage == name)
            .unwrap_or_else(|| panic!("backend sub-stage `{name}` missing"));
        assert_eq!(
            row.count as usize,
            queries.len(),
            "sub-stage `{name}` count"
        );
    }

    // The retained events reconstruct per-query critical paths, and the
    // Chrome trace renders them with the required keys.
    let events = registry.events();
    let critical = analyze_critical_paths(&events);
    assert_eq!(critical.paths.len(), queries.len());
    for path in &critical.paths {
        assert!(
            path.wall_us > 0.0 && path.path_us <= path.wall_us * 1.10,
            "query {} path {:.1} us vs wall {:.1} us",
            path.query,
            path.path_us,
            path.wall_us
        );
    }
    let trace = chrome_trace_json(&events);
    let doc = serde_json::parse(&trace).expect("chrome trace parses");
    let serde::Value::Seq(items) = doc.get("traceEvents").expect("traceEvents key") else {
        panic!("traceEvents must be an array");
    };
    assert!(items.len() >= events.len());
}

#[test]
fn sampled_tracing_traces_only_every_nth_query() {
    // At 1-in-4 sampling only ~a quarter of queries pay for span recording,
    // and the wall-span count says exactly which fraction was observed.
    let (db, queries) = SyntheticSpec::sift_small(2029).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000),
    );
    let registry = Arc::new(TelemetryRegistry::new(
        TelemetryConfig::new().with_sample_every(4),
    ));
    let engine = QueryEngine::start_with_telemetry(
        Arc::new(CpuBackend::new(
            index,
            IvfPqParams::new(16, 4, 10).with_m(16),
        )),
        EngineConfig::new(BatchPolicy::new(16, Duration::from_micros(300))).with_workers(2),
        None,
        Some(Arc::clone(&registry)),
    );
    let total = 200usize;
    let tickets: Vec<Ticket> = (0..total)
        .map(|q| {
            engine
                .submit(queries.get(q % queries.len()).to_vec())
                .unwrap()
        })
        .collect();
    for ticket in tickets {
        ticket.wait().expect("reply delivered");
    }
    let report = engine.shutdown();
    let stages = report.stages.expect("breakdown present");
    // Engine ids count up from 0, so exactly ceil(total/4) are sampled.
    assert_eq!(stages.sampled_queries as usize, total.div_ceil(4));
}
