//! Integration tests for consistency between the analytic models and the
//! simulator / measured software across crate boundaries.

use fanns_baselines::gpu::GpuModel;
use fanns_dataset::synth::SyntheticSpec;
use fanns_hwsim::accelerator::Accelerator;
use fanns_hwsim::config::{AcceleratorConfig, SelectArch};
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_perfmodel::device::FpgaDevice;
use fanns_perfmodel::enumerate::{enumerate_designs, EnumerationSpace};
use fanns_perfmodel::qps::{predict_qps, stage_cycles, WorkloadModel};
use fanns_perfmodel::resources::{design_resources, DesignContext};
use fanns_scaleout::cluster::{simulate_cluster, ClusterSpec};
use fanns_scaleout::latency::LatencyDistribution;
use fanns_scaleout::loggp::LogGpParams;

fn small_index() -> IvfPqIndex {
    let (db, _) = SyntheticSpec::sift_small(777).generate();
    IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000),
    )
}

#[test]
fn perfmodel_and_simulator_use_the_same_cycle_model() {
    let index = small_index();
    let params = IvfPqParams::new(16, 4, 10).with_m(16);
    let config = AcceleratorConfig::balanced();
    let accelerator = Accelerator::new(&index, config, params).unwrap();
    let workload = WorkloadModel::from_index(&index, &params);

    // Evaluate the model at the workload's expected scan count; the
    // simulator's stage_cycles at the same count must agree exactly.
    let model = stage_cycles(&workload, &config);
    let sim = accelerator.stage_cycles(workload.expected_scanned_codes.ceil() as u64);
    assert_eq!(model, sim);
}

#[test]
fn every_enumerated_design_is_instantiable() {
    let index = small_index();
    let params = IvfPqParams::new(16, 4, 10).with_m(16);
    let device = FpgaDevice::alveo_u55c();
    let ctx = DesignContext {
        dim: index.dim(),
        m: index.m(),
        ksub: index.pq().ksub(),
        nlist: index.nlist(),
        nprobe: 4,
        k: 10,
        with_network_stack: false,
    };
    let designs = enumerate_designs(&EnumerationSpace::small(), &device, &ctx, false);
    assert!(!designs.is_empty());
    for design in designs {
        let usage = design_resources(&design, &ctx);
        assert!(usage.fits_within(&device.budget()));
        // The simulator accepts every design the enumerator declared valid.
        let acc = Accelerator::new(&index, design, params);
        assert!(
            acc.is_ok(),
            "enumerated design failed instantiation: {design:?}"
        );
    }
}

#[test]
fn selk_architecture_choice_respects_k_regime() {
    // The paper picks HPQ for K=1/K=100 and HSMPQG for K=10 with many
    // streams; verify the model reproduces the underlying trade-off: for many
    // streams and small K the hybrid uses fewer LUTs, for K >= streams the
    // HPQ is the only applicable choice.
    use fanns_hwsim::select::SelectionSpec;
    use fanns_perfmodel::resources::selection_resources;
    let many_streams_small_k_hpq =
        selection_resources(&SelectionSpec::new(SelectArch::Hpq, 114, 10));
    let many_streams_small_k_hybrid =
        selection_resources(&SelectionSpec::new(SelectArch::Hsmpqg, 114, 10));
    assert!(many_streams_small_k_hybrid.lut < many_streams_small_k_hpq.lut);
    assert!(!SelectionSpec::new(SelectArch::Hsmpqg, 8, 100).hsmpqg_applicable());
}

#[test]
fn gpu_model_beats_fpga_on_throughput_but_not_on_tail() {
    let index = small_index();
    let params = IvfPqParams::new(16, 8, 10).with_m(16);
    let workload =
        WorkloadModel::analytic(128, 16, 256, 100_000_000, &IvfPqParams::new(8192, 16, 10));
    let gpu = GpuModel::v100();
    let fpga_pred = predict_qps(&workload, &AcceleratorConfig::balanced());
    assert!(
        gpu.batch_qps(&workload, 10_000) > fpga_pred.qps,
        "GPU should lead on raw batch QPS"
    );

    // Tail behaviour: FPGA simulated latencies are flat, GPU modelled ones heavy-tailed.
    let accelerator = Accelerator::new(&index, AcceleratorConfig::balanced(), params).unwrap();
    let (_, queries) = SyntheticSpec::sift_small(778).generate();
    let report = accelerator.simulate_batch(&queries, false);
    let fpga_dist = LatencyDistribution::new(report.latencies_us);
    let gpu_dist = gpu.online_latency_distribution(&workload, 2_000, 5);
    assert!(gpu_dist.tail_ratio() > fpga_dist.tail_ratio());
}

#[test]
fn fpga_scaleout_advantage_grows_with_cluster_size() {
    let index = small_index();
    let params = IvfPqParams::new(16, 8, 10).with_m(16);
    let accelerator = Accelerator::new(&index, AcceleratorConfig::balanced(), params).unwrap();
    let (_, queries) = SyntheticSpec::sift_small(779).generate();
    let fpga_node =
        LatencyDistribution::new(accelerator.simulate_batch(&queries, false).latencies_us);
    let gpu_node = GpuModel::v100().online_latency_distribution(
        &WorkloadModel::from_index(&index, &params),
        2_000,
        17,
    );
    let net = LogGpParams::paper_infiniband();
    let spec8 = ClusterSpec::eight_accelerators();
    let spec256 = ClusterSpec {
        num_accelerators: 256,
        ..spec8
    };
    let s8 = simulate_cluster(&spec8, &gpu_node, &net).p95_us
        / simulate_cluster(&spec8, &fpga_node, &net).p95_us;
    let s256 = simulate_cluster(&spec256, &gpu_node, &net).p95_us
        / simulate_cluster(&spec256, &fpga_node, &net).p95_us;
    assert!(
        s256 > s8,
        "P95 speedup should grow with cluster size (8: {s8:.1}x, 256: {s256:.1}x)"
    );
}
