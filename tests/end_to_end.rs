//! Cross-crate integration tests: the full co-design pipeline from dataset to
//! simulated accelerator, checked for functional correctness (recall) and
//! model consistency.

use fanns::framework::{Fanns, FannsRequest};
use fanns_codegen::emit::emit_kernel_plan;
use fanns_codegen::plan::instantiate;
use fanns_dataset::ground_truth::ground_truth;
use fanns_dataset::recall::recall_at_k;
use fanns_dataset::synth::SyntheticSpec;

fn workload() -> (
    fanns_dataset::types::VectorDataset,
    fanns_dataset::types::QuerySet,
) {
    SyntheticSpec::sift_medium(1234)
        .with_vectors(8_000)
        .with_queries(64)
        .generate()
}

fn test_request(k: usize, goal: f64) -> FannsRequest {
    let mut request = FannsRequest::recall_goal(k, goal);
    request.explorer.nlist_grid = vec![32, 64];
    request.explorer.train_sample = 8_000;
    request
}

#[test]
fn full_workflow_meets_the_recall_goal_on_the_accelerator() {
    let (db, queries) = workload();
    let goal = 0.6;
    let generated = Fanns::new(test_request(10, goal))
        .run(&db, &queries)
        .expect("co-design should find a feasible combination");

    // The accelerator's own results (hardware-functional stages share the
    // arithmetic with the CPU reference) must meet the recall goal.
    let gt = ground_truth(&db, &queries, 10);
    let accelerator = instantiate(&generated.plan, &generated.index).unwrap();
    let results: Vec<Vec<usize>> = (0..queries.len())
        .map(|q| {
            accelerator
                .simulate_query_fast(queries.get(q))
                .results
                .iter()
                .map(|r| r.id as usize)
                .collect()
        })
        .collect();
    let recall = recall_at_k(&results, &gt, 10);
    assert!(
        recall.recall_at_k + 1e-9 >= goal,
        "deployed recall {:.3} misses the goal {goal}",
        recall.recall_at_k
    );
}

#[test]
fn simulated_qps_is_close_to_the_model_prediction() {
    // §7.3.1: measured QPS reaches 86.9–99.4% of the predicted QPS. In the
    // simulator the only divergence is per-query workload variation around
    // the expected scan count, so the two should agree within ~30%.
    let (db, queries) = workload();
    let generated = Fanns::new(test_request(10, 0.5))
        .run(&db, &queries)
        .unwrap();
    let report = generated.simulate(&queries);
    let predicted = generated.choice.prediction.qps;
    let ratio = report.qps / predicted;
    assert!(
        (0.5..=1.7).contains(&ratio),
        "simulated QPS {:.0} deviates too far from predicted {:.0} (ratio {ratio:.2})",
        report.qps,
        predicted
    );
}

#[test]
fn co_designed_accelerator_beats_the_fixed_baseline() {
    let (db, queries) = workload();
    let generated = Fanns::new(test_request(10, 0.5))
        .run(&db, &queries)
        .unwrap();
    let fanns_qps = generated.simulate(&queries).qps;
    let baseline = fanns_baselines::fpga_fixed::measure_fixed_fpga(
        &generated.index,
        generated.choice.params,
        &queries,
        140.0,
    )
    .unwrap();
    assert!(
        fanns_qps >= baseline.qps * 0.95,
        "co-designed accelerator ({fanns_qps:.0} QPS) should not lose to the fixed baseline ({:.0} QPS)",
        baseline.qps
    );
}

#[test]
fn kernel_plan_reflects_the_chosen_design() {
    let (db, queries) = workload();
    let generated = Fanns::new(test_request(10, 0.5))
        .run(&db, &queries)
        .unwrap();
    let plan_text = emit_kernel_plan(&generated.plan);
    assert_eq!(plan_text, generated.kernel_plan);
    let expected_pes = generated.choice.design.sizing.pq_dist_pes;
    assert_eq!(plan_text.matches("pq_dist_pe_").count(), expected_pes);
}

#[test]
fn higher_recall_goal_costs_throughput() {
    let (db, queries) = workload();
    let relaxed = Fanns::new(test_request(10, 0.4))
        .run(&db, &queries)
        .unwrap();
    let strict = Fanns::new(test_request(10, 0.8)).run(&db, &queries);
    if let Ok(strict) = strict {
        assert!(
            strict.choice.prediction.qps <= relaxed.choice.prediction.qps * 1.05,
            "a stricter recall goal should not be predicted faster"
        );
    }
}
