//! Integration tests for serving from a `mmap`-backed on-disk index: shared
//! concurrent readers, the mapped CPU backend behind the engine, cold-start
//! telemetry, and generation-based cache invalidation on index swap.

use std::sync::Arc;
use std::time::Duration;

use fanns_dataset::synth::SyntheticSpec;
use fanns_dataset::types::QuerySet;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::search::{search, SearchResult};
use fanns_ivf::segmented::{SegmentedConfig, SegmentedIndex};
use fanns_ivf::storage::open_index;
use fanns_ivf::{CpuSearcher, MappedIndex};
use fanns_serve::loadgen::ZipfSampler;
use fanns_serve::{
    open_mapped_backend, BatchPolicy, EngineConfig, MutableBackend, QueryEngine, QueryResultCache,
    ResultCacheConfig, SearchBackend, Stage, TelemetryConfig, TelemetryRegistry, Ticket,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn scratch_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fanns-storage-serving-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{tag}.fanns"))
}

fn build_and_map(seed: u64, nlist: usize, tag: &str) -> (IvfPqIndex, QuerySet, MappedIndex) {
    let (db, queries) = SyntheticSpec::sift_small(seed).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(nlist)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000)
            .with_seed(seed),
    );
    let path = scratch_path(tag);
    index.write_index(&path).expect("write index");
    let mapped = open_index(&path).expect("open index");
    let _ = std::fs::remove_file(&path);
    (index, queries, mapped)
}

/// One reader's Zipf-skewed query schedule (indexes into the query set).
fn zipf_schedule(queries: usize, len: usize, seed: u64) -> Vec<usize> {
    let sampler = ZipfSampler::new(queries, 0.9, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| sampler.sample(&mut rng)).collect()
}

/// Two threads hammering one shared [`MappedIndex`] under Zipf-skewed load
/// must each produce exactly the results a solo run of their schedule
/// produces — shared lazy slab initialisation must never change answers.
#[test]
fn concurrent_readers_match_solo_runs() {
    let (_, queries, mapped) = build_and_map(901, 32, "concurrent");
    let mapped = Arc::new(mapped);
    let params = IvfPqParams::new(32, 8, 10).with_m(16);

    let schedules: Vec<Vec<usize>> = (0..2)
        .map(|t| zipf_schedule(queries.len(), 200, 1_000 + t))
        .collect();

    // Solo reference: a fresh mapping (fresh lazy slabs), single-threaded.
    let solo: Vec<Vec<Vec<SearchResult>>> = {
        let searcher = CpuSearcher::new(&*mapped, params);
        schedules
            .iter()
            .map(|schedule| {
                schedule
                    .iter()
                    .map(|&q| searcher.search_one(queries.get(q)))
                    .collect()
            })
            .collect()
    };

    let concurrent: Vec<Vec<Vec<SearchResult>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .map(|schedule| {
                let mapped = Arc::clone(&mapped);
                let queries = &queries;
                scope.spawn(move || {
                    let searcher = CpuSearcher::new(&*mapped, params);
                    schedule
                        .iter()
                        .map(|&q| searcher.search_one(queries.get(q)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, (got, expect)) in concurrent.iter().zip(&solo).enumerate() {
        assert_eq!(got, expect, "thread {t} diverged from its solo run");
    }
}

/// The mapped backend behind the batched multi-worker engine returns the
/// same answers as sequential in-memory search, and the map/warm cold-start
/// stages land in telemetry.
#[test]
fn mapped_backend_serves_identically_through_the_engine() {
    let (index, queries, _mapped) = build_and_map(902, 16, "engine");
    let params = IvfPqParams::new(16, 4, 10).with_m(16);

    let path = scratch_path("engine-reopen");
    index.write_index(&path).expect("write index");
    let registry = TelemetryRegistry::new(TelemetryConfig::new());
    let sink = registry.sink();
    let (backend, mapped) =
        open_mapped_backend(&path, params, Some(&sink)).expect("open mapped backend");
    let _ = std::fs::remove_file(&path);
    assert!(backend.is_mapped());
    assert!(backend.name().contains("mmap"));
    assert!(mapped.file_len() > 0);

    let map_spans = registry
        .events()
        .iter()
        .filter(|e| e.stage == Stage::IndexMap)
        .count();
    let warm_spans = registry
        .events()
        .iter()
        .filter(|e| e.stage == Stage::IndexWarm)
        .count();
    assert_eq!(map_spans, 1, "expected one index_map cold-start span");
    assert_eq!(warm_spans, 1, "expected one index_warm cold-start span");

    let expected: Vec<_> = (0..queries.len())
        .map(|q| search(&index, queries.get(q), 10, 4))
        .collect();
    let engine = QueryEngine::start(
        Arc::new(backend),
        EngineConfig::new(BatchPolicy::new(16, Duration::from_micros(300))).with_workers(4),
    );
    let tickets: Vec<Ticket> = (0..queries.len())
        .map(|q| engine.submit(queries.get(q).to_vec()).unwrap())
        .collect();
    for (q, ticket) in tickets.into_iter().enumerate() {
        let reply = ticket.wait().expect("reply delivered");
        assert_eq!(
            reply.results, expected[q],
            "query {q} diverged on the mapped backend"
        );
    }
    engine.shutdown();
}

/// Swapping the serving index for one `mmap`-loaded from disk must bump the
/// result cache's generation: entries cached against the old index are
/// invalidated wholesale, and repopulated entries reflect the new index.
#[test]
fn cache_generation_invalidates_on_index_swap() {
    let (old_index, queries, _) = build_and_map(903, 16, "swap-old");
    let (new_index, _, new_mapped) = build_and_map(904, 32, "swap-new");
    let old_params = IvfPqParams::new(16, 4, 10).with_m(16);
    let new_params = IvfPqParams::new(32, 8, 10).with_m(16);

    let cache = QueryResultCache::new(ResultCacheConfig::new(256));
    let old_searcher = CpuSearcher::new(&old_index, old_params);
    for q in 0..16 {
        let query = queries.get(q);
        let key = cache.key(query);
        cache.insert(&key, old_searcher.search_one(query));
    }
    assert_eq!(cache.len(), 16);

    // Swap: the engine now serves the mapped index; everything cached
    // against the old generation must be dropped before first lookup.
    cache.invalidate_all();
    for q in 0..16 {
        assert!(
            cache.lookup(queries.get(q)).is_none(),
            "query {q} survived the generation bump"
        );
    }

    let new_searcher = CpuSearcher::new(&new_mapped, new_params);
    for q in 0..16 {
        let query = queries.get(q);
        let key = cache.key(query);
        cache.insert(&key, new_searcher.search_one(query));
    }
    let heap_new = CpuSearcher::new(&new_index, new_params);
    for q in 0..16 {
        let query = queries.get(q);
        let cached = cache.lookup(query).expect("repopulated entry");
        assert_eq!(
            cached,
            heap_new.search_one(query),
            "query {q}: post-swap cache serves stale or wrong results"
        );
    }
}

/// The segment-swap variant of the cache-invalidation contract: a mutable
/// backend built over a `mmap`-backed sealed segment must advance the result
/// cache's generation on every *non-skipped* compaction swap — and only
/// then — so entries cached against the pre-swap segment set can neither
/// hit nor repopulate.
#[test]
fn cache_generation_invalidates_on_every_compaction_swap() {
    let (_, queries, mapped) = build_and_map(905, 16, "segment-swap");
    let params = IvfPqParams::new(16, 16, 10).with_m(16);
    let segmented = Arc::new(SegmentedIndex::from_mapped(
        Arc::new(mapped),
        SegmentedConfig::default(),
    ));
    let cache = Arc::new(QueryResultCache::new(ResultCacheConfig::new(128)));
    let backend =
        MutableBackend::new(Arc::clone(&segmented), params).with_result_cache(Arc::clone(&cache));

    // Warm the cache against the initial (purely mapped) segment set.
    for q in 0..8 {
        let query = queries.get(q);
        let key = cache.key(query);
        cache.insert(&key, backend.search_batch(&[query])[0].results.clone());
    }
    assert_eq!(cache.len(), 8);
    let g0 = cache.generation();

    // A compaction with nothing to do must NOT invalidate: the segment set
    // did not change, so cached entries stay valid.
    let report = backend.compact();
    assert!(report.skipped, "single sealed segment, no churn: skip");
    assert_eq!(cache.generation(), g0, "skipped compaction must not bump");
    assert!(cache.lookup(queries.get(0)).is_some());

    // Mutate, then compact repeatedly: every swap bumps the generation
    // exactly once, and the index generation moves in lockstep.
    let mut cache_gen = g0;
    for round in 0..3 {
        let id = backend.insert(queries.get(round)).expect("insert");
        let after_insert = cache.generation();
        assert!(after_insert > cache_gen, "round {round}: insert must bump");
        let idx_gen = segmented.generation();
        let report = backend.compact();
        assert!(!report.skipped, "round {round}: swap expected");
        assert_eq!(
            segmented.generation(),
            idx_gen + 1,
            "round {round}: compaction must advance the index generation"
        );
        assert!(
            cache.generation() > after_insert,
            "round {round}: compaction swap must invalidate the cache"
        );
        for q in 0..8 {
            assert!(
                cache.lookup(queries.get(q)).is_none(),
                "round {round}: query {q} survived the segment swap"
            );
        }
        // Tombstone the inserted id so the next round's compaction also has
        // reclaim work, covering the delete-triggered swap path too.
        assert!(backend.delete(id));
        cache_gen = cache.generation();
    }

    // Repopulated entries reflect the post-swap segment set.
    let query = queries.get(0);
    let fresh = backend.search_batch(&[query])[0].results.clone();
    let key = cache.key(query);
    cache.insert(&key, fresh.clone());
    assert_eq!(cache.lookup(query), Some(fresh));
}
