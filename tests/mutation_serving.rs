//! Concurrent mutation-under-traffic stress test for the segmented mutable
//! serving path (see `docs/MUTATION.md`).
//!
//! A [`QueryEngine`] serves Zipf(1.0)-skewed traffic out of a
//! [`MutableBackend`] while a mutator thread streams inserts and deletes
//! through the [`SearchBackend`] mutation hooks and a background
//! [`Compactor`] (plus explicit phase-boundary compactions) churns the
//! segment set underneath. Assertions, per phase:
//!
//! * **No resurrection** — no reply ever contains an id whose delete
//!   committed before the traffic wave began. Because every delete and
//!   every compaction swap advances the result-cache generation (and
//!   stale-generation inserts are discarded), this simultaneously proves no
//!   query was answered from a stale cache generation.
//! * **No torn segment set** — a full-probe search with `k ≥ live` returns
//!   exactly the live id set: a torn segment view (half-swapped sealed set,
//!   lost write segment, bitmap mismatch) would drop or duplicate ids.
//! * **Recall never regresses** — recall@10 of the served index against
//!   brute-force ground truth over the *current* live set stays within 0.05
//!   of the pre-mutation baseline at every phase checkpoint.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fanns_dataset::synth::SyntheticSpec;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::segmented::{SegmentedConfig, SegmentedIndex};
use fanns_quantize::distance::l2_sq;
use fanns_serve::loadgen::ZipfSampler;
use fanns_serve::{
    BatchPolicy, Compactor, EngineConfig, MutableBackend, QueryEngine, QueryResultCache,
    QueryStatus, ResultCacheConfig, SearchBackend,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const NLIST: usize = 16;
const K: usize = 10;
const PHASES: usize = 4;
const WAVE_QUERIES: usize = 160;
const RECALL_PROBES: usize = 32;
const RECALL_TOLERANCE: f64 = 0.05;
/// Mutations per phase (bounded so the live set churns by a realistic
/// fraction per wave instead of being swamped by the mutator).
const PHASE_OPS: usize = 320;

/// Brute-force top-K ids over the live vector map (ties broken by id,
/// matching `TopK::into_sorted`).
fn brute_topk(live: &HashMap<u32, Vec<f32>>, query: &[f32], k: usize) -> Vec<u32> {
    let mut scored: Vec<(f32, u32)> = live.iter().map(|(&id, v)| (l2_sq(query, v), id)).collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.into_iter().take(k).map(|(_, id)| id).collect()
}

/// Mean recall@K of the served index against brute force over `live`.
fn served_recall(
    index: &SegmentedIndex,
    live: &HashMap<u32, Vec<f32>>,
    probes: &[Vec<f32>],
) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for q in probes {
        let truth: HashSet<u32> = brute_topk(live, q, K).into_iter().collect();
        let got = index.search(q, K, NLIST);
        hit += got.iter().filter(|r| truth.contains(&r.id)).count();
        total += truth.len();
    }
    hit as f64 / total.max(1) as f64
}

#[test]
fn mutation_under_zipf_traffic_preserves_every_invariant() {
    let (db, queries) = SyntheticSpec::sift_small(607).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(NLIST)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000)
            .with_seed(607),
    );
    let segmented = Arc::new(SegmentedIndex::new(
        index,
        SegmentedConfig::default()
            .with_seal_threshold(128)
            .with_tombstone_ratio(0.15),
    ));
    let params = IvfPqParams::new(NLIST, NLIST, K).with_m(16);
    let cache = Arc::new(QueryResultCache::new(ResultCacheConfig::new(256)));
    let backend = Arc::new(
        MutableBackend::new(Arc::clone(&segmented), params).with_result_cache(Arc::clone(&cache)),
    );
    let engine = QueryEngine::start_with_cache(
        Arc::new(Arc::clone(&backend)),
        EngineConfig::new(BatchPolicy::new(16, Duration::from_micros(300))).with_workers(4),
        Some(Arc::clone(&cache)),
    );
    let compactor = Compactor::start(Arc::clone(&backend), Duration::from_millis(2));

    // Fresh vectors for the mutator, drawn from the same synthetic
    // distribution as the database but a different seed (no duplicates).
    let (insert_pool, _) = SyntheticSpec::sift_small(608)
        .with_vectors(PHASES * PHASE_OPS)
        .with_queries(1)
        .generate();

    // The reference vector store: every live id's exact vector.
    let mut live: HashMap<u32, Vec<f32>> = (0..db.len())
        .map(|i| (i as u32, db.get(i).to_vec()))
        .collect();
    let probes: Vec<Vec<f32>> = (0..RECALL_PROBES)
        .map(|i| queries.get(i).to_vec())
        .collect();
    let baseline_recall = served_recall(&segmented, &live, &probes);
    // Synthetic data is PQ-bound (see ROADMAP): the absolute level is not
    // the point here, the per-phase regression bound below is.
    assert!(
        baseline_recall > 0.4,
        "pre-mutation baseline recall implausibly low: {baseline_recall}"
    );

    // Ids whose deletion committed before the current traffic wave; replies
    // during the wave must never contain any of them.
    let mut committed_deletes: HashSet<u32> = HashSet::new();
    let sampler = ZipfSampler::new(queries.len(), 1.0, 0xF00D);
    let mut traffic_rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    let start_generation = cache.generation();

    for phase in 0..PHASES {
        // Mutator thread: streams inserts (fresh vectors from the same
        // synthetic distribution — no exact duplicates, so ADC stays
        // discriminative) and deletes through the backend's mutation hooks
        // while the wave is served.
        let wave_done = Arc::new(AtomicBool::new(false));
        let mutator = {
            let backend = Arc::clone(&backend);
            let fresh: Vec<Vec<f32>> = {
                let start = phase * PHASE_OPS;
                (start..start + PHASE_OPS)
                    .map(|i| insert_pool.get(i).to_vec())
                    .collect()
            };
            let candidate_ids: Vec<u32> = live.keys().copied().collect();
            let wave_done = Arc::clone(&wave_done);
            std::thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(0x5EED + phase as u64);
                let mut inserted: Vec<(u32, Vec<f32>)> = Vec::new();
                let mut deleted: Vec<u32> = Vec::new();
                let mut next_fresh = 0usize;
                let mut ops = 0usize;
                while !wave_done.load(Ordering::Acquire) && ops < PHASE_OPS {
                    for _ in 0..8 {
                        if ops >= PHASE_OPS {
                            break;
                        }
                        ops += 1;
                        if rng.gen_range(0..100) < 60 && next_fresh < fresh.len() {
                            let v = fresh[next_fresh].clone();
                            next_fresh += 1;
                            let id = backend.insert(&v).expect("mutable backend inserts");
                            inserted.push((id, v));
                        } else if !candidate_ids.is_empty() {
                            let id = candidate_ids[rng.gen_range(0..candidate_ids.len())];
                            if backend.delete(id) {
                                deleted.push(id);
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                (inserted, deleted)
            })
        };

        // The traffic wave, concurrent with the mutator and the compactor.
        for w in 0..WAVE_QUERIES {
            let q = queries.get(sampler.sample(&mut traffic_rng)).to_vec();
            let ticket = match engine.submit(q) {
                Ok(t) => t,
                Err(_) => continue, // bounded queue full: backpressure, not a failure
            };
            let reply = ticket.wait().expect("reply delivered");
            match reply.status {
                QueryStatus::Completed => {
                    assert!(
                        reply.results.len() <= K,
                        "phase {phase} wave {w}: more than K results"
                    );
                    for r in &reply.results {
                        assert!(
                            !committed_deletes.contains(&r.id),
                            "phase {phase} wave {w}: deleted id {} resurfaced \
                             (stale cache generation or tombstone leak)",
                            r.id
                        );
                    }
                }
                QueryStatus::Shed | QueryStatus::Failed => {}
            }
        }
        wave_done.store(true, Ordering::Release);
        let (inserted, deleted) = mutator.join().expect("mutator thread");
        assert!(
            !inserted.is_empty(),
            "phase {phase}: mutator never got an insert through"
        );

        // Commit the phase's mutations into the reference model.
        for (id, v) in inserted {
            live.insert(id, v);
        }
        for id in deleted {
            live.remove(&id);
            committed_deletes.insert(id);
        }

        // Phase boundary: force a compaction so every phase exercises at
        // least one seal + merge + swap (the background compactor may have
        // already run others mid-wave — both count).
        backend.compact();

        // Structural coherence: a full-probe search with k >= live returns
        // exactly the live id set — a torn segment view could not.
        assert_eq!(
            segmented.live(),
            live.len(),
            "phase {phase}: live count diverged from the model"
        );
        let check_q = queries.get(phase % queries.len());
        let full = segmented.search(check_q, live.len() + 8, NLIST);
        let returned: HashSet<u32> = full.iter().map(|r| r.id).collect();
        assert_eq!(returned.len(), full.len(), "phase {phase}: duplicate id");
        let expected: HashSet<u32> = live.keys().copied().collect();
        assert_eq!(
            returned, expected,
            "phase {phase}: torn or stale segment set"
        );

        // Recall checkpoint against the current live set.
        let recall = served_recall(&segmented, &live, &probes);
        assert!(
            recall >= baseline_recall - RECALL_TOLERANCE,
            "phase {phase}: recall regressed {baseline_recall:.3} -> {recall:.3}"
        );
    }

    // Mutations and compactions must have advanced the cache generation.
    assert!(
        cache.generation() > start_generation,
        "cache generation never advanced despite mutations and compactions"
    );

    // Quiesced double-submit: the repopulated cache serves exactly what the
    // post-mutation index computes (no stale entries survived).
    let q = queries.get(0).to_vec();
    let first = engine.submit(q.clone()).unwrap().wait().unwrap();
    let second = engine.submit(q.clone()).unwrap().wait().unwrap();
    assert_eq!(first.status, QueryStatus::Completed);
    assert_eq!(second.status, QueryStatus::Completed);
    assert_eq!(first.results, second.results);
    let direct = backend.search_batch(&[&q]);
    assert_eq!(first.results, direct[0].results);

    let background_compactions = compactor.stop();
    let stats = segmented.stats();
    assert!(
        stats.compactions >= PHASES as u64,
        "expected at least one compaction per phase, saw {}",
        stats.compactions
    );
    // The compactor may or may not have fired between phase boundaries;
    // its count is bounded by the total.
    assert!(background_compactions <= stats.compactions);
    engine.shutdown();
}
