//! Integration tests for the SIMD ADC scan data plane: the f32 slab kernels
//! must be *bit-identical* to the scalar reference end-to-end (same top-k,
//! same distances, same ordering), the int8 first pass must be
//! recall-identical after its exact re-rank, and the serving backend must
//! return the same answers whichever kernel it is pinned to.

use fanns_dataset::ground_truth::ground_truth;
use fanns_dataset::recall::recall_at_k;
use fanns_dataset::synth::SyntheticSpec;
use fanns_ivf::baseline_cpu::CpuSearcher;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::search::{search, search_with_kernel};
use fanns_ivf::simd::{ScanKernel, ScanScratch, ALL_KERNELS};
use fanns_serve::{CpuBackend, SearchBackend};

fn build(
    seed: u64,
) -> (
    fanns_dataset::types::VectorDataset,
    fanns_dataset::types::QuerySet,
    IvfPqIndex,
) {
    let (db, queries) = SyntheticSpec::sift_small(seed).generate();
    let index = IvfPqIndex::build(
        &db,
        &IvfPqTrainConfig::new(32)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(2_000)
            .with_seed(5),
    );
    (db, queries, index)
}

#[test]
fn f32_kernels_return_bit_identical_topk() {
    let (_, queries, index) = build(301);
    let mut scratch = ScanScratch::new();
    for q in 0..queries.len() {
        let query = queries.get(q);
        let expected = search(&index, query, 10, 8);
        for kernel in [ScanKernel::Portable, ScanKernel::Avx2] {
            let got = search_with_kernel(&index, query, 10, 8, kernel, &mut scratch);
            assert_eq!(got.len(), expected.len(), "query {q} kernel {kernel}");
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.id, e.id, "query {q} kernel {kernel}");
                assert_eq!(
                    g.distance.to_bits(),
                    e.distance.to_bits(),
                    "query {q} kernel {kernel}"
                );
            }
        }
    }
}

#[test]
fn int8_rerank_is_recall_identical_to_scalar() {
    let (db, queries, index) = build(302);
    let gt = ground_truth(&db, &queries, 10);
    let mut scratch = ScanScratch::new();
    let mut scalar_ids = Vec::new();
    let mut int8_ids = Vec::new();
    for q in 0..queries.len() {
        let query = queries.get(q);
        scalar_ids.push(
            search(&index, query, 10, 8)
                .iter()
                .map(|h| h.id as usize)
                .collect::<Vec<_>>(),
        );
        int8_ids.push(
            search_with_kernel(&index, query, 10, 8, ScanKernel::Int8, &mut scratch)
                .iter()
                .map(|h| h.id as usize)
                .collect::<Vec<_>>(),
        );
    }
    let scalar = recall_at_k(&scalar_ids, &gt, 10);
    let int8 = recall_at_k(&int8_ids, &gt, 10);
    assert!(
        (scalar.recall_at_k - int8.recall_at_k).abs() < 1e-12,
        "int8 recall {} diverged from scalar recall {}",
        int8.recall_at_k,
        scalar.recall_at_k
    );
}

#[test]
fn cpu_searcher_kernel_pins_agree_with_default() {
    let (_, queries, index) = build(303);
    let params = IvfPqParams::new(32, 8, 10).with_m(16);
    let default = CpuSearcher::new(&index, params);
    let expected = default.search_batch(&queries);
    for kernel in [ScanKernel::Scalar, ScanKernel::Portable, ScanKernel::Avx2] {
        let pinned = CpuSearcher::new(&index, params).with_kernel(kernel);
        assert_eq!(
            pinned.search_batch(&queries),
            expected,
            "kernel {kernel} diverged from the default path"
        );
    }
}

#[test]
fn mmap_reopened_index_is_bit_identical_on_every_kernel() {
    // The full kernel-equivalence contract must survive a round trip through
    // the on-disk format: write → mmap-open → search, compared kernel by
    // kernel against the heap-built original.
    let (_, queries, index) = build(305);
    let dir = std::env::temp_dir().join(format!("fanns-simd-scan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("kernels.fanns");
    index.write_index(&path).expect("write index");
    let mapped = fanns_ivf::storage::open_index(&path).expect("open index");
    let params = IvfPqParams::new(32, 8, 10).with_m(16);
    for kernel in ALL_KERNELS {
        if !kernel.is_available() {
            continue;
        }
        let heap = CpuSearcher::new(&index, params).with_kernel(kernel);
        let disk = CpuSearcher::new(&mapped, params).with_kernel(kernel);
        for q in 0..queries.len() {
            let query = queries.get(q);
            let expected = heap.search_one(query);
            let got = disk.search_one(query);
            assert_eq!(got.len(), expected.len(), "query {q} kernel {kernel}");
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.id, e.id, "query {q} kernel {kernel}");
                assert_eq!(
                    g.distance.to_bits(),
                    e.distance.to_bits(),
                    "query {q} kernel {kernel}"
                );
            }
        }
    }
    drop(mapped);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cpu_backend_serves_identically_on_every_kernel() {
    let (_, queries, index) = build(304);
    let params = IvfPqParams::new(32, 8, 10).with_m(16);
    let qs: Vec<&[f32]> = (0..16).map(|i| queries.get(i)).collect();
    let baseline = CpuBackend::new(index.clone(), params)
        .with_kernel(ScanKernel::Scalar)
        .search_batch(&qs);
    for kernel in ALL_KERNELS {
        if !kernel.is_available() {
            continue;
        }
        // Exercise both the plain path and the LUT-cache path (cold + warm).
        let backend = CpuBackend::new(index.clone(), params).with_kernel(kernel);
        assert!(backend.name().contains(kernel.name()));
        let plain = backend.search_batch(&qs);
        let cached_backend = CpuBackend::new(index.clone(), params)
            .with_kernel(kernel)
            .with_centroid_cache(32);
        let cold = cached_backend.search_batch(&qs);
        let warm = cached_backend.search_batch(&qs);
        assert_eq!(cold, warm, "kernel {kernel}: cache must not change results");
        assert_eq!(plain, cold, "kernel {kernel}: cached path diverged");
        if kernel != ScanKernel::Int8 {
            assert_eq!(
                plain, baseline,
                "kernel {kernel}: f32 paths must be bit-identical"
            );
        } else {
            // Int8 re-ranks with exact distances; ids may only differ below
            // the re-rank horizon, which k=10 with depth 42 never reaches on
            // this workload.
            for (p, b) in plain.iter().zip(&baseline) {
                assert_eq!(
                    p.results.len(),
                    b.results.len(),
                    "int8 returned a different k"
                );
            }
        }
    }
}
