//! Parameter-independent baseline accelerators (§7.2.3).
//!
//! The paper's FPGA baseline is a set of hand-balanced designs — one per K —
//! that must serve queries on *arbitrary* indexes, so they spread resources
//! across the stages rather than specialising for one parameter setting.
//! These are the designs the FANNS-generated accelerators are compared
//! against in Figure 10 (the 1.3×–23× speedups).

use fanns_hwsim::config::{AcceleratorConfig, IndexStore, SelectArch, StageSizing};

/// Returns the hand-crafted parameter-independent design for a given `K`,
/// mirroring the "Baseline" rows of Table 4:
///
/// * the IVF index and PQ codebooks stay in HBM (they must handle any nlist),
/// * PQDist and SelK budgets are balanced against each other, and shrink as
///   K grows because longer priority queues eat the LUT budget,
/// * Stage OPQ gets one PE (it is nearly free) so OPQ indexes still work.
pub fn baseline_design_for_k(k: usize, freq_mhz: f64) -> AcceleratorConfig {
    let (pq_dist_pes, sel_k_arch) = if k <= 1 {
        (36, SelectArch::Hpq)
    } else if k <= 10 {
        (16, SelectArch::Hpq)
    } else {
        (4, SelectArch::Hpq)
    };
    AcceleratorConfig {
        sizing: StageSizing {
            opq_pes: 1,
            ivf_dist_pes: 10,
            build_lut_pes: if k <= 1 { 5 } else { 4 },
            pq_dist_pes,
        },
        sel_cells_arch: SelectArch::Hpq,
        sel_k_arch,
        ivf_store: IndexStore::Hbm,
        lut_store: IndexStore::Hbm,
        freq_mhz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_perfmodel::device::FpgaDevice;
    use fanns_perfmodel::resources::{design_resources, DesignContext};

    fn ctx(k: usize) -> DesignContext {
        DesignContext {
            dim: 128,
            m: 16,
            ksub: 256,
            nlist: 1 << 15,
            nprobe: 32,
            k,
            with_network_stack: false,
        }
    }

    #[test]
    fn baseline_designs_fit_the_u55c_for_all_k() {
        let device = FpgaDevice::alveo_u55c();
        for k in [1, 10, 100] {
            let design = baseline_design_for_k(k, device.target_freq_mhz);
            let usage = design_resources(&design, &ctx(k));
            assert!(
                usage.fits_within(&device.budget()),
                "baseline design for K={k} does not fit"
            );
        }
    }

    #[test]
    fn pqdist_budget_shrinks_as_k_grows() {
        let k1 = baseline_design_for_k(1, 140.0);
        let k10 = baseline_design_for_k(10, 140.0);
        let k100 = baseline_design_for_k(100, 140.0);
        assert!(k1.sizing.pq_dist_pes > k10.sizing.pq_dist_pes);
        assert!(k10.sizing.pq_dist_pes > k100.sizing.pq_dist_pes);
    }

    #[test]
    fn baselines_keep_index_in_hbm() {
        for k in [1, 10, 100] {
            let d = baseline_design_for_k(k, 140.0);
            assert_eq!(d.ivf_store, IndexStore::Hbm);
            assert_eq!(d.lut_store, IndexStore::Hbm);
        }
    }
}
