//! The co-design optimizer (step 5 of the workflow).
//!
//! The optimizer takes (a) the index candidates produced by the index
//! explorer — each an `(index, minimum nprobe)` pair that meets the recall
//! goal — and (b) the set of valid hardware designs from the enumerator, and
//! evaluates the QPS performance model on the full cross product, returning
//! the best combination. This is the "millions of combinations within an
//! hour" step of §6.3; at our grid sizes it takes milliseconds.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use fanns_hwsim::config::AcceleratorConfig;
use fanns_ivf::params::IvfPqParams;
use fanns_perfmodel::device::FpgaDevice;
use fanns_perfmodel::enumerate::{enumerate_designs, EnumerationSpace};
use fanns_perfmodel::qps::{predict_qps, QpsPrediction, WorkloadModel};
use fanns_perfmodel::resources::DesignContext;

use crate::index_explorer::IndexCandidate;

/// Configuration of the co-design search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoDesignConfig {
    /// Number of results per query (K of the recall goal).
    pub k: usize,
    /// The hardware enumeration grid.
    pub space: EnumerationSpace,
    /// Whether the accelerator carries a network stack (scale-out mode).
    pub with_network_stack: bool,
}

impl CoDesignConfig {
    /// Standard search for a given K.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            space: EnumerationSpace::standard(),
            with_network_stack: false,
        }
    }

    /// Reduced search for unit tests.
    pub fn small(k: usize) -> Self {
        Self {
            k,
            space: EnumerationSpace::small(),
            with_network_stack: false,
        }
    }
}

/// The chosen combination of algorithm parameters and hardware design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoDesignChoice {
    /// Index label (e.g. `OPQ+IVF8192`).
    pub index_label: String,
    /// Position of the winning index in the candidate list passed in.
    pub candidate_idx: usize,
    /// The query-time parameters to deploy.
    pub params: IvfPqParams,
    /// The winning hardware design.
    pub design: AcceleratorConfig,
    /// The performance model's prediction for the winning combination.
    pub prediction: QpsPrediction,
    /// Number of (parameter, design) combinations evaluated.
    pub combinations_evaluated: usize,
}

/// Evaluates every (candidate × design) combination and returns the best, or
/// `None` when no candidate/design combination exists.
pub fn co_design(
    candidates: &[IndexCandidate],
    device: &FpgaDevice,
    config: &CoDesignConfig,
) -> Option<CoDesignChoice> {
    let mut best: Option<CoDesignChoice> = None;
    let mut total_combinations = 0usize;

    for (ci, candidate) in candidates.iter().enumerate() {
        let index = &candidate.index;
        let params = IvfPqParams::new(index.nlist(), candidate.min_nprobe, config.k)
            .with_m(index.m())
            .with_opq(index.has_opq());
        let ctx = DesignContext {
            dim: index.dim(),
            m: index.m(),
            ksub: index.pq().ksub(),
            nlist: index.nlist(),
            nprobe: params.effective_nprobe(),
            k: config.k,
            with_network_stack: config.with_network_stack,
        };
        let designs = enumerate_designs(&config.space, device, &ctx, index.has_opq());
        total_combinations += designs.len();
        let workload = WorkloadModel::from_index(index, &params);

        let best_for_candidate = designs
            .par_iter()
            .map(|design| (*design, predict_qps(&workload, design)))
            .max_by(|a, b| {
                a.1.qps
                    .partial_cmp(&b.1.qps)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

        if let Some((design, prediction)) = best_for_candidate {
            let better = match &best {
                None => true,
                Some(current) => prediction.qps > current.prediction.qps,
            };
            if better {
                best = Some(CoDesignChoice {
                    index_label: candidate.label(),
                    candidate_idx: ci,
                    params,
                    design,
                    prediction,
                    combinations_evaluated: 0,
                });
            }
        }
    }

    best.map(|mut choice| {
        choice.combinations_evaluated = total_combinations;
        choice
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_explorer::{explore_indexes, IndexExplorerConfig};
    use fanns_dataset::ground_truth::ground_truth;
    use fanns_dataset::synth::SyntheticSpec;

    fn candidates() -> Vec<IndexCandidate> {
        let (db, queries) = SyntheticSpec::sift_small(71).generate();
        let gt = ground_truth(&db, &queries, 10);
        explore_indexes(&db, &queries, &gt, &IndexExplorerConfig::tiny(10, 0.5))
    }

    #[test]
    fn co_design_picks_the_highest_predicted_qps() {
        let cands = candidates();
        assert!(!cands.is_empty());
        let choice = co_design(
            &cands,
            &FpgaDevice::alveo_u55c(),
            &CoDesignConfig::small(10),
        )
        .unwrap();
        assert!(choice.prediction.qps > 0.0);
        assert!(choice.combinations_evaluated > 0);
        assert!(choice.candidate_idx < cands.len());
        // The chosen nprobe must be the candidate's minimum nprobe.
        assert_eq!(choice.params.nprobe, cands[choice.candidate_idx].min_nprobe);
    }

    #[test]
    fn empty_candidate_list_returns_none() {
        let choice = co_design(&[], &FpgaDevice::alveo_u55c(), &CoDesignConfig::small(10));
        assert!(choice.is_none());
    }

    #[test]
    fn larger_k_reduces_predicted_qps() {
        let cands = candidates();
        let small_k =
            co_design(&cands, &FpgaDevice::alveo_u55c(), &CoDesignConfig::small(1)).unwrap();
        let large_k = co_design(
            &cands,
            &FpgaDevice::alveo_u55c(),
            &CoDesignConfig::small(100),
        )
        .unwrap();
        assert!(large_k.prediction.qps <= small_k.prediction.qps);
    }
}
