//! Design-space exploration — the hardware–algorithm co-design core of FANNS.
//!
//! This crate implements steps 2, 3 and 5 of the workflow in Figure 4:
//!
//! * [`index_explorer`] — train a family of indexes over a grid of `nlist`
//!   (with and without OPQ) and, for each, find the minimum `nprobe` that
//!   reaches the user's recall goal on a sample query set,
//! * [`optimizer`] — cross every qualifying (index, nprobe) pair with every
//!   valid hardware design from the enumerator and pick the combination with
//!   the highest predicted QPS,
//! * [`baseline_designs`] — the parameter-independent accelerators used as
//!   the FPGA baseline in §7.2.3,
//! * [`report`] — Table-4-style textual reports of the chosen designs.

pub mod baseline_designs;
pub mod index_explorer;
pub mod optimizer;
pub mod report;

pub use baseline_designs::baseline_design_for_k;
pub use index_explorer::{explore_indexes, IndexCandidate, IndexExplorerConfig};
pub use optimizer::{co_design, CoDesignChoice, CoDesignConfig};
pub use report::{design_table, DesignRow};
