//! Index exploration: the algorithm-parameter half of the co-design.
//!
//! For each candidate `nlist` (and with/without OPQ), an index is trained on
//! the dataset and the recall–nprobe relationship is measured on a sample
//! query set. The output — one `(index, minimum nprobe)` pair per index that
//! can reach the recall goal — feeds the performance model (steps 2–3 of the
//! FANNS workflow).

use serde::{Deserialize, Serialize};

use fanns_dataset::ground_truth::GroundTruth;
use fanns_dataset::recall::recall_at_k;
use fanns_dataset::types::{QuerySet, VectorDataset};
use fanns_ivf::baseline_cpu::CpuSearcher;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;

/// Configuration for the index exploration sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexExplorerConfig {
    /// Candidate cell counts (the paper sweeps 2^10 … 2^18; scaled-down
    /// datasets use proportionally smaller grids).
    pub nlist_grid: Vec<usize>,
    /// Whether to also train an OPQ variant of every index.
    pub try_opq: bool,
    /// PQ sub-quantizer count.
    pub m: usize,
    /// PQ codebook size.
    pub ksub: usize,
    /// Candidate nprobe values to evaluate (must be sorted ascending).
    pub nprobe_grid: Vec<usize>,
    /// Number of results per query used for the recall target.
    pub k: usize,
    /// Recall goal in [0, 1] (e.g. 0.8 for R@10=80 %).
    pub recall_goal: f64,
    /// Training sample size.
    pub train_sample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl IndexExplorerConfig {
    /// A small exploration grid appropriate for the laptop-scale synthetic
    /// datasets (≤1M vectors).
    pub fn laptop_scale(k: usize, recall_goal: f64) -> Self {
        Self {
            nlist_grid: vec![64, 128, 256, 512],
            try_opq: true,
            m: 16,
            ksub: 256,
            nprobe_grid: vec![1, 2, 4, 8, 16, 32, 64],
            k,
            recall_goal,
            train_sample: 20_000,
            seed: 0xD5E,
        }
    }

    /// A minimal grid for unit tests. The quantizer stays reasonably fine
    /// (m=16, 64-entry codebooks) so that recall on the 1 000-vector test
    /// datasets is limited by nprobe rather than by quantization error.
    pub fn tiny(k: usize, recall_goal: f64) -> Self {
        Self {
            nlist_grid: vec![8, 16],
            try_opq: false,
            m: 16,
            ksub: 64,
            nprobe_grid: vec![1, 2, 4, 8, 16],
            k,
            recall_goal,
            train_sample: 2_000,
            seed: 0xD5E,
        }
    }
}

/// One index that can reach the recall goal, with the minimum nprobe found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexCandidate {
    /// The trained, populated index.
    pub index: IvfPqIndex,
    /// The smallest nprobe (from the grid) that meets the recall goal.
    pub min_nprobe: usize,
    /// The recall measured at `min_nprobe`.
    pub achieved_recall: f64,
    /// Recall at each evaluated nprobe (nprobe, recall) — the recall curve.
    pub recall_curve: Vec<(usize, f64)>,
}

impl IndexCandidate {
    /// Short label such as `OPQ+IVF256`.
    pub fn label(&self) -> String {
        if self.index.has_opq() {
            format!("OPQ+IVF{}", self.index.nlist())
        } else {
            format!("IVF{}", self.index.nlist())
        }
    }
}

/// A recall curve: `(nprobe, recall)` per grid point, plus the first point
/// meeting the goal (if any).
pub type RecallCurve = (Vec<(usize, f64)>, Option<(usize, f64)>);

/// Measures the recall of `index` at each nprobe in `grid` and returns the
/// curve plus the minimum nprobe achieving `goal` (if any).
pub fn recall_vs_nprobe(
    index: &IvfPqIndex,
    queries: &QuerySet,
    ground_truth: &GroundTruth,
    grid: &[usize],
    k: usize,
    goal: f64,
) -> RecallCurve {
    let mut curve = Vec::with_capacity(grid.len());
    let mut found: Option<(usize, f64)> = None;
    for &nprobe in grid {
        let params = IvfPqParams::new(index.nlist(), nprobe, k)
            .with_m(index.m())
            .with_opq(index.has_opq());
        let searcher = CpuSearcher::new(index, params);
        let results = searcher.search_batch(queries);
        let report = recall_at_k(&CpuSearcher::ids_only(&results), ground_truth, k);
        curve.push((nprobe, report.recall_at_k));
        if found.is_none() && report.recall_at_k + 1e-12 >= goal {
            found = Some((nprobe, report.recall_at_k));
            // Recall is monotone in nprobe, so later grid points only cost time.
            break;
        }
    }
    (curve, found)
}

/// Trains every index in the grid and returns those able to reach the goal.
///
/// This is the expensive step of the workflow (Table 3: "several hours per
/// index" at 100M scale); at the laptop scale used here it takes seconds.
pub fn explore_indexes(
    database: &VectorDataset,
    queries: &QuerySet,
    ground_truth: &GroundTruth,
    config: &IndexExplorerConfig,
) -> Vec<IndexCandidate> {
    let mut candidates = Vec::new();
    let opq_options: Vec<bool> = if config.try_opq {
        vec![false, true]
    } else {
        vec![false]
    };
    for &nlist in &config.nlist_grid {
        for &opq in &opq_options {
            let train = IvfPqTrainConfig::new(nlist)
                .with_m(config.m)
                .with_ksub(config.ksub)
                .with_opq(opq)
                .with_train_sample(config.train_sample)
                .with_seed(config.seed ^ (nlist as u64) ^ ((opq as u64) << 32));
            let index = IvfPqIndex::build(database, &train);
            let (curve, found) = recall_vs_nprobe(
                &index,
                queries,
                ground_truth,
                &config.nprobe_grid,
                config.k,
                config.recall_goal,
            );
            if let Some((min_nprobe, achieved_recall)) = found {
                candidates.push(IndexCandidate {
                    index,
                    min_nprobe,
                    achieved_recall,
                    recall_curve: curve,
                });
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::ground_truth::ground_truth;
    use fanns_dataset::synth::SyntheticSpec;

    fn setup() -> (VectorDataset, QuerySet, GroundTruth) {
        let (db, queries) = SyntheticSpec::sift_small(61).generate();
        let gt = ground_truth(&db, &queries, 10);
        (db, queries, gt)
    }

    #[test]
    fn explorer_finds_candidates_for_a_modest_goal() {
        let (db, queries, gt) = setup();
        let cfg = IndexExplorerConfig::tiny(10, 0.5);
        let candidates = explore_indexes(&db, &queries, &gt, &cfg);
        assert!(!candidates.is_empty(), "no index reached a 50% recall goal");
        for c in &candidates {
            assert!(c.achieved_recall >= 0.5);
            assert!(cfg.nprobe_grid.contains(&c.min_nprobe));
            assert!(!c.recall_curve.is_empty());
        }
    }

    #[test]
    fn impossible_goal_yields_no_candidates() {
        let (db, queries, gt) = setup();
        let mut cfg = IndexExplorerConfig::tiny(10, 1.01);
        cfg.nlist_grid = vec![8];
        let candidates = explore_indexes(&db, &queries, &gt, &cfg);
        assert!(candidates.is_empty());
    }

    #[test]
    fn recall_curve_improves_with_nprobe() {
        // Recall under ADC distances is not strictly monotone in nprobe
        // (extra candidates carry quantization noise), but scanning every
        // cell must do at least as well as scanning one, minus a small slack.
        let (db, queries, gt) = setup();
        let train = IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000);
        let index = IvfPqIndex::build(&db, &train);
        let (curve, _) = recall_vs_nprobe(&index, &queries, &gt, &[1, 4, 16], 10, 2.0);
        assert_eq!(curve.len(), 3);
        assert!(curve[2].1 + 0.05 >= curve[0].1);
        assert!(
            curve[2].1 > 0.5,
            "full-probe recall unexpectedly low: {}",
            curve[2].1
        );
    }

    #[test]
    fn candidate_labels_follow_paper_convention() {
        let (db, queries, gt) = setup();
        let cfg = IndexExplorerConfig::tiny(10, 0.3);
        let candidates = explore_indexes(&db, &queries, &gt, &cfg);
        for c in candidates {
            assert!(c.label().starts_with("IVF"));
        }
    }
}
