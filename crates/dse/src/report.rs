//! Table-4-style design reports.
//!
//! The paper's Table 4 compares the baseline and the FANNS-generated designs
//! per recall goal: the index chosen, the nprobe, the per-stage architecture
//! and PE counts, the per-stage LUT share and the predicted QPS. [`DesignRow`]
//! captures one such row and [`design_table`] renders a set of rows as an
//! aligned text table for the benchmark harnesses.

use serde::{Deserialize, Serialize};

use fanns_hwsim::config::AcceleratorConfig;
use fanns_perfmodel::device::FpgaDevice;
use fanns_perfmodel::resources::{resource_report, DesignContext};

/// One row of the design-comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignRow {
    /// Row label, e.g. `K=10 (FANNS)` or `K=10 (Baseline)`.
    pub label: String,
    /// Index label, e.g. `OPQ+IVF8192`, or `N/A` for parameter-independent designs.
    pub index_label: String,
    /// The deployed nprobe (None for parameter-independent designs).
    pub nprobe: Option<usize>,
    /// The hardware design.
    pub design: AcceleratorConfig,
    /// Per-stage LUT share of the device (pipeline order).
    pub stage_lut_fraction: [f64; 6],
    /// Predicted QPS (None when not applicable).
    pub predicted_qps: Option<f64>,
}

impl DesignRow {
    /// Builds a row, computing the per-stage resource shares on `device`.
    pub fn new(
        label: impl Into<String>,
        index_label: impl Into<String>,
        nprobe: Option<usize>,
        design: AcceleratorConfig,
        ctx: &DesignContext,
        device: &FpgaDevice,
        predicted_qps: Option<f64>,
    ) -> Self {
        let report = resource_report(&design, ctx, device);
        Self {
            label: label.into(),
            index_label: index_label.into(),
            nprobe,
            design,
            stage_lut_fraction: report.stage_lut_fraction,
            predicted_qps,
        }
    }
}

/// Renders rows as an aligned text table (stage LUT % in pipeline order).
pub fn design_table(rows: &[DesignRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<14} {:>7} {:>5} {:>5} {:>5} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "design",
        "index",
        "nprobe",
        "#OPQ",
        "#IVF",
        "#LUT",
        "#PQD",
        "OPQ%",
        "IVFDist%",
        "SelCell%",
        "BuildLUT%",
        "PQDist%",
        "SelK%",
        "pred.QPS"
    ));
    for r in rows {
        let f = r.stage_lut_fraction;
        out.push_str(&format!(
            "{:<22} {:<14} {:>7} {:>5} {:>5} {:>5} {:>5} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>10}\n",
            r.label,
            r.index_label,
            r.nprobe.map_or("N/A".to_string(), |n| n.to_string()),
            r.design.sizing.opq_pes,
            r.design.sizing.ivf_dist_pes,
            r.design.sizing.build_lut_pes,
            r.design.sizing.pq_dist_pes,
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0,
            f[4] * 100.0,
            f[5] * 100.0,
            r.predicted_qps
                .map_or("N/A".to_string(), |q| format!("{q:.0}")),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_designs::baseline_design_for_k;

    fn ctx() -> DesignContext {
        DesignContext {
            dim: 128,
            m: 16,
            ksub: 256,
            nlist: 8192,
            nprobe: 17,
            k: 10,
            with_network_stack: false,
        }
    }

    #[test]
    fn rows_render_into_a_table() {
        let device = FpgaDevice::alveo_u55c();
        let row = DesignRow::new(
            "K=10 (Baseline)",
            "N/A",
            None,
            baseline_design_for_k(10, 140.0),
            &ctx(),
            &device,
            None,
        );
        let row2 = DesignRow::new(
            "K=10 (FANNS)",
            "OPQ+IVF8192",
            Some(17),
            baseline_design_for_k(10, 140.0),
            &ctx(),
            &device,
            Some(11_098.0),
        );
        let table = design_table(&[row, row2]);
        assert!(table.contains("K=10 (Baseline)"));
        assert!(table.contains("OPQ+IVF8192"));
        assert!(table.contains("11098"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn stage_fractions_are_populated() {
        let device = FpgaDevice::alveo_u55c();
        let row = DesignRow::new(
            "x",
            "IVF1024",
            Some(4),
            baseline_design_for_k(1, 140.0),
            &ctx(),
            &device,
            Some(1.0),
        );
        assert!(row.stage_lut_fraction.iter().sum::<f64>() > 0.0);
    }
}
