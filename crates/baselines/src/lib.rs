//! Evaluation baselines.
//!
//! The paper compares the FANNS-generated accelerators against three
//! baselines (§7.1):
//!
//! * **CPU** — Faiss IVF-PQ on a 16-vCPU Xeon. Reproduced by the measured,
//!   multithreaded searcher in [`fanns_ivf::baseline_cpu`]; [`cpu`] adds the
//!   latency-distribution plumbing the scale-out experiments need.
//! * **GPU** — Faiss on NVIDIA V100s. No GPU exists in this environment, so
//!   [`gpu`] provides an analytic roofline + tail-latency model calibrated to
//!   the relative behaviour reported in the paper (5–22× the FPGA's batch
//!   throughput, lower median latency, heavy tail).
//! * **Fixed FPGA** — the parameter-independent designs of §7.2.3, provided
//!   by [`fanns_dse::baseline_designs`] and wrapped here with the simulator
//!   so they can be measured like any other accelerator.

pub mod cpu;
pub mod fpga_fixed;
pub mod gpu;

pub use cpu::cpu_latency_distribution;
pub use fpga_fixed::measure_fixed_fpga;
pub use gpu::{GpuModel, GpuRunReport};
