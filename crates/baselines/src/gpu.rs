//! Analytic V100-class GPU model.
//!
//! The paper runs Faiss-GPU on NVIDIA V100s (5 120 CUDA cores, 32 GB HBM2,
//! ~14 TFLOP/s FP32, ~900 GB/s). No GPU is available in this environment, so
//! this module models the two behaviours the paper's conclusions rest on:
//!
//! 1. **Batch throughput**: the GPU's raw FLOP/s and bandwidth are roughly
//!    two orders of magnitude above the FPGA's, so with large batches it
//!    reaches 5–22× the FPGA's QPS (Figure 10). We model each search stage as
//!    the max of its compute-roofline and bandwidth-roofline time, with an
//!    efficiency factor, and add per-kernel launch overhead.
//! 2. **Online latency**: individual queries pay kernel-launch overhead and
//!    suffer batching/scheduling jitter, producing a heavy upper tail
//!    (Figure 11) — the reason GPUs scale poorly to many accelerators.
//!
//! All constants are documented and the distribution sampling is seeded, so
//! the "GPU measurements" are reproducible.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use fanns_perfmodel::qps::WorkloadModel;
use fanns_scaleout::latency::LatencyDistribution;

/// Hardware characteristics of the modelled GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Peak FP32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Achievable fraction of peak FLOP/s on these kernels.
    pub compute_efficiency: f64,
    /// Peak memory bandwidth in bytes/s.
    pub peak_bandwidth: f64,
    /// Achievable fraction of peak bandwidth.
    pub bandwidth_efficiency: f64,
    /// Fixed overhead per kernel launch (seconds).
    pub kernel_launch_s: f64,
    /// Number of kernels launched per query batch (one per search stage plus
    /// glue kernels).
    pub kernels_per_batch: usize,
    /// Median extra host/driver latency for an online (batch-of-1) query (s).
    pub online_overhead_s: f64,
    /// Probability that an online query lands in a slow scheduling window.
    pub tail_probability: f64,
    /// Multiplier applied to the latency of tail queries.
    pub tail_multiplier: f64,
}

impl GpuModel {
    /// An NVIDIA V100-class model, matching the paper's hardware generation.
    pub fn v100() -> Self {
        Self {
            peak_flops: 14.0e12,
            compute_efficiency: 0.25,
            peak_bandwidth: 900.0e9,
            bandwidth_efficiency: 0.55,
            kernel_launch_s: 8.0e-6,
            kernels_per_batch: 8,
            online_overhead_s: 60.0e-6,
            tail_probability: 0.03,
            tail_multiplier: 8.0,
        }
    }

    /// Per-stage GPU time (s) for one batch, in the pipeline order OPQ,
    /// IVFDist, SelCells, BuildLUT, PQDist, SelK. Each stage is the max of
    /// its compute-roofline and bandwidth-roofline time — the breakdown the
    /// paper profiles in Figure 3 (second row).
    pub fn stage_times_s(&self, workload: &WorkloadModel, batch: usize) -> [f64; 6] {
        let batch = batch.max(1) as f64;
        let flops_avail = self.peak_flops * self.compute_efficiency;
        let bw_avail = self.peak_bandwidth * self.bandwidth_efficiency;

        let dim = workload.dim as f64;
        let m = workload.m as f64;
        let ksub = workload.ksub as f64;
        let nlist = workload.nlist as f64;
        let scanned = workload.expected_scanned_codes;
        let k = workload.k as f64;

        // Stage OPQ: dim × dim MACs per query (compute bound).
        let opq = if workload.opq {
            batch * dim * dim * 2.0 / flops_avail
        } else {
            0.0
        };
        // Stage IVFDist: nlist distances of dim dims, streaming the centroid table.
        let ivf_flops = batch * nlist * dim * 2.0;
        let ivf_bytes = nlist * dim * 4.0 + batch * nlist * 4.0;
        let ivf = (ivf_flops / flops_avail).max(ivf_bytes / bw_avail);
        // Stage SelCells: selecting nprobe of nlist (cheap bitonic pass).
        let selcells = batch * nlist * (workload.nprobe as f64).log2().max(1.0) / flops_avail;
        // Stage BuildLUT: m × ksub sub-distances of dsub dims.
        let dsub = dim / m.max(1.0);
        let lut = batch * m * ksub * dsub * 2.0 / flops_avail;
        // Stage PQDist: table lookups — memory bound on the code stream.
        let pq = (batch * scanned * m / flops_avail).max(batch * scanned * m / bw_avail);
        // Stage SelK: k-selection over the scanned candidates; Faiss-GPU's
        // WarpSelect cost grows with K.
        let selk = batch * scanned * (k.log2() + 1.0) * 4.0 / flops_avail;

        [opq, ivf, selcells, lut, pq, selk]
    }

    /// Time (s) for the GPU to process one *batch* of `batch` queries of the
    /// given workload: per-stage roofline times plus kernel-launch overhead.
    pub fn batch_time_s(&self, workload: &WorkloadModel, batch: usize) -> f64 {
        let stages: f64 = self.stage_times_s(workload, batch).iter().sum();
        stages + self.kernel_launch_s * self.kernels_per_batch as f64
    }

    /// Batched throughput in queries per second (Figure 10 methodology,
    /// batch = 10 000 in the paper).
    pub fn batch_qps(&self, workload: &WorkloadModel, batch: usize) -> f64 {
        batch as f64 / self.batch_time_s(workload, batch)
    }

    /// Generates a seeded online-latency distribution (µs) for `n` queries
    /// (Figure 11 methodology: one query at a time).
    pub fn online_latency_distribution(
        &self,
        workload: &WorkloadModel,
        n: usize,
        seed: u64,
    ) -> LatencyDistribution {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base_s = self.batch_time_s(workload, 1) + self.online_overhead_s;
        let samples: Vec<f64> = (0..n.max(1))
            .map(|_| {
                // Scheduling jitter: ±20 % uniform noise around the base, and
                // with probability `tail_probability` the query lands behind a
                // competing batch and pays the tail multiplier.
                let jitter = 1.0 + rng.gen_range(-0.2..0.2);
                let tail = if rng.gen::<f64>() < self.tail_probability {
                    // Tail queries wait behind competing batches; the wait is
                    // modelled as exponential (unbounded spread), which is
                    // what makes the max over N accelerators keep growing.
                    let e = -(1.0 - rng.gen::<f64>()).ln();
                    self.tail_multiplier * (0.5 + e)
                } else {
                    1.0
                };
                base_s * jitter * tail * 1e6
            })
            .collect();
        LatencyDistribution::new(samples)
    }
}

/// A complete GPU "measurement" for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuRunReport {
    /// Batched throughput (QPS).
    pub batch_qps: f64,
    /// Online latency distribution (µs).
    pub latency: LatencyDistribution,
}

impl GpuRunReport {
    /// Runs the model for a workload.
    pub fn measure(
        model: &GpuModel,
        workload: &WorkloadModel,
        batch: usize,
        queries: usize,
        seed: u64,
    ) -> Self {
        Self {
            batch_qps: model.batch_qps(workload, batch),
            latency: model.online_latency_distribution(workload, queries, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_ivf::params::IvfPqParams;

    fn workload(nlist: usize, nprobe: usize, k: usize) -> WorkloadModel {
        let params = IvfPqParams::new(nlist, nprobe, k);
        WorkloadModel::analytic(128, 16, 256, 100_000_000, &params)
    }

    #[test]
    fn batch_qps_is_in_a_plausible_range_for_sift100m() {
        // Faiss on a V100 reaches tens of thousands of QPS on SIFT100M at
        // moderate nprobe; the model should land in that order of magnitude.
        let qps = GpuModel::v100().batch_qps(&workload(8192, 16, 10), 10_000);
        assert!(
            qps > 10_000.0 && qps < 1_000_000.0,
            "GPU QPS {qps} implausible"
        );
    }

    #[test]
    fn throughput_drops_with_more_probed_cells() {
        let model = GpuModel::v100();
        let few = model.batch_qps(&workload(8192, 4, 10), 10_000);
        let many = model.batch_qps(&workload(8192, 64, 10), 10_000);
        assert!(many < few);
    }

    #[test]
    fn batching_amortises_launch_overhead() {
        let model = GpuModel::v100();
        let w = workload(8192, 16, 10);
        let single = model.batch_qps(&w, 1);
        let batched = model.batch_qps(&w, 10_000);
        assert!(batched > single * 2.0);
    }

    #[test]
    fn online_latency_has_a_heavy_tail() {
        let model = GpuModel::v100();
        let dist = model.online_latency_distribution(&workload(8192, 16, 10), 5_000, 7);
        assert!(
            dist.tail_ratio() > 2.0,
            "GPU tail ratio {}",
            dist.tail_ratio()
        );
    }

    #[test]
    fn latency_sampling_is_deterministic_per_seed() {
        let model = GpuModel::v100();
        let w = workload(8192, 16, 10);
        let a = model.online_latency_distribution(&w, 100, 3);
        let b = model.online_latency_distribution(&w, 100, 3);
        assert_eq!(a, b);
        let c = model.online_latency_distribution(&w, 100, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn larger_k_reduces_gpu_throughput() {
        let model = GpuModel::v100();
        let k1 = model.batch_qps(&workload(8192, 16, 1), 10_000);
        let k100 = model.batch_qps(&workload(8192, 16, 100), 10_000);
        assert!(k100 < k1);
    }
}
