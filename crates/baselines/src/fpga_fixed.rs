//! The parameter-independent ("fixed") FPGA baseline.
//!
//! §7.2.3's baseline accelerators are built from the same hardware building
//! blocks as the FANNS designs but without parameter awareness. This module
//! wires the design returned by [`fanns_dse::baseline_designs`] to the
//! simulator so the baseline can be "measured" the same way as a generated
//! accelerator — the comparison behind the 1.3–23× speedups of Figure 10.

use fanns_dataset::types::QuerySet;
use fanns_dse::baseline_designs::baseline_design_for_k;
use fanns_hwsim::accelerator::{Accelerator, AcceleratorError, SimulationReport};
use fanns_ivf::index::IvfPqIndex;
use fanns_ivf::params::IvfPqParams;

/// Simulates the fixed FPGA baseline for `k` on the given index/queries.
pub fn measure_fixed_fpga(
    index: &IvfPqIndex,
    params: IvfPqParams,
    queries: &QuerySet,
    freq_mhz: f64,
) -> Result<SimulationReport, AcceleratorError> {
    let mut design = baseline_design_for_k(params.k, freq_mhz);
    // The baseline always instantiates an OPQ PE so it can serve OPQ indexes;
    // when the index has none the PE idles (see §7.2.3's design rationale).
    if !index.has_opq() {
        design.sizing.opq_pes = 1;
    }
    let accelerator = Accelerator::new(index, design, params)?;
    Ok(accelerator.simulate_batch(queries, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::synth::SyntheticSpec;
    use fanns_ivf::index::IvfPqTrainConfig;

    #[test]
    fn fixed_fpga_baseline_produces_a_report() {
        let (db, queries) = SyntheticSpec::sift_small(92).generate();
        let index = IvfPqIndex::build(
            &db,
            &IvfPqTrainConfig::new(16)
                .with_m(16)
                .with_ksub(32)
                .with_train_sample(1_000),
        );
        let report = measure_fixed_fpga(
            &index,
            IvfPqParams::new(16, 4, 10).with_m(16),
            &queries,
            140.0,
        )
        .unwrap();
        assert_eq!(report.queries, queries.len());
        assert!(report.qps > 0.0);
    }

    #[test]
    fn baseline_handles_all_three_k_values() {
        let (db, queries) = SyntheticSpec::sift_small(93).generate();
        let index = IvfPqIndex::build(
            &db,
            &IvfPqTrainConfig::new(16)
                .with_m(16)
                .with_ksub(32)
                .with_train_sample(1_000),
        );
        for k in [1, 10, 100] {
            let report = measure_fixed_fpga(
                &index,
                IvfPqParams::new(16, 4, k).with_m(16),
                &queries,
                140.0,
            )
            .unwrap();
            assert!(report.qps > 0.0, "K={k} baseline failed");
        }
    }
}
