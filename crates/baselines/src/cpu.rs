//! CPU baseline helpers.
//!
//! The measured CPU baseline itself lives in [`fanns_ivf::baseline_cpu`]
//! (it is part of the algorithm substrate). This module adds the adapter the
//! scale-out and latency experiments need: turning a measured per-query
//! latency report into a [`LatencyDistribution`] that can be fed to the
//! cluster simulator alongside the FPGA and GPU distributions.

use fanns_dataset::types::QuerySet;
use fanns_ivf::baseline_cpu::CpuSearcher;
use fanns_ivf::index::IvfPqIndex;
use fanns_ivf::params::IvfPqParams;
use fanns_scaleout::latency::LatencyDistribution;

/// Measures the single-node, online-mode CPU latency distribution for an
/// index/parameter combination (Figure 11's CPU curve).
pub fn cpu_latency_distribution(
    index: &IvfPqIndex,
    params: IvfPqParams,
    queries: &QuerySet,
) -> LatencyDistribution {
    let searcher = CpuSearcher::new(index, params);
    let (_, report) = searcher.measure_latency(queries);
    LatencyDistribution::new(report.latencies_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::synth::SyntheticSpec;
    use fanns_ivf::index::IvfPqTrainConfig;

    #[test]
    fn cpu_latency_distribution_has_one_sample_per_query() {
        let (db, queries) = SyntheticSpec::sift_small(91).generate();
        let index = IvfPqIndex::build(
            &db,
            &IvfPqTrainConfig::new(16)
                .with_m(16)
                .with_ksub(32)
                .with_train_sample(1_000),
        );
        let dist =
            cpu_latency_distribution(&index, IvfPqParams::new(16, 4, 10).with_m(16), &queries);
        assert_eq!(dist.len(), queries.len());
        assert!(dist.median() > 0.0);
    }
}
