//! Cached-serving sweep: Zipf skew θ × result-cache capacity × offered QPS
//! over a CPU IVF-PQ backend (with its centroid/LUT cache) behind the
//! `QueryEngine` and its query-result cache, one JSON row per configuration.
//!
//! ```sh
//! FANNS_SCALE=small cargo run --release --bin serve_cache
//! ```
//!
//! Real serving traffic is Zipf-skewed — repeated and near-duplicate queries
//! dominate — so a result cache in front of the engine converts the hot set
//! into sub-microsecond completions that consume no backend capacity and no
//! deadline budget. The sweep drives an open-loop Poisson arrival process
//! whose query choice follows Zipf(θ) over a fixed finite pool, and reports
//! the cache's hit rate plus the hit-path vs. backend-path latency split.
//! Two properties are asserted after the grid (the acceptance criteria of
//! the caching work):
//!
//! * at fixed capacity and offered load, the hit rate is monotonically
//!   non-decreasing in θ (more skew → more reuse), and
//! * cache-hit p50 latency is at least 10× below cache-miss p50.
//!
//! `capacity = 0` rows run the identical workload with caching disabled —
//! the baseline the cached rows are compared against.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use fanns_bench::baseline;
use fanns_bench::{print_header, Scale};
use fanns_dataset::synth::SyntheticSpec;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_serve::loadgen::{run_open_loop, OpenLoopConfig};
use fanns_serve::{
    BatchPolicy, CpuBackend, EngineConfig, QueryEngine, QueryResultCache, ResultCacheConfig,
};

/// One sweep point, printed as a JSON row.
#[derive(Debug, Serialize)]
struct SweepRow {
    backend: String,
    /// Zipf skew of the offered query stream (0 = uniform over the pool).
    theta: f64,
    /// Result-cache capacity in entries (0 = caching disabled).
    capacity: usize,
    /// Distinct queries in the pool the generator resamples from.
    query_pool: usize,
    target_qps: f64,
    offered_qps: f64,
    /// Completed-query throughput (hits + backend completions).
    qps: f64,
    /// In-SLO throughput.
    goodput_qps: f64,
    slo_us: f64,
    /// Completed queries (cache hits included).
    queries: u64,
    /// Result-cache hits observed by the engine (0 when disabled).
    hits: u64,
    /// Result-cache misses observed by the engine.
    misses: u64,
    /// `hits / (hits + misses)`; 0 when the cache is disabled.
    hit_rate: f64,
    /// Median latency of cache-hit completions (µs); `null` when disabled.
    hit_p50_us: Option<f64>,
    /// Median latency of backend-path completions (µs) — the cache-miss p50.
    miss_p50_us: f64,
    /// 99th-percentile backend-path latency (µs).
    p99_us: f64,
    /// LRU evictions over the run.
    evictions: u64,
    /// Entries written over the run.
    insertions: u64,
    /// Hit rate of the backend-internal centroid/LUT cache.
    lut_hit_rate: f64,
    /// Probe count of the hottest IVF cell over the run.
    hottest_cell_probes: u64,
    rejected: u64,
}

fn main() {
    let scale = Scale::from_env();
    print_header(
        "serve_cache",
        "cached serving sweep: Zipf theta x cache capacity x offered load (open loop)",
    );

    // A fixed 256-query pool regardless of scale: capacities below stay
    // strictly smaller than the pool, so hit rate is a real function of
    // skew and eviction rather than trivially saturating at 100 %.
    let query_pool = 256usize;
    let (database, queries) = SyntheticSpec::sift_medium(4242)
        .with_vectors(scale.num_vectors().min(50_000))
        .with_queries(query_pool)
        .generate();
    println!(
        "dataset: {} vectors x {} dims, {} distinct queries, scale {:?}",
        database.len(),
        database.dim(),
        queries.len(),
        scale
    );

    let nlist = 64usize;
    let params = IvfPqParams::new(nlist, 8, 10).with_m(16);
    let train = IvfPqTrainConfig::new(nlist)
        .with_m(16)
        .with_ksub(64)
        .with_train_sample(30_000)
        .with_seed(7);
    let index = IvfPqIndex::build(&database, &train);

    let thetas = [0.0f64, 0.6, 1.0, 1.4];
    let capacities = [0usize, 32, 128];
    let target_qps_grid = [2_000.0f64, 8_000.0];
    let slo_us = 10_000.0;
    let num_queries = match scale {
        Scale::Small => 2_000,
        Scale::Medium => 8_000,
        Scale::Large => 16_000,
    };

    // hit rates per (capacity, qps) in theta order, for the monotonicity
    // check; hit/miss p50 pairs for the latency-split check.
    let mut hit_rate_curves: HashMap<(usize, u64), Vec<f64>> = HashMap::new();
    let mut latency_splits: Vec<(f64, f64)> = Vec::new();
    let mut canonical: BTreeMap<String, f64> = BTreeMap::new();

    for &capacity in &capacities {
        for &target_qps in &target_qps_grid {
            for &theta in &thetas {
                // Fresh backend-side LUT cache and result cache per run so
                // counters, occupancy and hot-cell histograms start clean.
                let backend =
                    CpuBackend::new(index.clone(), params).with_centroid_cache(query_pool);
                let lut_stats_src = Arc::new(backend);
                let result_cache = (capacity > 0)
                    .then(|| Arc::new(QueryResultCache::new(ResultCacheConfig::new(capacity))));

                let engine = QueryEngine::start_with_cache(
                    Arc::clone(&lut_stats_src) as Arc<dyn fanns_serve::SearchBackend>,
                    EngineConfig::new(BatchPolicy::new(32, Duration::from_micros(500)))
                        .with_workers(2)
                        .with_queue_depth(4_096)
                        .with_slo_us(slo_us),
                    result_cache.clone(),
                );
                let outcome = run_open_loop(
                    &engine,
                    &queries,
                    OpenLoopConfig::new(target_qps, num_queries)
                        .with_seed(0x5EED_CAFE)
                        .with_zipf(theta),
                );
                let report = engine.shutdown();

                let lut_stats = lut_stats_src
                    .centroid_cache()
                    .expect("lut cache enabled")
                    .stats();
                let hottest = lut_stats_src
                    .centroid_cache()
                    .expect("lut cache enabled")
                    .hot_cells(1)
                    .first()
                    .map(|&(_, n)| n)
                    .unwrap_or(0);
                let cache = report.cache.as_ref();
                let row = SweepRow {
                    backend: report.backend.clone(),
                    theta,
                    capacity,
                    query_pool,
                    target_qps,
                    offered_qps: outcome.offered_qps,
                    qps: report.qps,
                    goodput_qps: report.goodput_qps,
                    slo_us,
                    queries: report.queries,
                    hits: cache.map(|c| c.hits).unwrap_or(0),
                    misses: cache.map(|c| c.misses).unwrap_or(0),
                    hit_rate: cache.map(|c| c.hit_rate).unwrap_or(0.0),
                    hit_p50_us: cache.map(|c| c.hit_p50_us),
                    miss_p50_us: report.p50_us,
                    p99_us: report.p99_us,
                    evictions: cache.map(|c| c.evictions).unwrap_or(0),
                    insertions: cache.map(|c| c.insertions).unwrap_or(0),
                    lut_hit_rate: lut_stats.hit_rate(),
                    hottest_cell_probes: hottest,
                    rejected: report.rejected,
                };
                println!(
                    "{}",
                    serde_json::to_string(&row).expect("sweep row serialises")
                );
                let point = format!("cap{capacity}_qps{target_qps:.0}_theta{theta:.1}");
                canonical.insert(format!("{point}_hit_rate"), row.hit_rate);
                canonical.insert(format!("{point}_miss_p50_us"), row.miss_p50_us);

                if capacity > 0 {
                    hit_rate_curves
                        .entry((capacity, target_qps as u64))
                        .or_default()
                        .push(row.hit_rate);
                    if let Some(hit_p50) = row.hit_p50_us {
                        if row.hits > 0 {
                            latency_splits.push((hit_p50, row.miss_p50_us));
                        }
                    }
                }
            }
        }
    }

    // Acceptance checks over the grid (see the module docs).
    for ((capacity, qps), curve) in &hit_rate_curves {
        for pair in curve.windows(2) {
            assert!(
                pair[1] >= pair[0] - 0.02,
                "hit rate must be monotone in theta at capacity {capacity}, {qps} QPS: {curve:?}"
            );
        }
        assert!(
            curve.last().unwrap() > curve.first().unwrap(),
            "skew must raise the hit rate at capacity {capacity}, {qps} QPS: {curve:?}"
        );
    }
    for &(hit_p50, miss_p50) in &latency_splits {
        assert!(
            hit_p50 * 10.0 <= miss_p50,
            "cache-hit p50 {hit_p50:.2} us must be >= 10x below miss p50 {miss_p50:.2} us"
        );
    }
    let out = baseline::update_section(&baseline::bench_out_path(), "serve_cache", &canonical);
    eprintln!(
        "serve_cache: wrote {} metrics to {}",
        canonical.len(),
        out.display()
    );
    eprintln!(
        "serve_cache OK: hit rate monotone in theta on {} curves; hit p50 >= 10x below miss p50 on {} rows",
        hit_rate_curves.len(),
        latency_splits.len()
    );
}
