//! End-to-end query tracing under Zipf replay: overhead guardrail, Chrome
//! trace export, telemetry time-series, and critical-path attribution.
//!
//! ```sh
//! FANNS_SCALE=small cargo run --release --bin serve_trace
//! ```
//!
//! Drives the `QueryEngine` (CPU IVF-PQ backend, no result cache, so every
//! query walks the full pipeline) with an open-loop Zipf(1.0) arrival
//! process, twice per mode in alternation — untraced, traced, untraced,
//! traced — and then:
//!
//! 1. **Overhead guardrail.** Compares the best (minimum) untraced p50
//!    against the best traced p50 at the default 1-in-8 sampling rate and
//!    asserts `traced_p50 <= untraced_p50 * 1.05 + 25 us` — the ≤ 5 %
//!    (plus a fixed jitter floor for sub-millisecond medians) budget
//!    documented in `docs/OBSERVABILITY.md`. CI runs this binary at small
//!    scale, so a tracing hot-path regression fails the build.
//! 2. **Chrome trace export.** Writes the final traced run's retained span
//!    events as a Chrome trace-event JSON (`trace.json`) — open it at
//!    `chrome://tracing` or <https://ui.perfetto.dev>.
//! 3. **Time-series export.** A sampler thread snapshots the registry every
//!    200 ms during the traced runs; the rows land in `timeseries.jsonl`,
//!    one cumulative `TelemetrySnapshot` per line.
//! 4. **Schema validation.** Both files are re-parsed and structurally
//!    checked (trace: `traceEvents` array with `name`/`ph`/`ts`/`pid`/`tid`
//!    per event; JSONL: `t_s`/`events`/`stages` per row) — export bugs fail
//!    the run, not the downstream viewer.
//! 5. **Critical-path analysis.** Prints the per-stage attribution table
//!    (the live-path Fig. 3 analogue), the dominant-stage census and the
//!    slowest query's breakdown, and asserts the stage sums reconcile with
//!    measured wall latency to within ±5 %.
//!
//! Outputs land in `target/serve_trace/` (override with `FANNS_TRACE_DIR`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fanns_bench::{print_header, Scale};
use fanns_dataset::synth::SyntheticSpec;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_serve::loadgen::{run_open_loop, OpenLoopConfig};
use fanns_serve::{
    analyze_critical_paths, chrome_trace_json, BatchPolicy, CpuBackend, EngineConfig, QueryEngine,
    ServeReport, TelemetryConfig, TelemetryRegistry,
};
use serde::Value;

/// Documented overhead bound: traced p50 may exceed untraced p50 by at most
/// this relative factor...
const OVERHEAD_REL: f64 = 0.05;
/// ...plus this absolute jitter floor (µs), so sub-millisecond medians are
/// not gated on scheduler noise smaller than a timeslice.
const OVERHEAD_ABS_US: f64 = 25.0;

struct RunOutput {
    report: ServeReport,
    registry: Option<Arc<TelemetryRegistry>>,
    timeseries: Vec<String>,
    completed: usize,
}

fn run_once(
    index: &IvfPqIndex,
    params: IvfPqParams,
    queries: &fanns_dataset::types::QuerySet,
    target_qps: f64,
    num_queries: usize,
    traced: bool,
) -> RunOutput {
    let registry = traced.then(|| Arc::new(TelemetryRegistry::new(TelemetryConfig::new())));
    let mut backend = CpuBackend::new(index.clone(), params);
    if let Some(reg) = &registry {
        backend = backend.with_telemetry(reg.sink());
    }
    let engine = QueryEngine::start_with_telemetry(
        Arc::new(backend),
        EngineConfig::new(BatchPolicy::new(32, Duration::from_micros(500)))
            .with_workers(2)
            .with_queue_depth(8_192),
        None,
        registry.clone(),
    );

    // The sampler owns only the registry handle: it drains rings and emits
    // one cumulative JSONL row every 200 ms while the run is in flight.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = registry.as_ref().map(|reg| {
        let reg = Arc::clone(reg);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rows = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(200));
                let snap = reg.snapshot();
                rows.push(serde_json::to_string(&snap).expect("snapshot serialises"));
            }
            rows
        })
    });

    let outcome = run_open_loop(
        &engine,
        queries,
        OpenLoopConfig::new(target_qps, num_queries)
            .with_seed(0xC0FF_EE00)
            .with_zipf(1.0),
    );
    let report = engine.shutdown();
    stop.store(true, Ordering::Relaxed);
    let timeseries = sampler
        .map(|h| h.join().expect("sampler joins"))
        .unwrap_or_default();

    RunOutput {
        report,
        registry,
        timeseries,
        completed: outcome.completed,
    }
}

/// Structural check of the Chrome trace-event document.
fn validate_chrome_trace(text: &str) -> usize {
    let doc = serde_json::parse(text).expect("trace.json parses as JSON");
    let events = doc
        .get("traceEvents")
        .expect("trace.json has a traceEvents key");
    let Value::Seq(items) = events else {
        panic!("traceEvents must be an array");
    };
    assert!(!items.is_empty(), "traceEvents must not be empty");
    for item in items {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(
                item.get(key).is_some(),
                "trace event missing required key `{key}`"
            );
        }
    }
    items.len()
}

/// Structural check of the JSONL time-series rows.
fn validate_timeseries(rows: &[String]) {
    for row in rows {
        let doc = serde_json::parse(row).expect("timeseries row parses as JSON");
        for key in ["t_s", "events", "dropped", "queue_depth", "stages"] {
            assert!(
                doc.get(key).is_some(),
                "timeseries row missing required key `{key}`"
            );
        }
    }
}

fn trace_dir() -> PathBuf {
    match std::env::var("FANNS_TRACE_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/serve_trace"),
    }
}

fn main() {
    let scale = Scale::from_env();
    print_header(
        "serve_trace",
        "end-to-end tracing: overhead guardrail, Chrome trace, time-series, critical path",
    );

    // ≥ 10k completed queries even at small scale — the trace must cover a
    // statistically meaningful Zipf replay, not a toy burst.
    let (target_qps, num_queries) = match scale {
        Scale::Small => (2_500.0, 12_000),
        Scale::Medium => (4_000.0, 20_000),
        Scale::Large => (6_000.0, 40_000),
    };
    let (database, queries) = SyntheticSpec::sift_medium(777)
        .with_vectors(scale.num_vectors().min(50_000))
        .with_queries(512)
        .generate();
    println!(
        "dataset: {} vectors x {} dims, {} distinct queries, scale {:?}",
        database.len(),
        database.dim(),
        queries.len(),
        scale
    );
    println!(
        "replay: {num_queries} queries, Zipf(1.0) over {} distinct, {target_qps:.0} QPS offered",
        queries.len()
    );

    let nlist = 64usize;
    let params = IvfPqParams::new(nlist, 8, 10).with_m(16);
    let train = IvfPqTrainConfig::new(nlist)
        .with_m(16)
        .with_ksub(64)
        .with_train_sample(30_000)
        .with_seed(7);
    let index = IvfPqIndex::build(&database, &train);

    // Interleave untraced/traced runs so drift (thermal, page cache) hits
    // both modes evenly; score each mode by its best run.
    let mut untraced_p50 = f64::INFINITY;
    let mut traced_p50 = f64::INFINITY;
    let mut last_traced: Option<RunOutput> = None;
    for round in 0..2 {
        let off = run_once(&index, params, &queries, target_qps, num_queries, false);
        untraced_p50 = untraced_p50.min(off.report.p50_us);
        println!(
            "round {round} untraced: p50 {:.1} us, p99 {:.1} us, {} completed",
            off.report.p50_us, off.report.p99_us, off.completed
        );
        let on = run_once(&index, params, &queries, target_qps, num_queries, true);
        traced_p50 = traced_p50.min(on.report.p50_us);
        println!(
            "round {round} traced:   p50 {:.1} us, p99 {:.1} us, {} completed",
            on.report.p50_us, on.report.p99_us, on.completed
        );
        last_traced = Some(on);
    }
    let traced_run = last_traced.expect("at least one traced run");

    // 1. Overhead guardrail (the CI gate).
    let bound = untraced_p50 * (1.0 + OVERHEAD_REL) + OVERHEAD_ABS_US;
    println!(
        "overhead: untraced p50 {untraced_p50:.1} us, traced p50 {traced_p50:.1} us, bound {bound:.1} us"
    );
    assert!(
        traced_p50 <= bound,
        "tracing overhead exceeds budget: traced p50 {traced_p50:.1} us > \
         untraced p50 {untraced_p50:.1} us * {:.2} + {OVERHEAD_ABS_US} us",
        1.0 + OVERHEAD_REL
    );

    // 2.–4. Exports and schema validation from the final traced run.
    let registry = traced_run
        .registry
        .as_ref()
        .expect("traced run has registry");
    let events = registry.events();
    assert!(!events.is_empty(), "traced run must retain span events");
    let dir = trace_dir();
    std::fs::create_dir_all(&dir).expect("create trace output dir");

    let trace_path = dir.join("trace.json");
    let trace_text = chrome_trace_json(&events);
    std::fs::write(&trace_path, &trace_text).expect("write trace.json");
    let trace_events = validate_chrome_trace(&trace_text);

    let ts_path = dir.join("timeseries.jsonl");
    assert!(
        !traced_run.timeseries.is_empty(),
        "sampler must emit at least one snapshot"
    );
    validate_timeseries(&traced_run.timeseries);
    std::fs::write(&ts_path, traced_run.timeseries.join("\n") + "\n")
        .expect("write timeseries.jsonl");
    println!(
        "exports: {} ({trace_events} events), {} ({} rows) — both schema-validated",
        trace_path.display(),
        ts_path.display(),
        traced_run.timeseries.len()
    );

    // 5. Stage attribution and per-query critical paths.
    let stages = traced_run
        .report
        .stages
        .as_ref()
        .expect("traced report carries the stage breakdown");
    println!("\n{}\n", stages.table());
    let critical = analyze_critical_paths(&events);
    println!("{}\n", critical.summary_table());

    assert!(
        traced_run.completed >= num_queries.min(10_000),
        "traced run completed only {} of {num_queries} queries",
        traced_run.completed
    );
    assert!(
        stages.sampled_queries > 0,
        "stage report saw no sampled queries"
    );
    assert!(
        (0.95..=1.05).contains(&stages.reconciliation),
        "stage sums must reconcile with wall latency: reconciliation {:.3}",
        stages.reconciliation
    );

    eprintln!(
        "serve_trace OK: overhead within {:.0}%+{OVERHEAD_ABS_US}us budget, \
         {trace_events} trace events, {} snapshots, reconciliation {:.3}",
        OVERHEAD_REL * 100.0,
        traced_run.timeseries.len(),
        stages.reconciliation
    );
}
