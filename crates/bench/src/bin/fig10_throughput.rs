//! Figure 10: offline batch throughput — FANNS vs the CPU, fixed-FPGA and GPU
//! baselines, on both datasets and three recall goals.
//!
//! The paper's shape to reproduce: the co-designed accelerator beats the
//! parameter-independent FPGA baseline (1.3–23×) and usually the CPU (up to
//! 37×, except at K=100), while the GPU model keeps a raw-throughput lead.

use fanns::framework::{Fanns, FannsRequest};
use fanns_baselines::fpga_fixed::measure_fixed_fpga;
use fanns_baselines::gpu::GpuModel;
use fanns_bench::{deep_workload, print_header, sift_workload, Scale, Workload};
use fanns_ivf::baseline_cpu::CpuSearcher;
use fanns_perfmodel::qps::WorkloadModel;

fn run_dataset(workload: &Workload, scale: Scale) {
    println!(
        "\n### dataset: {} ({} vectors) ###",
        workload.name,
        workload.database.len()
    );
    // Recall goals per K, scaled down from the paper's SIFT100M goals.
    let goals = [(1usize, 0.20), (10, 0.60), (100, 0.90)];
    println!(
        "{:<22} {:>14} {:>14} {:>14} {:>14}",
        "recall goal", "CPU QPS", "FPGA-base QPS", "FANNS QPS", "GPU-model QPS"
    );

    for (k, goal) in goals {
        let mut request = FannsRequest::recall_goal(k, goal);
        request.explorer.nlist_grid = scale.nlist_grid();
        let generated = match Fanns::new(request).run(&workload.database, &workload.queries) {
            Ok(g) => g,
            Err(e) => {
                println!(
                    "{:<22} co-design failed: {e}",
                    format!("R@{k}={:.0}%", goal * 100.0)
                );
                continue;
            }
        };
        let params = generated.choice.params;

        // CPU baseline: measured batch throughput with the same index/params.
        let searcher = CpuSearcher::new(&generated.index, params);
        let (_, cpu_report) = searcher.measure_throughput(&workload.queries);

        // Fixed-FPGA baseline: simulated with the same index/params.
        let fpga_base = measure_fixed_fpga(&generated.index, params, &workload.queries, 140.0)
            .map(|r| r.qps)
            .unwrap_or(0.0);

        // FANNS accelerator: simulated on the generated design.
        let fanns_report = generated.simulate(&workload.queries);

        // GPU baseline: analytic model on the same workload.
        let gpu_qps = GpuModel::v100().batch_qps(
            &WorkloadModel::from_index(&generated.index, &params),
            10_000,
        );

        let row_label = format!(
            "R@{k}={:.0}% ({})",
            goal * 100.0,
            generated.choice.index_label
        );
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            row_label, cpu_report.qps, fpga_base, fanns_report.qps, gpu_qps
        );
        let speedup = format!(
            "speedup vs base {:.1}x",
            fanns_report.qps / fpga_base.max(1e-9)
        );
        let accuracy = format!(
            "{:.0}%",
            100.0 * fanns_report.qps / generated.choice.prediction.qps.max(1e-9)
        );
        println!(
            "{:<22} {:>14} {:>14} {:>14} predicted={:.0} ({} of simulated)",
            "", "", "", speedup, generated.choice.prediction.qps, accuracy
        );
    }
}

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Figure 10",
        "offline batch throughput: FANNS vs CPU / fixed-FPGA / GPU-model baselines",
    );
    let sift = sift_workload(scale);
    run_dataset(&sift, scale);
    let deep = deep_workload(scale);
    run_dataset(&deep, scale);
    println!("\nExpected shape (paper): FANNS ≥ fixed-FPGA baseline everywhere (up to ~23x), beats CPU except possibly at K=100, GPU retains a raw-throughput lead (5–22x).");
}
