//! Online-serving throughput sweep: batch-size x shard-count grid over the
//! CPU IVF-PQ backend behind the `fanns-serve` QueryEngine, one JSON row per
//! configuration (machine-greppable, like the figure binaries).
//!
//! ```sh
//! FANNS_SCALE=small cargo run --release --bin serve_throughput
//! ```
//!
//! Sweeps show the two serving levers the paper's deployment story turns on:
//! batching trades latency for throughput, sharding trades replica count for
//! per-query fan-out cost. Wall percentiles (`p50_us` …) are host-measured
//! on co-located replicas; the *modeled* distributed latency — slowest
//! shard's service time plus the LogGP scatter/gather cost — is reported
//! separately as `modeled_p50_us` / `modeled_p99_us`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use fanns_bench::baseline;
use fanns_bench::{print_header, sift_workload, Scale};
use fanns_ivf::index::IvfPqTrainConfig;
use fanns_ivf::params::IvfPqParams;
use fanns_scaleout::loggp::LogGpParams;
use fanns_serve::loadgen::run_closed_loop;
use fanns_serve::{shard_cpu_backends, BatchPolicy, EngineConfig, QueryEngine, SearchBackend};

/// One sweep point, printed as a JSON row.
#[derive(Debug, Serialize)]
struct SweepRow {
    backend: String,
    shards: usize,
    max_batch_size: usize,
    max_wait_us: u64,
    workers: usize,
    network_us_per_query: f64,
    queries: u64,
    qps: f64,
    mean_batch_size: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_queue_us: f64,
    /// Modeled distributed latency (slowest shard + LogGP), when sharded.
    modeled_p50_us: Option<f64>,
    modeled_p99_us: Option<f64>,
}

fn main() {
    let scale = Scale::from_env();
    let workload = sift_workload(scale);
    print_header(
        "serve_throughput",
        "online serving sweep: dynamic batch size x shard count (closed loop)",
    );
    println!(
        "dataset: {} vectors x {} dims, {} distinct queries, scale {:?}",
        workload.database.len(),
        workload.database.dim(),
        workload.queries.len(),
        scale
    );

    let nlist = scale.default_nlist();
    let params = IvfPqParams::new(nlist, 8, 10).with_m(16);
    let train = IvfPqTrainConfig::new(nlist)
        .with_m(16)
        .with_ksub(64)
        .with_train_sample(30_000)
        .with_seed(7);

    let shard_counts = [1usize, 2, 4];
    let batch_sizes = [1usize, 16, 64, 256];
    let num_queries = match scale {
        Scale::Small => 2_000,
        Scale::Medium => 10_000,
        Scale::Large => 20_000,
    };

    let mut canonical: BTreeMap<String, f64> = BTreeMap::new();
    for &shards in &shard_counts {
        // Each replica trains an index over its partition; queries fan out to
        // every replica and merge, paying the LogGP scatter/gather cost. The
        // backend is built once per shard count and shared across engines.
        let network = (shards > 1).then(LogGpParams::paper_infiniband);
        let backend = Arc::new(shard_cpu_backends(
            &workload.database,
            shards,
            &train,
            params,
            network,
        ));
        let network_us = backend.network_us_per_query();
        let backend_name = backend.name();

        for &max_batch in &batch_sizes {
            let policy = BatchPolicy::new(max_batch, Duration::from_micros(500));
            let config = EngineConfig::new(policy)
                .with_workers(2)
                .with_queue_depth(4_096);
            let engine = QueryEngine::start(backend.clone(), config);
            let concurrency = (max_batch * 2).clamp(8, 512);
            let outcome = run_closed_loop(&engine, &workload.queries, concurrency, num_queries);
            let report = engine.shutdown();
            let row = SweepRow {
                backend: backend_name.clone(),
                shards,
                max_batch_size: max_batch,
                max_wait_us: policy.max_wait.as_micros() as u64,
                workers: config.workers,
                network_us_per_query: network_us,
                queries: report.queries,
                qps: report.qps,
                mean_batch_size: report.mean_batch_size,
                p50_us: report.p50_us,
                p95_us: report.p95_us,
                p99_us: report.p99_us,
                mean_queue_us: report.mean_queue_us,
                modeled_p50_us: report.simulated_p50_us,
                modeled_p99_us: report.simulated_p99_us,
            };
            println!(
                "{}",
                serde_json::to_string(&row).expect("sweep row serialises")
            );
            canonical.insert(format!("s{shards}_b{max_batch}_qps"), row.qps);
            canonical.insert(format!("s{shards}_b{max_batch}_p50_us"), row.p50_us);
            debug_assert_eq!(outcome.completed as u64, report.queries);
        }
    }

    // Canonical baseline trajectory: one section of BENCH_serve.json, keyed
    // by sweep point, compared against by `bench_compare` (see
    // `fanns_bench::baseline`).
    let out = baseline::update_section(&baseline::bench_out_path(), "serve_throughput", &canonical);
    eprintln!(
        "serve_throughput: wrote {} metrics to {}",
        canonical.len(),
        out.display()
    );
}
