//! Cold-start sweep for the on-disk index format: build → save → `mmap`-open
//! → warm, with the open/build ratio gated and baselined.
//!
//! ```sh
//! FANNS_SCALE=small cargo run --release --bin load_index
//! ```
//!
//! The ROADMAP north-star for the storage work is restarts that cost
//! approximately nothing: a serving process should `mmap` a saved index and
//! answer its first query without retraining k-means or re-encoding the
//! database. This bench measures exactly that on the SIFT-scale synthetic
//! workload:
//!
//! 1. **build** — full in-memory training + population (the cost a restart
//!    pays *without* the storage layer),
//! 2. **write** — serialising the index to the versioned checksummed format,
//! 3. **open** — `mmap` + full checksum/alignment validation
//!    ([`fanns_ivf::storage::open_index`]) — the cold-start cost,
//! 4. **warm** — eager scan-slab rebuild ([`fanns_ivf::storage::MappedIndex::warm`]).
//!
//! After the sweep the mapped index must answer a probe batch bit-identically
//! to the heap index on every scan kernel, and the gate
//! `open < 5% of build` (override with `FANNS_LOAD_GATE`, a fraction) must
//! hold; both are hard process-exit failures. Metrics land in the
//! `load_index` section of `BENCH_serve.json` via the usual
//! read-modify-write ([`fanns_bench::baseline`]).

use std::collections::BTreeMap;
use std::time::Instant;

use fanns_bench::{baseline, build_index, print_header, sift_workload, Scale};
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::simd::ALL_KERNELS;
use fanns_ivf::storage::open_index;
use fanns_ivf::CpuSearcher;

fn main() {
    let scale = Scale::from_env();
    print_header(
        "load_index",
        "on-disk format cold start: build vs save/mmap-open/warm",
    );
    let workload = sift_workload(scale);
    let nlist = scale.default_nlist();

    // This bench *measures* the build; the figure-binary index cache would
    // short-circuit it and corrupt the open/build ratio.
    std::env::remove_var("FANNS_INDEX_DIR");

    let t_build = Instant::now();
    let index = build_index(&workload, nlist, false, 42);
    let build_s = t_build.elapsed().as_secs_f64();

    let dir = std::env::temp_dir().join(format!("fanns-load-index-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("sift.fanns");

    let t_write = Instant::now();
    let bytes = index.write_index(&path).expect("write index");
    let write_s = t_write.elapsed().as_secs_f64();

    let t_open = Instant::now();
    let mapped = open_index(&path).expect("open index");
    let open_s = t_open.elapsed().as_secs_f64();

    let t_warm = Instant::now();
    let slab_bytes = mapped.warm();
    let warm_s = t_warm.elapsed().as_secs_f64();

    println!(
        "n={} nlist={nlist} file={:.1} MiB slabs={:.1} MiB",
        workload.database.len(),
        bytes as f64 / (1024.0 * 1024.0),
        slab_bytes as f64 / (1024.0 * 1024.0),
    );
    println!(
        "build={:.3}s write={:.3}s open={:.6}s warm={:.6}s",
        build_s, write_s, open_s, warm_s
    );

    // Equivalence probe: the mapped index must return bit-identical results
    // on every kernel (the full battery lives in the test suites; this is
    // the bench's own sanity tripwire).
    let params = IvfPqParams::new(nlist, (nlist / 8).max(1), 10).with_m(16);
    let probes = workload.queries.len().min(16);
    for kernel in ALL_KERNELS {
        if !kernel.is_available() {
            continue;
        }
        let heap = CpuSearcher::new(&index, params).with_kernel(kernel);
        let disk = CpuSearcher::new(&mapped, params).with_kernel(kernel);
        for q in 0..probes {
            let query = workload.queries.get(q);
            assert_eq!(
                heap.search_one(query),
                disk.search_one(query),
                "mapped search diverged from heap search (kernel {kernel}, query {q})"
            );
        }
        println!("equivalence[{kernel}]: {probes} queries bit-identical");
    }

    // The acceptance gate: opening the saved index must cost a small
    // fraction of building it. 5% is the issue's criterion; FANNS_LOAD_GATE
    // loosens it for pathological hosts (e.g. cold page cache on NFS).
    let gate = std::env::var("FANNS_LOAD_GATE")
        .ok()
        .and_then(|raw| raw.parse::<f64>().ok())
        .filter(|g| g.is_finite() && *g > 0.0)
        .unwrap_or(0.05);
    let ratio = open_s / build_s.max(1e-12);
    println!(
        "cold-start ratio: open/build = {:.4} (gate {:.2})",
        ratio, gate
    );
    assert!(
        ratio < gate,
        "open_index took {ratio:.4}× the in-memory build (gate {gate:.2})"
    );

    let mut metrics = BTreeMap::new();
    metrics.insert("build_ms".to_string(), build_s * 1e3);
    metrics.insert("write_ms".to_string(), write_s * 1e3);
    metrics.insert("open_ms".to_string(), open_s * 1e3);
    metrics.insert("warm_ms".to_string(), warm_s * 1e3);
    metrics.insert("open_over_build_ratio".to_string(), ratio);
    metrics.insert("file_mib".to_string(), bytes as f64 / (1024.0 * 1024.0));
    metrics.insert(
        "slab_mib".to_string(),
        slab_bytes as f64 / (1024.0 * 1024.0),
    );
    metrics.insert("vectors".to_string(), workload.database.len() as f64);
    let out = baseline::update_section(&baseline::bench_out_path(), "load_index", &metrics);
    println!("baseline section `load_index` -> {}", out.display());

    drop(mapped);
    let _ = std::fs::remove_dir_all(&dir);
}
