//! Compares two `BENCH_serve.json` baselines and fails on regressions.
//!
//! ```sh
//! # After re-running the serving benches into a candidate file:
//! FANNS_BENCH_OUT=/tmp/BENCH_serve.new.json cargo run --release --bin serve_throughput
//! cargo run --release --bin bench_compare -- BENCH_serve.json /tmp/BENCH_serve.new.json
//! ```
//!
//! Walks every section the two files share, compares every shared metric
//! with the direction-aware tolerance from `fanns_bench::baseline`
//! (latencies `*_us` may not grow, everything else may not shrink, by more
//! than `FANNS_BENCH_TOL`, default ±35 %), prints each regression, and exits
//! non-zero when any is found. Metrics or sections present on only one side
//! are skipped — sweep grids are allowed to evolve.

use std::path::PathBuf;
use std::process::ExitCode;

use fanns_bench::baseline;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(baseline::bench_out_path);
    let candidate_path = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| baseline_path.clone());
    let tolerance = baseline::tolerance_from_env();

    let sections = baseline::sections(&baseline_path);
    if sections.is_empty() {
        eprintln!(
            "bench_compare: no sections in baseline {} (run serve_throughput / serve_cache first)",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }

    let (regressions, compared) = baseline::compare(&baseline_path, &candidate_path, tolerance);
    println!(
        "bench_compare: {} vs {} — {} shared metrics at ±{:.0}% tolerance",
        baseline_path.display(),
        candidate_path.display(),
        compared,
        tolerance * 100.0
    );
    if compared == 0 {
        eprintln!("bench_compare: the files share no metrics — nothing was checked");
        return ExitCode::FAILURE;
    }
    for regression in &regressions {
        println!("REGRESSION {regression}");
    }
    if regressions.is_empty() {
        println!("bench_compare OK: no regression across {compared} metrics");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_compare FAILED: {} regression(s)", regressions.len());
        ExitCode::FAILURE
    }
}
