//! Table 4: human-crafted (parameter-independent) vs FANNS-generated designs.
//!
//! For each recall goal (R@1, R@10, R@100 on the SIFT-like dataset) the
//! harness runs the full co-design workflow and prints, next to the baseline
//! design for the same K: the chosen index and nprobe, the per-stage PE
//! counts and LUT shares, and the predicted QPS — the structure of Table 4.

use fanns::framework::{Fanns, FannsRequest};
use fanns_bench::{print_header, sift_workload, Scale};
use fanns_dse::baseline_designs::baseline_design_for_k;
use fanns_dse::report::{design_table, DesignRow};
use fanns_perfmodel::device::FpgaDevice;
use fanns_perfmodel::resources::DesignContext;

fn main() {
    let scale = Scale::from_env();
    let workload = sift_workload(scale);
    let device = FpgaDevice::alveo_u55c();

    // Recall goals scaled to what the synthetic dataset + small indexes can
    // reach (the paper uses R@1=30%, R@10=80%, R@100=95% on SIFT100M).
    let goals = [(1usize, 0.20), (10, 0.60), (100, 0.90)];

    print_header(
        "Table 4",
        "baseline vs FANNS-generated designs per recall goal (SIFT-like dataset)",
    );

    let mut rows = Vec::new();
    for (k, goal) in goals {
        let ctx = DesignContext {
            dim: workload.database.dim(),
            m: 16,
            ksub: 256,
            nlist: scale.default_nlist(),
            nprobe: 16,
            k,
            with_network_stack: false,
        };
        rows.push(DesignRow::new(
            format!("K={k} (Baseline)"),
            "N/A",
            None,
            baseline_design_for_k(k, device.target_freq_mhz),
            &ctx,
            &device,
            None,
        ));

        let mut request = FannsRequest::recall_goal(k, goal);
        request.explorer.nlist_grid = scale.nlist_grid();
        match Fanns::new(request).run(&workload.database, &workload.queries) {
            Ok(generated) => {
                let params = generated.choice.params;
                let ctx = DesignContext {
                    nlist: params.nlist,
                    nprobe: params.effective_nprobe(),
                    ..ctx
                };
                rows.push(DesignRow::new(
                    format!("K={k} (FANNS)"),
                    generated.choice.index_label.clone(),
                    Some(params.nprobe),
                    generated.choice.design,
                    &ctx,
                    &device,
                    Some(generated.choice.prediction.qps),
                ));
                println!(
                    "[K={k}, goal R@{k}={:.0}%] {}",
                    goal * 100.0,
                    generated.summary()
                );
            }
            Err(e) => println!(
                "[K={k}, goal R@{k}={:.0}%] co-design failed: {e}",
                goal * 100.0
            ),
        }
    }

    println!("\n{}", design_table(&rows));
    println!("Expected shape (paper): FANNS picks a different index/nprobe per goal, SelK switches microarchitecture and its LUT share grows with K, predicted QPS drops as K grows.");
}
