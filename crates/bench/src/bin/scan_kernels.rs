//! ADC scan-kernel microbenchmark: kernel x nlist x m sweep over the slab
//! data plane, one JSON row per point (see README's "scan_kernels" schema).
//!
//! ```sh
//! FANNS_SCALE=small cargo run --release --bin scan_kernels
//! ```
//!
//! Two timed regions per sweep point, both downstream of identical
//! precomputed probe sets (OPQ, IVFDist, SelCells and the LUT build run
//! once per query, untimed):
//!
//! * **scan** — the distance computation alone (Stage PQDist): for the
//!   scalar reference, the per-code loop exactly as it shipped before the
//!   data plane (`stage_pq_dist`: `(id, f32)` tuple pushes into a per-query
//!   Vec, `lut.adc` one entry at a time); the slab kernel for the rest.
//!   This is the throughput the tentpole gate tests (`*_mcodes_per_s`,
//!   `*_gbps`, `*_speedup`).
//! * **fused** — the full scan+select stage the serving path executes
//!   (`stage_scan_and_select_with`, Stage PQDist + SelK), reported as
//!   `*_fused_mcodes_per_s` so the end-to-end win stays visible next to the
//!   kernel-only number.
//!
//! The binary asserts the tentpole target at the end: the best f32 SIMD
//! *scan* speedup must reach 4x (AVX2 hosts) or 1.5x (portable-only hosts)
//! over the scalar reference — override with `FANNS_SCAN_GATE` for exotic
//! hosts. The int8 first pass is reported on the same scale (its quantized
//! table is built once per query, untimed, exactly as a serving query pays
//! it once after BuildLUT).

use std::collections::BTreeMap;
use std::time::Instant;

use serde::Serialize;

use fanns_bench::baseline;
use fanns_bench::{print_header, sift_workload, Scale};
use fanns_dataset::types::QuerySet;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::search::{
    stage_build_lut, stage_ivf_dist, stage_opq, stage_scan_and_select_with, stage_sel_cells,
};
use fanns_ivf::simd::{avx2_available, int8, kernels, ScanKernel, ScanScratch, ALL_KERNELS};
use fanns_quantize::pq::{DistanceTable, QuantizedLut};

/// One sweep point, printed as a JSON row.
#[derive(Debug, Serialize)]
struct KernelRow {
    kernel: String,
    m: usize,
    nlist: usize,
    nprobe: usize,
    k: usize,
    queries: usize,
    reps: usize,
    /// Codes scanned per query (sum of probed list lengths).
    codes_per_query: f64,
    /// Scan-only throughput in millions of codes per second.
    mcodes_per_s: f64,
    /// Effective slab bandwidth in GB/s (codes x m bytes).
    scan_gbps: f64,
    /// Scan-only throughput relative to the scalar reference.
    speedup_vs_scalar: f64,
    /// Fused scan+select (Stage PQDist + SelK) throughput, Mcodes/s.
    fused_mcodes_per_s: f64,
}

/// Precomputed per-query scan inputs (everything upstream of PQDist).
struct PreparedQuery {
    cells: Vec<usize>,
    lut: DistanceTable,
    qlut: QuantizedLut,
}

fn prepare(index: &IvfPqIndex, queries: &QuerySet, nprobe: usize) -> Vec<PreparedQuery> {
    (0..queries.len())
        .map(|q| {
            let rotated = stage_opq(index, queries.get(q));
            let dists = stage_ivf_dist(index, &rotated);
            let cells = stage_sel_cells(&dists, nprobe);
            let lut = stage_build_lut(index, &rotated);
            let qlut = lut.quantize_i8();
            PreparedQuery { cells, lut, qlut }
        })
        .collect()
}

/// Total codes one pass over all prepared queries scans.
fn codes_per_pass(index: &IvfPqIndex, prepared: &[PreparedQuery]) -> usize {
    prepared
        .iter()
        .map(|p| p.cells.iter().map(|&c| index.slab(c).len()).sum::<usize>())
        .sum()
}

/// Times `reps` passes of the distance computation alone and returns the
/// *minimum* single-pass seconds — scheduler noise only ever adds time, so
/// min-of-reps is the robust throughput estimator on shared hosts.
/// The scalar reference walks the canonical row-major lists with `lut.adc`;
/// slab kernels scan the block-transposed slabs.
fn time_scan(
    index: &IvfPqIndex,
    prepared: &[PreparedQuery],
    kernel: ScanKernel,
    reps: usize,
    dists: &mut Vec<f32>,
    sums: &mut Vec<u32>,
) -> f64 {
    let m = index.m();
    let mut pass = |timed: bool| -> f64 {
        let start = Instant::now();
        for p in prepared {
            if kernel == ScanKernel::Scalar {
                // The scalar reference is the scan stage exactly as it
                // shipped before the slab data plane (`stage_pq_dist`): one
                // `(id, distance)` tuple pushed per code into a per-query
                // Vec, `lut.adc` gathering m entries one f32 at a time. The
                // allocation and tuple traffic were part of the cost the
                // data plane removed, so they are part of the baseline.
                let mut out: Vec<(u32, f32)> = Vec::new();
                for &cell in &p.cells {
                    let list = index.list(cell);
                    out.reserve(list.len());
                    for (slot, code) in list.codes.chunks_exact(m).enumerate() {
                        out.push((list.ids[slot], p.lut.adc(code)));
                    }
                }
                std::hint::black_box(&out);
                continue;
            }
            for &cell in &p.cells {
                let slab = index.slab(cell);
                if slab.is_empty() {
                    continue;
                }
                match kernel {
                    ScanKernel::Scalar => unreachable!("handled above"),
                    ScanKernel::Portable => {
                        dists.resize(slab.padded_len(), 0.0);
                        kernels::scan_f32_portable(slab, &p.lut, dists);
                    }
                    ScanKernel::Avx2 => {
                        dists.resize(slab.padded_len(), 0.0);
                        kernels::scan_f32_avx2(slab, &p.lut, dists);
                    }
                    ScanKernel::Int8 => {
                        sums.resize(slab.padded_len(), 0);
                        if avx2_available() {
                            int8::scan_i8_avx2(slab, &p.qlut, sums);
                        } else {
                            int8::scan_i8_portable(slab, &p.qlut, sums);
                        }
                    }
                }
                std::hint::black_box(&dists);
                std::hint::black_box(&sums);
            }
        }
        if timed {
            start.elapsed().as_secs_f64()
        } else {
            0.0
        }
    };
    pass(false); // warm-up: caches hot, buffers grown
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(pass(true));
    }
    best
}

/// Times `reps` passes of the fused scan+select stage and returns the
/// minimum single-pass seconds (same min-of-reps estimator as `time_scan`).
fn time_fused(
    index: &IvfPqIndex,
    prepared: &[PreparedQuery],
    k: usize,
    kernel: ScanKernel,
    reps: usize,
    scratch: &mut ScanScratch,
) -> f64 {
    for p in prepared {
        std::hint::black_box(stage_scan_and_select_with(
            index, &p.cells, &p.lut, k, kernel, scratch,
        ));
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for p in prepared {
            std::hint::black_box(stage_scan_and_select_with(
                index, &p.cells, &p.lut, k, kernel, scratch,
            ));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let scale = Scale::from_env();
    let workload = sift_workload(scale);
    print_header(
        "scan_kernels",
        "ADC scan data plane: kernel x nlist x m throughput sweep",
    );
    println!(
        "dataset: {} vectors x {} dims, {} queries, scale {:?}, avx2={}",
        workload.database.len(),
        workload.database.dim(),
        workload.queries.len(),
        scale,
        avx2_available()
    );

    let k = 10usize;
    let reps = match scale {
        Scale::Small => 20,
        Scale::Medium => 6,
        Scale::Large => 3,
    };
    let grid = scale.nlist_grid();
    let mut nlists = vec![grid[0], scale.default_nlist()];
    nlists.dedup();

    let mut canonical: BTreeMap<String, f64> = BTreeMap::new();
    let mut best_f32_speedup = 0.0f64;
    for &m in &[8usize, 16] {
        for &nlist in &nlists {
            let cfg = IvfPqTrainConfig::new(nlist)
                .with_m(m)
                .with_ksub(256)
                .with_train_sample(30_000)
                .with_seed(7);
            let index = IvfPqIndex::build(&workload.database, &cfg);
            let nprobe = (nlist / 4).clamp(8, nlist);
            let prepared = prepare(&index, &workload.queries, nprobe);
            let pass_codes = codes_per_pass(&index, &prepared);
            let mut scratch = ScanScratch::new();
            let mut dists = Vec::new();
            let mut sums = Vec::new();

            let mut scalar_codes_per_s = 0.0f64;
            for kernel in ALL_KERNELS {
                if !kernel.is_available() {
                    eprintln!("scan_kernels: skipping {kernel} (unavailable on this host)");
                    continue;
                }
                let scan_secs = time_scan(&index, &prepared, kernel, reps, &mut dists, &mut sums);
                let fused_secs = time_fused(&index, &prepared, k, kernel, reps, &mut scratch);
                let codes_per_s = pass_codes as f64 / scan_secs.max(1e-12);
                if kernel == ScanKernel::Scalar {
                    scalar_codes_per_s = codes_per_s;
                }
                let speedup = codes_per_s / scalar_codes_per_s.max(1e-12);
                if matches!(kernel, ScanKernel::Portable | ScanKernel::Avx2) {
                    best_f32_speedup = best_f32_speedup.max(speedup);
                }
                let row = KernelRow {
                    kernel: kernel.name().to_string(),
                    m,
                    nlist,
                    nprobe,
                    k,
                    queries: workload.queries.len(),
                    reps,
                    codes_per_query: pass_codes as f64 / workload.queries.len() as f64,
                    mcodes_per_s: codes_per_s / 1e6,
                    scan_gbps: codes_per_s * m as f64 / 1e9,
                    speedup_vs_scalar: speedup,
                    fused_mcodes_per_s: pass_codes as f64 / fused_secs.max(1e-12) / 1e6,
                };
                println!(
                    "{}",
                    serde_json::to_string(&row).expect("kernel row serialises")
                );
                let key = format!("m{m}_nlist{nlist}_{kernel}");
                canonical.insert(format!("{key}_mcodes_per_s"), row.mcodes_per_s);
                canonical.insert(format!("{key}_gbps"), row.scan_gbps);
                canonical.insert(format!("{key}_speedup"), row.speedup_vs_scalar);
                canonical.insert(format!("{key}_fused_mcodes_per_s"), row.fused_mcodes_per_s);
            }
        }
    }

    let out = baseline::update_section(&baseline::bench_out_path(), "scan_kernels", &canonical);
    eprintln!(
        "scan_kernels: wrote {} metrics to {}",
        canonical.len(),
        out.display()
    );

    // The tentpole acceptance gate: vectorized f32 scan must beat the scalar
    // reference by 4x with AVX2 (1.5x portable-only). Loose enough to
    // tolerate host noise, tight enough to catch a data-plane collapse.
    let default_gate = if avx2_available() { 4.0 } else { 1.5 };
    let gate = std::env::var("FANNS_SCAN_GATE")
        .ok()
        .and_then(|raw| raw.parse::<f64>().ok())
        .filter(|g| g.is_finite() && *g >= 0.0)
        .unwrap_or(default_gate);
    println!("best f32 SIMD scan speedup vs scalar: {best_f32_speedup:.2}x (gate: >={gate:.2}x)");
    assert!(
        best_f32_speedup >= gate,
        "f32 SIMD scan speedup {best_f32_speedup:.2}x under the {gate:.2}x gate"
    );
}
