//! Figure 12: estimated latency on large-scale deployments (16 → 1024
//! accelerators).
//!
//! Uses the paper's methodology verbatim: sample per-node search latencies
//! from the recorded single-node histories, take the max over N partitions,
//! and add a LogGP binary-tree broadcast/reduce cost. The paper reports the
//! FPGA's P99 advantage growing from 6.1× at 16 accelerators to 42.1× at
//! 1024.

use fanns::framework::{Fanns, FannsRequest};
use fanns_baselines::gpu::GpuModel;
use fanns_bench::{print_header, sift_workload, Scale};
use fanns_perfmodel::qps::WorkloadModel;
use fanns_scaleout::cluster::{sweep_accelerator_counts, ClusterSpec};
use fanns_scaleout::latency::LatencyDistribution;
use fanns_scaleout::loggp::LogGpParams;

fn main() {
    let scale = Scale::from_env();
    let workload = sift_workload(scale);

    print_header(
        "Figure 12",
        "estimated P50/P99 latency for 16..1024 accelerators (FPGA vs GPU model)",
    );

    let mut request = FannsRequest::recall_goal(10, 0.60).with_network_stack(true);
    request.explorer.nlist_grid = scale.nlist_grid();
    let generated = match Fanns::new(request).run(&workload.database, &workload.queries) {
        Ok(g) => g,
        Err(e) => {
            println!("co-design failed: {e}");
            return;
        }
    };
    let params = generated.choice.params;

    let fpga_report = generated.simulate(&workload.queries);
    let fpga_node = LatencyDistribution::new(
        fpga_report
            .latencies_us
            .iter()
            .map(|l| l + LogGpParams::hardware_tcp_rtt_us())
            .collect(),
    );
    let gpu_node = GpuModel::v100().online_latency_distribution(
        &WorkloadModel::from_index(&generated.index, &params),
        5_000,
        31,
    );

    let counts = [16usize, 32, 64, 128, 256, 512, 1024];
    let base = ClusterSpec {
        num_queries: 20_000,
        ..ClusterSpec::eight_accelerators()
    };
    let net = LogGpParams::paper_infiniband();
    let fpga = sweep_accelerator_counts(&counts, &base, &fpga_node, &net);
    let gpu = sweep_accelerator_counts(&counts, &base, &gpu_node, &net);

    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "N", "FPGA P50 (us)", "FPGA P99 (us)", "GPU P50 (us)", "GPU P99 (us)", "P99 speedup"
    );
    for (i, &n) in counts.iter().enumerate() {
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>14.1} {:>14.1} {:>11.1}x",
            n,
            fpga[i].median_us,
            fpga[i].p99_us,
            gpu[i].median_us,
            gpu[i].p99_us,
            gpu[i].p99_us / fpga[i].p99_us
        );
    }
    println!("\nExpected shape (paper): the FPGA P99 speedup grows with the accelerator count (6.1x at 16 to 42.1x at 1024).");
}
