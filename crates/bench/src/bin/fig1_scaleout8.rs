//! Figure 1: eight-accelerator scale-out — FPGA cluster vs GPU cluster.
//!
//! Each accelerator holds one partition of the dataset (nlist=8192-style
//! index, m=16, R@10=80% in the paper). Per-node latency histories come from
//! the simulated FANNS accelerator and the GPU model; the distributed query
//! latency is the max over the eight partitions plus the binary-tree
//! broadcast/reduce network cost. The paper reports 5.5× (median) and 7.6×
//! (P95) FPGA advantage.

use fanns::framework::{Fanns, FannsRequest};
use fanns_baselines::gpu::GpuModel;
use fanns_bench::{print_header, sift_workload, Scale};
use fanns_perfmodel::qps::WorkloadModel;
use fanns_scaleout::cluster::{simulate_cluster, ClusterSpec};
use fanns_scaleout::latency::LatencyDistribution;
use fanns_scaleout::loggp::LogGpParams;

fn main() {
    let scale = Scale::from_env();
    let workload = sift_workload(scale);

    print_header(
        "Figure 1",
        "eight-accelerator scale-out: FPGA cluster vs GPU cluster (median / P95 latency)",
    );

    // Build the per-partition accelerator (every node runs the same design).
    let mut request = FannsRequest::recall_goal(10, 0.60).with_network_stack(true);
    request.explorer.nlist_grid = scale.nlist_grid();
    let generated = match Fanns::new(request).run(&workload.database, &workload.queries) {
        Ok(g) => g,
        Err(e) => {
            println!("co-design failed: {e}");
            return;
        }
    };
    let params = generated.choice.params;

    // Per-node latency distributions.
    let fpga_report = generated.simulate(&workload.queries);
    let fpga_node = LatencyDistribution::new(
        fpga_report
            .latencies_us
            .iter()
            .map(|l| l + LogGpParams::hardware_tcp_rtt_us())
            .collect(),
    );
    let gpu_node = GpuModel::v100().online_latency_distribution(
        &WorkloadModel::from_index(&generated.index, &params),
        5_000,
        21,
    );

    let spec = ClusterSpec::eight_accelerators();
    let net = LogGpParams::paper_infiniband();
    let fpga_cluster = simulate_cluster(&spec, &fpga_node, &net);
    let gpu_cluster = simulate_cluster(&spec, &gpu_node, &net);

    println!(
        "{:<18} {:>14} {:>14} {:>14}",
        "cluster (N=8)", "median (us)", "P95 (us)", "P99 (us)"
    );
    println!(
        "{:<18} {:>14.1} {:>14.1} {:>14.1}",
        "8x FPGA (FANNS)", fpga_cluster.median_us, fpga_cluster.p95_us, fpga_cluster.p99_us
    );
    println!(
        "{:<18} {:>14.1} {:>14.1} {:>14.1}",
        "8x GPU (model)", gpu_cluster.median_us, gpu_cluster.p95_us, gpu_cluster.p99_us
    );
    println!(
        "\nFPGA speedup over GPU: median {:.1}x, P95 {:.1}x   (paper: 5.5x median, 7.6x P95)",
        gpu_cluster.median_us / fpga_cluster.median_us,
        gpu_cluster.p95_us / fpga_cluster.p95_us
    );
}
