//! Replicated-serving sweep: replicas x injected-fault-rate x target-QPS
//! over a CPU IVF-PQ backend behind a `ReplicaSet` and the deadline-aware
//! `QueryEngine`, one JSON row per configuration.
//!
//! ```sh
//! FANNS_SCALE=small cargo run --release --bin serve_replication
//! ```
//!
//! The sweep measures what the paper's scale-out story (Figures 1 and 12)
//! implies for deployments: with one replica, a faulty backend sinks goodput
//! and inflates the tail; with R > 1, least-loaded routing and failover
//! absorb faults at the cost of extra capacity. Each configuration injects
//! deterministic faults (every N-th backend call errors) into every replica
//! and drives an open-loop Poisson arrival process, so rows are comparable
//! across the grid. Goodput (in-SLO QPS), shed/failed counts, failovers and
//! per-replica utilization come from the final `ServeReport`.

use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use fanns_bench::{print_header, sift_workload, Scale};
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_serve::loadgen::{run_open_loop, OpenLoopConfig};
use fanns_serve::{
    BatchPolicy, CpuBackend, EngineConfig, FaultInjector, FaultMode, PickupOrder, QueryEngine,
    ReplicaHealthConfig, ReplicaSet, SearchBackend,
};

/// One sweep point, printed as a JSON row.
#[derive(Debug, Serialize)]
struct SweepRow {
    backend: String,
    replicas: usize,
    /// Every N-th backend call fails (0 = no injected faults).
    fault_every_nth: u64,
    target_qps: f64,
    offered_qps: f64,
    /// Completed-query throughput.
    qps: f64,
    /// In-SLO throughput — the deployment-quality metric.
    goodput_qps: f64,
    slo_us: f64,
    slo_attainment: Option<f64>,
    p50_us: f64,
    p99_us: f64,
    /// Shed at submission (queue full).
    rejected: u64,
    /// Shed by deadline-aware admission.
    shed: u64,
    /// Failed on the backend (all replicas down for a batch).
    failed: u64,
    /// Batches rerouted to another replica after a failure.
    failover_count: u64,
    /// Faults the injectors actually fired across replicas.
    injected_faults: u64,
    /// Times any replica was quarantined.
    quarantines: u64,
    /// Mean per-replica busy fraction over the run.
    mean_replica_utilization: f64,
}

fn main() {
    let scale = Scale::from_env();
    let workload = sift_workload(scale);
    print_header(
        "serve_replication",
        "replicated serving sweep: replicas x fault rate x offered load (open loop)",
    );
    println!(
        "dataset: {} vectors x {} dims, {} distinct queries, scale {:?}",
        workload.database.len(),
        workload.database.dim(),
        workload.queries.len(),
        scale
    );

    let nlist = scale.default_nlist();
    let params = IvfPqParams::new(nlist, 8, 10).with_m(16);
    let train = IvfPqTrainConfig::new(nlist)
        .with_m(16)
        .with_ksub(64)
        .with_train_sample(30_000)
        .with_seed(7);
    // One shared in-memory index: replica slots route to it, so the sweep
    // isolates the scheduling behaviour from index-build variance.
    let index = IvfPqIndex::build(&workload.database, &train);
    let executor: Arc<dyn SearchBackend> = Arc::new(CpuBackend::new(index, params));

    let replica_counts = [1usize, 2, 3];
    let fault_nths = [0u64, 50, 10];
    let target_qps_grid = [2_000.0f64, 8_000.0];
    let slo_us = 5_000.0;
    let num_queries = match scale {
        Scale::Small => 2_000,
        Scale::Medium => 8_000,
        Scale::Large => 16_000,
    };

    for &replicas in &replica_counts {
        for &fault_nth in &fault_nths {
            for &target_qps in &target_qps_grid {
                // Fresh injectors and replica set per run: fault counters,
                // health state and stats all start clean.
                let mut fault_handles = Vec::new();
                let slots: Vec<Box<dyn SearchBackend>> = (0..replicas)
                    .map(|_| {
                        let shared = Box::new(Arc::clone(&executor)) as Box<dyn SearchBackend>;
                        let (injector, handle) = if fault_nth > 0 {
                            FaultInjector::with_mode(shared, FaultMode::ErrorEveryNth(fault_nth))
                        } else {
                            FaultInjector::new(shared)
                        };
                        fault_handles.push(handle);
                        Box::new(injector) as Box<dyn SearchBackend>
                    })
                    .collect();
                let set = ReplicaSet::new(slots, ReplicaHealthConfig::default(), None);
                let stats = set.stats();
                let backend_name = set.name();

                let engine = QueryEngine::start(
                    Arc::new(set),
                    EngineConfig::new(
                        BatchPolicy::new(32, Duration::from_micros(500))
                            .with_pickup(PickupOrder::EarliestDeadlineFirst),
                    )
                    .with_workers(2)
                    .with_queue_depth(4_096)
                    .with_slo_us(slo_us)
                    .with_deadline_shedding(),
                );
                let outcome = run_open_loop(
                    &engine,
                    &workload.queries,
                    OpenLoopConfig::new(target_qps, num_queries),
                );
                let report = engine.shutdown().with_replica_stats(&[stats]);

                let snapshots = &report.replicas;
                let mean_util = if snapshots.is_empty() {
                    0.0
                } else {
                    snapshots.iter().map(|r| r.utilization).sum::<f64>() / snapshots.len() as f64
                };
                let row = SweepRow {
                    backend: backend_name.clone(),
                    replicas,
                    fault_every_nth: fault_nth,
                    target_qps,
                    offered_qps: outcome.offered_qps,
                    qps: report.qps,
                    goodput_qps: report.goodput_qps,
                    slo_us,
                    slo_attainment: report.slo_attainment,
                    p50_us: report.p50_us,
                    p99_us: report.p99_us,
                    rejected: report.rejected,
                    shed: report.shed,
                    failed: report.failed,
                    failover_count: report.failover_count,
                    injected_faults: fault_handles.iter().map(|h| h.injected_faults()).sum(),
                    quarantines: snapshots.iter().map(|r| r.quarantines).sum(),
                    mean_replica_utilization: mean_util,
                };
                println!(
                    "{}",
                    serde_json::to_string(&row).expect("sweep row serialises")
                );
            }
        }
    }
}
