//! Figure 9: the optimal FPGA design shifts with the algorithm parameters.
//!
//! For sweeps of nprobe, nlist and K, ask the performance model for the best
//! design under each parameter setting and print the per-stage LUT share of
//! that design. The paper's observation to reproduce: more nprobe shifts area
//! toward PQDist/SelK, more nlist toward IVFDist, more K toward SelK.

use fanns_bench::print_header;
use fanns_hwsim::config::AcceleratorConfig;
use fanns_ivf::params::{IvfPqParams, ALL_STAGES};
use fanns_perfmodel::device::FpgaDevice;
use fanns_perfmodel::enumerate::{enumerate_designs, EnumerationSpace};
use fanns_perfmodel::qps::{predict_qps, WorkloadModel};
use fanns_perfmodel::resources::{resource_report, DesignContext};

/// Finds the best design for a workload and returns it with its prediction.
fn best_design(
    workload: &WorkloadModel,
    device: &FpgaDevice,
    space: &EnumerationSpace,
) -> Option<(AcceleratorConfig, f64)> {
    let ctx = DesignContext {
        dim: workload.dim,
        m: workload.m,
        ksub: workload.ksub,
        nlist: workload.nlist,
        nprobe: workload.nprobe,
        k: workload.k,
        with_network_stack: false,
    };
    enumerate_designs(space, device, &ctx, workload.opq)
        .into_iter()
        .map(|d| {
            let qps = predict_qps(workload, &d).qps;
            (d, qps)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

fn print_design_row(
    label: &str,
    design: &AcceleratorConfig,
    workload: &WorkloadModel,
    qps: f64,
    device: &FpgaDevice,
) {
    let ctx = DesignContext {
        dim: workload.dim,
        m: workload.m,
        ksub: workload.ksub,
        nlist: workload.nlist,
        nprobe: workload.nprobe,
        k: workload.k,
        with_network_stack: false,
    };
    let report = resource_report(design, &ctx, device);
    print!("{label:<16}");
    for f in report.stage_lut_fraction {
        print!(" {:>9.1}%", f * 100.0);
    }
    println!(
        "   SelK={}  #PQD={:>3}  pred.QPS={qps:>10.0}",
        design.sel_k_arch.name(),
        design.sizing.pq_dist_pes
    );
}

fn main() {
    let device = FpgaDevice::alveo_u55c();
    let space = EnumerationSpace::standard();
    // Paper-scale workload: 100M vectors, 16-byte codes.
    let base = |nlist: usize, nprobe: usize, k: usize| {
        WorkloadModel::analytic(
            128,
            16,
            256,
            100_000_000,
            &IvfPqParams::new(nlist, nprobe, k),
        )
    };

    print_header(
        "Figure 9",
        "per-stage LUT share of the model-optimal design as parameters shift (SIFT100M-scale workload)",
    );
    print!("{:<16}", "sweep point");
    for s in ALL_STAGES {
        print!(" {:>10}", s.name());
    }
    println!();

    println!("\n-- sweep nprobe (nlist=8192, K=10) --");
    for nprobe in [1usize, 4, 16, 64, 128] {
        let w = base(8192, nprobe, 10);
        if let Some((design, qps)) = best_design(&w, &device, &space) {
            print_design_row(&format!("nprobe={nprobe}"), &design, &w, qps, &device);
        }
    }

    println!("\n-- sweep nlist (nprobe=16, K=10) --");
    for nlist in [1usize << 11, 1 << 13, 1 << 15, 1 << 17] {
        let w = base(nlist, 16, 10);
        if let Some((design, qps)) = best_design(&w, &device, &space) {
            print_design_row(&format!("nlist={nlist}"), &design, &w, qps, &device);
        }
    }

    println!("\n-- sweep K (nlist=8192, nprobe=16) --");
    for k in [1usize, 10, 100] {
        let w = base(8192, 16, k);
        if let Some((design, qps)) = best_design(&w, &device, &space) {
            print_design_row(&format!("K={k}"), &design, &w, qps, &device);
        }
    }

    println!("\nExpected shape (paper): PQDist/SelK area grows with nprobe; IVFDist area grows with nlist; SelK area surges with K.");
}
