//! Mutation-under-traffic sweep: insert/delete rate × offered QPS over a
//! [`MutableBackend`] (segmented mutable IVF) behind the `QueryEngine`, one
//! JSON row per configuration.
//!
//! ```sh
//! FANNS_SCALE=small cargo run --release --bin serve_mutation
//! ```
//!
//! Each cell serves an open-loop Poisson query stream while a mutator thread
//! applies a paced stream of inserts (fresh vectors) and deletes (ids from
//! the sealed initial set) through the backend's mutation hooks, with a
//! background [`Compactor`] sealing/merging underneath. A checker thread
//! concurrently probes the engine and asserts the hard correctness gate:
//!
//! * **zero deleted-id violations** — no reply ever contains an id whose
//!   delete had committed before the probe was submitted (the process exits
//!   non-zero on the first violation).
//!
//! The `rate = 0` rows run the identical serving stack with the mutator
//! idle — the baseline the churned rows are compared against. Canonical
//! per-cell metrics (`m{rate}_q{qps}_p50_us` / `_qps`) are written to the
//! `serve_mutation` section of `BENCH_serve.json` for the `bench_compare`
//! regression gate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use fanns_bench::baseline;
use fanns_bench::{print_header, Scale};
use fanns_dataset::synth::SyntheticSpec;
use fanns_dataset::types::VectorDataset;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::segmented::{SegmentedConfig, SegmentedIndex};
use fanns_serve::loadgen::{run_open_loop, OpenLoopConfig};
use fanns_serve::{
    BatchPolicy, Compactor, EngineConfig, MutableBackend, QueryEngine, QueryStatus, SearchBackend,
};

/// One sweep point, printed as a JSON row.
#[derive(Debug, Serialize)]
struct SweepRow {
    backend: String,
    /// Offered mutation rate (insert + delete ops per second; 0 = immutable
    /// baseline cell).
    mutation_rate: f64,
    target_qps: f64,
    offered_qps: f64,
    /// Completed-query throughput.
    qps: f64,
    goodput_qps: f64,
    queries: u64,
    /// Median backend-path latency (µs).
    p50_us: f64,
    p99_us: f64,
    /// Mutations actually applied (inserts + successful deletes).
    mutations_applied: u64,
    inserts: u64,
    deletes: u64,
    /// Compactions performed during the cell (seal + merge + swap).
    compactions: u64,
    /// Live vectors at the end of the cell.
    live: u64,
    /// Sealed segments at the end of the cell.
    sealed_segments: u64,
    /// Concurrent correctness probes checked against the committed-delete
    /// high-water mark (all must have passed for the row to print).
    probes_checked: u64,
    rejected: u64,
}

fn main() {
    let scale = Scale::from_env();
    print_header(
        "serve_mutation",
        "mutation-under-traffic sweep: insert/delete rate x offered load (open loop)",
    );

    let (database, queries) = SyntheticSpec::sift_medium(5151)
        .with_vectors(scale.num_vectors().min(20_000))
        .with_queries(256)
        .generate();
    println!(
        "dataset: {} vectors x {} dims, {} distinct queries, scale {:?}",
        database.len(),
        database.dim(),
        queries.len(),
        scale
    );

    let nlist = 64usize;
    let params = IvfPqParams::new(nlist, 8, 10).with_m(16);
    let train = IvfPqTrainConfig::new(nlist)
        .with_m(16)
        .with_ksub(64)
        .with_train_sample(20_000)
        .with_seed(17);
    let index = IvfPqIndex::build(&database, &train);

    // Fresh vectors for the mutator (same distribution, different seed);
    // the mutator cycles the pool when a cell needs more inserts than it
    // holds — duplicates are fine for a throughput sweep.
    let (insert_pool, _) = SyntheticSpec::sift_medium(5152)
        .with_vectors(8_192)
        .with_queries(1)
        .generate();

    let mutation_rates = [0.0f64, 1_000.0, 5_000.0];
    let target_qps_grid = [2_000.0f64, 8_000.0];
    // Constant cell *duration* rather than query count: the mutator and the
    // compactor are paced in wall-clock time, so every cell must give them
    // the same window regardless of the offered query rate.
    let cell_seconds = match scale {
        Scale::Small => 1.5,
        Scale::Medium => 4.0,
        Scale::Large => 8.0,
    };

    let mut canonical: BTreeMap<String, f64> = BTreeMap::new();
    let mut baseline_p50: Option<f64> = None;

    for &target_qps in &target_qps_grid {
        for &mutation_rate in &mutation_rates {
            let num_queries = (target_qps * cell_seconds) as usize;
            let row = run_cell(
                &index,
                params,
                &queries,
                &insert_pool,
                mutation_rate,
                target_qps,
                num_queries,
            );
            println!(
                "{}",
                serde_json::to_string(&row).expect("sweep row serialises")
            );
            let point = format!("m{mutation_rate:.0}_q{target_qps:.0}");
            canonical.insert(format!("{point}_p50_us"), row.p50_us);
            canonical.insert(format!("{point}_qps"), row.qps);
            if mutation_rate == 0.0 && baseline_p50.is_none() {
                baseline_p50 = Some(row.p50_us);
            }
            if mutation_rate > 0.0 {
                assert!(
                    row.mutations_applied > 0,
                    "mutating cell applied no mutations"
                );
                assert!(
                    row.compactions > 0,
                    "mutating cell never compacted (rate {mutation_rate}, qps {target_qps})"
                );
            }
            assert!(row.probes_checked > 0, "checker thread never probed");
        }
    }

    let out = baseline::update_section(&baseline::bench_out_path(), "serve_mutation", &canonical);
    eprintln!(
        "serve_mutation: wrote {} metrics to {}",
        canonical.len(),
        out.display()
    );
    eprintln!("serve_mutation OK: zero deleted-id violations across the grid");
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    index: &IvfPqIndex,
    params: IvfPqParams,
    queries: &fanns_dataset::types::QuerySet,
    insert_pool: &VectorDataset,
    mutation_rate: f64,
    target_qps: f64,
    num_queries: usize,
) -> SweepRow {
    // Fresh segmented index per cell: the initial index becomes the one
    // sealed segment, churn state starts clean. Thresholds are sized so a
    // cell lasting a second or two at the lowest mutation rate still seals
    // and reclaims a few times — the point is to measure serving latency
    // *with* compactions happening, not a quiescent write segment.
    let segmented = Arc::new(SegmentedIndex::new(
        index.clone(),
        SegmentedConfig::default()
            .with_seal_threshold(256)
            .with_tombstone_ratio(0.02),
    ));
    let backend = Arc::new(MutableBackend::new(Arc::clone(&segmented), params));
    let engine = QueryEngine::start(
        Arc::new(Arc::clone(&backend)) as Arc<dyn SearchBackend>,
        EngineConfig::new(BatchPolicy::new(32, Duration::from_micros(500)))
            .with_workers(2)
            .with_queue_depth(4_096),
    );
    let compactor = Compactor::start(Arc::clone(&backend), Duration::from_millis(5));

    let stop = Arc::new(AtomicBool::new(false));
    // Delete schedule: unique initial ids, so every scheduled delete
    // succeeds. `committed` is the high-water mark the checker reads:
    // schedule[..committed] have all returned before the probe is sent.
    let delete_schedule: Arc<Vec<u32>> = Arc::new(
        (0..index.ntotal() as u32)
            .filter(|id| id % 3 == 0)
            .collect(),
    );
    let committed = Arc::new(AtomicUsize::new(0));

    let pool: Vec<Vec<f32>> = (0..insert_pool.len())
        .map(|i| insert_pool.get(i).to_vec())
        .collect();
    let probe_queries: Vec<Vec<f32>> = (0..16).map(|i| queries.get(i).to_vec()).collect();

    // Scoped threads so the mutator and checker can borrow the engine the
    // open-loop generator is driving.
    let (outcome, inserts, deletes, probes_checked) = std::thread::scope(|scope| {
        // Mutator: paced at `mutation_rate` ops/s, ~60 % inserts / 40 %
        // deletes, applied in 1 ms slices.
        let mutator = {
            let backend = Arc::clone(&backend);
            let stop = Arc::clone(&stop);
            let schedule = Arc::clone(&delete_schedule);
            let committed = Arc::clone(&committed);
            let pool = &pool;
            scope.spawn(move || {
                let mut inserts = 0u64;
                let mut deletes = 0u64;
                if mutation_rate <= 0.0 {
                    return (inserts, deletes);
                }
                let slice = Duration::from_millis(1);
                let ops_per_slice = (mutation_rate / 1_000.0).max(1.0) as usize;
                let mut tick = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    for _ in 0..ops_per_slice {
                        tick += 1;
                        if tick % 5 < 3 {
                            let v = &pool[(inserts as usize) % pool.len()];
                            backend.insert(v).expect("mutable backend inserts");
                            inserts += 1;
                        } else {
                            let next = committed.load(Ordering::Relaxed);
                            if next < schedule.len() && backend.delete(schedule[next]) {
                                deletes += 1;
                                // Publish only after the delete returned:
                                // probes sent after this store must not see
                                // the id.
                                committed.store(next + 1, Ordering::Release);
                            }
                        }
                    }
                    let spent = t0.elapsed();
                    if spent < slice {
                        std::thread::sleep(slice - spent);
                    }
                }
                (inserts, deletes)
            })
        };

        // Checker: concurrent correctness probes through the engine. A
        // probe reads the committed-delete high-water mark *before*
        // submitting; any of those ids in the reply is a violation (torn
        // segment set, tombstone leak, or stale cache) and aborts the
        // bench.
        let checker = {
            let engine = &engine;
            let stop = Arc::clone(&stop);
            let schedule = Arc::clone(&delete_schedule);
            let committed = Arc::clone(&committed);
            let probe_queries = &probe_queries;
            scope.spawn(move || {
                let mut checked = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for q in probe_queries {
                        let barrier = committed.load(Ordering::Acquire);
                        let Ok(ticket) = engine.submit(q.clone()) else {
                            continue;
                        };
                        let Some(reply) = ticket.wait() else { continue };
                        if reply.status == QueryStatus::Completed {
                            for r in &reply.results {
                                let deleted = schedule[..barrier].contains(&r.id);
                                assert!(
                                    !deleted,
                                    "deleted id {} resurfaced in a concurrent probe",
                                    r.id
                                );
                            }
                            checked += 1;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                checked
            })
        };

        let outcome = run_open_loop(
            &engine,
            queries,
            OpenLoopConfig::new(target_qps, num_queries)
                .with_seed(0xFEED_5EED)
                .with_zipf(1.0),
        );
        stop.store(true, Ordering::Release);
        let (inserts, deletes) = mutator.join().expect("mutator thread");
        let probes_checked = checker.join().expect("checker thread");
        (outcome, inserts, deletes, probes_checked)
    });
    let background_compactions = compactor.stop();
    let report = engine.shutdown();
    let stats = segmented.stats();
    // The background compactor performs all compactions in this bench; the
    // index counter is authoritative (and >= the compactor's own count).
    debug_assert!(background_compactions <= stats.compactions);

    SweepRow {
        backend: report.backend.clone(),
        mutation_rate,
        target_qps,
        offered_qps: outcome.offered_qps,
        qps: report.qps,
        goodput_qps: report.goodput_qps,
        queries: report.queries,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        mutations_applied: inserts + deletes,
        inserts,
        deletes,
        compactions: stats.compactions,
        live: stats.live as u64,
        sealed_segments: stats.sealed_segments as u64,
        probes_checked,
        rejected: report.rejected,
    }
}
