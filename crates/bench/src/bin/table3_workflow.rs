//! Table 3: time consumption of the FANNS workflow steps.
//!
//! Runs the end-to-end workflow once and reports the wall-clock time of each
//! step. The paper's absolute numbers (hours for index training, ten hours
//! for bitstream compilation) become seconds here because the datasets are
//! laptop-scale and the "compilation" target is a simulator, but the relative
//! ordering — index building dominates, code generation is trivial — holds.

use fanns::framework::{Fanns, FannsRequest};
use fanns_bench::{print_header, sift_workload, Scale};

fn main() {
    let scale = Scale::from_env();
    let workload = sift_workload(scale);

    print_header(
        "Table 3",
        "time consumption of the FANNS workflow (this reproduction)",
    );

    let mut request = FannsRequest::recall_goal(10, 0.60);
    request.explorer.nlist_grid = scale.nlist_grid();
    let generated = match Fanns::new(request).run(&workload.database, &workload.queries) {
        Ok(g) => g,
        Err(e) => {
            println!("workflow failed: {e}");
            return;
        }
    };

    let t = &generated.timings;
    println!("{:<42} {:>12}", "step", "time");
    println!(
        "{:<42} {:>12}",
        "compute sample ground truth",
        format!("{:.2?}", t.ground_truth)
    );
    println!(
        "{:<42} {:>12}",
        "build indexes + recall-nprobe relationship",
        format!("{:.2?}", t.explore_indexes)
    );
    println!(
        "{:<42} {:>12}",
        "predict optimal design",
        format!("{:.2?}", t.predict_design)
    );
    println!(
        "{:<42} {:>12}",
        "FPGA code generation (kernel plan)",
        format!("{:.2?}", t.code_generation)
    );
    println!(
        "{:<42} {:>12}",
        "accelerator instantiation (sim 'bitstream')",
        format!("{:.2?}", t.instantiate)
    );
    println!(
        "\npaper (100M-vector scale): hours per index / minutes per recall curve / <1h design prediction / seconds codegen / ~10h bitstream"
    );
    println!("\n{}", generated.summary());
    println!("\nGenerated kernel plan (excerpt):");
    for line in generated.kernel_plan.lines().take(12) {
        println!("  {line}");
    }
}
