//! Figure 3: IVF-PQ bottleneck analysis on CPU (measured) and GPU (modelled).
//!
//! Reproduces the three parameter sweeps of Figure 3 — nprobe, nlist and K —
//! and prints the per-stage share of query time for each point. The paper's
//! observation to reproduce: the bottleneck *shifts* across parameters
//! (PQDist/SelK grow with nprobe and K, IVFDist grows with nlist).

use fanns_baselines::gpu::GpuModel;
use fanns_bench::{build_index, print_header, sift_workload, Scale};
use fanns_ivf::baseline_cpu::CpuSearcher;
use fanns_ivf::params::{IvfPqParams, ALL_STAGES};
use fanns_ivf::simd::ALL_KERNELS;
use fanns_perfmodel::qps::WorkloadModel;

fn print_row(label: &str, fractions: &[f64; 6]) {
    print!("{label:<28}");
    for f in fractions {
        print!(" {:>9.1}%", f * 100.0);
    }
    println!();
}

fn stage_header(first_col: &str) {
    print!("{first_col:<28}");
    for s in ALL_STAGES {
        print!(" {:>10}", s.name());
    }
    println!();
}

fn main() {
    let scale = Scale::from_env();
    let workload = sift_workload(scale);
    let gpu = GpuModel::v100();

    print_header(
        "Figure 3",
        "per-stage time share on CPU (measured) and GPU (modelled), SIFT-like dataset",
    );

    // --- Column 1: sweep nprobe at a fixed index. ---
    let nlist = scale.default_nlist();
    let index = build_index(&workload, nlist, false, 7);
    println!("\n[CPU] sweep nprobe (nlist={nlist}, K=10)");
    stage_header("nprobe");
    for nprobe in [1usize, 4, 16, 64] {
        let params = IvfPqParams::new(nlist, nprobe, 10);
        let searcher = CpuSearcher::new(&index, params);
        let timings = searcher.profile_stages(&workload.queries);
        print_row(&format!("nprobe={nprobe}"), &timings.fractions());
    }
    println!("\n[GPU model] sweep nprobe (nlist={nlist}, K=10)");
    stage_header("nprobe");
    for nprobe in [1usize, 4, 16, 64] {
        let params = IvfPqParams::new(nlist, nprobe, 10);
        let wm = WorkloadModel::from_index(&index, &params);
        let times = gpu.stage_times_s(&wm, 10_000);
        let total: f64 = times.iter().sum();
        let fractions = times.map(|t| t / total.max(1e-30));
        print_row(&format!("nprobe={nprobe}"), &fractions);
    }

    // --- Column 2: sweep nlist at fixed nprobe=16. ---
    println!("\n[CPU] sweep nlist (nprobe=16, K=10)");
    stage_header("nlist");
    for nlist in scale.nlist_grid() {
        let index = build_index(&workload, nlist, false, 7);
        let params = IvfPqParams::new(nlist, 16, 10);
        let searcher = CpuSearcher::new(&index, params);
        let timings = searcher.profile_stages(&workload.queries);
        print_row(&format!("nlist={nlist}"), &timings.fractions());
    }
    println!("\n[GPU model] sweep nlist (nprobe=16, K=10), paper-scale nlist values");
    stage_header("nlist");
    for nlist in [1usize << 12, 1 << 14, 1 << 16, 1 << 18] {
        let params = IvfPqParams::new(nlist, 16, 10);
        let wm = WorkloadModel::analytic(128, 16, 256, 100_000_000, &params);
        let times = gpu.stage_times_s(&wm, 10_000);
        let total: f64 = times.iter().sum();
        print_row(
            &format!("nlist={nlist}"),
            &times.map(|t| t / total.max(1e-30)),
        );
    }

    // --- Column 3: sweep K at a fixed index. ---
    let index = build_index(&workload, nlist, false, 7);
    println!("\n[CPU] sweep K (nlist={nlist}, nprobe=16)");
    stage_header("K");
    for k in [1usize, 10, 100] {
        let params = IvfPqParams::new(nlist, 16, k);
        let searcher = CpuSearcher::new(&index, params);
        let timings = searcher.profile_stages(&workload.queries);
        print_row(&format!("K={k}"), &timings.fractions());
    }
    println!("\n[GPU model] sweep K (nlist={nlist}, nprobe=16)");
    stage_header("K");
    for k in [1usize, 10, 100] {
        let params = IvfPqParams::new(nlist, 16, k);
        let wm = WorkloadModel::from_index(&index, &params);
        let times = gpu.stage_times_s(&wm, 10_000);
        let total: f64 = times.iter().sum();
        print_row(&format!("K={k}"), &times.map(|t| t / total.max(1e-30)));
    }

    // --- Per-kernel breakdown: how the SIMD data plane moves the CPU
    // bottleneck (scalar vs slab kernels; README's Figure 3 notes). ---
    println!("\n[CPU] per-scan-kernel breakdown (nlist={nlist}, nprobe=16, K=10)");
    stage_header("kernel");
    let params = IvfPqParams::new(nlist, 16, 10);
    for kernel in ALL_KERNELS {
        if !kernel.is_available() {
            println!(
                "{:<28} (unavailable on this host)",
                format!("scan={kernel}")
            );
            continue;
        }
        let searcher = CpuSearcher::new(&index, params).with_kernel(kernel);
        let timings = searcher.profile_stages(&workload.queries);
        let us_per_query = timings.total().as_secs_f64() * 1e6 / timings.queries.max(1) as f64;
        print_row(
            &format!("scan={kernel} ({us_per_query:.0}us/q)"),
            &timings.fractions(),
        );
    }

    println!("\nExpected shape (paper): PQDist+SelK share grows with nprobe and K; IVFDist share grows with nlist.");
    println!("Per-kernel rows: the SIMD kernels shrink the PQDist share, shifting the CPU bottleneck toward BuildLUT/SelK — the software analogue of the paper's motivation for specializing the scan in hardware.");
}
