//! Figure 11: single-node online-query latency distributions for CPU, GPU and
//! the FANNS FPGA.
//!
//! The paper's shape to reproduce: the GPU has the lowest median but a heavy
//! tail; the FPGA has a nearly flat distribution (P95 ≈ median); the CPU sits
//! in between, with the FPGA achieving 2.0–4.6× better P95 than the CPU.

use fanns::framework::{Fanns, FannsRequest};
use fanns_baselines::cpu::cpu_latency_distribution;
use fanns_baselines::gpu::GpuModel;
use fanns_bench::{print_header, sift_workload, Scale};
use fanns_perfmodel::qps::WorkloadModel;
use fanns_scaleout::latency::LatencyDistribution;
use fanns_scaleout::loggp::LogGpParams;

fn print_dist(label: &str, dist: &LatencyDistribution) {
    println!(
        "{:<14} median={:>10.1}us  P95={:>10.1}us  P99={:>10.1}us  tail/median={:>5.2}",
        label,
        dist.median(),
        dist.percentile(95.0),
        dist.percentile(99.0),
        dist.tail_ratio()
    );
}

fn main() {
    let scale = Scale::from_env();
    let workload = sift_workload(scale);

    print_header(
        "Figure 11",
        "single-node online latency distributions (CPU measured, GPU modelled, FPGA simulated)",
    );

    let mut request = FannsRequest::recall_goal(10, 0.60);
    request.explorer.nlist_grid = scale.nlist_grid();
    let request = request.with_network_stack(true);
    let generated = match Fanns::new(request).run(&workload.database, &workload.queries) {
        Ok(g) => g,
        Err(e) => {
            println!("co-design failed: {e}");
            return;
        }
    };
    let params = generated.choice.params;
    println!(
        "index: {}, nprobe={}, K=10\n",
        generated.choice.index_label, params.nprobe
    );

    // CPU: measured one-query-at-a-time latencies.
    let cpu = cpu_latency_distribution(&generated.index, params, &workload.queries);
    print_dist("CPU", &cpu);

    // GPU: modelled online latency distribution.
    let gpu = GpuModel::v100().online_latency_distribution(
        &WorkloadModel::from_index(&generated.index, &params),
        5_000,
        11,
    );
    print_dist("GPU (model)", &gpu);

    // FPGA: simulated accelerator latency plus the hardware TCP/IP RTT.
    let report = generated.simulate(&workload.queries);
    let fpga = LatencyDistribution::new(
        report
            .latencies_us
            .iter()
            .map(|l| l + LogGpParams::hardware_tcp_rtt_us())
            .collect(),
    );
    print_dist("FPGA (FANNS)", &fpga);

    println!(
        "\nFPGA P95 vs CPU P95: {:.1}x better; FPGA tail/median {:.2} vs GPU {:.2}",
        cpu.percentile(95.0) / fpga.percentile(95.0),
        fpga.tail_ratio(),
        gpu.tail_ratio()
    );
    println!("Expected shape (paper): GPU lowest median but heavy tail; FPGA flattest distribution and 2.0-4.6x better P95 than CPU.");
}
