//! Canonical benchmark baselines: `BENCH_serve.json` read-modify-write and a
//! direction-aware regression comparator.
//!
//! The serving benchmarks (`serve_throughput`, `serve_cache`) print one JSON
//! row per sweep point, but rows on stdout leave no trajectory — nothing in
//! the repo says what the numbers *were* when a change landed. This module
//! gives every serving bench a canonical sink: a named **section** of scalar
//! metrics inside `BENCH_serve.json` at the repo root. Each bench rewrites
//! only its own section (read-modify-write), so the committed file
//! accumulates the full picture across binaries and PRs diff it like code.
//!
//! Layout of `BENCH_serve.json`:
//!
//! ```json
//! {
//!   "serve_throughput": { "scale": "small", "s1_b64_qps": 51234.0, ... },
//!   "serve_cache":      { "scale": "small", "cap128_qps2000_theta1.0_hit_rate": 0.62, ... }
//! }
//! ```
//!
//! [`compare`] flags regressions between two such files with a
//! direction-aware tolerance: metrics ending in `_us` are latencies (lower is
//! better, regression = grew), everything else is a rate/throughput (higher
//! is better, regression = shrank). Host-measured numbers are noisy across
//! machines, so the default tolerance is deliberately loose (±35 %,
//! `FANNS_BENCH_TOL` overrides); the comparator is a tripwire for collapses,
//! not a microbenchmark gate.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::Value;

/// Default tolerance for [`compare`] — the relative change a metric may move
/// in the losing direction before it is flagged.
pub const DEFAULT_TOLERANCE: f64 = 0.35;

/// Path the serving benches write their baseline sections to:
/// `$FANNS_BENCH_OUT` when set, else `BENCH_serve.json` at the repo root.
pub fn bench_out_path() -> PathBuf {
    match std::env::var("FANNS_BENCH_OUT") {
        Ok(path) if !path.is_empty() => PathBuf::from(path),
        _ => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json"),
    }
}

/// Tolerance for [`compare`]: `$FANNS_BENCH_TOL` when set and parseable,
/// else [`DEFAULT_TOLERANCE`].
pub fn tolerance_from_env() -> f64 {
    std::env::var("FANNS_BENCH_TOL")
        .ok()
        .and_then(|raw| raw.parse::<f64>().ok())
        .filter(|tol| tol.is_finite() && *tol >= 0.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// Replaces `section` of the JSON document at `path` with `metrics`,
/// preserving every other section. Creates the file (and a fresh document)
/// when it does not exist yet. Returns the path written.
///
/// # Panics
/// Panics when the existing file is unreadable or not valid JSON — a corrupt
/// baseline should fail loudly, not be silently clobbered.
pub fn update_section(path: &Path, section: &str, metrics: &BTreeMap<String, f64>) -> PathBuf {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::parse(&text) {
            Ok(Value::Map(entries)) => entries,
            Ok(other) => panic!(
                "baseline {} must hold a JSON object, found {}",
                path.display(),
                other.kind()
            ),
            Err(err) => panic!("baseline {} is not valid JSON: {err}", path.display()),
        },
        Err(_) => Vec::new(),
    };
    let body = Value::Map(
        metrics
            .iter()
            .map(|(name, value)| (name.clone(), Value::Float(*value)))
            .collect(),
    );
    match doc.iter_mut().find(|(name, _)| name == section) {
        Some((_, slot)) => *slot = body,
        None => doc.push((section.to_string(), body)),
    }
    let text = serde_json::to_string_pretty(&Value::Map(doc)).expect("baseline serialises");
    std::fs::write(path, text + "\n").unwrap_or_else(|err| {
        panic!("cannot write baseline {}: {err}", path.display());
    });
    path.to_path_buf()
}

/// Loads one section of a baseline file as a flat metric map; `None` when the
/// file or the section is absent.
pub fn load_section(path: &Path, section: &str) -> Option<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = serde_json::parse(&text).ok()?;
    let body = doc.get(section)?;
    let Value::Map(entries) = body else {
        return None;
    };
    Some(
        entries
            .iter()
            .filter_map(|(name, value)| value.as_f64().map(|v| (name.clone(), v)))
            .collect(),
    )
}

/// Section names present in a baseline file (empty when unreadable).
pub fn sections(path: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    match serde_json::parse(&text) {
        Ok(Value::Map(entries)) => entries.iter().map(|(name, _)| name.clone()).collect(),
        _ => Vec::new(),
    }
}

/// Whether a metric improves downward (latencies) or upward (rates,
/// throughputs) — the direction [`compare`] tests against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Lower is better (`*_us`/`*_ms` latencies, `*_ratio` cost ratios).
    LowerIsBetter,
    /// Higher is better (throughput, hit rates — everything else).
    HigherIsBetter,
}

/// Infers the improvement direction from the metric name suffix.
pub fn direction_of(metric: &str) -> Direction {
    if metric.ends_with("_us") || metric.ends_with("_ms") || metric.ends_with("_ratio") {
        Direction::LowerIsBetter
    } else {
        Direction::HigherIsBetter
    }
}

/// One metric that moved beyond tolerance in the losing direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Baseline section the metric lives in.
    pub section: String,
    /// Metric name within the section.
    pub metric: String,
    /// Value in the baseline (old) file.
    pub baseline: f64,
    /// Value in the candidate (new) file.
    pub candidate: f64,
    /// Signed relative change, `(candidate - baseline) / baseline`.
    pub relative_change: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {:.3} -> {:.3} ({:+.1}%)",
            self.section,
            self.metric,
            self.baseline,
            self.candidate,
            self.relative_change * 100.0
        )
    }
}

/// Compares every metric shared by two metric maps and returns the ones that
/// moved beyond `tolerance` in the losing direction for their
/// [`direction_of`] the name. Metrics present on only one side are ignored
/// (sweep grids may grow or shrink between runs).
pub fn compare_metrics(
    section: &str,
    baseline: &BTreeMap<String, f64>,
    candidate: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for (metric, &old) in baseline {
        let Some(&new) = candidate.get(metric) else {
            continue;
        };
        if old == 0.0 {
            continue; // no meaningful relative change from a zero baseline
        }
        let rel = (new - old) / old.abs();
        let regressed = match direction_of(metric) {
            Direction::LowerIsBetter => rel > tolerance,
            Direction::HigherIsBetter => rel < -tolerance,
        };
        if regressed {
            regressions.push(Regression {
                section: section.to_string(),
                metric: metric.clone(),
                baseline: old,
                candidate: new,
                relative_change: rel,
            });
        }
    }
    regressions
}

/// File-level [`compare_metrics`]: walks every section of `baseline_path`
/// that also exists in `candidate_path`. Returns `(regressions,
/// metrics_compared)`.
pub fn compare(
    baseline_path: &Path,
    candidate_path: &Path,
    tolerance: f64,
) -> (Vec<Regression>, usize) {
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for section in sections(baseline_path) {
        let Some(old) = load_section(baseline_path, &section) else {
            continue;
        };
        let Some(new) = load_section(candidate_path, &section) else {
            continue;
        };
        compared += old.keys().filter(|k| new.contains_key(*k)).count();
        regressions.extend(compare_metrics(&section, &old, &new, tolerance));
    }
    (regressions, compared)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs
            .iter()
            .map(|&(name, value)| (name.to_string(), value))
            .collect()
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fanns_baseline_{tag}_{}.json", std::process::id()))
    }

    #[test]
    fn update_preserves_other_sections_and_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        update_section(&path, "alpha", &metrics(&[("qps", 100.0), ("p50_us", 2.5)]));
        update_section(&path, "beta", &metrics(&[("hit_rate", 0.5)]));
        // Rewriting alpha must not disturb beta.
        update_section(&path, "alpha", &metrics(&[("qps", 120.0), ("p50_us", 2.0)]));
        assert_eq!(
            sections(&path),
            vec!["alpha".to_string(), "beta".to_string()]
        );
        let alpha = load_section(&path, "alpha").unwrap();
        assert_eq!(alpha.get("qps"), Some(&120.0));
        assert_eq!(alpha.get("p50_us"), Some(&2.0));
        let beta = load_section(&path, "beta").unwrap();
        assert_eq!(beta.get("hit_rate"), Some(&0.5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn comparator_is_direction_aware() {
        let old = metrics(&[("qps", 1000.0), ("p50_us", 100.0)]);
        // qps halved (regression), latency halved (improvement).
        let new = metrics(&[("qps", 500.0), ("p50_us", 50.0)]);
        let regs = compare_metrics("s", &old, &new, 0.35);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "qps");
        assert!(regs[0].relative_change < 0.0);

        // Latency doubled (regression), qps doubled (improvement).
        let new = metrics(&[("qps", 2000.0), ("p50_us", 200.0)]);
        let regs = compare_metrics("s", &old, &new, 0.35);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "p50_us");
        assert!(regs[0].relative_change > 0.0);
    }

    #[test]
    fn comparator_respects_tolerance_and_skips_unshared_metrics() {
        let old = metrics(&[("qps", 1000.0), ("gone", 3.0)]);
        // -20% at 35% tolerance: within bounds; `gone` has no counterpart.
        let new = metrics(&[("qps", 800.0), ("added_us", 9.0)]);
        assert!(compare_metrics("s", &old, &new, 0.35).is_empty());
        assert_eq!(compare_metrics("s", &old, &new, 0.10).len(), 1);
    }

    #[test]
    fn file_level_compare_walks_shared_sections() {
        let base = temp_path("cmp_base");
        let cand = temp_path("cmp_cand");
        let _ = std::fs::remove_file(&base);
        let _ = std::fs::remove_file(&cand);
        update_section(&base, "a", &metrics(&[("qps", 1000.0)]));
        update_section(&base, "b", &metrics(&[("p50_us", 10.0)]));
        update_section(&cand, "a", &metrics(&[("qps", 100.0)]));
        // Section `b` exists only in the baseline: ignored.
        let (regs, compared) = compare(&base, &cand, 0.35);
        assert_eq!(compared, 1);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].section, "a");
        let _ = std::fs::remove_file(&base);
        let _ = std::fs::remove_file(&cand);
    }

    #[test]
    fn direction_inference_uses_latency_suffix() {
        assert_eq!(direction_of("p50_us"), Direction::LowerIsBetter);
        assert_eq!(direction_of("miss_p50_us"), Direction::LowerIsBetter);
        assert_eq!(direction_of("open_ms"), Direction::LowerIsBetter);
        assert_eq!(
            direction_of("open_over_build_ratio"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_of("qps"), Direction::HigherIsBetter);
        assert_eq!(direction_of("hit_rate"), Direction::HigherIsBetter);
    }
}
