//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index). They share the workload
//! construction and reporting helpers defined here so that all experiments
//! run on the same seeded datasets and print uniform, machine-greppable rows.

pub mod baseline;

use fanns_dataset::ground_truth::{ground_truth, GroundTruth};
use fanns_dataset::synth::SyntheticSpec;
use fanns_dataset::types::{QuerySet, VectorDataset};
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};

/// Experiment scale, selected through the `FANNS_SCALE` environment variable
/// (`small` for CI/smoke runs, `medium` — the default — for the numbers in
/// EXPERIMENTS.md, `large` for longer runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~10K vectors, dozens of queries: seconds per experiment.
    Small,
    /// ~100K vectors, hundreds of queries: the default reporting scale.
    Medium,
    /// ~400K vectors: closer to the paper's regime, minutes per experiment.
    Large,
}

impl Scale {
    /// Reads the scale from `FANNS_SCALE` (defaults to `small` so that
    /// `cargo bench`/CI runs stay fast; EXPERIMENTS.md uses `medium`).
    pub fn from_env() -> Self {
        match std::env::var("FANNS_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "medium" => Scale::Medium,
            "large" => Scale::Large,
            _ => Scale::Small,
        }
    }

    /// Database size at this scale.
    pub fn num_vectors(&self) -> usize {
        match self {
            Scale::Small => 10_000,
            Scale::Medium => 100_000,
            Scale::Large => 400_000,
        }
    }

    /// Query-set size at this scale.
    pub fn num_queries(&self) -> usize {
        match self {
            Scale::Small => 64,
            Scale::Medium => 256,
            Scale::Large => 512,
        }
    }

    /// IVF cell counts appropriate for this database size.
    pub fn nlist_grid(&self) -> Vec<usize> {
        match self {
            Scale::Small => vec![32, 64, 128],
            Scale::Medium => vec![64, 128, 256, 512],
            Scale::Large => vec![128, 256, 512, 1024],
        }
    }

    /// A mid-sized nlist used by experiments that fix the index.
    pub fn default_nlist(&self) -> usize {
        match self {
            Scale::Small => 64,
            Scale::Medium => 256,
            Scale::Large => 512,
        }
    }
}

/// A fully prepared workload: database, queries, exact ground truth.
pub struct Workload {
    /// Human-readable dataset name (`SIFT-like` / `Deep-like`).
    pub name: String,
    /// The database vectors.
    pub database: VectorDataset,
    /// The query set.
    pub queries: QuerySet,
    /// Exact top-100 ground truth (truncate for smaller K).
    pub ground_truth: GroundTruth,
}

/// Builds the SIFT-like workload at the given scale (seeded, reproducible).
pub fn sift_workload(scale: Scale) -> Workload {
    let spec = SyntheticSpec::sift_medium(42)
        .with_vectors(scale.num_vectors())
        .with_queries(scale.num_queries());
    build_workload("SIFT-like", spec)
}

/// Builds the Deep-like workload at the given scale.
pub fn deep_workload(scale: Scale) -> Workload {
    let spec = SyntheticSpec::deep_medium(43)
        .with_vectors(scale.num_vectors())
        .with_queries(scale.num_queries());
    build_workload("Deep-like", spec)
}

fn build_workload(name: &str, spec: SyntheticSpec) -> Workload {
    let (database, queries) = spec.generate();
    let ground_truth = ground_truth(&database, &queries, 100);
    Workload {
        name: name.to_string(),
        database,
        queries,
        ground_truth,
    }
}

/// Builds an IVF-PQ index on a workload with the paper's m=16 codes.
///
/// When `FANNS_INDEX_DIR` names a directory, built indexes are persisted
/// there in the on-disk storage format (`fanns_ivf::storage`) keyed by the
/// workload/parameter fingerprint, and subsequent runs `mmap`-load instead
/// of retraining — the figure binaries then start in milliseconds. A cache
/// file that fails validation (corruption, format bump) is rebuilt, not
/// trusted.
pub fn build_index(workload: &Workload, nlist: usize, opq: bool, seed: u64) -> IvfPqIndex {
    let cfg = IvfPqTrainConfig::new(nlist)
        .with_m(16)
        .with_ksub(256)
        .with_opq(opq)
        .with_train_sample(30_000)
        .with_seed(seed);
    let cache_path = std::env::var_os("FANNS_INDEX_DIR").map(|dir| {
        std::path::PathBuf::from(dir).join(format!(
            "{}-n{}-nlist{nlist}-opq{}-seed{seed}.fanns",
            workload.name.to_lowercase().replace([' ', '/'], "_"),
            workload.database.len(),
            u8::from(opq),
        ))
    });
    if let Some(path) = &cache_path {
        if path.is_file() {
            match fanns_ivf::storage::open_index(path) {
                Ok(mapped) => {
                    let start = std::time::Instant::now();
                    let index = mapped.to_owned_index();
                    println!(
                        "[index-cache] loaded {} in {:.1} ms (cold start, mmap)",
                        path.display(),
                        start.elapsed().as_secs_f64() * 1e3
                    );
                    if index.config() == &cfg {
                        return index;
                    }
                    println!("[index-cache] config mismatch, rebuilding");
                }
                Err(err) => println!("[index-cache] {}: {err}; rebuilding", path.display()),
            }
        }
    }
    let index = IvfPqIndex::build(&workload.database, &cfg);
    if let Some(path) = &cache_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match index.write_index(path) {
            Ok(bytes) => println!(
                "[index-cache] saved {} ({:.1} MiB)",
                path.display(),
                bytes as f64 / (1024.0 * 1024.0)
            ),
            Err(err) => println!("[index-cache] save failed: {err}"),
        }
    }
    index
}

/// Prints a section header so experiment output is easy to navigate.
pub fn print_header(experiment: &str, description: &str) {
    println!("\n==================================================================");
    println!("{experiment}: {description}");
    println!("==================================================================");
}

/// Formats a fraction as a percentage string.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_small() {
        // The env var is not set in the test environment.
        if std::env::var("FANNS_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Small.num_vectors() < Scale::Medium.num_vectors());
        assert!(Scale::Medium.num_vectors() < Scale::Large.num_vectors());
        assert!(!Scale::Small.nlist_grid().is_empty());
    }

    #[test]
    fn pct_formats_fractions() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.317), "31.7%");
    }
}
