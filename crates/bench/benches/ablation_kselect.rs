//! Ablation: the two K-selection microarchitectures of §5.1.2.
//!
//! Benchmarks the functional HPQ and HSMPQG units on the same input streams
//! and also reports (via the cycle model, printed once) the hardware cycles
//! each would take — the trade-off that decides which one the DSE picks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fanns_hwsim::config::SelectArch;
use fanns_hwsim::priority_queue::QueueItem;
use fanns_hwsim::select::{KSelectionUnit, SelectionSpec};

fn make_streams(z: usize, v: usize) -> Vec<Vec<QueueItem>> {
    (0..z)
        .map(|i| {
            (0..v)
                .map(|j| {
                    let x = ((i * 2654435761 + j * 40503) % 1_000_000) as f32;
                    QueueItem::new(x, (i * v + j) as u32)
                })
                .collect()
        })
        .collect()
}

fn bench_selection_archs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kselect");
    group.sample_size(20);
    for &(z, s) in &[(16usize, 10usize), (64, 10), (64, 100)] {
        let streams = make_streams(z, 256);
        for arch in [SelectArch::Hpq, SelectArch::Hsmpqg] {
            let spec = SelectionSpec::new(arch, z, s);
            if arch == SelectArch::Hsmpqg && !spec.hsmpqg_applicable() {
                continue;
            }
            // Report the modelled hardware cost once per configuration.
            eprintln!(
                "[model] z={z} s={s} {}: {} cycles/query, {} queue registers, {} bitonic CSUs",
                arch.name(),
                spec.cycles_per_query(256),
                spec.priority_queue_registers(),
                spec.bitonic_compare_swap_units()
            );
            group.bench_with_input(
                BenchmarkId::new(arch.name(), format!("z{z}_s{s}")),
                &spec,
                |b, spec| {
                    b.iter(|| {
                        let mut unit = KSelectionUnit::new(*spec);
                        unit.select(black_box(&streams))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selection_archs);
criterion_main!(benches);
