//! Criterion companion to the Figure 3 harness: wall-clock cost of the CPU
//! six-stage search as nprobe, nlist and K change. The relative growth of the
//! per-stage costs is what shifts the bottleneck in the paper's Figure 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fanns_bench::{build_index, sift_workload, Scale};
use fanns_ivf::search::search;

fn bench_nprobe_sweep(c: &mut Criterion) {
    let workload = sift_workload(Scale::Small);
    let index = build_index(&workload, 64, false, 7);
    let query = workload.queries.get(0).to_vec();

    let mut group = c.benchmark_group("fig3_cpu_nprobe_sweep");
    group.sample_size(20);
    for nprobe in [1usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(nprobe),
            &nprobe,
            |b, &nprobe| {
                b.iter(|| search(&index, black_box(&query), 10, nprobe));
            },
        );
    }
    group.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let workload = sift_workload(Scale::Small);
    let index = build_index(&workload, 64, false, 7);
    let query = workload.queries.get(1).to_vec();

    let mut group = c.benchmark_group("fig3_cpu_k_sweep");
    group.sample_size(20);
    for k in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| search(&index, black_box(&query), k, 16));
        });
    }
    group.finish();
}

fn bench_nlist_sweep(c: &mut Criterion) {
    let workload = sift_workload(Scale::Small);
    let mut group = c.benchmark_group("fig3_cpu_nlist_sweep");
    group.sample_size(20);
    for nlist in [32usize, 128] {
        let index = build_index(&workload, nlist, false, 7);
        let query = workload.queries.get(2).to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(nlist), &nlist, |b, _| {
            b.iter(|| search(&index, black_box(&query), 10, 16));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_nprobe_sweep,
    bench_k_sweep,
    bench_nlist_sweep
);
criterion_main!(benches);
