//! Criterion companion to the Figure 10 harness: per-query cost of the CPU
//! baseline versus the simulated FANNS accelerator (functional + cycle model)
//! on the same index and parameters.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fanns_bench::{build_index, sift_workload, Scale};
use fanns_hwsim::accelerator::Accelerator;
use fanns_hwsim::config::AcceleratorConfig;
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::search::search;

fn bench_cpu_vs_simulated_fpga(c: &mut Criterion) {
    let workload = sift_workload(Scale::Small);
    let index = build_index(&workload, 64, false, 9);
    let params = IvfPqParams::new(64, 8, 10).with_m(16);
    let accelerator = Accelerator::new(&index, AcceleratorConfig::balanced(), params).unwrap();
    let query = workload.queries.get(0).to_vec();

    let mut group = c.benchmark_group("fig10_single_query");
    group.sample_size(20);
    group.bench_function("cpu_search", |b| {
        b.iter(|| search(&index, black_box(&query), 10, 8));
    });
    group.bench_function("fanns_simulator_fast_path", |b| {
        b.iter(|| accelerator.simulate_query_fast(black_box(&query)));
    });
    group.bench_function("fanns_simulator_hw_functional", |b| {
        b.iter(|| accelerator.simulate_query(black_box(&query)));
    });
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let workload = sift_workload(Scale::Small);
    let index = build_index(&workload, 64, false, 9);
    let params = IvfPqParams::new(64, 8, 10).with_m(16);
    let searcher = fanns_ivf::baseline_cpu::CpuSearcher::new(&index, params);

    let mut group = c.benchmark_group("fig10_batch");
    group.sample_size(10);
    group.bench_function("cpu_batch_64_queries", |b| {
        b.iter(|| searcher.search_batch(black_box(&workload.queries)));
    });
    group.finish();
}

criterion_group!(benches, bench_cpu_vs_simulated_fpga, bench_batch_throughput);
criterion_main!(benches);
