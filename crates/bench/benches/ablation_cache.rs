//! Ablation: index caching (on-chip vs HBM) — the third hardware choice of
//! Table 2 — plus the software cost of the structures being cached.
//!
//! The cycle-model consequences are reported once per configuration (the
//! on-chip variant removes the HBM latency/II penalty from Stage IVFDist and
//! Stage BuildLUT); the measured benchmark covers the corresponding software
//! kernels: building the distance lookup table and scanning codes with it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fanns_bench::{build_index, sift_workload, Scale};
use fanns_hwsim::config::{AcceleratorConfig, IndexStore};
use fanns_ivf::params::IvfPqParams;
use fanns_perfmodel::qps::{predict_qps, WorkloadModel};

fn bench_cache_ablation(c: &mut Criterion) {
    let workload = sift_workload(Scale::Small);
    let index = build_index(&workload, 64, false, 11);
    let params = IvfPqParams::new(64, 8, 10).with_m(16);
    let query = workload.queries.get(0).to_vec();

    // Cycle-model consequences of the caching decision, reported once.
    let wm = WorkloadModel::from_index(&index, &params);
    for (label, store) in [("on-chip", IndexStore::OnChip), ("HBM", IndexStore::Hbm)] {
        let mut cfg = AcceleratorConfig::balanced();
        cfg.ivf_store = store;
        cfg.lut_store = store;
        let pred = predict_qps(&wm, &cfg);
        eprintln!(
            "[model] IVF/LUT tables in {label}: predicted QPS {:.0}, bottleneck {}",
            pred.qps,
            pred.bottleneck.name()
        );
    }

    let mut group = c.benchmark_group("ablation_cache_software_kernels");
    group.sample_size(20);
    group.bench_function("build_distance_table", |b| {
        b.iter(|| index.pq().build_distance_table(black_box(&query)));
    });
    let lut = index.pq().build_distance_table(&query);
    let cells: Vec<usize> = (0..index.nlist()).collect();
    group.bench_function("adc_scan_all_cells", |b| {
        b.iter(|| fanns_ivf::search::stage_pq_dist(&index, black_box(&cells), &lut));
    });
    group.finish();
}

criterion_group!(benches, bench_cache_ablation);
criterion_main!(benches);
