//! # FANNS — hardware–algorithm co-design for vector search
//!
//! A from-scratch Rust reproduction of *"Co-design Hardware and Algorithm for
//! Vector Search"* (SC '23). Given a dataset, a recall goal (e.g. "R@10 ≥
//! 80 %") and an FPGA device description, the framework
//!
//! 1. trains a family of IVF-PQ indexes and measures their recall–nprobe
//!    relationship ([`fanns_dse::index_explorer`]),
//! 2. enumerates every accelerator design that fits the device
//!    ([`fanns_perfmodel::enumerate`]),
//! 3. predicts the QPS of every (parameters × design) combination and picks
//!    the best ([`fanns_dse::optimizer`]),
//! 4. "generates" the accelerator — a structural kernel plan plus a runnable
//!    cycle-level simulator instance ([`fanns_codegen`]),
//! 5. optionally attaches a network stack and evaluates scale-out
//!    deployments ([`fanns_scaleout`]),
//! 6. and serves online traffic against the result ([`fanns_serve`]):
//!    [`GeneratedAccelerator::into_backend`] drops the generated design
//!    behind the dynamic-batching, replicated, deadline-aware
//!    [`fanns_serve::QueryEngine`].
//!
//! The heavy lifting lives in the per-subsystem crates re-exported below;
//! this crate provides the end-to-end [`framework::Fanns`] entry point that
//! mirrors the workflow of Figure 4.
//!
//! ```no_run
//! use fanns::framework::{Fanns, FannsRequest};
//! use fanns_dataset::synth::SyntheticSpec;
//!
//! let (database, queries) = SyntheticSpec::sift_medium(42).generate();
//! let request = FannsRequest::recall_goal(10, 0.80).laptop_scale();
//! let outcome = Fanns::new(request).run(&database, &queries);
//! match outcome {
//!     Ok(generated) => println!("{}", generated.summary()),
//!     Err(e) => eprintln!("co-design failed: {e}"),
//! }
//! ```

pub mod framework;

pub use framework::{Fanns, FannsError, FannsRequest, GeneratedAccelerator, WorkflowTimings};

// Re-export the subsystem crates under one roof for downstream users.
pub use fanns_codegen as codegen;
pub use fanns_dataset as dataset;
pub use fanns_dse as dse;
pub use fanns_hwsim as hwsim;
pub use fanns_ivf as ivf;
pub use fanns_perfmodel as perfmodel;
pub use fanns_quantize as quantize;
pub use fanns_scaleout as scaleout;
pub use fanns_serve as serve;
