//! The end-to-end FANNS workflow (Figure 4, steps 1–7).

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use fanns_codegen::emit::emit_kernel_plan;
use fanns_codegen::plan::{instantiate, AcceleratorPlan};
use fanns_dataset::ground_truth::ground_truth;
use fanns_dataset::types::{QuerySet, VectorDataset};
use fanns_dse::index_explorer::{explore_indexes, IndexCandidate, IndexExplorerConfig};
use fanns_dse::optimizer::{co_design, CoDesignChoice, CoDesignConfig};
use fanns_hwsim::accelerator::SimulationReport;
use fanns_perfmodel::device::FpgaDevice;

/// Everything the user provides: the recall goal and the deployment target
/// (step 1 of the workflow).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FannsRequest {
    /// Number of results per query the recall goal refers to.
    pub k: usize,
    /// The recall goal in [0, 1] (e.g. 0.8 for "R@10 = 80 %").
    pub recall_goal: f64,
    /// The target FPGA device.
    pub device: FpgaDevice,
    /// Index exploration grid (step 2).
    pub explorer: IndexExplorerConfig,
    /// Hardware/co-design search configuration (steps 4–5).
    pub co_design: CoDesignConfig,
    /// Whether the generated accelerator carries a network stack.
    pub with_network_stack: bool,
}

impl FannsRequest {
    /// Builds a request for a recall goal, with defaults sized for the
    /// laptop-scale synthetic datasets.
    pub fn recall_goal(k: usize, recall_goal: f64) -> Self {
        Self {
            k,
            recall_goal,
            device: FpgaDevice::alveo_u55c(),
            explorer: IndexExplorerConfig::laptop_scale(k, recall_goal),
            co_design: CoDesignConfig::new(k),
            with_network_stack: false,
        }
    }

    /// Shrinks the exploration grids to laptop scale (the default).
    pub fn laptop_scale(mut self) -> Self {
        self.explorer = IndexExplorerConfig::laptop_scale(self.k, self.recall_goal);
        self
    }

    /// Shrinks the exploration grids to unit-test scale.
    pub fn test_scale(mut self) -> Self {
        self.explorer = IndexExplorerConfig::tiny(self.k, self.recall_goal);
        self.co_design = CoDesignConfig::small(self.k);
        self
    }

    /// Attaches a hardware network stack to the generated accelerator.
    pub fn with_network_stack(mut self, enabled: bool) -> Self {
        self.with_network_stack = enabled;
        self.co_design.with_network_stack = enabled;
        self
    }
}

/// Wall-clock timing of each workflow step (the reproduction's Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkflowTimings {
    /// Ground-truth computation time (not counted by the paper, reported for
    /// completeness).
    pub ground_truth: Duration,
    /// "Build indexes" + "get recall-nprobe relationship" (steps 2–3).
    pub explore_indexes: Duration,
    /// "Predict optimal design" (steps 4–5).
    pub predict_design: Duration,
    /// "FPGA code generation" (step 6).
    pub code_generation: Duration,
    /// "Bitstream generation" — here, simulator instantiation (step 7).
    pub instantiate: Duration,
}

/// Errors produced by the end-to-end workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FannsError {
    /// No trained index reached the recall goal with any explored nprobe.
    RecallGoalUnreachable {
        /// The requested goal.
        goal: f64,
    },
    /// No hardware design fits the device for any qualifying index.
    NoFeasibleDesign,
    /// The chosen design could not be instantiated against the index.
    Instantiation(String),
}

impl std::fmt::Display for FannsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FannsError::RecallGoalUnreachable { goal } => {
                write!(f, "no explored index reaches the recall goal {goal}")
            }
            FannsError::NoFeasibleDesign => write!(f, "no hardware design fits the device"),
            FannsError::Instantiation(msg) => write!(f, "accelerator instantiation failed: {msg}"),
        }
    }
}

impl std::error::Error for FannsError {}

/// The product of a successful co-design run.
#[derive(Debug)]
pub struct GeneratedAccelerator {
    /// The winning combination of parameters and hardware design.
    pub choice: CoDesignChoice,
    /// The index the accelerator serves (owned; the "database loaded in HBM").
    pub index: fanns_ivf::index::IvfPqIndex,
    /// All index candidates that met the recall goal (for reporting).
    pub candidates_summary: Vec<(String, usize, f64)>,
    /// The build plan (params + design + prediction).
    pub plan: AcceleratorPlan,
    /// The emitted structural kernel plan (pseudo-HLS text).
    pub kernel_plan: String,
    /// Per-step wall-clock timings (Table 3).
    pub timings: WorkflowTimings,
}

impl GeneratedAccelerator {
    /// Simulates a batch of queries on the generated accelerator.
    pub fn simulate(&self, queries: &QuerySet) -> SimulationReport {
        let accelerator =
            instantiate(&self.plan, &self.index).expect("plan was validated during generation");
        accelerator.simulate_batch(queries, false)
    }

    /// Consumes the generated accelerator into an online serving backend:
    /// the index (the "database in HBM") and the build plan move into a
    /// [`fanns_serve::AcceleratorBackend`] ready to sit behind a
    /// [`fanns_serve::QueryEngine`].
    pub fn into_backend(self) -> fanns_serve::AcceleratorBackend {
        fanns_serve::AcceleratorBackend::new(self.index, self.plan)
    }

    /// One-paragraph human-readable summary of the outcome.
    pub fn summary(&self) -> String {
        format!(
            "FANNS chose {} with nprobe={} on a design [{}]; predicted {:.0} QPS (bottleneck: {}), {} combinations evaluated",
            self.choice.index_label,
            self.choice.params.nprobe,
            self.choice.design.summary(),
            self.choice.prediction.qps,
            self.choice.prediction.bottleneck.name(),
            self.choice.combinations_evaluated
        )
    }
}

/// The framework entry point.
#[derive(Debug, Clone)]
pub struct Fanns {
    request: FannsRequest,
}

impl Fanns {
    /// Creates a framework instance for a request.
    pub fn new(request: FannsRequest) -> Self {
        Self { request }
    }

    /// The bound request.
    pub fn request(&self) -> &FannsRequest {
        &self.request
    }

    /// Runs the full workflow: explore indexes, enumerate designs, predict the
    /// optimum, generate and "compile" the accelerator.
    pub fn run(
        &self,
        database: &VectorDataset,
        sample_queries: &QuerySet,
    ) -> Result<GeneratedAccelerator, FannsError> {
        let mut timings = WorkflowTimings::default();
        let req = &self.request;

        // Ground truth for the recall evaluation on the sample query set.
        let t = Instant::now();
        let gt = ground_truth(database, sample_queries, req.k);
        timings.ground_truth = t.elapsed();

        // Steps 2–3: index exploration.
        let t = Instant::now();
        let mut candidates: Vec<IndexCandidate> =
            explore_indexes(database, sample_queries, &gt, &req.explorer);
        timings.explore_indexes = t.elapsed();
        if candidates.is_empty() {
            return Err(FannsError::RecallGoalUnreachable {
                goal: req.recall_goal,
            });
        }

        // Steps 4–5: hardware enumeration + QPS prediction.
        let t = Instant::now();
        let choice = co_design(&candidates, &req.device, &req.co_design)
            .ok_or(FannsError::NoFeasibleDesign)?;
        timings.predict_design = t.elapsed();

        let candidates_summary: Vec<(String, usize, f64)> = candidates
            .iter()
            .map(|c| (c.label(), c.min_nprobe, c.achieved_recall))
            .collect();
        let winning_index = candidates.swap_remove(choice.candidate_idx).index;

        // Step 6: code generation.
        let t = Instant::now();
        let plan = AcceleratorPlan::new(
            format!("fanns_k{}_r{:.0}", req.k, req.recall_goal * 100.0),
            choice.index_label.clone(),
            choice.params,
            choice.design,
            Some(choice.prediction),
        )
        .with_network_stack(req.with_network_stack);
        let kernel_plan = emit_kernel_plan(&plan);
        timings.code_generation = t.elapsed();

        // Step 7: "compilation" — validate instantiation against the index.
        let t = Instant::now();
        instantiate(&plan, &winning_index).map_err(|e| FannsError::Instantiation(e.to_string()))?;
        timings.instantiate = t.elapsed();

        Ok(GeneratedAccelerator {
            choice,
            index: winning_index,
            candidates_summary,
            plan,
            kernel_plan,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::synth::SyntheticSpec;

    fn small_run(k: usize, goal: f64) -> Result<GeneratedAccelerator, FannsError> {
        let (db, queries) = SyntheticSpec::sift_small(101).generate();
        let request = FannsRequest::recall_goal(k, goal).test_scale();
        Fanns::new(request).run(&db, &queries)
    }

    #[test]
    fn end_to_end_workflow_generates_an_accelerator() {
        let generated = small_run(10, 0.35).expect("co-design should succeed at a 35% recall goal");
        assert!(generated.choice.prediction.qps > 0.0);
        assert!(!generated.kernel_plan.is_empty());
        assert!(!generated.candidates_summary.is_empty());
        assert!(generated.summary().contains("FANNS chose"));
        // The chosen parameters reach the recall goal by construction.
        let (_, nprobe, recall) = &generated.candidates_summary[0];
        assert!(*nprobe >= 1);
        assert!(*recall >= 0.0);
    }

    #[test]
    fn generated_accelerator_can_serve_queries() {
        let (db, queries) = SyntheticSpec::sift_small(102).generate();
        let request = FannsRequest::recall_goal(10, 0.35).test_scale();
        let generated = Fanns::new(request).run(&db, &queries).unwrap();
        let report = generated.simulate(&queries);
        assert_eq!(report.queries, queries.len());
        assert!(report.qps > 0.0);
    }

    #[test]
    fn unreachable_recall_goal_is_reported() {
        let err = small_run(10, 1.01).unwrap_err();
        assert!(matches!(err, FannsError::RecallGoalUnreachable { .. }));
        assert!(err.to_string().contains("recall goal"));
    }

    #[test]
    fn workflow_timings_are_recorded() {
        let generated = small_run(10, 0.4).unwrap();
        assert!(generated.timings.explore_indexes > Duration::ZERO);
        assert!(generated.timings.predict_design > Duration::ZERO);
    }
}
