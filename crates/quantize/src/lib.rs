//! Quantization substrate for the FANNS reproduction.
//!
//! The IVF-PQ algorithm the paper accelerates (§2.1) is built from three
//! quantization components, all implemented here from scratch:
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding, used both for the
//!   coarse (IVF) quantizer and for the per-subspace PQ codebooks,
//! * [`pq`] — product quantization: training, encoding into `m`-byte codes,
//!   and construction of the per-query asymmetric-distance lookup tables
//!   (Stage BuildLUT) plus the table-lookup distance evaluation (Stage PQDist,
//!   Equation 1 of the paper),
//! * [`opq`] — optimized product quantization: a learned rotation applied to
//!   the vector space before PQ (Stage OPQ at query time),
//! * [`linalg`] — the small dense-matrix kernel set (multiply, transpose,
//!   orthonormalisation, Jacobi eigendecomposition/SVD) needed to train the
//!   OPQ rotation without pulling in a LAPACK binding,
//! * [`distance`] — scalar L2 / inner-product kernels shared by everything.

#![warn(missing_docs)]

pub mod distance;
pub mod kmeans;
pub mod linalg;
pub mod opq;
pub mod pq;

pub use kmeans::{KMeans, KMeansConfig};
pub use linalg::Matrix;
pub use opq::OpqTransform;
pub use pq::{DistanceTable, PqConfig, ProductQuantizer};
