//! Lloyd's k-means with k-means++ seeding.
//!
//! k-means is used twice by IVF-PQ: once to train the coarse quantizer (the
//! `nlist` Voronoi cell centroids of the IVF index, §2.1.1) and once per PQ
//! sub-space to train the 256-entry codebooks (§2.1.2). Assignment — the
//! dominant cost — is parallelised over input vectors with rayon.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::distance::{argmin_l2, l2_sq};

/// Configuration for a k-means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters to learn.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop early when the relative improvement of the mean squared error
    /// drops below this threshold.
    pub tol: f64,
    /// RNG seed for the k-means++ initialisation.
    pub seed: u64,
    /// Use k-means++ seeding (true) or uniform random seeding (false).
    pub plus_plus_init: bool,
}

impl KMeansConfig {
    /// A sensible default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 20,
            tol: 1e-4,
            seed: 0x5EED,
            plus_plus_init: true,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style iteration-limit override.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }
}

/// A trained k-means model: `k` centroids of dimensionality `dim`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    dim: usize,
    centroids: Vec<f32>,
    /// Mean squared distance of the training points to their centroid after
    /// the final iteration (the quantization error).
    pub mse: f64,
    /// Number of Lloyd iterations actually executed.
    pub iterations: usize,
}

impl KMeans {
    /// Trains k-means on `data` (flat row-major, `dim`-dimensional).
    ///
    /// If there are fewer points than clusters the surplus centroids are
    /// duplicates of sampled points; callers (e.g. tiny unit tests) still get
    /// a well-formed model.
    ///
    /// # Panics
    /// Panics if `data` is empty, `dim == 0`, or `config.k == 0`.
    pub fn train(data: &[f32], dim: usize, config: &KMeansConfig) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(!data.is_empty(), "cannot train k-means on an empty dataset");
        assert!(
            data.len().is_multiple_of(dim),
            "data length must be a multiple of dim"
        );
        assert!(config.k > 0, "k must be positive");
        let n = data.len() / dim;
        let k = config.k;

        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut centroids = if config.plus_plus_init {
            kmeanspp_init(data, dim, n, k, &mut rng)
        } else {
            random_init(data, dim, n, k, &mut rng)
        };

        let mut prev_mse = f64::INFINITY;
        let mut mse = f64::INFINITY;
        let mut iterations = 0usize;

        for iter in 0..config.max_iters {
            iterations = iter + 1;
            // Assignment step (parallel over points).
            let assignments: Vec<(usize, f32)> = (0..n)
                .into_par_iter()
                .map(|i| argmin_l2(&data[i * dim..(i + 1) * dim], &centroids, dim))
                .collect();

            mse = assignments.par_iter().map(|(_, d)| *d as f64).sum::<f64>() / n as f64;

            // Update step: accumulate sums per centroid.
            let mut sums = vec![0.0f64; k * dim];
            let mut counts = vec![0usize; k];
            for (i, (c, _)) in assignments.iter().enumerate() {
                counts[*c] += 1;
                let v = &data[i * dim..(i + 1) * dim];
                let s = &mut sums[c * dim..(c + 1) * dim];
                for d in 0..dim {
                    s[d] += v[d] as f64;
                }
            }

            // Handle empty clusters by re-seeding them at the point farthest
            // from its centroid (standard Faiss-style fix-up).
            let mut farthest: Vec<usize> = (0..n).collect();
            farthest.sort_by(|&a, &b| {
                assignments[b]
                    .1
                    .partial_cmp(&assignments[a].1)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut steal_iter = farthest.into_iter();

            for c in 0..k {
                if counts[c] == 0 {
                    if let Some(p) = steal_iter.next() {
                        centroids[c * dim..(c + 1) * dim]
                            .copy_from_slice(&data[p * dim..(p + 1) * dim]);
                    }
                } else {
                    for d in 0..dim {
                        centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                    }
                }
            }

            if prev_mse.is_finite() && (prev_mse - mse).abs() / prev_mse.max(1e-30) < config.tol {
                break;
            }
            prev_mse = mse;
        }

        Self {
            dim,
            centroids,
            mse,
            iterations,
        }
    }

    /// Rebuilds a model from a flat row-major centroid buffer (the inverse
    /// of [`KMeans::centroids`]) — used by the on-disk index loader, which
    /// persists only the centroids. Training statistics (`mse`,
    /// `iterations`) are not stored in the index format and reset to zero;
    /// no query-time computation reads them.
    ///
    /// # Panics
    /// Panics if `dim == 0`, the buffer is empty, or its length is not a
    /// multiple of `dim`.
    pub fn from_centroids(dim: usize, centroids: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(!centroids.is_empty(), "centroid buffer must not be empty");
        assert!(
            centroids.len().is_multiple_of(dim),
            "centroid buffer length {} is not a multiple of dim {dim}",
            centroids.len()
        );
        Self {
            dim,
            centroids,
            mse: 0.0,
            iterations: 0,
        }
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.centroids.len() / self.dim
    }

    /// Centroid dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Flat row-major centroid buffer.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Borrow centroid `i`.
    pub fn centroid(&self, i: usize) -> &[f32] {
        &self.centroids[i * self.dim..(i + 1) * self.dim]
    }

    /// Assigns a vector to its nearest centroid, returning (index, distance).
    pub fn assign(&self, v: &[f32]) -> (usize, f32) {
        argmin_l2(v, &self.centroids, self.dim)
    }

    /// Assigns every vector of a flat buffer in parallel.
    pub fn assign_all(&self, data: &[f32]) -> Vec<usize> {
        assert!(data.len().is_multiple_of(self.dim));
        let n = data.len() / self.dim;
        (0..n)
            .into_par_iter()
            .map(|i| self.assign(&data[i * self.dim..(i + 1) * self.dim]).0)
            .collect()
    }
}

/// k-means++ seeding: pick each next centroid with probability proportional to
/// its squared distance to the closest already-chosen centroid.
fn kmeanspp_init(data: &[f32], dim: usize, n: usize, k: usize, rng: &mut ChaCha8Rng) -> Vec<f32> {
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);

    let mut dists: Vec<f32> = (0..n)
        .map(|i| l2_sq(&data[i * dim..(i + 1) * dim], &centroids[0..dim]))
        .collect();

    while centroids.len() < k * dim {
        let total: f64 = dists.iter().map(|&d| d as f64).sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let new_c = &data[chosen * dim..(chosen + 1) * dim];
        centroids.extend_from_slice(new_c);
        // Update the distance-to-nearest-centroid cache.
        for i in 0..n {
            let d = l2_sq(&data[i * dim..(i + 1) * dim], new_c);
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

/// Uniform random seeding (used when `plus_plus_init` is disabled).
fn random_init(data: &[f32], dim: usize, n: usize, k: usize, rng: &mut ChaCha8Rng) -> Vec<f32> {
    let mut centroids = Vec::with_capacity(k * dim);
    for _ in 0..k {
        let i = rng.gen_range(0..n);
        centroids.extend_from_slice(&data[i * dim..(i + 1) * dim]);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-d blobs.
    fn blobs() -> Vec<f32> {
        let mut data = Vec::new();
        let centers = [(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 10.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for &(cx, cy) in &centers {
            for _ in 0..50 {
                data.push(cx + rng.gen_range(-0.5..0.5));
                data.push(cy + rng.gen_range(-0.5..0.5));
            }
        }
        data
    }

    #[test]
    fn kmeans_recovers_well_separated_blobs() {
        let data = blobs();
        let model = KMeans::train(&data, 2, &KMeansConfig::new(3).with_seed(1));
        assert_eq!(model.k(), 3);
        assert!(
            model.mse < 1.0,
            "mse {} too high for separated blobs",
            model.mse
        );
        // Every blob centre should be close to some centroid.
        for &(cx, cy) in &[(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 10.0)] {
            let (_, d) = model.assign(&[cx, cy]);
            assert!(d < 1.0, "centroid far from blob centre: {d}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = blobs();
        let a = KMeans::train(&data, 2, &KMeansConfig::new(4).with_seed(9));
        let b = KMeans::train(&data, 2, &KMeansConfig::new(4).with_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn assign_all_matches_assign() {
        let data = blobs();
        let model = KMeans::train(&data, 2, &KMeansConfig::new(3));
        let all = model.assign_all(&data);
        for i in 0..all.len() {
            assert_eq!(all[i], model.assign(&data[i * 2..i * 2 + 2]).0);
        }
    }

    #[test]
    fn more_clusters_than_points_is_handled() {
        let data = vec![0.0f32, 0.0, 1.0, 1.0]; // two 2-d points
        let model = KMeans::train(&data, 2, &KMeansConfig::new(5));
        assert_eq!(model.k(), 5);
        // Every point should be at distance 0 from some centroid.
        assert!(model.assign(&[0.0, 0.0]).1 < 1e-9);
        assert!(model.assign(&[1.0, 1.0]).1 < 1e-9);
    }

    #[test]
    fn empty_clusters_are_reseeded() {
        // Many identical points plus one outlier: without the fix-up most
        // centroids would collapse onto the duplicate point.
        let mut data = vec![0.0f32; 2 * 40];
        data.extend_from_slice(&[100.0, 100.0]);
        let model = KMeans::train(&data, 2, &KMeansConfig::new(4).with_seed(2));
        // The outlier must be representable with tiny error.
        assert!(model.assign(&[100.0, 100.0]).1 < 1e-6);
    }

    #[test]
    fn random_init_also_converges() {
        let data = blobs();
        let cfg = KMeansConfig {
            plus_plus_init: false,
            ..KMeansConfig::new(3)
        };
        let model = KMeans::train(&data, 2, &cfg);
        assert!(model.mse < 5.0);
    }

    #[test]
    fn mse_decreases_with_more_clusters() {
        let data = blobs();
        let few = KMeans::train(&data, 2, &KMeansConfig::new(2).with_seed(5));
        let many = KMeans::train(&data, 2, &KMeansConfig::new(8).with_seed(5));
        assert!(many.mse <= few.mse);
    }
}
