//! Scalar distance kernels.
//!
//! Every similarity evaluation in the workspace — coarse centroid distances
//! (Stage IVFDist), sub-quantizer distances (Stage BuildLUT), exact reranking
//! and ground truth — reduces to these two kernels. They are written as plain
//! indexed loops so LLVM auto-vectorises them; benchmarks in `fanns-bench`
//! confirm they saturate memory bandwidth on the synthetic workloads.

/// Squared Euclidean (L2) distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Inner product of two vectors.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Squared L2 norm of a vector.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Finds the index of the closest centroid (by squared L2) and its distance.
///
/// `centroids` is a flat row-major `[k * dim]` buffer. Ties break toward the
/// lower index so assignment is deterministic.
#[inline]
pub fn argmin_l2(vector: &[f32], centroids: &[f32], dim: usize) -> (usize, f32) {
    debug_assert_eq!(vector.len(), dim);
    debug_assert!(!centroids.is_empty() && centroids.len().is_multiple_of(dim));
    let mut best = 0usize;
    let mut best_dist = f32::INFINITY;
    for (i, c) in centroids.chunks_exact(dim).enumerate() {
        let d = l2_sq(vector, c);
        if d < best_dist {
            best_dist = d;
            best = i;
        }
    }
    (best, best_dist)
}

/// Computes the squared L2 distance from `vector` to every centroid, appending
/// results to `out` (cleared first). Used by Stage IVFDist, where *all* nlist
/// centroid distances are evaluated for each query.
pub fn all_l2(vector: &[f32], centroids: &[f32], dim: usize, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(centroids.len() / dim);
    for c in centroids.chunks_exact(dim) {
        out.push(l2_sq(vector, c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_sq_basic() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn argmin_picks_nearest_and_breaks_ties_low() {
        let centroids = [0.0f32, 0.0, 2.0, 0.0, 2.0, 0.0]; // three 2-d centroids
        let (idx, d) = argmin_l2(&[1.9, 0.0], &centroids, 2);
        assert_eq!(idx, 1);
        assert!((d - 0.01).abs() < 1e-5);
        // Equidistant from centroid 1 and 2 (identical centroids): pick 1.
        let (idx, _) = argmin_l2(&[2.0, 0.0], &centroids, 2);
        assert_eq!(idx, 1);
    }

    #[test]
    fn all_l2_matches_individual_calls() {
        let centroids = [0.0f32, 0.0, 1.0, 1.0, -2.0, 3.0];
        let q = [0.5f32, 0.5];
        let mut out = Vec::new();
        all_l2(&q, &centroids, 2, &mut out);
        assert_eq!(out.len(), 3);
        for (i, c) in centroids.chunks_exact(2).enumerate() {
            assert_eq!(out[i], l2_sq(&q, c));
        }
    }
}
