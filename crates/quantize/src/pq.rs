//! Product quantization (PQ) and asymmetric distance computation (ADC).
//!
//! PQ (§2.1.2 of the paper) splits a `d`-dimensional vector into `m`
//! sub-vectors and quantizes each sub-vector with its own 256-entry codebook,
//! so a vector is stored as `m` bytes. At query time a *distance lookup table*
//! of shape `m × 256` is built once per query (Stage BuildLUT), and the
//! distance to any database vector is approximated by `m` table lookups plus
//! an add-reduction (Stage PQDist, Equation 1) — the operation the paper's
//! PQDist PEs implement with BRAM-backed tables and an add tree.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::distance::l2_sq;
use crate::kmeans::{KMeans, KMeansConfig};

/// Configuration of a product quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PqConfig {
    /// Number of sub-quantizers `m` (bytes per code). The paper uses m=16.
    pub m: usize,
    /// Number of centroids per sub-quantizer. The paper (and Faiss default)
    /// uses 256 so a sub-code fits in one byte; tests may use fewer.
    pub ksub: usize,
    /// k-means iterations per sub-quantizer.
    pub train_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PqConfig {
    /// The paper's configuration: `m`-byte codes with 256-entry codebooks.
    pub fn new(m: usize) -> Self {
        Self {
            m,
            ksub: 256,
            train_iters: 15,
            seed: 0xC0DE,
        }
    }

    /// Builder-style override of the per-subspace codebook size.
    pub fn with_ksub(mut self, ksub: usize) -> Self {
        self.ksub = ksub;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained product quantizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    ksub: usize,
    dsub: usize,
    /// Codebooks stored as `m` blocks of `ksub * dsub` floats.
    codebooks: Vec<f32>,
    /// Mean squared reconstruction error measured on the training set.
    pub train_error: f64,
}

/// A per-query asymmetric-distance lookup table: `m` rows of `ksub` partial
/// squared distances. Summing one entry per row reproduces Equation 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceTable {
    m: usize,
    ksub: usize,
    /// Row-major `m × ksub` table.
    table: Vec<f32>,
}

/// Number of padding bytes appended to a [`QuantizedLut`]'s backing buffer so
/// that 32-bit gather loads whose *low byte* is the last table entry stay in
/// bounds (a 4-byte load at offset `m*ksub - 1` reads 3 bytes past the end).
pub const QLUT_GATHER_PAD: usize = 4;

/// An int8-quantized copy of a [`DistanceTable`]: the affine image
/// `q[j][c] = round((t[j][c] - min_j) / scale)` stored as one `u8` per entry.
///
/// Quantization uses one *global* scale across all rows (so the per-code sum
/// of quantized entries is an affine image of the f32 ADC distance and can be
/// accumulated in integer lanes) and a *per-row* bias `min_j` (so every row
/// uses the full `[0, 255]` range regardless of its offset):
///
/// * `scale = max_j(max_j' - min_j') / 255` — the largest row range mapped
///   onto the 8-bit grid (zero when the table is constant per row),
/// * `bias = Σ_j min_j` — added back once per distance, not per entry.
///
/// The approximate distance for a code is `dequantize(Σ_j q[j][code[j]])`.
/// Because each entry is rounded to the nearest grid point, the per-entry
/// error is at most `scale / 2`, so the reconstruction error is bounded by
/// [`QuantizedLut::max_abs_error`]` = m · scale / 2`. Rankings produced from
/// quantized sums are therefore correct up to that additive slack; callers
/// that need exact top-K re-rank the int8 survivors with the f32 table (see
/// `fanns-ivf`'s int8 scan kernel).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLut {
    m: usize,
    ksub: usize,
    scale: f32,
    bias: f32,
    /// Row-major `m × ksub` entries plus [`QLUT_GATHER_PAD`] zero bytes.
    table: Vec<u8>,
}

impl QuantizedLut {
    /// Number of sub-quantizers (rows).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codebook size (columns).
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// The global quantization step (0 when every row is constant).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The additive bias `Σ_j min_j` restored by [`QuantizedLut::dequantize`].
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// The flat row-major `m × ksub` quantized table (padding excluded).
    pub fn as_flat(&self) -> &[u8] {
        &self.table[..self.m * self.ksub]
    }

    /// The backing buffer including [`QLUT_GATHER_PAD`] trailing zero bytes —
    /// the view SIMD gather kernels index so 4-byte loads anchored at any
    /// table entry stay in bounds.
    pub fn as_padded(&self) -> &[u8] {
        &self.table
    }

    /// Maps an integer entry sum back to the (approximate) f32 distance.
    #[inline]
    pub fn dequantize(&self, entry_sum: u32) -> f32 {
        entry_sum as f32 * self.scale + self.bias
    }

    /// Approximate ADC distance of a code through the quantized table.
    #[inline]
    pub fn adc_approx(&self, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.m);
        let mut acc = 0u32;
        for (j, &c) in code.iter().enumerate() {
            acc += u32::from(self.table[j * self.ksub + c as usize]);
        }
        self.dequantize(acc)
    }

    /// Worst-case absolute error of [`QuantizedLut::adc_approx`] versus the
    /// f32 table: `m · scale / 2` (each entry rounds to the nearest grid
    /// point, so it is off by at most half a step).
    pub fn max_abs_error(&self) -> f32 {
        self.m as f32 * self.scale * 0.5
    }

    /// Size of the quantized table in bytes (4× smaller than the f32 table,
    /// ignoring the constant gather padding).
    pub fn nbytes(&self) -> usize {
        self.m * self.ksub
    }
}

impl DistanceTable {
    /// Builds a table directly from a flat row-major `m × ksub` buffer
    /// (tests and caches that reconstruct tables without a quantizer).
    ///
    /// # Panics
    /// Panics if `table.len() != m * ksub`.
    pub fn from_flat(m: usize, ksub: usize, table: Vec<f32>) -> Self {
        assert_eq!(table.len(), m * ksub, "table must be m x ksub entries");
        Self { m, ksub, table }
    }

    /// Number of sub-quantizers (rows).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codebook size (columns).
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Borrow row `i` (the partial distances for sub-space `i`).
    pub fn row(&self, i: usize) -> &[f32] {
        &self.table[i * self.ksub..(i + 1) * self.ksub]
    }

    /// The flat `m × ksub` buffer (used by the hardware simulator to model
    /// the BRAM-resident copy of the table, and by the SIMD scan kernels as
    /// the gather source). Entry `(j, c)` lives at `j * ksub + c`; `row(j)`
    /// is exactly `as_flat()[j*ksub .. (j+1)*ksub]`.
    ///
    /// ```
    /// use fanns_quantize::pq::DistanceTable;
    /// let t = DistanceTable::from_flat(2, 3, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    /// assert_eq!(t.as_flat().len(), t.m() * t.ksub());
    /// assert_eq!(t.as_flat()[1 * t.ksub() + 2], 12.0);
    /// assert_eq!(t.row(1), &t.as_flat()[t.ksub()..]);
    /// ```
    pub fn as_flat(&self) -> &[f32] {
        &self.table
    }

    /// Quantizes the table to one byte per entry with a global scale and
    /// per-row bias (see [`QuantizedLut`]). The affine reconstruction error
    /// of any ADC distance is bounded by [`QuantizedLut::max_abs_error`]:
    ///
    /// ```
    /// use fanns_quantize::pq::DistanceTable;
    /// let t = DistanceTable::from_flat(2, 4, vec![0.0, 1.0, 4.0, 2.0, 7.0, 5.0, 6.0, 9.0]);
    /// let q = t.quantize_i8();
    /// // Every code's approximate distance is within m·scale/2 of exact.
    /// for code in [[0u8, 0], [2, 3], [1, 2]] {
    ///     let exact = t.adc(&code);
    ///     let approx = q.adc_approx(&code);
    ///     assert!((approx - exact).abs() <= q.max_abs_error() + 1e-6);
    /// }
    /// // A constant table quantizes exactly (scale collapses to zero).
    /// let flat = DistanceTable::from_flat(2, 2, vec![3.0; 4]);
    /// let q = flat.quantize_i8();
    /// assert_eq!(q.scale(), 0.0);
    /// assert_eq!(q.adc_approx(&[1, 0]), 6.0);
    /// ```
    pub fn quantize_i8(&self) -> QuantizedLut {
        let mut mins = vec![0.0f32; self.m];
        let mut max_range = 0.0f32;
        for (j, min) in mins.iter_mut().enumerate() {
            let row = self.row(j);
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            *min = lo;
            max_range = max_range.max(hi - lo);
        }
        let scale = max_range / 255.0;
        let inv_scale = if scale > 0.0 { 1.0 / scale } else { 0.0 };
        let mut table = Vec::with_capacity(self.m * self.ksub + QLUT_GATHER_PAD);
        for (j, &bias) in mins.iter().enumerate() {
            for &v in self.row(j) {
                let q = ((v - bias) * inv_scale).round().clamp(0.0, 255.0);
                table.push(q as u8);
            }
        }
        table.resize(self.m * self.ksub + QLUT_GATHER_PAD, 0);
        QuantizedLut {
            m: self.m,
            ksub: self.ksub,
            scale,
            bias: mins.iter().sum(),
            table,
        }
    }

    /// Asymmetric distance to a PQ code: `sum_i table[i][code[i]]`.
    #[inline]
    pub fn adc(&self, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.m);
        let mut acc = 0.0f32;
        for (i, &c) in code.iter().enumerate() {
            acc += self.table[i * self.ksub + c as usize];
        }
        acc
    }

    /// Size of the table in bytes (what the accelerator must hold in BRAM per
    /// in-flight query).
    pub fn nbytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<f32>()
    }
}

impl ProductQuantizer {
    /// Trains a product quantizer on `training` (flat row-major, `dim`-dimensional).
    ///
    /// # Panics
    /// Panics if `dim` is not divisible by `config.m`, if `ksub > 256`
    /// (codes must fit in a byte), or if the training set is empty.
    pub fn train(training: &[f32], dim: usize, config: &PqConfig) -> Self {
        assert!(config.m > 0, "m must be positive");
        assert!(
            dim.is_multiple_of(config.m),
            "dimension {dim} is not divisible by m={}",
            config.m
        );
        assert!(
            config.ksub >= 2 && config.ksub <= 256,
            "ksub must be in [2, 256]"
        );
        assert!(!training.is_empty(), "training set must not be empty");
        let dsub = dim / config.m;
        let n = training.len() / dim;

        // Train the m sub-quantizers independently (and in parallel): slice
        // out the sub-vectors for sub-space j and run k-means on them.
        let sub_models: Vec<KMeans> = (0..config.m)
            .into_par_iter()
            .map(|j| {
                let mut sub_data = Vec::with_capacity(n * dsub);
                for i in 0..n {
                    let start = i * dim + j * dsub;
                    sub_data.extend_from_slice(&training[start..start + dsub]);
                }
                let cfg = KMeansConfig {
                    k: config.ksub,
                    max_iters: config.train_iters,
                    tol: 1e-4,
                    seed: config.seed.wrapping_add(j as u64),
                    plus_plus_init: true,
                };
                KMeans::train(&sub_data, dsub, &cfg)
            })
            .collect();

        let mut codebooks = Vec::with_capacity(config.m * config.ksub * dsub);
        let mut train_error = 0.0f64;
        for model in &sub_models {
            codebooks.extend_from_slice(model.centroids());
            train_error += model.mse;
        }

        Self {
            dim,
            m: config.m,
            ksub: config.ksub,
            dsub,
            codebooks,
            train_error,
        }
    }

    /// Rebuilds a quantizer from its flat codebook buffer (`m` blocks of
    /// `ksub × dsub` floats, the layout [`ProductQuantizer::codebook`]
    /// exposes) — used by the on-disk index loader. The training error is
    /// not stored in the index format and resets to zero; no query-time
    /// computation reads it.
    ///
    /// # Panics
    /// Panics if the shape is invalid (`m == 0`, `dim` not divisible by
    /// `m`, `ksub` outside `[2, 256]`) or the buffer length is not
    /// `dim × ksub` (= `m × ksub × dsub`).
    pub fn from_codebooks(dim: usize, m: usize, ksub: usize, codebooks: Vec<f32>) -> Self {
        assert!(m > 0, "m must be positive");
        assert!(
            dim.is_multiple_of(m),
            "dimension {dim} is not divisible by m={m}"
        );
        assert!((2..=256).contains(&ksub), "ksub must be in [2, 256]");
        assert_eq!(
            codebooks.len(),
            dim * ksub,
            "codebook buffer must hold m * ksub * dsub = dim * ksub floats"
        );
        Self {
            dim,
            m,
            ksub,
            dsub: dim / m,
            codebooks,
            train_error: 0.0,
        }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sub-quantizers (bytes per code).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codebook size per sub-quantizer.
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Sub-vector dimensionality (`dim / m`).
    pub fn dsub(&self) -> usize {
        self.dsub
    }

    /// Borrow the codebook of sub-space `j` as a flat `ksub × dsub` buffer.
    pub fn codebook(&self, j: usize) -> &[f32] {
        let stride = self.ksub * self.dsub;
        &self.codebooks[j * stride..(j + 1) * stride]
    }

    /// The full flat codebook buffer (`m` consecutive `ksub × dsub` blocks)
    /// — the serialization view consumed by the on-disk index writer and
    /// accepted back by [`ProductQuantizer::from_codebooks`].
    pub fn codebooks(&self) -> &[f32] {
        &self.codebooks
    }

    /// Encodes a single vector into its `m`-byte PQ code.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim, "vector dimensionality mismatch");
        let mut code = Vec::with_capacity(self.m);
        for j in 0..self.m {
            let sub = &v[j * self.dsub..(j + 1) * self.dsub];
            let book = self.codebook(j);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, cent) in book.chunks_exact(self.dsub).enumerate() {
                let d = l2_sq(sub, cent);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            code.push(best as u8);
        }
        code
    }

    /// Encodes every vector of a flat buffer in parallel, returning a flat
    /// `n × m` code buffer.
    pub fn encode_all(&self, data: &[f32]) -> Vec<u8> {
        assert!(data.len().is_multiple_of(self.dim));
        let n = data.len() / self.dim;
        let codes: Vec<Vec<u8>> = (0..n)
            .into_par_iter()
            .map(|i| self.encode(&data[i * self.dim..(i + 1) * self.dim]))
            .collect();
        let mut flat = Vec::with_capacity(n * self.m);
        for c in codes {
            flat.extend_from_slice(&c);
        }
        flat
    }

    /// Reconstructs (decodes) the vector approximated by a PQ code.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.m, "code length mismatch");
        let mut v = Vec::with_capacity(self.dim);
        for (j, &c) in code.iter().enumerate() {
            let book = self.codebook(j);
            let cent = &book[c as usize * self.dsub..(c as usize + 1) * self.dsub];
            v.extend_from_slice(cent);
        }
        v
    }

    /// Builds the asymmetric-distance lookup table for a query (Stage
    /// BuildLUT): entry `(j, c)` is the squared distance between the query's
    /// j-th sub-vector and centroid `c` of sub-quantizer `j`.
    pub fn build_distance_table(&self, query: &[f32]) -> DistanceTable {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let mut table = Vec::with_capacity(self.m * self.ksub);
        for j in 0..self.m {
            let sub = &query[j * self.dsub..(j + 1) * self.dsub];
            let book = self.codebook(j);
            for cent in book.chunks_exact(self.dsub) {
                table.push(l2_sq(sub, cent));
            }
        }
        DistanceTable {
            m: self.m,
            ksub: self.ksub,
            table,
        }
    }

    /// Exact (non-table) asymmetric distance between a raw query and a code;
    /// used by tests to validate that [`DistanceTable::adc`] is consistent.
    pub fn asymmetric_distance(&self, query: &[f32], code: &[u8]) -> f32 {
        l2_sq(query, &self.decode(code))
    }

    /// Mean squared reconstruction error over a dataset — the quantization
    /// quality metric OPQ optimises.
    pub fn reconstruction_error(&self, data: &[f32]) -> f64 {
        assert!(data.len().is_multiple_of(self.dim));
        let n = data.len() / self.dim;
        if n == 0 {
            return 0.0;
        }
        let total: f64 = (0..n)
            .into_par_iter()
            .map(|i| {
                let v = &data[i * self.dim..(i + 1) * self.dim];
                let code = self.encode(v);
                l2_sq(v, &self.decode(&code)) as f64
            })
            .sum();
        total / n as f64
    }

    /// Bytes needed to store `n` encoded vectors.
    pub fn code_bytes(&self, n: usize) -> usize {
        n * self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn small_pq() -> (ProductQuantizer, Vec<f32>) {
        let dim = 8;
        let data = random_data(500, dim, 7);
        let cfg = PqConfig::new(4).with_ksub(16).with_seed(1);
        (ProductQuantizer::train(&data, dim, &cfg), data)
    }

    #[test]
    fn shapes_are_consistent() {
        let (pq, _) = small_pq();
        assert_eq!(pq.dim(), 8);
        assert_eq!(pq.m(), 4);
        assert_eq!(pq.dsub(), 2);
        assert_eq!(pq.ksub(), 16);
        assert_eq!(pq.codebook(0).len(), 16 * 2);
    }

    #[test]
    fn encode_produces_m_bytes_within_ksub() {
        let (pq, data) = small_pq();
        let code = pq.encode(&data[..8]);
        assert_eq!(code.len(), 4);
        assert!(code.iter().all(|&c| (c as usize) < pq.ksub()));
    }

    #[test]
    fn encode_all_matches_encode() {
        let (pq, data) = small_pq();
        let flat = pq.encode_all(&data[..8 * 10]);
        assert_eq!(flat.len(), 10 * 4);
        for i in 0..10 {
            assert_eq!(
                &flat[i * 4..(i + 1) * 4],
                pq.encode(&data[i * 8..(i + 1) * 8])
            );
        }
    }

    #[test]
    fn decode_is_close_to_original() {
        let (pq, data) = small_pq();
        let err = pq.reconstruction_error(&data[..8 * 100]);
        // Random uniform data in [-1,1]: 16 centroids per 2-d sub-space keeps
        // the per-dimension error well below the data variance (~0.33).
        assert!(err < 8.0 * 0.33, "reconstruction error too high: {err}");
    }

    #[test]
    fn adc_equals_distance_to_decoded_vector() {
        let (pq, data) = small_pq();
        let query = &data[8 * 3..8 * 4];
        let table = pq.build_distance_table(query);
        for i in 10..20 {
            let v = &data[i * 8..(i + 1) * 8];
            let code = pq.encode(v);
            let adc = table.adc(&code);
            let exact = pq.asymmetric_distance(query, &code);
            assert!(
                (adc - exact).abs() < 1e-3 * exact.max(1.0),
                "ADC {adc} != exact {exact}"
            );
        }
    }

    #[test]
    fn distance_table_has_m_by_ksub_entries() {
        let (pq, data) = small_pq();
        let table = pq.build_distance_table(&data[..8]);
        assert_eq!(table.m(), 4);
        assert_eq!(table.ksub(), 16);
        assert_eq!(table.as_flat().len(), 64);
        assert_eq!(table.nbytes(), 64 * 4);
        assert_eq!(table.row(2).len(), 16);
    }

    #[test]
    fn quantized_lut_error_stays_within_bound() {
        let (pq, data) = small_pq();
        let table = pq.build_distance_table(&data[..8]);
        let q = table.quantize_i8();
        assert_eq!(q.m(), table.m());
        assert_eq!(q.ksub(), table.ksub());
        assert_eq!(q.as_flat().len(), table.as_flat().len());
        assert_eq!(q.as_padded().len(), q.as_flat().len() + QLUT_GATHER_PAD);
        assert!(q.as_padded()[q.nbytes()..].iter().all(|&b| b == 0));
        let bound = q.max_abs_error() + 1e-5;
        for i in 0..32 {
            let code = pq.encode(&data[i * 8..(i + 1) * 8]);
            let exact = table.adc(&code);
            let approx = q.adc_approx(&code);
            assert!(
                (approx - exact).abs() <= bound,
                "code {i}: approx {approx} vs exact {exact}, bound {bound}"
            );
        }
    }

    #[test]
    fn quantized_lut_rows_use_full_range() {
        // Two rows with very different offsets: the per-row bias must absorb
        // the offset so both rows quantize accurately.
        let t = DistanceTable::from_flat(2, 3, vec![0.0, 5.0, 10.0, 1000.0, 1005.0, 1010.0]);
        let q = t.quantize_i8();
        assert!((q.bias() - 1000.0).abs() < 1e-6);
        for code in [[0u8, 0], [2, 2], [1, 0]] {
            let exact = t.adc(&code);
            assert!((q.adc_approx(&code) - exact).abs() <= q.max_abs_error() + 1e-5);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let dim = 8;
        let data = random_data(300, dim, 9);
        let cfg = PqConfig::new(2).with_ksub(8).with_seed(4);
        let a = ProductQuantizer::train(&data, dim, &cfg);
        let b = ProductQuantizer::train(&data, dim, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn dimension_must_divide_by_m() {
        let data = random_data(10, 10, 1);
        let _ = ProductQuantizer::train(&data, 10, &PqConfig::new(3));
    }

    #[test]
    fn code_bytes_is_n_times_m() {
        let (pq, _) = small_pq();
        assert_eq!(pq.code_bytes(1000), 4000);
    }

    #[test]
    fn more_centroids_reduce_error() {
        let dim = 8;
        let data = random_data(600, dim, 3);
        let coarse =
            ProductQuantizer::train(&data, dim, &PqConfig::new(4).with_ksub(4).with_seed(2));
        let fine =
            ProductQuantizer::train(&data, dim, &PqConfig::new(4).with_ksub(64).with_seed(2));
        assert!(fine.reconstruction_error(&data) < coarse.reconstruction_error(&data));
    }
}
