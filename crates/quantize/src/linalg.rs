//! Minimal dense linear algebra used by OPQ training.
//!
//! OPQ (Ge et al., "Optimized Product Quantization") learns an orthonormal
//! rotation `R` by alternating between PQ encoding and solving an orthogonal
//! Procrustes problem, which requires an SVD of a `d × d` matrix. Pulling in a
//! LAPACK binding would violate the "build every substrate" rule of this
//! reproduction, so this module implements the handful of dense kernels we
//! need: matrix multiply, transpose, Gram-Schmidt orthonormalisation and a
//! one-sided Jacobi SVD. The matrices involved are at most 128 × 128, so the
//! simple O(d³)-per-sweep Jacobi method is more than fast enough.

use serde::{Deserialize, Serialize};

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size does not match shape");
        Self { rows, cols, data }
    }

    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Borrow row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order keeps the innermost accesses contiguous.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for j in 0..other_row.len() {
                    out_row[j] += a * other_row[j];
                }
            }
        }
        out
    }

    /// Applies the matrix to a vector: `y = self * x`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "vector length must equal column count");
        let mut y = vec![0.0f32; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
        y
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute deviation from the identity of `selfᵀ · self`;
    /// zero (up to floating point) iff the matrix has orthonormal columns.
    pub fn orthogonality_error(&self) -> f32 {
        let gram = self.transpose().matmul(self);
        let mut max_err = 0.0f32;
        for i in 0..gram.rows {
            for j in 0..gram.cols {
                let target = if i == j { 1.0 } else { 0.0 };
                max_err = max_err.max((gram[(i, j)] - target).abs());
            }
        }
        max_err
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

/// Result of a singular value decomposition `A = U · diag(S) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns).
    pub u: Matrix,
    /// Singular values, non-increasing.
    pub s: Vec<f32>,
    /// Right singular vectors (columns), i.e. `V` not `Vᵀ`.
    pub v: Matrix,
}

/// One-sided Jacobi SVD of a square matrix.
///
/// Rotates pairs of columns of a working copy of `A` until they are mutually
/// orthogonal; the column norms are then the singular values, the normalised
/// columns are `U`, and the accumulated rotations give `V`.
pub fn jacobi_svd(a: &Matrix, max_sweeps: usize, tol: f32) -> Svd {
    assert_eq!(a.rows(), a.cols(), "jacobi_svd expects a square matrix");
    let n = a.rows();
    let mut u = a.clone();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        let mut off_diag = 0.0f32;
        for p in 0..n {
            for q in (p + 1)..n {
                // Column inner products.
                let mut alpha = 0.0f32;
                let mut beta = 0.0f32;
                let mut gamma = 0.0f32;
                for i in 0..n {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                off_diag = off_diag.max(gamma.abs() / (alpha.sqrt() * beta.sqrt() + 1e-30));
                if gamma.abs() < 1e-30 {
                    continue;
                }
                // Jacobi rotation that zeroes the (p, q) column correlation.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..n {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off_diag < tol {
            break;
        }
    }

    // Column norms are the singular values; normalise U's columns.
    let mut s: Vec<f32> = (0..n)
        .map(|j| (0..n).map(|i| u[(i, j)] * u[(i, j)]).sum::<f32>().sqrt())
        .collect();
    for j in 0..n {
        if s[j] > 1e-30 {
            for i in 0..n {
                u[(i, j)] /= s[j];
            }
        } else {
            // Degenerate column: replace by a unit basis vector to keep U orthonormal-ish.
            for i in 0..n {
                u[(i, j)] = if i == j { 1.0 } else { 0.0 };
            }
        }
    }

    // Sort singular values (and the corresponding columns) in decreasing order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a_i, &b_i| s[b_i].partial_cmp(&s[a_i]).unwrap());
    let mut u_sorted = Matrix::zeros(n, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut s_sorted = vec![0.0f32; n];
    for (new_j, &old_j) in order.iter().enumerate() {
        s_sorted[new_j] = s[old_j];
        for i in 0..n {
            u_sorted[(i, new_j)] = u[(i, old_j)];
            v_sorted[(i, new_j)] = v[(i, old_j)];
        }
    }
    s = s_sorted;

    Svd {
        u: u_sorted,
        s,
        v: v_sorted,
    }
}

/// Computes the orthonormal matrix closest (in Frobenius norm) to `A`, i.e.
/// the solution `R = U · Vᵀ` of the orthogonal Procrustes problem. This is the
/// inner step of OPQ training.
pub fn nearest_orthonormal(a: &Matrix) -> Matrix {
    let svd = jacobi_svd(a, 60, 1e-7);
    svd.u.matmul(&svd.v.transpose())
}

/// Modified Gram-Schmidt orthonormalisation of the rows of `A` (in place on a
/// copy). Used to turn a random matrix into a random rotation when
/// initialising OPQ.
pub fn orthonormalize_rows(a: &Matrix) -> Matrix {
    let mut m = a.clone();
    let cols = m.cols();
    for i in 0..m.rows() {
        for j in 0..i {
            let mut proj = 0.0f32;
            for c in 0..cols {
                proj += m[(i, c)] * m[(j, c)];
            }
            for c in 0..cols {
                let adj = proj * m[(j, c)];
                m[(i, c)] -= adj;
            }
        }
        let norm: f32 = (0..cols).map(|c| m[(i, c)] * m[(i, c)]).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for c in 0..cols {
                m[(i, c)] /= norm;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let m = Matrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = a.matvec(&[5.0, 6.0]);
        assert_eq!(y, vec![17.0, 39.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn identity_is_orthonormal() {
        assert!(Matrix::identity(5).orthogonality_error() < 1e-6);
    }

    #[test]
    fn jacobi_svd_reconstructs_the_matrix() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]);
        let svd = jacobi_svd(&a, 60, 1e-7);
        // Reconstruct A = U diag(S) V^T.
        let mut us = svd.u.clone();
        for j in 0..3 {
            for i in 0..3 {
                us[(i, j)] *= svd.s[j];
            }
        }
        let recon = us.matmul(&svd.v.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (recon[(i, j)] - a[(i, j)]).abs() < 1e-3,
                    "reconstruction mismatch"
                );
            }
        }
        // Singular values sorted decreasing and positive.
        assert!(svd.s.windows(2).all(|w| w[0] >= w[1]));
        assert!(svd.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn nearest_orthonormal_of_rotation_is_itself() {
        // A 2-d rotation by 30 degrees embedded in 3x3.
        let (c, s) = (0.866_025_4f32, 0.5f32);
        let r = Matrix::from_vec(3, 3, vec![c, -s, 0.0, s, c, 0.0, 0.0, 0.0, 1.0]);
        let near = nearest_orthonormal(&r);
        for i in 0..3 {
            for j in 0..3 {
                assert!((near[(i, j)] - r[(i, j)]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn nearest_orthonormal_produces_orthonormal_output() {
        let a = Matrix::from_vec(4, 4, (0..16).map(|i| (i as f32) * 0.3 + 1.0).collect());
        let r = nearest_orthonormal(&a);
        assert!(
            r.orthogonality_error() < 1e-3,
            "error {}",
            r.orthogonality_error()
        );
    }

    #[test]
    fn gram_schmidt_orthonormalises_rows() {
        let a = Matrix::from_vec(3, 3, vec![1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0]);
        let q = orthonormalize_rows(&a);
        // Rows should be unit length and mutually orthogonal => Q Q^T = I.
        let qqt = q.matmul(&q.transpose());
        for i in 0..3 {
            for j in 0..3 {
                let target = if i == j { 1.0 } else { 0.0 };
                assert!((qqt[(i, j)] - target).abs() < 1e-4);
            }
        }
    }
}
