//! Optimized Product Quantization (OPQ).
//!
//! OPQ (Ge et al. 2013, cited as \[22\] in the paper) learns an orthonormal
//! rotation `R` of the vector space before product quantization so that the
//! PQ sub-spaces become independent and balanced, improving quantization
//! quality at the cost of one query-time vector–matrix multiplication — the
//! paper's Stage OPQ.
//!
//! Training alternates two steps (the standard OPQ-NP procedure):
//! 1. with `R` fixed, train/encode a PQ on the rotated data,
//! 2. with the PQ fixed, solve the orthogonal Procrustes problem
//!    `min_R ‖R·X − X̂‖_F` where `X̂` are the PQ reconstructions, via SVD.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::linalg::{nearest_orthonormal, orthonormalize_rows, Matrix};
use crate::pq::{PqConfig, ProductQuantizer};

/// A learned orthonormal rotation applied before PQ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpqTransform {
    dim: usize,
    rotation: Matrix,
}

impl OpqTransform {
    /// The identity transform (equivalent to plain PQ).
    pub fn identity(dim: usize) -> Self {
        Self {
            dim,
            rotation: Matrix::identity(dim),
        }
    }

    /// Wraps an explicit rotation matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square with size `dim` or is far from
    /// orthonormal.
    pub fn from_rotation(dim: usize, rotation: Matrix) -> Self {
        assert_eq!(rotation.rows(), dim);
        assert_eq!(rotation.cols(), dim);
        assert!(
            rotation.orthogonality_error() < 1e-2,
            "rotation matrix is not orthonormal (error {})",
            rotation.orthogonality_error()
        );
        Self { dim, rotation }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The rotation matrix.
    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    /// Applies the rotation to a single vector (the Stage OPQ operation).
    pub fn apply(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim, "vector dimensionality mismatch");
        self.rotation.matvec(v)
    }

    /// Applies the rotation to every vector of a flat buffer, returning a new
    /// flat buffer.
    pub fn apply_all(&self, data: &[f32]) -> Vec<f32> {
        assert!(data.len().is_multiple_of(self.dim));
        let mut out = Vec::with_capacity(data.len());
        for v in data.chunks_exact(self.dim) {
            out.extend_from_slice(&self.apply(v));
        }
        out
    }

    /// Number of multiply–accumulate operations performed per query — used by
    /// the performance model for the Stage OPQ PE.
    pub fn macs_per_query(&self) -> usize {
        self.dim * self.dim
    }
}

/// Result of OPQ training: the rotation plus the PQ trained on rotated data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedOpq {
    /// The learned rotation.
    pub transform: OpqTransform,
    /// The product quantizer trained on the rotated training set.
    pub pq: ProductQuantizer,
    /// Reconstruction error (in the rotated space) per outer iteration,
    /// useful for verifying that training monotonically improves.
    pub error_history: Vec<f64>,
}

/// Configuration for OPQ training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpqConfig {
    /// Underlying PQ configuration.
    pub pq: PqConfig,
    /// Number of outer alternating-optimisation iterations.
    pub outer_iters: usize,
    /// Start from a random rotation (true) or from the identity (false).
    pub random_init: bool,
    /// RNG seed for the random initial rotation.
    pub seed: u64,
}

impl OpqConfig {
    /// Default OPQ training configuration for `m`-byte codes.
    pub fn new(m: usize) -> Self {
        Self {
            pq: PqConfig::new(m),
            outer_iters: 4,
            random_init: false,
            seed: 0x09C4,
        }
    }
}

/// Trains OPQ on `training` data (flat row-major, `dim`-dimensional).
pub fn train_opq(training: &[f32], dim: usize, config: &OpqConfig) -> TrainedOpq {
    assert!(!training.is_empty(), "training set must not be empty");
    assert!(training.len().is_multiple_of(dim));
    let n = training.len() / dim;

    let mut rotation = if config.random_init {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let random = Matrix::from_vec(
            dim,
            dim,
            (0..dim * dim)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
        );
        orthonormalize_rows(&random)
    } else {
        Matrix::identity(dim)
    };

    let mut error_history = Vec::with_capacity(config.outer_iters);
    let mut pq = None;

    for it in 0..config.outer_iters.max(1) {
        let transform = OpqTransform {
            dim,
            rotation: rotation.clone(),
        };
        let rotated = transform.apply_all(training);

        // Step 1: train PQ on the rotated data.
        let pq_cfg = PqConfig {
            seed: config.pq.seed.wrapping_add(it as u64),
            ..config.pq
        };
        let trained = ProductQuantizer::train(&rotated, dim, &pq_cfg);
        let err = trained.reconstruction_error(&rotated);
        error_history.push(err);

        // Step 2 (skipped on the last iteration): update R by solving the
        // Procrustes problem min_R ||R X - X_hat||_F, whose solution is the
        // nearest orthonormal matrix to X_hat Xᵀ.
        if it + 1 < config.outer_iters {
            // Accumulate C = X_hat · Xᵀ (dim × dim), where X columns are the
            // original vectors and X_hat columns are reconstructions of the
            // rotated vectors.
            let mut c = Matrix::zeros(dim, dim);
            for i in 0..n {
                let x = &training[i * dim..(i + 1) * dim];
                let rx = &rotated[i * dim..(i + 1) * dim];
                let code = trained.encode(rx);
                let xhat = trained.decode(&code);
                for (r, &xr) in xhat.iter().enumerate() {
                    if xr == 0.0 {
                        continue;
                    }
                    let row = c.row_mut(r);
                    for cidx in 0..dim {
                        row[cidx] += xr * x[cidx];
                    }
                }
            }
            rotation = nearest_orthonormal(&c);
        }

        pq = Some(trained);
    }

    TrainedOpq {
        transform: OpqTransform { dim, rotation },
        pq: pq.expect("at least one outer iteration runs"),
        error_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Data whose dimensions are strongly correlated — the case OPQ helps.
    fn correlated_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let base: f32 = rng.gen_range(-1.0..1.0);
            for d in 0..dim {
                // Each dimension is the shared latent value plus small noise,
                // with wildly different scales across dimensions.
                let scale = 1.0 + 3.0 * (d as f32 / dim as f32);
                out.push(scale * base + 0.05 * rng.gen_range(-1.0f32..1.0));
            }
        }
        out
    }

    #[test]
    fn identity_transform_is_a_noop() {
        let t = OpqTransform::identity(4);
        let v = vec![1.0f32, -2.0, 3.0, 0.5];
        assert_eq!(t.apply(&v), v);
        assert_eq!(t.macs_per_query(), 16);
    }

    #[test]
    fn apply_all_processes_every_vector() {
        let t = OpqTransform::identity(2);
        let data = vec![1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(t.apply_all(&data), data);
    }

    #[test]
    fn rotation_preserves_norms() {
        let data = correlated_data(200, 8, 3);
        let cfg = OpqConfig {
            outer_iters: 2,
            random_init: true,
            pq: PqConfig::new(4).with_ksub(16),
            seed: 5,
        };
        let trained = train_opq(&data, 8, &cfg);
        let v = &data[..8];
        let rv = trained.transform.apply(v);
        let n1: f32 = v.iter().map(|x| x * x).sum();
        let n2: f32 = rv.iter().map(|x| x * x).sum();
        assert!(
            (n1 - n2).abs() < 1e-2 * n1.max(1.0),
            "rotation changed the norm"
        );
    }

    #[test]
    fn trained_rotation_is_orthonormal() {
        let data = correlated_data(200, 8, 11);
        let cfg = OpqConfig {
            outer_iters: 3,
            random_init: false,
            pq: PqConfig::new(4).with_ksub(16),
            seed: 2,
        };
        let trained = train_opq(&data, 8, &cfg);
        assert!(trained.transform.rotation().orthogonality_error() < 1e-2);
    }

    #[test]
    fn opq_quality_is_comparable_to_plain_pq() {
        let dim = 8;
        let data = correlated_data(800, dim, 17);
        let pq_cfg = PqConfig::new(4).with_ksub(16).with_seed(1);

        let plain = ProductQuantizer::train(&data, dim, &pq_cfg);
        let plain_err = plain.reconstruction_error(&data);

        // Initialise from the identity so the first outer iteration starts at
        // exactly the plain-PQ objective and the alternation can only refine it.
        let opq_cfg = OpqConfig {
            pq: pq_cfg,
            outer_iters: 4,
            random_init: false,
            seed: 3,
        };
        let trained = train_opq(&data, dim, &opq_cfg);
        let rotated = trained.transform.apply_all(&data);
        let opq_err = trained.pq.reconstruction_error(&rotated);

        // OPQ optimises exactly this objective, but each outer iteration
        // retrains k-means from a fresh seed, so the comparison carries
        // sampling noise; require the two to stay in the same ballpark.
        assert!(
            opq_err <= plain_err * 1.30,
            "OPQ error {opq_err} much worse than PQ error {plain_err}"
        );
        // The first outer iteration starts from the identity rotation, so its
        // recorded error must match plain PQ closely.
        assert!(
            (trained.error_history[0] - plain_err).abs() <= plain_err * 0.15,
            "identity-init OPQ iteration should match plain PQ"
        );
    }

    #[test]
    fn error_history_has_one_entry_per_outer_iteration() {
        let data = correlated_data(150, 4, 9);
        let cfg = OpqConfig {
            pq: PqConfig::new(2).with_ksub(8),
            outer_iters: 3,
            random_init: false,
            seed: 7,
        };
        let trained = train_opq(&data, 4, &cfg);
        assert_eq!(trained.error_history.len(), 3);
        assert!(trained
            .error_history
            .iter()
            .all(|e| e.is_finite() && *e >= 0.0));
    }
}
