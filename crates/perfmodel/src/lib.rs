//! Resource and performance models — steps 4 and 5 of the FANNS workflow.
//!
//! Given an FPGA device description, this crate can
//!
//! * model the resource consumption of any accelerator design (Equation 2:
//!   Σ PEs + Σ FIFOs + infrastructure ≤ budget per resource type),
//! * enumerate every valid design under the budget ([`enumerate`]),
//! * predict the QPS of any (algorithm parameters × hardware design)
//!   combination (Equations 3–4) through [`qps`].
//!
//! The per-PE resource numbers play the role of the post-synthesis reports
//! the authors obtained from Vitis HLS; they are calibrated so that the
//! relative costs match the paper's qualitative findings (priority-queue cost
//! linear in K, PQDist PEs dominating DSP usage, OPQ nearly free).

pub mod device;
pub mod enumerate;
pub mod qps;
pub mod resources;

pub use device::{FpgaDevice, ResourceVector};
pub use enumerate::{enumerate_designs, EnumerationSpace};
pub use qps::{predict_qps, QpsPrediction, WorkloadModel};
pub use resources::{design_resources, resource_report, ResourceReport};
