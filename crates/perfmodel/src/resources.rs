//! Per-PE resource consumption tables and the whole-design resource model
//! (Equation 2: Σ PEs + Σ FIFOs + infrastructure ≤ constraint, per resource).
//!
//! The absolute numbers stand in for the Vitis HLS synthesis reports of the
//! original artifact. They are calibrated to reproduce the paper's relative
//! behaviour: a PQDist PE is the DSP-heavy workhorse, priority-queue cost is
//! linear in the queue length (so SelK at K=100 eats a large LUT share —
//! 31.7 % in Table 4), bitonic networks trade queue registers for
//! compare-swap LUTs, and caching tables on-chip consumes BRAM/URAM that
//! other PEs could have used.

use serde::{Deserialize, Serialize};

use fanns_hwsim::config::{AcceleratorConfig, IndexStore};
use fanns_hwsim::select::SelectionSpec;

use crate::device::{FpgaDevice, ResourceVector};

/// LUT/FF cost of one compare-swap unit (32-bit compare + swap + control).
const CSU_LUT: f64 = 64.0;
const CSU_FF: f64 = 96.0;

/// Cost of one priority-queue register slot (distance + id + muxing).
const PQ_REG_LUT: f64 = 48.0;
const PQ_REG_FF: f64 = 72.0;

/// Resources of one Stage OPQ PE: a `dim × dim` matrix-vector multiply with
/// [`fanns_hwsim::stages::OPQ_LANES`] parallel MACs.
pub fn opq_pe_resources(dim: usize) -> ResourceVector {
    let lanes = fanns_hwsim::stages::OPQ_LANES as f64;
    ResourceVector {
        lut: 3_000.0,
        ff: 4_500.0,
        dsp: 5.0 * lanes,
        // The rotation matrix itself is small (dim² × 4 B) and lives in BRAM.
        bram_bytes: (dim * dim * 4) as f64,
        uram_bytes: 0.0,
    }
}

/// Resources of one Stage IVFDist PE.
pub fn ivf_dist_pe_resources() -> ResourceVector {
    let lanes = fanns_hwsim::stages::IVF_DIST_LANES as f64;
    ResourceVector {
        lut: 4_200.0,
        ff: 6_000.0,
        dsp: 5.0 * lanes,
        bram_bytes: 4_096.0,
        uram_bytes: 0.0,
    }
}

/// Resources of one Stage BuildLUT PE.
pub fn build_lut_pe_resources() -> ResourceVector {
    let lanes = fanns_hwsim::stages::BUILD_LUT_LANES as f64;
    ResourceVector {
        lut: 3_600.0,
        ff: 5_200.0,
        dsp: 5.0 * lanes,
        bram_bytes: 8_192.0,
        uram_bytes: 0.0,
    }
}

/// Resources of one Stage PQDist PE (Figure 8): `m` BRAM slices holding one
/// column of the distance table each, `m` parallel lookups and an `m`-input
/// add tree built from DSPs and FFs.
pub fn pq_dist_pe_resources(m: usize, ksub: usize) -> ResourceVector {
    let m = m as f64;
    ResourceVector {
        lut: 2_200.0 + 180.0 * m,
        ff: 3_000.0 + 260.0 * m,
        dsp: 2.0 * m,
        // m BRAM slices, each holding ksub f32 entries (double-buffered).
        bram_bytes: 2.0 * m * ksub as f64 * 4.0,
        uram_bytes: 0.0,
    }
}

/// Resources of a K-selection unit (either architecture), derived from the
/// structural proxies exposed by [`SelectionSpec`].
pub fn selection_resources(spec: &SelectionSpec) -> ResourceVector {
    let regs = spec.priority_queue_registers() as f64;
    let csus = spec.bitonic_compare_swap_units() as f64;
    // Each queue register slot carries one compare-swap unit as well.
    ResourceVector {
        lut: regs * (PQ_REG_LUT + CSU_LUT) + csus * CSU_LUT,
        ff: regs * (PQ_REG_FF + CSU_FF) + csus * CSU_FF,
        dsp: 0.0,
        bram_bytes: 0.0,
        uram_bytes: 0.0,
    }
}

/// Resources of one inter-PE FIFO.
pub fn fifo_resources() -> ResourceVector {
    ResourceVector {
        lut: 70.0,
        ff: 120.0,
        dsp: 0.0,
        bram_bytes: 512.0,
        uram_bytes: 0.0,
    }
}

/// Constant infrastructure cost: HBM/PCIe controllers, the FPGA shell, the
/// global query controller, and (for networked designs) the TCP/IP stack.
pub fn infrastructure_resources(with_network_stack: bool) -> ResourceVector {
    let base = ResourceVector {
        lut: 120_000.0,
        ff: 180_000.0,
        dsp: 64.0,
        bram_bytes: 1.5 * 1024.0 * 1024.0,
        uram_bytes: 0.0,
    };
    if with_network_stack {
        // EasyNet-style 100 Gbps TCP/IP stack (§7.3.2).
        base.add(&ResourceVector {
            lut: 90_000.0,
            ff: 130_000.0,
            dsp: 0.0,
            bram_bytes: 2.0 * 1024.0 * 1024.0,
            uram_bytes: 0.0,
        })
    } else {
        base
    }
}

/// Workload geometry needed to size caches and selection units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignContext {
    /// Vector dimensionality.
    pub dim: usize,
    /// PQ sub-quantizer count.
    pub m: usize,
    /// PQ codebook size.
    pub ksub: usize,
    /// Number of IVF cells (sizes the on-chip centroid cache).
    pub nlist: usize,
    /// Number of cells probed (sizes the SelCells queues).
    pub nprobe: usize,
    /// Results per query (sizes the SelK queues).
    pub k: usize,
    /// Whether a network stack is instantiated (scale-out deployments).
    pub with_network_stack: bool,
}

/// Total resource consumption of a design (Equation 2 left-hand side).
pub fn design_resources(config: &AcceleratorConfig, ctx: &DesignContext) -> ResourceVector {
    let s = &config.sizing;
    let mut total = ResourceVector::zero();

    // PEs.
    total = total.add(&opq_pe_resources(ctx.dim).scale(s.opq_pes as f64));
    total = total.add(&ivf_dist_pe_resources().scale(s.ivf_dist_pes as f64));
    total = total.add(&build_lut_pe_resources().scale(s.build_lut_pes as f64));
    total = total.add(&pq_dist_pe_resources(ctx.m, ctx.ksub).scale(s.pq_dist_pes as f64));

    // Selection stages.
    let sel_cells = SelectionSpec::new(
        config.sel_cells_arch,
        config.sel_cells_streams(),
        ctx.nprobe,
    );
    let sel_k = SelectionSpec::new(config.sel_k_arch, config.sel_k_streams(), ctx.k);
    total = total.add(&selection_resources(&sel_cells));
    total = total.add(&selection_resources(&sel_k));

    // On-chip caches (Table 2's third design choice).
    if config.ivf_store == IndexStore::OnChip {
        total = total.add(&ResourceVector {
            uram_bytes: (ctx.nlist * ctx.dim * 4) as f64,
            ..ResourceVector::zero()
        });
    }
    if config.lut_store == IndexStore::OnChip {
        let dsub = ctx.dim / ctx.m.max(1);
        total = total.add(&ResourceVector {
            bram_bytes: (ctx.m * ctx.ksub * dsub * 4) as f64,
            ..ResourceVector::zero()
        });
    }

    // FIFOs: one per PE output plus one per selection stream.
    let fifo_count =
        s.total_compute_pes() + config.sel_cells_streams() + config.sel_k_streams() + 8;
    total = total.add(&fifo_resources().scale(fifo_count as f64));

    // Infrastructure.
    total = total.add(&infrastructure_resources(ctx.with_network_stack));

    total
}

/// A human-readable per-stage resource breakdown (the quantity plotted in
/// Figure 9 and the LUT% columns of Table 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// LUT share (fraction of the device) per stage, in pipeline order.
    pub stage_lut_fraction: [f64; 6],
    /// Total consumption of the design.
    pub total: ResourceVector,
    /// Worst-case utilisation fraction across resource types.
    pub max_utilization: f64,
    /// Whether the design fits the device budget.
    pub fits: bool,
}

/// Builds a per-stage resource report for a design on a device.
pub fn resource_report(
    config: &AcceleratorConfig,
    ctx: &DesignContext,
    device: &FpgaDevice,
) -> ResourceReport {
    let s = &config.sizing;
    let opq = opq_pe_resources(ctx.dim).scale(s.opq_pes as f64);
    let ivf = ivf_dist_pe_resources().scale(s.ivf_dist_pes as f64);
    let lut_stage = build_lut_pe_resources().scale(s.build_lut_pes as f64);
    let pq = pq_dist_pe_resources(ctx.m, ctx.ksub).scale(s.pq_dist_pes as f64);
    let sel_cells = selection_resources(&SelectionSpec::new(
        config.sel_cells_arch,
        config.sel_cells_streams(),
        ctx.nprobe,
    ));
    let sel_k = selection_resources(&SelectionSpec::new(
        config.sel_k_arch,
        config.sel_k_streams(),
        ctx.k,
    ));

    let device_lut = device.capacity.lut;
    let stage_lut_fraction = [
        opq.lut / device_lut,
        ivf.lut / device_lut,
        sel_cells.lut / device_lut,
        lut_stage.lut / device_lut,
        pq.lut / device_lut,
        sel_k.lut / device_lut,
    ];

    let total = design_resources(config, ctx);
    let max_utilization = total.max_utilization(&device.capacity);
    let fits = total.fits_within(&device.budget());

    ResourceReport {
        stage_lut_fraction,
        total,
        max_utilization,
        fits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_hwsim::config::{SelectArch, StageSizing};

    fn ctx(k: usize) -> DesignContext {
        DesignContext {
            dim: 128,
            m: 16,
            ksub: 256,
            nlist: 8192,
            nprobe: 17,
            k,
            with_network_stack: false,
        }
    }

    #[test]
    fn balanced_design_fits_the_u55c() {
        let report = resource_report(
            &AcceleratorConfig::balanced(),
            &ctx(10),
            &FpgaDevice::alveo_u55c(),
        );
        assert!(
            report.fits,
            "balanced design should fit: {:?}",
            report.total
        );
        assert!(report.max_utilization < 0.6);
    }

    #[test]
    fn selk_cost_grows_linearly_with_k() {
        let spec_k10 = SelectionSpec::new(SelectArch::Hpq, 32, 10);
        let spec_k100 = SelectionSpec::new(SelectArch::Hpq, 32, 100);
        let r10 = selection_resources(&spec_k10);
        let r100 = selection_resources(&spec_k100);
        assert!(
            (r100.lut / r10.lut - 10.0).abs() < 0.5,
            "queue LUT cost should scale ~linearly with K"
        );
    }

    #[test]
    fn hsmpqg_saves_lut_for_many_streams_small_k() {
        let hpq = selection_resources(&SelectionSpec::new(SelectArch::Hpq, 80, 10));
        let hybrid = selection_resources(&SelectionSpec::new(SelectArch::Hsmpqg, 80, 10));
        assert!(hybrid.lut < hpq.lut);
    }

    #[test]
    fn caching_ivf_on_chip_consumes_uram() {
        let mut cached = AcceleratorConfig::balanced();
        cached.ivf_store = IndexStore::OnChip;
        let hbm = AcceleratorConfig::balanced();
        let c = design_resources(&cached, &ctx(10));
        let h = design_resources(&hbm, &ctx(10));
        assert!(c.uram_bytes > h.uram_bytes);
        assert_eq!(c.uram_bytes - h.uram_bytes, (8192 * 128 * 4) as f64);
    }

    #[test]
    fn oversized_design_does_not_fit() {
        let huge = AcceleratorConfig {
            sizing: StageSizing {
                opq_pes: 4,
                ivf_dist_pes: 100,
                build_lut_pes: 100,
                pq_dist_pes: 400,
            },
            ..AcceleratorConfig::balanced()
        };
        let report = resource_report(&huge, &ctx(100), &FpgaDevice::alveo_u55c());
        assert!(!report.fits);
        assert!(report.max_utilization > 0.6);
    }

    #[test]
    fn network_stack_adds_infrastructure_cost() {
        let without = infrastructure_resources(false);
        let with = infrastructure_resources(true);
        assert!(with.lut > without.lut);
        assert!(with.bram_bytes > without.bram_bytes);
    }

    #[test]
    fn stage_fractions_are_nonnegative_and_bounded() {
        let report = resource_report(
            &AcceleratorConfig::balanced(),
            &ctx(100),
            &FpgaDevice::alveo_u55c(),
        );
        for f in report.stage_lut_fraction {
            assert!((0.0..1.0).contains(&f));
        }
        // K=100 should make SelK the dominant LUT consumer among selection stages.
        assert!(report.stage_lut_fraction[5] > report.stage_lut_fraction[2]);
    }
}
