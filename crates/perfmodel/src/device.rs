//! FPGA device descriptions and resource vectors.

use serde::{Deserialize, Serialize};

/// A bundle of the five FPGA resource types tracked by the paper's resource
/// model (Equation 2): LUTs, flip-flops, DSP slices, BRAM and URAM (the last
/// two tracked in bytes for simplicity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceVector {
    /// Look-up tables.
    pub lut: f64,
    /// Flip-flops (registers).
    pub ff: f64,
    /// DSP slices.
    pub dsp: f64,
    /// Block RAM, in bytes.
    pub bram_bytes: f64,
    /// Ultra RAM, in bytes.
    pub uram_bytes: f64,
}

impl ResourceVector {
    /// The all-zero vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Component-wise sum.
    pub fn add(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            lut: self.lut + other.lut,
            ff: self.ff + other.ff,
            dsp: self.dsp + other.dsp,
            bram_bytes: self.bram_bytes + other.bram_bytes,
            uram_bytes: self.uram_bytes + other.uram_bytes,
        }
    }

    /// Component-wise scaling.
    pub fn scale(&self, factor: f64) -> ResourceVector {
        ResourceVector {
            lut: self.lut * factor,
            ff: self.ff * factor,
            dsp: self.dsp * factor,
            bram_bytes: self.bram_bytes * factor,
            uram_bytes: self.uram_bytes * factor,
        }
    }

    /// Whether every component fits within `budget`.
    pub fn fits_within(&self, budget: &ResourceVector) -> bool {
        self.lut <= budget.lut
            && self.ff <= budget.ff
            && self.dsp <= budget.dsp
            && self.bram_bytes <= budget.bram_bytes
            && self.uram_bytes <= budget.uram_bytes
    }

    /// The largest utilisation fraction across resource types.
    pub fn max_utilization(&self, capacity: &ResourceVector) -> f64 {
        let ratios = [
            safe_ratio(self.lut, capacity.lut),
            safe_ratio(self.ff, capacity.ff),
            safe_ratio(self.dsp, capacity.dsp),
            safe_ratio(self.bram_bytes, capacity.bram_bytes),
            safe_ratio(self.uram_bytes, capacity.uram_bytes),
        ];
        ratios.into_iter().fold(0.0, f64::max)
    }
}

fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        if num > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        num / den
    }
}

/// An FPGA device: total resources plus the utilisation ceiling the paper
/// applies to avoid placement-and-routing failures (60 %).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Device name.
    pub name: &'static str,
    /// Total resources on the device.
    pub capacity: ResourceVector,
    /// Fraction of each resource the design is allowed to consume.
    pub max_utilization: f64,
    /// Target clock frequency in MHz.
    pub target_freq_mhz: f64,
}

impl FpgaDevice {
    /// The Xilinx Alveo U55C used in the paper: 1.3 M LUTs, 9 K DSPs, ~40 MB
    /// of on-chip memory (split ~16 MB BRAM / ~24 MB URAM), 16 GB HBM,
    /// 140 MHz target, 60 % utilisation ceiling.
    pub fn alveo_u55c() -> Self {
        Self {
            name: "Xilinx Alveo U55C",
            capacity: ResourceVector {
                lut: 1_300_000.0,
                ff: 2_600_000.0,
                dsp: 9_024.0,
                bram_bytes: 16.0 * 1024.0 * 1024.0,
                uram_bytes: 24.0 * 1024.0 * 1024.0,
            },
            max_utilization: 0.60,
            target_freq_mhz: 140.0,
        }
    }

    /// A smaller device (roughly a U50) used by tests and ablations to show
    /// how the optimal design shifts with the resource budget.
    pub fn small_device() -> Self {
        Self {
            name: "Small FPGA",
            capacity: ResourceVector {
                lut: 600_000.0,
                ff: 1_200_000.0,
                dsp: 4_000.0,
                bram_bytes: 8.0 * 1024.0 * 1024.0,
                uram_bytes: 8.0 * 1024.0 * 1024.0,
            },
            max_utilization: 0.60,
            target_freq_mhz: 140.0,
        }
    }

    /// The usable budget per resource (capacity × utilisation ceiling).
    pub fn budget(&self) -> ResourceVector {
        self.capacity.scale(self.max_utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale_are_componentwise() {
        let a = ResourceVector {
            lut: 10.0,
            ff: 20.0,
            dsp: 2.0,
            bram_bytes: 100.0,
            uram_bytes: 0.0,
        };
        let b = a.scale(2.0);
        assert_eq!(b.lut, 20.0);
        assert_eq!(b.bram_bytes, 200.0);
        let c = a.add(&b);
        assert_eq!(c.ff, 60.0);
    }

    #[test]
    fn fits_within_checks_every_component() {
        let budget = ResourceVector {
            lut: 100.0,
            ff: 100.0,
            dsp: 10.0,
            bram_bytes: 1_000.0,
            uram_bytes: 1_000.0,
        };
        let ok = ResourceVector {
            lut: 99.0,
            ff: 50.0,
            dsp: 10.0,
            bram_bytes: 0.0,
            uram_bytes: 0.0,
        };
        let too_much_dsp = ResourceVector { dsp: 11.0, ..ok };
        assert!(ok.fits_within(&budget));
        assert!(!too_much_dsp.fits_within(&budget));
    }

    #[test]
    fn u55c_budget_is_sixty_percent() {
        let dev = FpgaDevice::alveo_u55c();
        let budget = dev.budget();
        assert!((budget.lut - 780_000.0).abs() < 1.0);
        assert!((budget.dsp - 5_414.4).abs() < 0.1);
    }

    #[test]
    fn max_utilization_reports_worst_resource() {
        let dev = FpgaDevice::alveo_u55c();
        let usage = ResourceVector {
            lut: 130_000.0,
            ff: 0.0,
            dsp: 4_512.0,
            bram_bytes: 0.0,
            uram_bytes: 0.0,
        };
        let u = usage.max_utilization(&dev.capacity);
        assert!((u - 0.5).abs() < 1e-6);
    }
}
