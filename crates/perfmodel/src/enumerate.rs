//! Valid-design enumeration (step 4 of the workflow).
//!
//! FANNS "lists all valid accelerator designs on a given FPGA device by
//! resource consumption modeling": every combination of the hardware choices
//! in Table 2 whose total consumption stays under the device budget. The
//! enumeration below sweeps PE counts, selection microarchitectures and cache
//! placements, prunes infeasible points with the resource model, and returns
//! the surviving [`AcceleratorConfig`]s.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use fanns_hwsim::config::{AcceleratorConfig, IndexStore, SelectArch, StageSizing};

use crate::device::FpgaDevice;
use crate::resources::{design_resources, DesignContext};

/// The grid of hardware choices to sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnumerationSpace {
    /// Candidate Stage IVFDist PE counts.
    pub ivf_dist_pes: Vec<usize>,
    /// Candidate Stage BuildLUT PE counts.
    pub build_lut_pes: Vec<usize>,
    /// Candidate Stage PQDist PE counts.
    pub pq_dist_pes: Vec<usize>,
    /// Selection microarchitectures to consider for Stage SelCells.
    pub sel_cells_archs: Vec<SelectArch>,
    /// Selection microarchitectures to consider for Stage SelK.
    pub sel_k_archs: Vec<SelectArch>,
    /// Cache placements to consider for the IVF centroid table.
    pub ivf_stores: Vec<IndexStore>,
    /// Cache placements to consider for the PQ codebooks.
    pub lut_stores: Vec<IndexStore>,
}

impl EnumerationSpace {
    /// The default sweep used in the experiments: PE counts cover the range
    /// the paper's generated designs land in (Table 4 uses 8–16 IVFDist PEs,
    /// 5–9 BuildLUT PEs and 9–57 PQDist PEs).
    pub fn standard() -> Self {
        Self {
            ivf_dist_pes: vec![1, 2, 4, 6, 8, 11, 16, 24, 32, 48],
            build_lut_pes: vec![1, 2, 4, 5, 7, 9, 12, 16],
            pq_dist_pes: vec![4, 9, 16, 24, 36, 48, 57, 64, 80, 96],
            sel_cells_archs: vec![SelectArch::Hpq, SelectArch::Hsmpqg],
            sel_k_archs: vec![SelectArch::Hpq, SelectArch::Hsmpqg],
            ivf_stores: vec![IndexStore::OnChip, IndexStore::Hbm],
            lut_stores: vec![IndexStore::OnChip, IndexStore::Hbm],
        }
    }

    /// A reduced sweep used by unit tests.
    pub fn small() -> Self {
        Self {
            ivf_dist_pes: vec![2, 8],
            build_lut_pes: vec![2, 4],
            pq_dist_pes: vec![8, 32],
            sel_cells_archs: vec![SelectArch::Hpq],
            sel_k_archs: vec![SelectArch::Hpq, SelectArch::Hsmpqg],
            ivf_stores: vec![IndexStore::OnChip, IndexStore::Hbm],
            lut_stores: vec![IndexStore::Hbm],
        }
    }

    /// Number of raw (pre-pruning) combinations. The OPQ flag does not
    /// multiply the space: it pins `opq_pes` to 0 or 1 rather than adding a
    /// dimension.
    pub fn raw_size(&self, _opq: bool) -> usize {
        self.ivf_dist_pes.len()
            * self.build_lut_pes.len()
            * self.pq_dist_pes.len()
            * self.sel_cells_archs.len()
            * self.sel_k_archs.len()
            * self.ivf_stores.len()
            * self.lut_stores.len()
    }
}

/// Enumerates every design in `space` that fits `device` for the workload
/// geometry `ctx`. `opq` controls whether an OPQ PE is instantiated.
pub fn enumerate_designs(
    space: &EnumerationSpace,
    device: &FpgaDevice,
    ctx: &DesignContext,
    opq: bool,
) -> Vec<AcceleratorConfig> {
    // Materialise the cross product lazily per IVFDist-PE choice so the
    // pruning work parallelises cleanly.
    let budget = device.budget();
    space
        .ivf_dist_pes
        .par_iter()
        .flat_map_iter(|&ivf_pes| {
            let mut out = Vec::new();
            for &lut_pes in &space.build_lut_pes {
                for &pq_pes in &space.pq_dist_pes {
                    for &sc_arch in &space.sel_cells_archs {
                        for &sk_arch in &space.sel_k_archs {
                            for &ivf_store in &space.ivf_stores {
                                for &lut_store in &space.lut_stores {
                                    let config = AcceleratorConfig {
                                        sizing: StageSizing {
                                            opq_pes: usize::from(opq),
                                            ivf_dist_pes: ivf_pes,
                                            build_lut_pes: lut_pes,
                                            pq_dist_pes: pq_pes,
                                        },
                                        sel_cells_arch: sc_arch,
                                        sel_k_arch: sk_arch,
                                        ivf_store,
                                        lut_store,
                                        freq_mhz: device.target_freq_mhz,
                                    };
                                    // HSMPQG is only meaningful when the
                                    // result count is below the stream count.
                                    if sk_arch == SelectArch::Hsmpqg
                                        && ctx.k >= config.sel_k_streams()
                                    {
                                        continue;
                                    }
                                    if sc_arch == SelectArch::Hsmpqg
                                        && ctx.nprobe >= config.sel_cells_streams()
                                    {
                                        continue;
                                    }
                                    let usage = design_resources(&config, ctx);
                                    if usage.fits_within(&budget) {
                                        out.push(config);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(nlist: usize, k: usize) -> DesignContext {
        DesignContext {
            dim: 128,
            m: 16,
            ksub: 256,
            nlist,
            nprobe: 16,
            k,
            with_network_stack: false,
        }
    }

    #[test]
    fn enumeration_returns_only_feasible_designs() {
        let device = FpgaDevice::alveo_u55c();
        let space = EnumerationSpace::small();
        let c = ctx(8192, 10);
        let designs = enumerate_designs(&space, &device, &c, false);
        assert!(!designs.is_empty());
        for d in &designs {
            assert!(design_resources(d, &c).fits_within(&device.budget()));
        }
    }

    #[test]
    fn smaller_device_admits_fewer_designs() {
        let c = ctx(8192, 100);
        let space = EnumerationSpace::standard();
        let big = enumerate_designs(&space, &FpgaDevice::alveo_u55c(), &c, false);
        let small = enumerate_designs(&space, &FpgaDevice::small_device(), &c, false);
        assert!(small.len() < big.len());
    }

    #[test]
    fn large_k_prunes_more_designs_than_small_k() {
        // K=100 priority queues are expensive, so fewer configurations fit.
        let space = EnumerationSpace::standard();
        let device = FpgaDevice::alveo_u55c();
        let k1 = enumerate_designs(&space, &device, &ctx(8192, 1), false);
        let k100 = enumerate_designs(&space, &device, &ctx(8192, 100), false);
        assert!(k100.len() < k1.len());
    }

    #[test]
    fn hsmpqg_is_skipped_when_k_exceeds_streams() {
        let space = EnumerationSpace::small();
        let device = FpgaDevice::alveo_u55c();
        let designs = enumerate_designs(&space, &device, &ctx(8192, 100), false);
        for d in designs {
            if d.sel_k_arch == SelectArch::Hsmpqg {
                assert!(d.sel_k_streams() > 100);
            }
        }
    }

    #[test]
    #[allow(clippy::identity_op)] // the 1s spell out each axis of the cross-product
    fn raw_size_counts_cross_product() {
        let space = EnumerationSpace::small();
        assert_eq!(space.raw_size(false), 2 * 2 * 2 * 1 * 2 * 2 * 1);
    }

    #[test]
    fn opq_flag_instantiates_an_opq_pe() {
        let space = EnumerationSpace::small();
        let device = FpgaDevice::alveo_u55c();
        let designs = enumerate_designs(&space, &device, &ctx(8192, 10), true);
        assert!(designs.iter().all(|d| d.sizing.opq_pes == 1));
    }
}
