//! QPS prediction (Equations 3 and 4, step 5 of the workflow).
//!
//! The accelerator is a pipeline, so its throughput is that of the slowest
//! stage; a stage of several equally-loaded PEs has the throughput of one PE
//! over its share of the work; and one PE's cycle count is `L + (N−1)·II`.
//! [`predict_qps`] evaluates these formulas for an arbitrary combination of a
//! [`WorkloadModel`] (the algorithm-parameter side) and an
//! [`fanns_hwsim::config::AcceleratorConfig`] (the hardware side) — exactly
//! the cross product the FANNS optimiser walks.

use serde::{Deserialize, Serialize};

use fanns_hwsim::config::AcceleratorConfig;
use fanns_hwsim::select::SelectionSpec;
use fanns_hwsim::stages::{
    build_lut_elements_per_pe, build_lut_pe_model, ivf_dist_elements_per_pe, ivf_dist_pe_model,
    opq_elements_per_pe, opq_pe_model, pq_dist_elements_per_pe, pq_dist_pe_model,
};
use fanns_ivf::index::IvfPqIndex;
use fanns_ivf::params::{IvfPqParams, SearchStage, ALL_STAGES};

/// The algorithm-side inputs to the performance model: everything the model
/// needs to know about the dataset, the index and the query parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Vector dimensionality.
    pub dim: usize,
    /// PQ sub-quantizer count.
    pub m: usize,
    /// PQ codebook size per sub-space.
    pub ksub: usize,
    /// Number of IVF cells.
    pub nlist: usize,
    /// Number of cells probed per query.
    pub nprobe: usize,
    /// Results per query.
    pub k: usize,
    /// Whether Stage OPQ runs.
    pub opq: bool,
    /// Expected number of PQ codes scanned per query (accounts for list
    /// imbalance; §6.3's estimate of the variable `N` of Stage PQDist).
    pub expected_scanned_codes: f64,
}

impl WorkloadModel {
    /// Builds a workload model from a populated index and query parameters.
    pub fn from_index(index: &IvfPqIndex, params: &IvfPqParams) -> Self {
        Self {
            dim: index.dim(),
            m: index.m(),
            ksub: index.pq().ksub(),
            nlist: index.nlist(),
            nprobe: params.effective_nprobe(),
            k: params.k,
            opq: index.has_opq(),
            expected_scanned_codes: index.expected_scanned_codes(params.effective_nprobe()),
        }
    }

    /// An analytic workload model for a database of `ntotal` vectors with
    /// perfectly balanced lists (used before any index has been trained).
    pub fn analytic(
        dim: usize,
        m: usize,
        ksub: usize,
        ntotal: usize,
        params: &IvfPqParams,
    ) -> Self {
        let nprobe = params.effective_nprobe();
        Self {
            dim,
            m,
            ksub,
            nlist: params.nlist,
            nprobe,
            k: params.k,
            opq: params.opq,
            expected_scanned_codes: ntotal as f64 * nprobe as f64 / params.nlist.max(1) as f64,
        }
    }
}

/// The model's output for one (workload × design) combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpsPrediction {
    /// Predicted queries per second (Equation 3).
    pub qps: f64,
    /// Predicted single-query latency in microseconds (pipeline traversal).
    pub latency_us: f64,
    /// Cycles per query in each stage.
    pub stage_cycles: [u64; 6],
    /// The limiting stage.
    pub bottleneck: SearchStage,
}

/// Predicts per-stage cycles for the workload on the design.
pub fn stage_cycles(workload: &WorkloadModel, config: &AcceleratorConfig) -> [u64; 6] {
    let s = &config.sizing;

    let opq_cycles = if workload.opq {
        opq_pe_model(workload.dim).cycles(opq_elements_per_pe(workload.dim, s.opq_pes))
    } else {
        0
    };

    let ivf_cycles = ivf_dist_pe_model(workload.dim, config.ivf_store)
        .cycles(ivf_dist_elements_per_pe(workload.nlist, s.ivf_dist_pes));

    let sel_cells_cycles = SelectionSpec::new(
        config.sel_cells_arch,
        config.sel_cells_streams(),
        workload.nprobe,
    )
    .cycles_per_query(ivf_dist_elements_per_pe(workload.nlist, s.ivf_dist_pes));

    let dsub = workload.dim / workload.m.max(1);
    let lut_cycles = build_lut_pe_model(dsub, config.lut_store).cycles(build_lut_elements_per_pe(
        workload.m,
        workload.ksub,
        s.build_lut_pes,
    ));

    let pq_elems = pq_dist_elements_per_pe(workload.expected_scanned_codes, s.pq_dist_pes);
    let pq_cycles = pq_dist_pe_model(workload.m, workload.ksub, workload.nprobe).cycles(pq_elems);

    let sel_k_cycles = SelectionSpec::new(config.sel_k_arch, config.sel_k_streams(), workload.k)
        .cycles_per_query(pq_elems);

    [
        opq_cycles,
        ivf_cycles,
        sel_cells_cycles,
        lut_cycles,
        pq_cycles,
        sel_k_cycles,
    ]
}

/// Predicts QPS and latency for the workload on the design (Equations 3–4).
pub fn predict_qps(workload: &WorkloadModel, config: &AcceleratorConfig) -> QpsPrediction {
    let cycles = stage_cycles(workload, config);
    let slowest = *cycles.iter().max().unwrap_or(&1);
    let bottleneck_pos = cycles
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let freq_hz = config.freq_mhz * 1e6;
    let qps = if slowest == 0 {
        0.0
    } else {
        freq_hz / slowest as f64
    };
    let total: u64 = cycles.iter().sum::<u64>() + fanns_hwsim::accelerator::QUERY_OVERHEAD_CYCLES;
    QpsPrediction {
        qps,
        latency_us: total as f64 / config.freq_mhz,
        stage_cycles: cycles,
        bottleneck: ALL_STAGES[bottleneck_pos],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_hwsim::config::{IndexStore, SelectArch, StageSizing};

    fn sift100m_workload(nlist: usize, nprobe: usize, k: usize) -> WorkloadModel {
        WorkloadModel {
            dim: 128,
            m: 16,
            ksub: 256,
            nlist,
            nprobe,
            k,
            opq: false,
            expected_scanned_codes: 100_000_000.0 * nprobe as f64 / nlist as f64,
        }
    }

    #[test]
    fn qps_equals_frequency_over_slowest_stage() {
        let w = sift100m_workload(8192, 16, 10);
        let c = AcceleratorConfig::balanced();
        let pred = predict_qps(&w, &c);
        let slowest = *pred.stage_cycles.iter().max().unwrap();
        assert!((pred.qps - 140.0e6 / slowest as f64).abs() < 1e-6);
        assert!(pred.latency_us > 0.0);
    }

    #[test]
    fn paper_scale_design_predicts_thousands_of_qps() {
        // Roughly the Table 4 K=10 geometry: IVF8192, nprobe=17, 36 PQDist PEs.
        let w = sift100m_workload(8192, 17, 10);
        let c = AcceleratorConfig {
            sizing: StageSizing {
                opq_pes: 1,
                ivf_dist_pes: 11,
                build_lut_pes: 9,
                pq_dist_pes: 36,
            },
            sel_cells_arch: SelectArch::Hpq,
            sel_k_arch: SelectArch::Hsmpqg,
            ivf_store: IndexStore::OnChip,
            lut_store: IndexStore::OnChip,
            freq_mhz: 140.0,
        };
        let pred = predict_qps(&w, &c);
        // The paper predicts 11,098 QPS for its K=10 design; our calibration
        // should land in the same order of magnitude.
        assert!(
            pred.qps > 2_000.0 && pred.qps < 60_000.0,
            "QPS {}",
            pred.qps
        );
        assert_eq!(pred.bottleneck, SearchStage::PqDist);
    }

    #[test]
    fn increasing_nprobe_moves_bottleneck_to_pqdist() {
        let c = AcceleratorConfig::balanced();
        let small = predict_qps(&sift100m_workload(8192, 1, 10), &c);
        let large = predict_qps(&sift100m_workload(8192, 128, 10), &c);
        assert!(large.qps < small.qps);
        assert_eq!(large.bottleneck, SearchStage::PqDist);
        assert_ne!(small.bottleneck, SearchStage::PqDist);
    }

    #[test]
    fn increasing_nlist_increases_ivfdist_share() {
        let c = AcceleratorConfig::balanced();
        let few = stage_cycles(&sift100m_workload(1024, 16, 10), &c);
        let many = stage_cycles(&sift100m_workload(262_144, 16, 10), &c);
        let pos = SearchStage::IvfDist.position();
        assert!(many[pos] > few[pos]);
    }

    #[test]
    fn large_k_slows_selk() {
        let c = AcceleratorConfig::balanced();
        let k10 = stage_cycles(&sift100m_workload(8192, 16, 10), &c);
        let k100 = stage_cycles(&sift100m_workload(8192, 16, 100), &c);
        let pos = SearchStage::SelK.position();
        assert!(k100[pos] > k10[pos]);
    }

    #[test]
    fn more_pes_speed_up_their_stage() {
        let w = sift100m_workload(65536, 16, 10);
        let mut few = AcceleratorConfig::balanced();
        few.sizing.ivf_dist_pes = 2;
        let mut many = AcceleratorConfig::balanced();
        many.sizing.ivf_dist_pes = 32;
        let pos = SearchStage::IvfDist.position();
        assert!(stage_cycles(&w, &many)[pos] < stage_cycles(&w, &few)[pos]);
    }

    #[test]
    fn analytic_workload_matches_balanced_assumption() {
        let params = IvfPqParams::new(1024, 8, 10);
        let w = WorkloadModel::analytic(128, 16, 256, 1_000_000, &params);
        assert!((w.expected_scanned_codes - 7812.5).abs() < 1e-6);
        assert_eq!(w.nprobe, 8);
    }

    #[test]
    fn opq_stage_is_free_when_disabled() {
        let c = AcceleratorConfig::balanced();
        let mut w = sift100m_workload(8192, 16, 10);
        w.opq = false;
        assert_eq!(stage_cycles(&w, &c)[SearchStage::Opq.position()], 0);
        w.opq = true;
        assert!(stage_cycles(&w, &c)[SearchStage::Opq.position()] > 0);
    }
}
