//! Bounded FIFO model.
//!
//! On the FPGA the PEs are connected by HLS streams (FIFOs); the paper counts
//! their resource consumption explicitly in Equation 2 and relies on them for
//! the dataflow pipelining that gives the accelerator its stable latency.
//! This model provides the functional behaviour (bounded queue) plus the
//! occupancy statistics used to sanity-check that a simulated design is not
//! starved or back-pressured at steady state.

use std::collections::VecDeque;

/// A bounded single-producer single-consumer FIFO with occupancy statistics.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    depth: usize,
    buffer: VecDeque<T>,
    pushes: u64,
    pops: u64,
    push_failures: u64,
    max_occupancy: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given depth (HLS default is 2; the paper's
    /// inter-stage FIFOs are sized to cover pipeline bubbles).
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        Self {
            depth,
            buffer: VecDeque::with_capacity(depth),
            pushes: 0,
            pops: 0,
            push_failures: 0,
            max_occupancy: 0,
        }
    }

    /// Maximum number of elements the FIFO can hold.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current number of queued elements.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the FIFO holds no elements.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Whether the FIFO is full (a push would block the producer).
    pub fn is_full(&self) -> bool {
        self.buffer.len() == self.depth
    }

    /// Attempts to push; returns `false` (and records a stall) when full.
    pub fn try_push(&mut self, value: T) -> bool {
        if self.is_full() {
            self.push_failures += 1;
            return false;
        }
        self.buffer.push_back(value);
        self.pushes += 1;
        self.max_occupancy = self.max_occupancy.max(self.buffer.len());
        true
    }

    /// Pops the oldest element, if any.
    pub fn try_pop(&mut self) -> Option<T> {
        let v = self.buffer.pop_front();
        if v.is_some() {
            self.pops += 1;
        }
        v
    }

    /// Total successful pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful pops.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Number of push attempts rejected because the FIFO was full
    /// (back-pressure events).
    pub fn stalls(&self) -> u64 {
        self.push_failures
    }

    /// Highest occupancy observed since creation.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_fifo_ordered() {
        let mut f = Fifo::new(4);
        assert!(f.try_push(1));
        assert!(f.try_push(2));
        assert!(f.try_push(3));
        assert_eq!(f.try_pop(), Some(1));
        assert_eq!(f.try_pop(), Some(2));
        assert_eq!(f.try_pop(), Some(3));
        assert_eq!(f.try_pop(), None);
    }

    #[test]
    fn full_fifo_rejects_and_counts_stalls() {
        let mut f = Fifo::new(2);
        assert!(f.try_push(1));
        assert!(f.try_push(2));
        assert!(f.is_full());
        assert!(!f.try_push(3));
        assert_eq!(f.stalls(), 1);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn statistics_track_traffic() {
        let mut f = Fifo::new(3);
        for i in 0..3 {
            f.try_push(i);
        }
        f.try_pop();
        f.try_push(99);
        assert_eq!(f.pushes(), 4);
        assert_eq!(f.pops(), 1);
        assert_eq!(f.max_occupancy(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_depth_is_rejected() {
        let _ = Fifo::<u32>::new(0);
    }
}
