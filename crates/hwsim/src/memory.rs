//! Device memory models: HBM channels and on-chip BRAM/URAM capacity.
//!
//! The Alveo U55C pairs the FPGA fabric with 16 GB of HBM2 exposed as 32
//! pseudo-channels and roughly 40 MB of on-chip memory (BRAM + URAM). Two of
//! the paper's design decisions hinge on these numbers: (a) the PQ-coded
//! database must fit in HBM (which is why the evaluation uses 100M-vector
//! datasets with 16-byte codes), and (b) small IVF centroid tables can be
//! cached on-chip while large ones must live in HBM (the `Caches` row of
//! Table 2).

use serde::{Deserialize, Serialize};

/// Off-chip HBM model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmModel {
    /// Total capacity in bytes (16 GB on the U55C).
    pub capacity_bytes: u64,
    /// Number of pseudo-channels (32 on the U55C).
    pub channels: usize,
    /// Usable bytes per channel per clock cycle at the accelerator clock
    /// (HBM2 delivers ~460 GB/s aggregate; at 140 MHz that is ~3.3 kB/cycle,
    /// i.e. ~102 bytes per channel per cycle).
    pub bytes_per_channel_per_cycle: f64,
}

impl HbmModel {
    /// The U55C's HBM2 stack as used in the paper.
    pub fn u55c() -> Self {
        Self {
            capacity_bytes: 16 * 1024 * 1024 * 1024,
            channels: 32,
            bytes_per_channel_per_cycle: 102.0,
        }
    }

    /// Aggregate bytes per cycle across `channels_used` channels.
    pub fn bytes_per_cycle(&self, channels_used: usize) -> f64 {
        self.bytes_per_channel_per_cycle * channels_used.min(self.channels) as f64
    }

    /// Cycles needed to stream `bytes` through `channels_used` channels.
    pub fn stream_cycles(&self, bytes: u64, channels_used: usize) -> u64 {
        let per_cycle = self.bytes_per_cycle(channels_used);
        if per_cycle <= 0.0 {
            return u64::MAX;
        }
        (bytes as f64 / per_cycle).ceil() as u64
    }

    /// Whether a PQ-coded database of `code_bytes` plus a centroid table of
    /// `centroid_bytes` fits in HBM.
    pub fn fits(&self, code_bytes: u64, centroid_bytes: u64) -> bool {
        code_bytes.saturating_add(centroid_bytes) <= self.capacity_bytes
    }
}

/// On-chip memory (BRAM + URAM) capacity tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnChipMemory {
    /// Total capacity in bytes (~40 MB on the U55C).
    pub capacity_bytes: u64,
    allocated_bytes: u64,
    allocations: Vec<(String, u64)>,
}

impl OnChipMemory {
    /// The U55C's on-chip memory.
    pub fn u55c() -> Self {
        Self::new(40 * 1024 * 1024)
    }

    /// Creates an on-chip memory pool of the given capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            allocated_bytes: 0,
            allocations: Vec::new(),
        }
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated_bytes
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity_bytes - self.allocated_bytes
    }

    /// Whether `bytes` more would still fit.
    pub fn can_allocate(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Attempts to reserve `bytes` under `label`; returns false (and leaves
    /// the pool unchanged) if it does not fit.
    pub fn allocate(&mut self, label: &str, bytes: u64) -> bool {
        if !self.can_allocate(bytes) {
            return false;
        }
        self.allocated_bytes += bytes;
        self.allocations.push((label.to_string(), bytes));
        true
    }

    /// The recorded allocations (label, bytes).
    pub fn allocations(&self) -> &[(String, u64)] {
        &self.allocations
    }

    /// Utilisation in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.capacity_bytes == 0 {
            return 0.0;
        }
        self.allocated_bytes as f64 / self.capacity_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u55c_hbm_has_paper_capacity() {
        let hbm = HbmModel::u55c();
        assert_eq!(hbm.capacity_bytes, 16 * 1024 * 1024 * 1024);
        assert_eq!(hbm.channels, 32);
    }

    #[test]
    fn sift100m_pq16_fits_in_hbm() {
        // 100M vectors × 16 bytes = 1.6 GB of codes, plus a 2^18-cell
        // centroid table of 128-d floats (134 MB): comfortably fits — the
        // paper's premise for choosing the 100M scale.
        let hbm = HbmModel::u55c();
        let code_bytes = 100_000_000u64 * 16;
        let centroid_bytes = (1u64 << 18) * 128 * 4;
        assert!(hbm.fits(code_bytes, centroid_bytes));
        // Raw 128-d float vectors (51 GB) would not fit.
        assert!(!hbm.fits(100_000_000u64 * 128 * 4, 0));
    }

    #[test]
    fn stream_cycles_scale_with_channels() {
        let hbm = HbmModel::u55c();
        let one = hbm.stream_cycles(1_000_000, 1);
        let many = hbm.stream_cycles(1_000_000, 16);
        assert!(many < one);
        assert!(hbm.stream_cycles(0, 4) == 0);
    }

    #[test]
    fn on_chip_allocation_respects_capacity() {
        let mut mem = OnChipMemory::new(1000);
        assert!(mem.allocate("ivf centroids", 600));
        assert!(!mem.allocate("lut codebooks", 600));
        assert!(mem.allocate("lut codebooks", 400));
        assert_eq!(mem.allocated(), 1000);
        assert_eq!(mem.available(), 0);
        assert_eq!(mem.allocations().len(), 2);
        assert!((mem.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_centroid_table_fits_on_chip_large_does_not() {
        // nlist = 4096 × 128-d × 4 B = 2 MB: cacheable on a 40 MB device.
        // nlist = 2^18 × 128-d × 4 B = 134 MB: must go to HBM.
        let mem = OnChipMemory::u55c();
        assert!(mem.can_allocate(4096 * 128 * 4));
        assert!(!mem.can_allocate((1 << 18) * 128 * 4));
    }
}
