//! Systolic priority queue (§5.1.1, Figure 6).
//!
//! The hardware queue is a register array interconnected by compare-swap
//! units. It supports only the *replace* operation the paper needs: if the
//! new item is smaller than the current largest retained item, the largest is
//! evicted and the new item inserted. One replace operation is accepted every
//! **two** clock cycles: in the first cycle the leftmost node takes the new
//! item and even/odd neighbours compare-swap, in the second cycle odd/even
//! neighbours compare-swap. This model reproduces both the functional result
//! (the queue holds the smallest `len` items seen) and the cycle cost
//! (`2` cycles per accepted input, plus a drain phase to read results out).

use serde::{Deserialize, Serialize};

/// A (distance, id) element flowing through the selection hardware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueItem {
    /// Squared distance (lower is better).
    pub distance: f32,
    /// Database or cell identifier.
    pub id: u32,
}

impl QueueItem {
    /// Convenience constructor.
    pub fn new(distance: f32, id: u32) -> Self {
        Self { distance, id }
    }

    /// The padding value used to initialise queue registers (acts like +∞).
    pub fn padding() -> Self {
        Self {
            distance: f32::INFINITY,
            id: u32::MAX,
        }
    }
}

/// Cycle cost of one replace operation (Figure 6: two-phase compare-swap).
pub const CYCLES_PER_REPLACE: u64 = 2;

/// A systolic priority queue of fixed length.
#[derive(Debug, Clone)]
pub struct SystolicPriorityQueue {
    /// Register array; the invariant maintained between operations is that it
    /// contains the smallest items seen so far, with the *largest* of them at
    /// index 0 (the entry point that the replace operation compares against).
    registers: Vec<QueueItem>,
    len: usize,
    inserts: u64,
    cycles: u64,
}

impl SystolicPriorityQueue {
    /// Creates a queue that retains the `len` smallest items.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "queue length must be positive");
        Self {
            registers: vec![QueueItem::padding(); len],
            len,
            inserts: 0,
            cycles: 0,
        }
    }

    /// Queue length (the `s` of the paper's K-selection discussion).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether any real item has been inserted.
    pub fn is_empty(&self) -> bool {
        self.inserts == 0
    }

    /// Number of replace operations issued.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Clock cycles consumed so far (2 per replace).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The current worst retained distance (the value at the entry register).
    pub fn threshold(&self) -> f32 {
        self.registers[0].distance
    }

    /// Issues one replace operation: the input is retained iff it is smaller
    /// than the current root; either way two cycles elapse.
    ///
    /// The hardware performs the systolic even/odd swap sequence; functionally
    /// that is equivalent to "evict the maximum, insert the new item", which
    /// is what we compute here while keeping the max at index 0.
    pub fn replace(&mut self, item: QueueItem) {
        self.inserts += 1;
        self.cycles += CYCLES_PER_REPLACE;
        if item.distance >= self.registers[0].distance {
            return;
        }
        // Evict the root (current maximum) and re-establish the max at [0].
        self.registers[0] = item;
        let (mut max_idx, mut max_val) = (0usize, self.registers[0].distance);
        for (i, r) in self.registers.iter().enumerate() {
            if r.distance > max_val {
                max_val = r.distance;
                max_idx = i;
            }
        }
        self.registers.swap(0, max_idx);
    }

    /// Pushes a whole stream through the queue, returning the cycles consumed.
    pub fn replace_stream(&mut self, items: &[QueueItem]) -> u64 {
        let before = self.cycles;
        for &item in items {
            self.replace(item);
        }
        self.cycles - before
    }

    /// Reads out the retained items sorted by increasing distance. Draining a
    /// hardware queue of length `s` costs `s` cycles (one pop per cycle),
    /// which is also accounted here.
    pub fn drain_sorted(&mut self) -> Vec<QueueItem> {
        self.cycles += self.len as u64;
        let mut items: Vec<QueueItem> = self
            .registers
            .iter()
            .copied()
            .filter(|i| i.distance.is_finite())
            .collect();
        items.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        items
    }

    /// Resets the queue contents (new query) without clearing cycle counters.
    pub fn reset(&mut self) {
        self.registers.fill(QueueItem::padding());
        self.inserts = 0;
    }

    /// Hardware cost proxies: the number of compare-swap units and registers
    /// is linear in the queue length (the basis of the paper's linear
    /// resource-consumption model for priority queues).
    pub fn compare_swap_units(&self) -> usize {
        self.len.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn retains_the_smallest_items() {
        let mut q = SystolicPriorityQueue::new(3);
        for (i, d) in [9.0f32, 2.0, 7.0, 1.0, 5.0, 0.5].iter().enumerate() {
            q.replace(QueueItem::new(*d, i as u32));
        }
        let out = q.drain_sorted();
        let dists: Vec<f32> = out.iter().map(|i| i.distance).collect();
        assert_eq!(dists, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn two_cycles_per_replace() {
        let mut q = SystolicPriorityQueue::new(4);
        let items: Vec<QueueItem> = (0..10).map(|i| QueueItem::new(i as f32, i)).collect();
        let cycles = q.replace_stream(&items);
        assert_eq!(cycles, 10 * CYCLES_PER_REPLACE);
        assert_eq!(q.inserts(), 10);
    }

    #[test]
    fn drain_accounts_cycles_and_filters_padding() {
        let mut q = SystolicPriorityQueue::new(5);
        q.replace(QueueItem::new(1.0, 7));
        let before = q.cycles();
        let out = q.drain_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 7);
        assert_eq!(q.cycles(), before + 5);
    }

    #[test]
    fn reset_clears_contents_but_not_cycles() {
        let mut q = SystolicPriorityQueue::new(2);
        q.replace(QueueItem::new(1.0, 1));
        let cycles = q.cycles();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.cycles(), cycles);
        assert!(q.drain_sorted().is_empty());
    }

    #[test]
    fn threshold_reflects_worst_retained() {
        let mut q = SystolicPriorityQueue::new(2);
        assert!(q.threshold().is_infinite());
        q.replace(QueueItem::new(3.0, 0));
        q.replace(QueueItem::new(1.0, 1));
        assert_eq!(q.threshold(), 3.0);
        q.replace(QueueItem::new(2.0, 2));
        assert_eq!(q.threshold(), 2.0);
    }

    #[test]
    fn resource_proxy_is_linear_in_length() {
        assert_eq!(SystolicPriorityQueue::new(10).compare_swap_units(), 9);
        assert_eq!(SystolicPriorityQueue::new(1).compare_swap_units(), 0);
    }

    proptest! {
        /// The queue must always agree with a software sort-and-truncate.
        #[test]
        fn matches_sort_truncate(len in 1usize..20, values in prop::collection::vec(0.0f32..1000.0, 0..200)) {
            let mut q = SystolicPriorityQueue::new(len);
            for (i, v) in values.iter().enumerate() {
                q.replace(QueueItem::new(*v, i as u32));
            }
            let got: Vec<f32> = q.drain_sorted().iter().map(|i| i.distance).collect();
            let mut expected = values.clone();
            expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
            expected.truncate(len);
            prop_assert_eq!(got, expected);
        }
    }
}
