//! Per-stage processing-element (PE) cycle models.
//!
//! Following §6.3 of the paper, a PE is characterised by its pipeline latency
//! `L` and initiation interval `II`; processing `N` input elements takes
//! `CC = L + (N − 1) · II` cycles (Equation 4). The constants below play the
//! role of the numbers the authors obtained by implementing each PE in Vitis
//! HLS and reading the synthesis reports; they are chosen to be consistent
//! with the architectural descriptions in §5.2 (e.g. a PQDist PE consumes one
//! 16-byte code per cycle through an m-wide add tree, an IVFDist PE needs
//! several cycles per 128-dimensional centroid distance).

use serde::{Deserialize, Serialize};

use crate::config::IndexStore;

/// The kinds of PEs instantiated in the computation stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StagePeKind {
    /// Stage OPQ: query × rotation-matrix multiplication.
    Opq,
    /// Stage IVFDist: query-to-centroid distances.
    IvfDist,
    /// Stage BuildLUT: query-to-sub-centroid distance table construction.
    BuildLut,
    /// Stage PQDist: ADC lookups + add tree over PQ codes.
    PqDist,
}

impl StagePeKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            StagePeKind::Opq => "OPQ",
            StagePeKind::IvfDist => "IVFDist",
            StagePeKind::BuildLut => "BuildLUT",
            StagePeKind::PqDist => "PQDist",
        }
    }
}

/// The `L`/`II` cycle model of one PE (Equation 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeCycleModel {
    /// Pipeline latency in cycles: time for one input to traverse the PE.
    pub latency: u64,
    /// Initiation interval in cycles: time between accepting two inputs.
    pub initiation_interval: u64,
}

impl PeCycleModel {
    /// Creates a model; both values are clamped to at least 1 cycle.
    pub fn new(latency: u64, initiation_interval: u64) -> Self {
        Self {
            latency: latency.max(1),
            initiation_interval: initiation_interval.max(1),
        }
    }

    /// Cycles to process `n` input elements: `L + (N − 1) · II` (Equation 4).
    pub fn cycles(&self, n: u64) -> u64 {
        if n == 0 {
            return self.latency;
        }
        self.latency + (n - 1) * self.initiation_interval
    }

    /// Queries per second of this PE at `freq_mhz`, given `n` elements per
    /// query (the per-PE form of Equation 4's QPS derivation).
    pub fn qps(&self, n: u64, freq_mhz: f64) -> f64 {
        freq_mhz * 1e6 / self.cycles(n) as f64
    }
}

/// How many parallel multiply–accumulate lanes a computation PE has. This is
/// the "PE size" knob of §5.2.1: larger PEs deliver more work per cycle but
/// are harder to place and route.
pub const OPQ_LANES: u64 = 16;
/// Lanes of an IVFDist PE (dimensions processed per cycle per centroid).
pub const IVF_DIST_LANES: u64 = 16;
/// Lanes of a BuildLUT PE (sub-vector dimensions processed per cycle).
pub const BUILD_LUT_LANES: u64 = 8;

/// Extra access latency (cycles) when a table is streamed from HBM instead of
/// held in BRAM/URAM. HBM on the U55C has ~100 ns access latency ≈ 14 cycles
/// at 140 MHz; burst streaming hides most but not all of it.
pub const HBM_EXTRA_LATENCY: u64 = 24;
/// Initiation-interval penalty (in additional cycles per element) when the
/// working set is streamed from HBM and exceeds the burst-friendly size.
pub const HBM_II_PENALTY: u64 = 1;

/// Cycle model for one **Stage OPQ** PE processing a `dim`-dimensional query
/// against a `dim × dim` rotation matrix: one output element (row) per
/// `dim / OPQ_LANES` cycles.
pub fn opq_pe_model(dim: usize) -> PeCycleModel {
    let ii = (dim as u64).div_ceil(OPQ_LANES);
    // Latency: fill the multiply-accumulate pipeline plus the adder tree.
    PeCycleModel::new(ii + 12, ii)
}

/// Elements (`N`) a single Stage OPQ PE must produce per query: the `dim`
/// output components, divided across `pes` PEs.
pub fn opq_elements_per_pe(dim: usize, pes: usize) -> u64 {
    (dim as u64).div_ceil(pes.max(1) as u64)
}

/// Cycle model for one **Stage IVFDist** PE: one centroid distance per
/// `dim / IVF_DIST_LANES` cycles, with an HBM penalty when the centroid table
/// is not cached on-chip.
pub fn ivf_dist_pe_model(dim: usize, store: IndexStore) -> PeCycleModel {
    let base_ii = (dim as u64).div_ceil(IVF_DIST_LANES);
    match store {
        IndexStore::OnChip => PeCycleModel::new(base_ii + 8, base_ii),
        IndexStore::Hbm => {
            PeCycleModel::new(base_ii + 8 + HBM_EXTRA_LATENCY, base_ii + HBM_II_PENALTY)
        }
    }
}

/// Elements (`N`) per Stage IVFDist PE: `nlist / pes` centroid distances
/// (the paper's example of a constant-N stage).
pub fn ivf_dist_elements_per_pe(nlist: usize, pes: usize) -> u64 {
    (nlist as u64).div_ceil(pes.max(1) as u64)
}

/// Cycle model for one **Stage BuildLUT** PE: one table entry (distance
/// between a query sub-vector and one sub-quantizer centroid) per
/// `dsub / BUILD_LUT_LANES` cycles.
pub fn build_lut_pe_model(dsub: usize, store: IndexStore) -> PeCycleModel {
    let base_ii = (dsub as u64).div_ceil(BUILD_LUT_LANES);
    match store {
        IndexStore::OnChip => PeCycleModel::new(base_ii + 10, base_ii),
        IndexStore::Hbm => {
            PeCycleModel::new(base_ii + 10 + HBM_EXTRA_LATENCY, base_ii + HBM_II_PENALTY)
        }
    }
}

/// Elements (`N`) per Stage BuildLUT PE: the `m × ksub` table entries divided
/// across `pes` PEs.
pub fn build_lut_elements_per_pe(m: usize, ksub: usize, pes: usize) -> u64 {
    ((m * ksub) as u64).div_ceil(pes.max(1) as u64)
}

/// Cycle model for one **Stage PQDist** PE (Figure 8): the distance lookup
/// table is cached in `m` parallel BRAM slices, `m` lookups happen per cycle
/// and feed an add tree, so the PE consumes one PQ code per cycle. The
/// latency covers loading the per-query table into the BRAM slices (one row
/// of `m` entries per cycle, i.e. `ksub` cycles) plus the add-tree depth.
pub fn pq_dist_pe_model(m: usize, ksub: usize, _nprobe: usize) -> PeCycleModel {
    let table_load = ksub as u64;
    let add_tree_depth = (m.max(2) as u64).ilog2() as u64 + 2;
    PeCycleModel::new(table_load + add_tree_depth + 8, 1)
}

/// Elements (`N`) per Stage PQDist PE: the expected number of PQ codes
/// scanned per query divided across `pes` PEs.
pub fn pq_dist_elements_per_pe(expected_scanned_codes: f64, pes: usize) -> u64 {
    (expected_scanned_codes / pes.max(1) as f64).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation4_is_implemented_exactly() {
        let pe = PeCycleModel::new(10, 2);
        assert_eq!(pe.cycles(1), 10);
        assert_eq!(pe.cycles(5), 10 + 4 * 2);
        assert_eq!(pe.cycles(0), 10);
    }

    #[test]
    fn qps_scales_inversely_with_workload() {
        let pe = PeCycleModel::new(10, 1);
        let fast = pe.qps(100, 140.0);
        let slow = pe.qps(1000, 140.0);
        assert!(fast > slow);
        // 140 MHz / (10 + 99) cycles ≈ 1.284 M QPS.
        assert!((fast - 140.0e6 / 109.0).abs() < 1.0);
    }

    #[test]
    fn hbm_store_is_slower_than_on_chip() {
        let on_chip = ivf_dist_pe_model(128, IndexStore::OnChip);
        let hbm = ivf_dist_pe_model(128, IndexStore::Hbm);
        assert!(hbm.latency > on_chip.latency);
        assert!(hbm.initiation_interval >= on_chip.initiation_interval);
        assert!(hbm.cycles(1000) > on_chip.cycles(1000));
    }

    #[test]
    fn element_counts_divide_work_across_pes() {
        assert_eq!(ivf_dist_elements_per_pe(8192, 8), 1024);
        assert_eq!(ivf_dist_elements_per_pe(8192, 3), 2731);
        assert_eq!(build_lut_elements_per_pe(16, 256, 4), 1024);
        assert_eq!(opq_elements_per_pe(128, 1), 128);
        assert_eq!(pq_dist_elements_per_pe(10_000.0, 16), 625);
    }

    #[test]
    fn pq_dist_pe_streams_one_code_per_cycle() {
        let pe = pq_dist_pe_model(16, 256, 16);
        assert_eq!(pe.initiation_interval, 1);
        // Scanning 100k codes should be dominated by the II term.
        let cycles = pe.cycles(100_000);
        assert!(cycles < 110_000);
        assert!(cycles >= 100_000);
    }

    #[test]
    fn larger_dimension_slows_ivf_dist() {
        let d96 = ivf_dist_pe_model(96, IndexStore::OnChip);
        let d128 = ivf_dist_pe_model(128, IndexStore::OnChip);
        assert!(d128.cycles(1000) >= d96.cycles(1000));
    }

    #[test]
    fn stage_names_are_paper_terms() {
        assert_eq!(StagePeKind::Opq.name(), "OPQ");
        assert_eq!(StagePeKind::PqDist.name(), "PQDist");
    }
}
