//! FPGA hardware substrate: cycle-level models of the FANNS accelerator.
//!
//! The paper implements its accelerators in Vitis HLS on a Xilinx Alveo U55C.
//! This crate replaces the HLS/silicon path with software models that expose
//! exactly the quantities the paper's methodology depends on:
//!
//! * every processing element (PE) is characterised by a pipeline latency
//!   `L`, an initiation interval `II` and a workload size `N`, giving the
//!   per-query cycle count `CC = L + (N − 1) · II` (Equation 4),
//! * the accelerator is a six-stage dataflow pipeline connected by FIFOs, so
//!   its throughput is the throughput of its slowest stage (Equation 3),
//! * the K-selection stages can be built from two microarchitectures —
//!   hierarchical priority queues (HPQ) or the hybrid
//!   sorting/merging/priority-queue group (HSMPQG) of §5.1.2 — with different
//!   cycle and resource trade-offs,
//! * and the whole thing is *functional*: feeding a real [`fanns_ivf`] index
//!   through the simulated accelerator produces real neighbour lists whose
//!   recall can be checked against ground truth.
//!
//! Modules:
//! * [`fifo`] — bounded FIFO with occupancy accounting,
//! * [`priority_queue`] — systolic priority queue (one replace per 2 cycles),
//! * [`bitonic`] — bitonic sort and partial-merge networks,
//! * [`select`] — the HPQ / HSMPQG K-selection units,
//! * [`stages`] — per-stage PE cycle/latency models,
//! * [`memory`] — HBM channel and on-chip (BRAM/URAM) capacity model,
//! * [`config`] — the accelerator design description shared with the
//!   performance model and the code generator,
//! * [`accelerator`] — the assembled accelerator simulator.

pub mod accelerator;
pub mod bitonic;
pub mod config;
pub mod fifo;
pub mod memory;
pub mod priority_queue;
pub mod select;
pub mod stages;

pub use accelerator::{Accelerator, QueryOutcome, SimulationReport};
pub use config::{AcceleratorConfig, IndexStore, SelectArch, StageSizing};
pub use select::{KSelectionUnit, SelectionSpec};
pub use stages::{PeCycleModel, StagePeKind};
