//! The assembled accelerator simulator.
//!
//! An [`Accelerator`] binds an [`AcceleratorConfig`] (the hardware design), an
//! [`IvfPqIndex`] (the database content that would live in the FPGA's HBM) and
//! a set of query-time parameters. It provides:
//!
//! * a **functional** path — queries flow through the same six stages the
//!   hardware implements, with the selection stages executed by the modelled
//!   HPQ/HSMPQG units, producing real neighbour lists,
//! * a **cycle accounting** path — every stage's cycle count for the query is
//!   computed from the PE models of [`crate::stages`] and
//!   [`crate::select`], giving per-query latency (sum over stages, plus the
//!   host/DMA overhead) and pipelined throughput (bounded by the slowest
//!   stage, Equation 3).
//!
//! The deterministic processing pipeline is what gives the FPGA its very low
//! latency variance in the paper (Figure 11); here that shows up as per-query
//! latencies that differ only through the number of codes actually scanned.

use serde::{Deserialize, Serialize};

use fanns_dataset::types::QuerySet;
use fanns_ivf::index::IvfPqIndex;
use fanns_ivf::params::{IvfPqParams, SearchStage};
use fanns_ivf::search::{
    stage_build_lut, stage_ivf_dist, stage_opq, stage_scan_and_select, SearchResult,
};

use crate::config::{AcceleratorConfig, IndexStore};
use crate::memory::{HbmModel, OnChipMemory};
use crate::priority_queue::QueueItem;
use crate::select::{KSelectionUnit, SelectionSpec};
use crate::stages::{
    build_lut_elements_per_pe, build_lut_pe_model, ivf_dist_elements_per_pe, ivf_dist_pe_model,
    opq_elements_per_pe, opq_pe_model, pq_dist_elements_per_pe, pq_dist_pe_model,
};

/// Fixed pipeline overhead per query in cycles: query DMA-in over PCIe (or
/// the network stack), the global controller, and result DMA-out.
pub const QUERY_OVERHEAD_CYCLES: u64 = 400;

/// The outcome of simulating one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The K nearest neighbours found (sorted by distance).
    pub results: Vec<SearchResult>,
    /// Cycles spent per stage, indexed by [`SearchStage::position`].
    pub stage_cycles: [u64; 6],
    /// End-to-end latency in cycles (pipeline traversal + fixed overhead).
    pub latency_cycles: u64,
    /// Number of PQ codes actually scanned for this query.
    pub scanned_codes: u64,
}

impl QueryOutcome {
    /// The stage that consumed the most cycles for this query.
    pub fn bottleneck(&self) -> SearchStage {
        let mut best = SearchStage::Opq;
        let mut best_c = 0u64;
        for stage in fanns_ivf::params::ALL_STAGES {
            let c = self.stage_cycles[stage.position()];
            if c > best_c {
                best_c = c;
                best = stage;
            }
        }
        best
    }

    /// Latency in microseconds at the given clock frequency.
    pub fn latency_us(&self, freq_mhz: f64) -> f64 {
        self.latency_cycles as f64 / freq_mhz
    }
}

/// Aggregate results of simulating a batch of queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Number of queries simulated.
    pub queries: usize,
    /// Pipelined throughput in queries per second (Equation 3: the slowest
    /// stage sets the initiation rate).
    pub qps: f64,
    /// Per-query end-to-end latency in microseconds.
    pub latencies_us: Vec<f64>,
    /// Mean cycles per stage across the batch.
    pub mean_stage_cycles: [f64; 6],
    /// The stage that was the throughput bottleneck most often.
    pub bottleneck: SearchStage,
    /// Mean number of PQ codes scanned per query.
    pub mean_scanned_codes: f64,
}

impl SimulationReport {
    /// Percentile of the latency distribution (linear interpolation).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        fanns_ivf::baseline_cpu::percentile(&self.latencies_us, p)
    }
}

/// Errors raised when an accelerator cannot be instantiated for an index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AcceleratorError {
    /// The PQ-coded database plus centroids exceed HBM capacity.
    DatabaseTooLarge {
        /// Bytes required.
        required: u64,
        /// Bytes available.
        capacity: u64,
    },
    /// A structure configured as on-chip does not fit in BRAM/URAM.
    OnChipOverflow {
        /// The structure that overflowed.
        what: String,
        /// Bytes required.
        required: u64,
        /// Bytes available.
        available: u64,
    },
    /// The index has no OPQ but the design allocates OPQ PEs, or vice versa.
    OpqMismatch,
}

impl std::fmt::Display for AcceleratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcceleratorError::DatabaseTooLarge { required, capacity } => {
                write!(f, "database needs {required} B but HBM holds {capacity} B")
            }
            AcceleratorError::OnChipOverflow {
                what,
                required,
                available,
            } => write!(
                f,
                "{what} needs {required} B on-chip but only {available} B are free"
            ),
            AcceleratorError::OpqMismatch => {
                write!(f, "OPQ PE allocation does not match the index")
            }
        }
    }
}

impl std::error::Error for AcceleratorError {}

/// A simulated FANNS accelerator bound to an index and query parameters.
#[derive(Debug)]
pub struct Accelerator<'a> {
    index: &'a IvfPqIndex,
    config: AcceleratorConfig,
    params: IvfPqParams,
    hbm: HbmModel,
    on_chip: OnChipMemory,
}

impl<'a> Accelerator<'a> {
    /// Instantiates an accelerator, checking memory feasibility.
    pub fn new(
        index: &'a IvfPqIndex,
        config: AcceleratorConfig,
        params: IvfPqParams,
    ) -> Result<Self, AcceleratorError> {
        let hbm = HbmModel::u55c();
        let mut on_chip = OnChipMemory::u55c();

        let code_bytes = index.code_bytes() as u64;
        let centroid_bytes = index.centroid_bytes() as u64;
        if !hbm.fits(code_bytes, centroid_bytes) {
            return Err(AcceleratorError::DatabaseTooLarge {
                required: code_bytes + centroid_bytes,
                capacity: hbm.capacity_bytes,
            });
        }

        // An index trained with OPQ needs at least one OPQ PE; the converse
        // (OPQ PEs on a non-OPQ index) merely wastes area and is allowed.
        if index.has_opq() && config.sizing.opq_pes == 0 {
            return Err(AcceleratorError::OpqMismatch);
        }

        if config.ivf_store == IndexStore::OnChip {
            let available = on_chip.available();
            if !on_chip.allocate("IVF centroid table", centroid_bytes) {
                return Err(AcceleratorError::OnChipOverflow {
                    what: "IVF centroid table".to_string(),
                    required: centroid_bytes,
                    available,
                });
            }
        }
        if config.lut_store == IndexStore::OnChip {
            let codebook_bytes =
                (index.m() * index.pq().ksub() * index.pq().dsub() * std::mem::size_of::<f32>())
                    as u64;
            let available = on_chip.available();
            if !on_chip.allocate("PQ sub-quantizer codebooks", codebook_bytes) {
                return Err(AcceleratorError::OnChipOverflow {
                    what: "PQ sub-quantizer codebooks".to_string(),
                    required: codebook_bytes,
                    available,
                });
            }
        }

        Ok(Self {
            index,
            config,
            params,
            hbm,
            on_chip,
        })
    }

    /// The bound hardware configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The bound algorithm parameters.
    pub fn params(&self) -> IvfPqParams {
        self.params
    }

    /// The on-chip memory allocation tracker (after instantiation).
    pub fn on_chip(&self) -> &OnChipMemory {
        &self.on_chip
    }

    /// Per-stage cycle counts for a query that scans `scanned_codes` codes.
    /// This is the hardware cycle model shared with the performance model.
    pub fn stage_cycles(&self, scanned_codes: u64) -> [u64; 6] {
        let dim = self.index.dim();
        let m = self.index.m();
        let ksub = self.index.pq().ksub();
        let nlist = self.index.nlist();
        let nprobe = self.params.effective_nprobe();
        let k = self.params.k;
        let s = &self.config.sizing;

        let opq_cycles = if self.index.has_opq() {
            opq_pe_model(dim).cycles(opq_elements_per_pe(dim, s.opq_pes))
        } else {
            0
        };

        let ivf_cycles = ivf_dist_pe_model(dim, self.config.ivf_store)
            .cycles(ivf_dist_elements_per_pe(nlist, s.ivf_dist_pes));

        let sel_cells_spec = SelectionSpec::new(
            self.config.sel_cells_arch,
            self.config.sel_cells_streams(),
            nprobe,
        );
        let sel_cells_cycles =
            sel_cells_spec.cycles_per_query(ivf_dist_elements_per_pe(nlist, s.ivf_dist_pes));

        let lut_cycles = build_lut_pe_model(self.index.pq().dsub(), self.config.lut_store)
            .cycles(build_lut_elements_per_pe(m, ksub, s.build_lut_pes));

        let pq_cycles = pq_dist_pe_model(m, ksub, nprobe)
            .cycles(pq_dist_elements_per_pe(scanned_codes as f64, s.pq_dist_pes));

        let sel_k_spec = SelectionSpec::new(self.config.sel_k_arch, self.config.sel_k_streams(), k);
        let sel_k_cycles = sel_k_spec
            .cycles_per_query(pq_dist_elements_per_pe(scanned_codes as f64, s.pq_dist_pes));

        [
            opq_cycles,
            ivf_cycles,
            sel_cells_cycles,
            lut_cycles,
            pq_cycles,
            sel_k_cycles,
        ]
    }

    /// Number of PQ codes that will actually be scanned for a query.
    fn count_scanned(&self, cells: &[usize]) -> u64 {
        cells.iter().map(|&c| self.index.list(c).len() as u64).sum()
    }

    /// Simulates one query through the *hardware-functional* path: the
    /// selection stages run on the modelled HPQ/HSMPQG units.
    pub fn simulate_query(&self, query: &[f32]) -> QueryOutcome {
        let nprobe = self.params.effective_nprobe();
        let k = self.params.k;

        // Computation stages are numerically identical to the CPU reference.
        let rotated = stage_opq(self.index, query);
        let centroid_dists = stage_ivf_dist(self.index, &rotated);

        // Stage SelCells on the configured selection hardware: distances are
        // distributed round-robin over the IVFDist PE output streams.
        let cell_streams = round_robin_streams(
            centroid_dists
                .iter()
                .enumerate()
                .map(|(i, &d)| QueueItem::new(d, i as u32)),
            self.config.sel_cells_streams(),
        );
        let mut sel_cells_unit = KSelectionUnit::new(SelectionSpec::new(
            self.config.sel_cells_arch,
            self.config.sel_cells_streams(),
            nprobe,
        ));
        let cells: Vec<usize> = sel_cells_unit
            .select(&cell_streams)
            .into_iter()
            .map(|i| i.id as usize)
            .collect();

        let lut = stage_build_lut(self.index, &rotated);

        // Stage PQDist + SelK: ADC distances distributed over the PQDist PE
        // streams, selected by the configured SelK hardware.
        let m = self.index.m();
        let mut candidates: Vec<QueueItem> = Vec::new();
        for &cell in &cells {
            let list = self.index.list(cell);
            for (slot, code) in list.codes.chunks_exact(m).enumerate() {
                candidates.push(QueueItem::new(lut.adc(code), list.ids[slot]));
            }
        }
        let scanned_codes = candidates.len() as u64;
        let k_streams = round_robin_streams(candidates.into_iter(), self.config.sel_k_streams());
        let mut sel_k_unit = KSelectionUnit::new(SelectionSpec::new(
            self.config.sel_k_arch,
            self.config.sel_k_streams(),
            k,
        ));
        let results: Vec<SearchResult> = sel_k_unit
            .select(&k_streams)
            .into_iter()
            .map(|i| SearchResult {
                id: i.id,
                distance: i.distance,
            })
            .collect();

        let stage_cycles = self.stage_cycles(scanned_codes);
        let latency_cycles = stage_cycles.iter().sum::<u64>() + QUERY_OVERHEAD_CYCLES;
        QueryOutcome {
            results,
            stage_cycles,
            latency_cycles,
            scanned_codes,
        }
    }

    /// Simulates one query through the fast path: results come from the
    /// software reference implementation (identical arithmetic), while cycle
    /// accounting uses the same hardware model as [`Self::simulate_query`].
    pub fn simulate_query_fast(&self, query: &[f32]) -> QueryOutcome {
        let nprobe = self.params.effective_nprobe();
        let k = self.params.k;
        let rotated = stage_opq(self.index, query);
        let centroid_dists = stage_ivf_dist(self.index, &rotated);
        let cells = fanns_ivf::search::stage_sel_cells(&centroid_dists, nprobe);
        let lut = stage_build_lut(self.index, &rotated);
        let results = stage_scan_and_select(self.index, &cells, &lut, k);
        let scanned_codes = self.count_scanned(&cells);
        let stage_cycles = self.stage_cycles(scanned_codes);
        let latency_cycles = stage_cycles.iter().sum::<u64>() + QUERY_OVERHEAD_CYCLES;
        QueryOutcome {
            results,
            stage_cycles,
            latency_cycles,
            scanned_codes,
        }
    }

    /// Simulates a batch of queries and aggregates throughput and latency.
    ///
    /// `use_hw_functional` selects the hardware-functional path (slower in
    /// simulation, used by correctness tests) or the fast path (identical
    /// cycle model, used by large benchmark sweeps).
    pub fn simulate_batch(&self, queries: &QuerySet, use_hw_functional: bool) -> SimulationReport {
        let outcomes: Vec<QueryOutcome> = (0..queries.len())
            .map(|q| {
                if use_hw_functional {
                    self.simulate_query(queries.get(q))
                } else {
                    self.simulate_query_fast(queries.get(q))
                }
            })
            .collect();
        self.aggregate(&outcomes)
    }

    /// Aggregates per-query outcomes into a [`SimulationReport`].
    pub fn aggregate(&self, outcomes: &[QueryOutcome]) -> SimulationReport {
        let n = outcomes.len().max(1);
        let freq = self.config.freq_mhz;

        let mut mean_stage_cycles = [0.0f64; 6];
        let mut bottleneck_votes = [0usize; 6];
        let mut total_bottleneck_cycles = 0u64;
        let mut latencies_us = Vec::with_capacity(outcomes.len());
        let mut scanned = 0u64;

        for o in outcomes {
            for (mean, &cycles) in mean_stage_cycles.iter_mut().zip(&o.stage_cycles) {
                *mean += cycles as f64 / n as f64;
            }
            let slowest = *o.stage_cycles.iter().max().unwrap_or(&0);
            total_bottleneck_cycles += slowest;
            bottleneck_votes[o.bottleneck().position()] += 1;
            latencies_us.push(o.latency_us(freq));
            scanned += o.scanned_codes;
        }

        // Pipelined steady state: a new query enters as soon as the slowest
        // stage frees up, so the batch takes Σ max-stage-cycles plus one
        // pipeline fill.
        let fill: u64 = outcomes
            .first()
            .map(|o| {
                o.latency_cycles
                    .saturating_sub(*o.stage_cycles.iter().max().unwrap_or(&0))
            })
            .unwrap_or(0);
        let total_cycles = total_bottleneck_cycles + fill;
        let qps = if total_cycles == 0 {
            0.0
        } else {
            outcomes.len() as f64 / self.config.cycles_to_seconds(total_cycles)
        };

        let bottleneck_pos = bottleneck_votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0);

        SimulationReport {
            queries: outcomes.len(),
            qps,
            latencies_us,
            mean_stage_cycles,
            bottleneck: fanns_ivf::params::ALL_STAGES[bottleneck_pos],
            mean_scanned_codes: scanned as f64 / n as f64,
        }
    }

    /// The HBM model used for feasibility checks.
    pub fn hbm(&self) -> &HbmModel {
        &self.hbm
    }
}

/// Distributes an item stream round-robin across `n` sub-streams (models the
/// work distribution over parallel PEs / FIFO lanes).
fn round_robin_streams<I: Iterator<Item = QueueItem>>(items: I, n: usize) -> Vec<Vec<QueueItem>> {
    let n = n.max(1);
    let mut streams = vec![Vec::new(); n];
    for (i, item) in items.enumerate() {
        streams[i % n].push(item);
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectArch;
    use fanns_dataset::synth::SyntheticSpec;
    use fanns_ivf::index::IvfPqTrainConfig;
    use fanns_ivf::search::search;

    fn setup(opq: bool) -> (fanns_dataset::types::VectorDataset, QuerySet, IvfPqIndex) {
        let (db, queries) = SyntheticSpec::sift_small(55).generate();
        let cfg = IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000)
            .with_seed(5)
            .with_opq(opq);
        let index = IvfPqIndex::build(&db, &cfg);
        (db, queries, index)
    }

    fn params(index: &IvfPqIndex, nprobe: usize, k: usize) -> IvfPqParams {
        IvfPqParams::new(index.nlist(), nprobe, k)
            .with_m(index.m())
            .with_opq(index.has_opq())
    }

    #[test]
    fn hardware_functional_path_matches_software_reference() {
        let (_, queries, index) = setup(false);
        let acc =
            Accelerator::new(&index, AcceleratorConfig::balanced(), params(&index, 4, 10)).unwrap();
        for q in 0..6 {
            let hw = acc.simulate_query(queries.get(q));
            let sw = search(&index, queries.get(q), 10, 4);
            let hw_ids: Vec<u32> = hw.results.iter().map(|r| r.id).collect();
            let sw_ids: Vec<u32> = sw.iter().map(|r| r.id).collect();
            assert_eq!(hw_ids, sw_ids, "query {q} mismatch");
        }
    }

    #[test]
    fn fast_path_and_hw_path_agree() {
        let (_, queries, index) = setup(false);
        let acc =
            Accelerator::new(&index, AcceleratorConfig::balanced(), params(&index, 8, 10)).unwrap();
        for q in 0..4 {
            let a = acc.simulate_query(queries.get(q));
            let b = acc.simulate_query_fast(queries.get(q));
            assert_eq!(a.results, b.results);
            assert_eq!(a.stage_cycles, b.stage_cycles);
            assert_eq!(a.scanned_codes, b.scanned_codes);
        }
    }

    #[test]
    fn opq_index_without_opq_pes_is_rejected() {
        let (_, _, opq_index) = setup(true);
        let mut cfg = AcceleratorConfig::balanced();
        cfg.sizing.opq_pes = 0;
        assert!(matches!(
            Accelerator::new(&opq_index, cfg, params(&opq_index, 4, 10)),
            Err(AcceleratorError::OpqMismatch)
        ));
        // The converse — OPQ PEs on a plain index — only wastes area.
        let (_, _, plain_index) = setup(false);
        let cfg = AcceleratorConfig::balanced();
        assert!(Accelerator::new(&plain_index, cfg, params(&plain_index, 4, 10)).is_ok());
    }

    #[test]
    fn opq_design_runs_and_spends_cycles_in_stage_opq() {
        let (_, queries, index) = setup(true);
        let mut cfg = AcceleratorConfig::balanced();
        cfg.sizing.opq_pes = 1;
        let acc = Accelerator::new(&index, cfg, params(&index, 4, 10)).unwrap();
        let outcome = acc.simulate_query_fast(queries.get(0));
        assert!(outcome.stage_cycles[SearchStage::Opq.position()] > 0);
    }

    #[test]
    fn on_chip_ivf_cache_is_tracked() {
        let (_, _, index) = setup(false);
        let mut cfg = AcceleratorConfig::balanced();
        cfg.ivf_store = IndexStore::OnChip;
        let acc = Accelerator::new(&index, cfg, params(&index, 4, 10)).unwrap();
        assert!(acc.on_chip().allocated() > 0);
    }

    #[test]
    fn scanning_more_cells_increases_pqdist_cycles_and_latency() {
        let (_, queries, index) = setup(false);
        let narrow =
            Accelerator::new(&index, AcceleratorConfig::balanced(), params(&index, 1, 10)).unwrap();
        let wide = Accelerator::new(
            &index,
            AcceleratorConfig::balanced(),
            params(&index, 16, 10),
        )
        .unwrap();
        let a = narrow.simulate_query_fast(queries.get(0));
        let b = wide.simulate_query_fast(queries.get(0));
        assert!(b.scanned_codes > a.scanned_codes);
        assert!(
            b.stage_cycles[SearchStage::PqDist.position()]
                > a.stage_cycles[SearchStage::PqDist.position()]
        );
        assert!(b.latency_cycles > a.latency_cycles);
    }

    #[test]
    fn batch_report_is_internally_consistent() {
        let (_, queries, index) = setup(false);
        let acc =
            Accelerator::new(&index, AcceleratorConfig::balanced(), params(&index, 4, 10)).unwrap();
        let report = acc.simulate_batch(&queries, false);
        assert_eq!(report.queries, queries.len());
        assert_eq!(report.latencies_us.len(), queries.len());
        assert!(report.qps > 0.0);
        assert!(report.mean_scanned_codes > 0.0);
        assert!(report.latency_percentile(95.0) >= report.latency_percentile(50.0));
        let sum: f64 = report.mean_stage_cycles.iter().sum();
        assert!(sum > 0.0);
    }

    #[test]
    fn more_pqdist_pes_raise_throughput_when_scan_bound() {
        let (_, queries, index) = setup(false);
        let mut small = AcceleratorConfig::balanced();
        small.sizing.pq_dist_pes = 2;
        let mut large = AcceleratorConfig::balanced();
        large.sizing.pq_dist_pes = 32;
        // With 32 PQDist streams the co-design would pair SelK with the
        // HSMPQG microarchitecture (many streams, small K) — do the same here
        // so SelK does not become the artificial bottleneck.
        large.sel_k_arch = SelectArch::Hsmpqg;
        let p = params(&index, 16, 10);
        let r_small = Accelerator::new(&index, small, p)
            .unwrap()
            .simulate_batch(&queries, false);
        let r_large = Accelerator::new(&index, large, p)
            .unwrap()
            .simulate_batch(&queries, false);
        assert!(r_large.qps > r_small.qps);
    }

    #[test]
    fn fpga_latency_variance_is_low() {
        // The deterministic pipeline should keep P95/median close to 1 —
        // the property that drives the paper's scale-out result.
        let (_, queries, index) = setup(false);
        let acc =
            Accelerator::new(&index, AcceleratorConfig::balanced(), params(&index, 4, 10)).unwrap();
        let report = acc.simulate_batch(&queries, false);
        let ratio = report.latency_percentile(95.0) / report.latency_percentile(50.0).max(1e-9);
        assert!(
            ratio < 2.0,
            "FPGA tail/median ratio unexpectedly high: {ratio}"
        );
    }
}
