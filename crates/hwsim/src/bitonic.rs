//! Bitonic sorting and partial-merging networks (§5.1.1 and Figure 7).
//!
//! Bitonic sort is the FPGA-friendly parallel sorting primitive: a network of
//! compare-swap stages that accepts `l` elements per clock cycle and, after a
//! fixed pipeline latency of `Σ_{i=1..log2 l} i = log2(l)·(1+log2(l))/2`
//! stages, emits the sorted array — one full array per cycle at steady state.
//! A *bitonic partial merger* takes two sorted arrays of length `l` and
//! outputs the smallest `l` of the union, again fully pipelined.
//!
//! These two networks are the building blocks of the HSMPQG selection
//! microarchitecture (hybrid sort / merge / priority-queue group).

use crate::priority_queue::QueueItem;

/// Returns the smallest power of two ≥ `n` (the width a bitonic network must
/// be padded to).
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// Pipeline latency, in clock cycles, of a bitonic sort network of width `l`
/// (`l` must be a power of two): `log2(l) * (1 + log2(l)) / 2`.
pub fn sort_latency_cycles(width: usize) -> u64 {
    assert!(
        width.is_power_of_two(),
        "bitonic width must be a power of two"
    );
    let stages = width.trailing_zeros() as u64;
    stages * (stages + 1) / 2
}

/// Pipeline latency of a bitonic partial merger of width `l`: a single merge
/// phase of `log2(2l)` compare-swap stages.
pub fn merge_latency_cycles(width: usize) -> u64 {
    assert!(
        width.is_power_of_two(),
        "bitonic width must be a power of two"
    );
    (2 * width).trailing_zeros() as u64
}

/// Number of compare-swap units in a bitonic sort network of width `l`
/// (`l/2` per stage) — the resource-consumption proxy used by the
/// performance model.
pub fn sort_compare_swap_units(width: usize) -> usize {
    assert!(width.is_power_of_two());
    let stages = sort_latency_cycles(width) as usize;
    stages * width / 2
}

/// Number of compare-swap units in a bitonic partial merger of width `l`.
pub fn merge_compare_swap_units(width: usize) -> usize {
    assert!(width.is_power_of_two());
    merge_latency_cycles(width) as usize * width / 2
}

/// A bitonic sort network of fixed width.
///
/// The functional model sorts one input array per call; the cycle model
/// exposes the pipeline latency and an initiation interval of one (a new
/// array can be accepted every cycle).
#[derive(Debug, Clone)]
pub struct BitonicSorter {
    width: usize,
}

impl BitonicSorter {
    /// Creates a sorter of the given power-of-two width.
    pub fn new(width: usize) -> Self {
        assert!(
            width.is_power_of_two(),
            "bitonic width must be a power of two"
        );
        Self { width }
    }

    /// Network width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pipeline latency in cycles.
    pub fn latency(&self) -> u64 {
        sort_latency_cycles(self.width)
    }

    /// Sorts one parallel input array (padding with +∞ if it is short).
    ///
    /// # Panics
    /// Panics if more than `width` items are supplied.
    pub fn sort(&self, items: &[QueueItem]) -> Vec<QueueItem> {
        assert!(
            items.len() <= self.width,
            "{} items exceed network width {}",
            items.len(),
            self.width
        );
        let mut padded: Vec<QueueItem> = items.to_vec();
        padded.resize(self.width, QueueItem::padding());
        bitonic_sort_inplace(&mut padded);
        padded
    }
}

/// A bitonic partial merger: takes two sorted arrays of length `width` and
/// returns the smallest `width` elements of their union, sorted.
#[derive(Debug, Clone)]
pub struct BitonicPartialMerger {
    width: usize,
}

impl BitonicPartialMerger {
    /// Creates a merger of the given power-of-two width.
    pub fn new(width: usize) -> Self {
        assert!(
            width.is_power_of_two(),
            "bitonic width must be a power of two"
        );
        Self { width }
    }

    /// Network width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pipeline latency in cycles.
    pub fn latency(&self) -> u64 {
        merge_latency_cycles(self.width)
    }

    /// Merges two sorted arrays, keeping the smallest `width` elements.
    ///
    /// # Panics
    /// Panics if either input is longer than `width`.
    pub fn merge_smallest(&self, a: &[QueueItem], b: &[QueueItem]) -> Vec<QueueItem> {
        assert!(a.len() <= self.width && b.len() <= self.width);
        // The hardware reverses one array, concatenates to form a bitonic
        // sequence and runs a single merge phase; functionally that is
        // "merge two sorted lists, keep the width smallest".
        let mut out = Vec::with_capacity(self.width);
        let (mut i, mut j) = (0usize, 0usize);
        while out.len() < self.width {
            let take_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x.distance <= y.distance,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_a {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        while out.len() < self.width {
            out.push(QueueItem::padding());
        }
        out
    }
}

/// In-place bitonic sort (ascending by distance). Width must be a power of two.
fn bitonic_sort_inplace(items: &mut [QueueItem]) {
    let n = items.len();
    debug_assert!(n.is_power_of_two());
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    let should_swap = if ascending {
                        items[i].distance > items[l].distance
                    } else {
                        items[i].distance < items[l].distance
                    };
                    if should_swap {
                        items.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn items(vals: &[f32]) -> Vec<QueueItem> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| QueueItem::new(v, i as u32))
            .collect()
    }

    #[test]
    fn latency_formula_matches_paper() {
        // The paper gives latency = log2(l)(1+log2(l))/2; for l=16 that is 10.
        assert_eq!(sort_latency_cycles(16), 10);
        assert_eq!(sort_latency_cycles(2), 1);
        assert_eq!(sort_latency_cycles(64), 21);
    }

    #[test]
    fn merger_latency_is_log_of_double_width() {
        assert_eq!(merge_latency_cycles(16), 5);
        assert_eq!(merge_latency_cycles(8), 4);
    }

    #[test]
    fn compare_swap_unit_counts_scale_with_width() {
        assert_eq!(sort_compare_swap_units(16), 10 * 8);
        assert!(sort_compare_swap_units(32) > sort_compare_swap_units(16));
        assert_eq!(merge_compare_swap_units(16), 5 * 8);
    }

    #[test]
    fn sorter_sorts_and_pads() {
        let s = BitonicSorter::new(8);
        let out = s.sort(&items(&[5.0, 1.0, 3.0]));
        assert_eq!(out.len(), 8);
        assert_eq!(out[0].distance, 1.0);
        assert_eq!(out[1].distance, 3.0);
        assert_eq!(out[2].distance, 5.0);
        assert!(out[3].distance.is_infinite());
    }

    #[test]
    fn merger_keeps_global_smallest() {
        let m = BitonicPartialMerger::new(4);
        let a = items(&[1.0, 4.0, 7.0, 9.0]);
        let b = items(&[2.0, 3.0, 8.0, 10.0]);
        let out = m.merge_smallest(&a, &b);
        let dists: Vec<f32> = out.iter().map(|i| i.distance).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_width_is_rejected() {
        let _ = BitonicSorter::new(12);
    }

    #[test]
    fn next_power_of_two_helper() {
        assert_eq!(next_power_of_two(10), 16);
        assert_eq!(next_power_of_two(16), 16);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(0), 1);
    }

    proptest! {
        /// The bitonic network must agree with a reference sort.
        #[test]
        fn bitonic_sort_matches_std_sort(values in prop::collection::vec(0.0f32..100.0, 0..16)) {
            let s = BitonicSorter::new(16);
            let out = s.sort(&items(&values));
            let got: Vec<f32> = out.iter().map(|i| i.distance).filter(|d| d.is_finite()).collect();
            let mut expected = values.clone();
            expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(got, expected);
        }

        /// Merging two sorted halves must equal sort-and-truncate of the union.
        #[test]
        fn merger_matches_reference(mut a in prop::collection::vec(0.0f32..100.0, 0..8),
                                    mut b in prop::collection::vec(0.0f32..100.0, 0..8)) {
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let m = BitonicPartialMerger::new(8);
            let out = m.merge_smallest(&items(&a), &items(&b));
            let got: Vec<f32> = out.iter().map(|i| i.distance).filter(|d| d.is_finite()).collect();
            let mut union = a.clone();
            union.extend_from_slice(&b);
            union.sort_by(|x, y| x.partial_cmp(y).unwrap());
            union.truncate(8);
            prop_assert_eq!(got, union);
        }
    }
}
