//! Parallel K-selection microarchitectures (§5.1.2).
//!
//! Both selection stages (SelCells and SelK) must pick the `s` smallest
//! values per query out of `z` parallel input streams, where each stream
//! produces `v` values per query. The paper proposes two designs:
//!
//! * **HPQ** — hierarchical priority queue: `2z` first-level systolic queues
//!   (two per stream, because a queue accepts one replace every two cycles)
//!   feed one second-level queue that reduces the `2z·s` survivors to `s`.
//! * **HSMPQG** — hybrid sorting/merging/priority-queue group: bitonic sort
//!   networks of width `w = next_pow2(s)` sort groups of streams each cycle,
//!   bitonic partial mergers reduce them to one sorted `w`-vector per cycle,
//!   and a much smaller priority-queue group absorbs `s` values per cycle.
//!
//! Each unit is modelled functionally (produces the exact selection) and with
//! a cycle model used by the performance model, plus resource proxies
//! (priority-queue registers, compare-swap units) used by the resource model.

use serde::{Deserialize, Serialize};

use crate::bitonic::{
    merge_compare_swap_units, merge_latency_cycles, next_power_of_two, sort_compare_swap_units,
    sort_latency_cycles, BitonicPartialMerger, BitonicSorter,
};
use crate::config::SelectArch;
use crate::priority_queue::{QueueItem, SystolicPriorityQueue};

/// Geometry of a K-selection problem: select `s` out of `z` streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SelectionSpec {
    /// Microarchitecture to use.
    pub arch: SelectArch,
    /// Number of parallel input streams (`z`).
    pub num_streams: usize,
    /// Number of results to keep per query (`s`).
    pub select_count: usize,
}

impl SelectionSpec {
    /// Creates a spec, clamping degenerate values to 1.
    pub fn new(arch: SelectArch, num_streams: usize, select_count: usize) -> Self {
        Self {
            arch,
            num_streams: num_streams.max(1),
            select_count: select_count.max(1),
        }
    }

    /// Whether the HSMPQG design is even applicable: it filters per-cycle
    /// winners, which only helps when `s < z` (the paper notes HPQ is the
    /// only option when `s ≥ z`).
    pub fn hsmpqg_applicable(&self) -> bool {
        self.select_count < self.num_streams
    }

    /// Bitonic network width used by the HSMPQG design.
    pub fn hsmpqg_width(&self) -> usize {
        next_power_of_two(self.select_count).max(2)
    }

    /// Number of bitonic sorters needed to cover all streams (HSMPQG).
    pub fn hsmpqg_sorters(&self) -> usize {
        self.num_streams.div_ceil(self.hsmpqg_width()).max(1)
    }

    /// Number of partial mergers (a reduction tree over the sorters).
    pub fn hsmpqg_mergers(&self) -> usize {
        self.hsmpqg_sorters().saturating_sub(1)
    }

    /// First-level priority queue count.
    pub fn first_level_queues(&self) -> usize {
        match self.arch {
            // Two queues per stream: one replace per two cycles.
            SelectArch::Hpq => 2 * self.num_streams,
            // The merger emits s winners per cycle; absorbing them needs 2s queues.
            SelectArch::Hsmpqg => 2 * self.select_count,
        }
    }

    /// Total number of priority-queue registers — the linear resource proxy
    /// of §6.2 ("the numbers of registers and compare-swap units in a
    /// priority queue are linear to the queue length").
    pub fn priority_queue_registers(&self) -> usize {
        // Every first-level queue has length s, plus one second-level queue.
        (self.first_level_queues() + 1) * self.select_count
    }

    /// Total compare-swap units in the bitonic networks (zero for HPQ).
    pub fn bitonic_compare_swap_units(&self) -> usize {
        match self.arch {
            SelectArch::Hpq => 0,
            SelectArch::Hsmpqg => {
                let w = self.hsmpqg_width();
                self.hsmpqg_sorters() * sort_compare_swap_units(w)
                    + self.hsmpqg_mergers() * merge_compare_swap_units(w)
            }
        }
    }

    /// Cycle count for one query in which every stream delivers
    /// `values_per_stream` elements.
    ///
    /// The stage has two phases: *ingest* (absorbing the input streams, fully
    /// pipelined at one element per stream per cycle) and *reduction*
    /// (draining the first-level queues through the final queue). With
    /// double-buffered queues the two phases of consecutive queries overlap,
    /// so the stage's per-query cycle count is the slower of the two phases
    /// plus the (small) pipeline latency.
    pub fn cycles_per_query(&self, values_per_stream: u64) -> u64 {
        let s = self.select_count as u64;
        let z = self.num_streams as u64;
        match self.arch {
            SelectArch::Hpq => {
                // First level: each stream is split across two queues, so the
                // pair absorbs one element per cycle. Reduction: the single
                // second-level queue replays the 2z·s survivors at one
                // replace per two cycles.
                let ingest = values_per_stream;
                let reduce = 2 * (2 * z * s) + 2 * s;
                ingest.max(reduce) + 4
            }
            SelectArch::Hsmpqg => {
                // Ingest is fully pipelined at one element per stream per
                // cycle through the sort/merge networks; the priority-queue
                // group absorbs s winners per cycle and its own reduction
                // covers only 2s·s survivors.
                let w = self.hsmpqg_width();
                let pipeline =
                    sort_latency_cycles(w) + self.hsmpqg_merge_levels() * merge_latency_cycles(w);
                let ingest = values_per_stream;
                let reduce = 2 * (2 * s * s) + 2 * s;
                ingest.max(reduce) + pipeline + 4
            }
        }
    }

    /// Depth of the merger reduction tree.
    fn hsmpqg_merge_levels(&self) -> u64 {
        let sorters = self.hsmpqg_sorters();
        (usize::BITS - (sorters.max(1) - 1).leading_zeros()) as u64
    }
}

/// A functional + cycle-accounting K-selection unit.
#[derive(Debug, Clone)]
pub struct KSelectionUnit {
    spec: SelectionSpec,
    cycles: u64,
    queries: u64,
}

impl KSelectionUnit {
    /// Creates a unit for the given selection problem.
    pub fn new(spec: SelectionSpec) -> Self {
        Self {
            spec,
            cycles: 0,
            queries: 0,
        }
    }

    /// The unit's specification.
    pub fn spec(&self) -> SelectionSpec {
        self.spec
    }

    /// Total cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of queries processed.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Processes one query: `streams[i]` is the sequence of items produced by
    /// input stream `i`. Returns the `s` smallest items overall, sorted, and
    /// advances the cycle counter according to the microarchitecture model.
    pub fn select(&mut self, streams: &[Vec<QueueItem>]) -> Vec<QueueItem> {
        assert!(
            streams.len() <= self.spec.num_streams,
            "{} streams exceed configured {}",
            streams.len(),
            self.spec.num_streams
        );
        let values_per_stream = streams.iter().map(|s| s.len() as u64).max().unwrap_or(0);
        self.cycles += self.spec.cycles_per_query(values_per_stream);
        self.queries += 1;

        match self.spec.arch {
            SelectArch::Hpq => self.select_hpq(streams),
            SelectArch::Hsmpqg => self.select_hsmpqg(streams),
        }
    }

    /// Functional HPQ: per-stream queues followed by a global reduction.
    fn select_hpq(&self, streams: &[Vec<QueueItem>]) -> Vec<QueueItem> {
        let s = self.spec.select_count;
        let mut second = SystolicPriorityQueue::new(s);
        for stream in streams {
            let mut first = SystolicPriorityQueue::new(s);
            for &item in stream {
                first.replace(item);
            }
            for item in first.drain_sorted() {
                second.replace(item);
            }
        }
        second.drain_sorted()
    }

    /// Functional HSMPQG: per-cycle bitonic sort across streams, partial
    /// merge, then a priority queue over the per-cycle winners.
    fn select_hsmpqg(&self, streams: &[Vec<QueueItem>]) -> Vec<QueueItem> {
        let s = self.spec.select_count;
        let w = self.spec.hsmpqg_width();
        let sorter = BitonicSorter::new(w);
        let merger = BitonicPartialMerger::new(w);
        let mut queue = SystolicPriorityQueue::new(s);

        let max_len = streams.iter().map(|st| st.len()).max().unwrap_or(0);
        for t in 0..max_len {
            // One element from each stream this "cycle".
            let slice: Vec<QueueItem> = streams
                .iter()
                .map(|st| st.get(t).copied().unwrap_or_else(QueueItem::padding))
                .collect();
            // Sort groups of w streams, then merge pair-wise down to one
            // sorted w-vector of the cycle's winners.
            let mut sorted_groups: Vec<Vec<QueueItem>> =
                slice.chunks(w).map(|chunk| sorter.sort(chunk)).collect();
            while sorted_groups.len() > 1 {
                let mut next = Vec::with_capacity(sorted_groups.len().div_ceil(2));
                let mut iter = sorted_groups.chunks(2);
                for pair in iter.by_ref() {
                    if pair.len() == 2 {
                        next.push(merger.merge_smallest(&pair[0], &pair[1]));
                    } else {
                        next.push(pair[0].clone());
                    }
                }
                sorted_groups = next;
            }
            // Insert the cycle's best s values into the queue.
            for item in sorted_groups[0].iter().take(s) {
                if item.distance.is_finite() {
                    queue.replace(*item);
                }
            }
        }
        queue.drain_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn make_streams(z: usize, v: usize, seed: u64) -> Vec<Vec<QueueItem>> {
        // Deterministic pseudo-random values without an RNG dependency.
        let mut streams = Vec::with_capacity(z);
        let mut id = 0u32;
        for i in 0..z {
            let mut s = Vec::with_capacity(v);
            for j in 0..v {
                let x = ((seed + 1) * 2654435761)
                    .wrapping_mul((i as u64 + 7) * 40503 + j as u64 * 9176)
                    % 100_000;
                s.push(QueueItem::new(x as f32, id));
                id += 1;
            }
            streams.push(s);
        }
        streams
    }

    fn reference_select(streams: &[Vec<QueueItem>], s: usize) -> Vec<f32> {
        let mut all: Vec<f32> = streams.iter().flatten().map(|i| i.distance).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        all.truncate(s);
        all
    }

    #[test]
    fn hpq_selects_global_minimum_set() {
        let streams = make_streams(4, 30, 1);
        let mut unit = KSelectionUnit::new(SelectionSpec::new(SelectArch::Hpq, 4, 5));
        let out = unit.select(&streams);
        let got: Vec<f32> = out.iter().map(|i| i.distance).collect();
        assert_eq!(got, reference_select(&streams, 5));
        assert!(unit.cycles() > 0);
        assert_eq!(unit.queries(), 1);
    }

    #[test]
    fn hsmpqg_selects_global_minimum_set() {
        let streams = make_streams(24, 20, 2);
        let mut unit = KSelectionUnit::new(SelectionSpec::new(SelectArch::Hsmpqg, 24, 5));
        let out = unit.select(&streams);
        let got: Vec<f32> = out.iter().map(|i| i.distance).collect();
        assert_eq!(got, reference_select(&streams, 5));
    }

    #[test]
    fn architectures_agree_functionally() {
        let streams = make_streams(16, 25, 3);
        let mut hpq = KSelectionUnit::new(SelectionSpec::new(SelectArch::Hpq, 16, 8));
        let mut hybrid = KSelectionUnit::new(SelectionSpec::new(SelectArch::Hsmpqg, 16, 8));
        let a: Vec<f32> = hpq.select(&streams).iter().map(|i| i.distance).collect();
        let b: Vec<f32> = hybrid.select(&streams).iter().map(|i| i.distance).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn hsmpqg_saves_queue_registers_when_streams_outnumber_results() {
        // The paper's Figure 7 case: ~80 streams, s = 10.
        let hpq = SelectionSpec::new(SelectArch::Hpq, 80, 10);
        let hybrid = SelectionSpec::new(SelectArch::Hsmpqg, 80, 10);
        assert!(hybrid.priority_queue_registers() < hpq.priority_queue_registers());
        // But the hybrid pays for bitonic networks.
        assert!(hybrid.bitonic_compare_swap_units() > 0);
        assert_eq!(hpq.bitonic_compare_swap_units(), 0);
    }

    #[test]
    fn hsmpqg_not_applicable_when_s_exceeds_streams() {
        let spec = SelectionSpec::new(SelectArch::Hsmpqg, 4, 100);
        assert!(!spec.hsmpqg_applicable());
        let spec = SelectionSpec::new(SelectArch::Hsmpqg, 200, 100);
        assert!(spec.hsmpqg_applicable());
    }

    #[test]
    fn cycle_model_grows_with_workload_and_k() {
        let spec = SelectionSpec::new(SelectArch::Hpq, 8, 10);
        assert!(spec.cycles_per_query(1000) > spec.cycles_per_query(100));
        let small_k = SelectionSpec::new(SelectArch::Hpq, 8, 10);
        let large_k = SelectionSpec::new(SelectArch::Hpq, 8, 100);
        assert!(large_k.cycles_per_query(1000) > small_k.cycles_per_query(1000));
    }

    #[test]
    fn figure7_geometry_matches_paper() {
        // 64 < z <= 80, s = 10: five sorters of width 16 (the paper's example).
        let spec = SelectionSpec::new(SelectArch::Hsmpqg, 80, 10);
        assert_eq!(spec.hsmpqg_width(), 16);
        assert_eq!(spec.hsmpqg_sorters(), 5);
        // 16 < z <= 32: two sorters; 32 < z <= 48: three sorters.
        assert_eq!(
            SelectionSpec::new(SelectArch::Hsmpqg, 32, 10).hsmpqg_sorters(),
            2
        );
        assert_eq!(
            SelectionSpec::new(SelectArch::Hsmpqg, 48, 10).hsmpqg_sorters(),
            3
        );
    }

    proptest! {
        /// Both architectures must always match the reference selection.
        #[test]
        fn selection_matches_reference(z in 1usize..12, v in 1usize..40, s in 1usize..12, seed in 0u64..50) {
            let streams = make_streams(z, v, seed);
            let expected = reference_select(&streams, s);
            let mut hpq = KSelectionUnit::new(SelectionSpec::new(SelectArch::Hpq, z, s));
            let got: Vec<f32> = hpq.select(&streams).iter().map(|i| i.distance).collect();
            prop_assert_eq!(&got, &expected);
            let mut hybrid = KSelectionUnit::new(SelectionSpec::new(SelectArch::Hsmpqg, z, s));
            let got2: Vec<f32> = hybrid.select(&streams).iter().map(|i| i.distance).collect();
            prop_assert_eq!(&got2, &expected);
        }
    }
}
