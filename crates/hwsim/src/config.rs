//! Accelerator design description.
//!
//! An [`AcceleratorConfig`] captures every hardware-level choice in Table 2:
//! the microarchitecture of the two selection stages, the number of PEs per
//! stage, and whether the IVF centroid table and the PQ sub-quantizer
//! codebooks are cached on-chip or streamed from HBM. The same struct is
//! produced by the design-space enumerator in `fanns-perfmodel`, consumed by
//! the QPS performance model, rendered by the code generator in
//! `fanns-codegen`, and instantiated as a runnable simulator by
//! [`crate::accelerator::Accelerator`].

use serde::{Deserialize, Serialize};

/// Microarchitecture options for the K-selection stages (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectArch {
    /// Hierarchical priority queue.
    Hpq,
    /// Hybrid bitonic sorting + partial merging + priority queue group.
    Hsmpqg,
}

impl SelectArch {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SelectArch::Hpq => "HPQ",
            SelectArch::Hsmpqg => "HSMPQG",
        }
    }
}

/// Where a lookup structure (IVF centroids, PQ codebooks) lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexStore {
    /// Cached in on-chip BRAM/URAM: low latency, consumes on-chip memory.
    OnChip,
    /// Streamed from off-chip HBM: no on-chip cost, higher access latency.
    Hbm,
}

impl IndexStore {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            IndexStore::OnChip => "on-chip",
            IndexStore::Hbm => "HBM",
        }
    }
}

/// PE counts and per-stage choices — the "chip area allocation" dimension of
/// the design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSizing {
    /// Number of Stage OPQ PEs (0 when the index has no OPQ).
    pub opq_pes: usize,
    /// Number of Stage IVFDist PEs.
    pub ivf_dist_pes: usize,
    /// Number of Stage BuildLUT PEs.
    pub build_lut_pes: usize,
    /// Number of Stage PQDist PEs.
    pub pq_dist_pes: usize,
}

impl StageSizing {
    /// Total compute-PE count across the four computation stages.
    pub fn total_compute_pes(&self) -> usize {
        self.opq_pes + self.ivf_dist_pes + self.build_lut_pes + self.pq_dist_pes
    }
}

/// A complete accelerator design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// PE counts for the computation stages.
    pub sizing: StageSizing,
    /// Microarchitecture of Stage SelCells.
    pub sel_cells_arch: SelectArch,
    /// Microarchitecture of Stage SelK.
    pub sel_k_arch: SelectArch,
    /// Where the IVF centroid table is stored.
    pub ivf_store: IndexStore,
    /// Where the PQ sub-quantizer codebooks (used by Stage BuildLUT) live.
    pub lut_store: IndexStore,
    /// Target clock frequency in MHz (the paper uses 140 MHz on the U55C).
    pub freq_mhz: f64,
}

impl AcceleratorConfig {
    /// The paper's target clock frequency for the Alveo U55C.
    pub const DEFAULT_FREQ_MHZ: f64 = 140.0;

    /// A small, balanced design useful as a starting point and in tests.
    pub fn balanced() -> Self {
        Self {
            sizing: StageSizing {
                opq_pes: 1,
                ivf_dist_pes: 8,
                build_lut_pes: 4,
                pq_dist_pes: 16,
            },
            sel_cells_arch: SelectArch::Hpq,
            sel_k_arch: SelectArch::Hpq,
            ivf_store: IndexStore::Hbm,
            lut_store: IndexStore::Hbm,
            freq_mhz: Self::DEFAULT_FREQ_MHZ,
        }
    }

    /// Number of input streams feeding Stage SelCells (one per IVFDist PE).
    pub fn sel_cells_streams(&self) -> usize {
        self.sizing.ivf_dist_pes.max(1)
    }

    /// Number of input streams feeding Stage SelK. With the HPQ architecture
    /// each PQDist PE is split into two sub-streams (a replace takes two
    /// cycles), matching the paper's `#InStream` column in Table 4.
    pub fn sel_k_streams(&self) -> usize {
        match self.sel_k_arch {
            SelectArch::Hpq => 2 * self.sizing.pq_dist_pes.max(1),
            SelectArch::Hsmpqg => self.sizing.pq_dist_pes.max(1),
        }
    }

    /// Clock period in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        1_000.0 / self.freq_mhz
    }

    /// Converts a cycle count into seconds at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_mhz * 1e6)
    }

    /// One-line structural summary (used in logs and generated-code headers).
    pub fn summary(&self) -> String {
        format!(
            "OPQ×{} | IVFDist×{} ({}) | SelCells {} | BuildLUT×{} ({}) | PQDist×{} | SelK {} @ {} MHz",
            self.sizing.opq_pes,
            self.sizing.ivf_dist_pes,
            self.ivf_store.name(),
            self.sel_cells_arch.name(),
            self.sizing.build_lut_pes,
            self.lut_store.name(),
            self.sizing.pq_dist_pes,
            self.sel_k_arch.name(),
            self.freq_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_design_is_consistent() {
        let c = AcceleratorConfig::balanced();
        assert_eq!(c.sizing.total_compute_pes(), 1 + 8 + 4 + 16);
        assert_eq!(c.sel_cells_streams(), 8);
        assert_eq!(c.sel_k_streams(), 32);
        assert!((c.clock_ns() - 7.142857).abs() < 1e-3);
    }

    #[test]
    fn hsmpqg_does_not_split_streams() {
        let mut c = AcceleratorConfig::balanced();
        c.sel_k_arch = SelectArch::Hsmpqg;
        assert_eq!(c.sel_k_streams(), 16);
    }

    #[test]
    fn cycles_to_seconds_uses_frequency() {
        let c = AcceleratorConfig::balanced();
        let s = c.cycles_to_seconds(140_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn names_match_paper_terms() {
        assert_eq!(SelectArch::Hpq.name(), "HPQ");
        assert_eq!(SelectArch::Hsmpqg.name(), "HSMPQG");
        assert_eq!(IndexStore::OnChip.name(), "on-chip");
        assert_eq!(IndexStore::Hbm.name(), "HBM");
    }

    #[test]
    fn summary_mentions_every_stage() {
        let s = AcceleratorConfig::balanced().summary();
        for token in ["OPQ", "IVFDist", "SelCells", "BuildLUT", "PQDist", "SelK"] {
            assert!(s.contains(token), "summary missing {token}");
        }
    }
}
