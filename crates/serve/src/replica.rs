//! Replication: R replicas per shard behind least-loaded routing, health
//! tracking, and failover.
//!
//! The paper's scale-out story (Figures 1 and 12) makes tail latency the
//! property of the *slowest* participant. A [`ReplicaSet`] defends that tail:
//! it holds R interchangeable replicas of one shard and routes every batch to
//! the replica with the fewest outstanding requests. When a replica fails
//! (see [`crate::fault::FaultInjector`] for a deterministic way to make one
//! fail), the batch **fails over** to the next healthy replica; a replica
//! that keeps failing — or whose latency becomes a consistent outlier — is
//! **quarantined** out of the rotation and later **probed** with a single
//! live request (a half-open circuit breaker) before being restored.
//!
//! A [`ReplicaSet`] implements [`SearchBackend`], so it slots in anywhere a
//! single replica does: directly under the [`crate::engine::QueryEngine`],
//! or one-per-shard under the [`crate::dispatch::ShardedBackend`] (see
//! [`crate::dispatch::shard_replicated_cpu_backends`]) for the full
//! replicated + sharded deployment.
//!
//! Routing to a replica is modelled as one LogGP point-to-point hop for the
//! query and one for the result ([`replica_route_network_us`]) when a network
//! model is attached — the serving-side reuse of the paper's §7.3.2 network
//! constants.
//!
//! [`replica_route_network_us`]: fanns_scaleout::collective::replica_route_network_us

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use fanns_scaleout::collective::replica_route_network_us;
use fanns_scaleout::loggp::{query_message_bytes, result_message_bytes, LogGpParams};

use crate::backend::{BackendError, BackendResponse, SearchBackend};
use crate::metrics::AtomicEwmaUs;
use crate::telemetry::{batch_traced, Stage, TelemetrySink};

/// Replica lifecycle states (stored in an `AtomicU8`).
const HEALTHY: u8 = 0;
const QUARANTINED: u8 = 1;
const PROBING: u8 = 2;

/// Health-tracking policy for a [`ReplicaSet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaHealthConfig {
    /// Consecutive errors before a replica is quarantined.
    pub error_threshold: u32,
    /// A batch counts as a latency outlier when its per-query service time
    /// exceeds `outlier_factor` × the replica's EWMA service time.
    pub outlier_factor: f64,
    /// Consecutive latency outliers before a replica is quarantined.
    pub outlier_threshold: u32,
    /// How long a quarantined replica stays out of the rotation before the
    /// router probes it with one live request.
    pub quarantine: Duration,
    /// Batches a replica must serve before outlier detection engages (lets
    /// the EWMA settle).
    pub warmup_batches: u64,
}

impl Default for ReplicaHealthConfig {
    fn default() -> Self {
        Self {
            error_threshold: 3,
            outlier_factor: 8.0,
            outlier_threshold: 5,
            quarantine: Duration::from_millis(200),
            warmup_batches: 10,
        }
    }
}

impl ReplicaHealthConfig {
    /// Builder-style quarantine duration override.
    pub fn with_quarantine(mut self, quarantine: Duration) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Builder-style consecutive-error threshold override.
    pub fn with_error_threshold(mut self, threshold: u32) -> Self {
        self.error_threshold = threshold.max(1);
        self
    }

    /// Builder-style outlier policy override.
    pub fn with_outlier(mut self, factor: f64, threshold: u32) -> Self {
        self.outlier_factor = factor.max(1.0);
        self.outlier_threshold = threshold.max(1);
        self
    }
}

/// Per-replica live counters, shared between the router and stats handles.
#[derive(Debug)]
struct ReplicaCounters {
    /// Requests currently executing on this replica (the routing signal).
    outstanding: AtomicUsize,
    completed_batches: AtomicU64,
    completed_queries: AtomicU64,
    errors: AtomicU64,
    quarantines: AtomicU64,
    /// Accumulated service time (µs) — utilization numerator.
    busy_us: AtomicU64,
    /// Per-query EWMA service time.
    ewma_us: AtomicEwmaUs,
    consecutive_errors: AtomicU32,
    consecutive_outliers: AtomicU32,
    state: AtomicU8,
    /// Quarantine expiry, µs since the set's epoch.
    quarantine_until_us: AtomicU64,
}

impl ReplicaCounters {
    fn new() -> Self {
        Self {
            outstanding: AtomicUsize::new(0),
            completed_batches: AtomicU64::new(0),
            completed_queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            ewma_us: AtomicEwmaUs::new(0.0),
            consecutive_errors: AtomicU32::new(0),
            consecutive_outliers: AtomicU32::new(0),
            state: AtomicU8::new(HEALTHY),
            quarantine_until_us: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct StatsInner {
    epoch: Instant,
    failovers: AtomicU64,
    replicas: Vec<ReplicaCounters>,
}

impl StatsInner {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A point-in-time view of one replica, embedded in serving reports.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaSnapshot {
    /// Replica index within its set.
    pub replica: usize,
    /// Queries this replica answered.
    pub completed_queries: u64,
    /// Batches this replica failed.
    pub errors: u64,
    /// Times this replica was quarantined.
    pub quarantines: u64,
    /// Accumulated service time (µs).
    pub busy_us: f64,
    /// Fraction of the measurement window this replica spent serving
    /// (`busy_us / window`); 0 when no window is known.
    pub utilization: f64,
    /// EWMA per-query service time (µs).
    pub mean_service_us: f64,
    /// Whether the replica is currently in the rotation.
    pub healthy: bool,
}

/// Cloneable live-stats handle onto a [`ReplicaSet`].
///
/// Keep one before moving the set into a [`crate::dispatch::ShardedBackend`]
/// (which owns its shards on private threads): the handle stays valid and
/// reads the same atomics the router updates.
#[derive(Debug, Clone)]
pub struct ReplicaSetStats {
    inner: Arc<StatsInner>,
}

impl ReplicaSetStats {
    /// Number of replicas in the set.
    pub fn num_replicas(&self) -> usize {
        self.inner.replicas.len()
    }

    /// Batches rerouted to another replica after a failure so far.
    pub fn failovers(&self) -> u64 {
        self.inner.failovers.load(Ordering::Relaxed)
    }

    /// Total queries answered across replicas.
    pub fn completed_queries(&self) -> u64 {
        self.inner
            .replicas
            .iter()
            .map(|r| r.completed_queries.load(Ordering::Relaxed))
            .sum()
    }

    /// Total replica-side batch failures.
    pub fn errors(&self) -> u64 {
        self.inner
            .replicas
            .iter()
            .map(|r| r.errors.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-replica snapshots; `wall_seconds` (when positive) is the window
    /// used to derive each replica's utilization.
    pub fn snapshot(&self, wall_seconds: f64) -> Vec<ReplicaSnapshot> {
        let window_us = wall_seconds * 1e6;
        self.inner
            .replicas
            .iter()
            .enumerate()
            .map(|(replica, c)| {
                let busy_us = c.busy_us.load(Ordering::Relaxed) as f64;
                ReplicaSnapshot {
                    replica,
                    completed_queries: c.completed_queries.load(Ordering::Relaxed),
                    errors: c.errors.load(Ordering::Relaxed),
                    quarantines: c.quarantines.load(Ordering::Relaxed),
                    busy_us,
                    utilization: if window_us > 0.0 {
                        (busy_us / window_us).min(1.0)
                    } else {
                        0.0
                    },
                    mean_service_us: c.ewma_us.get_us(),
                    healthy: c.state.load(Ordering::Relaxed) != QUARANTINED,
                }
            })
            .collect()
    }
}

/// R interchangeable replicas of one shard behind least-loaded routing with
/// failover and quarantine (see the [module docs](self)).
pub struct ReplicaSet {
    replicas: Vec<Box<dyn SearchBackend>>,
    stats: Arc<StatsInner>,
    health: ReplicaHealthConfig,
    /// Network model for the one-hop route to a replica; `None` models
    /// co-located replicas with zero network cost.
    network: Option<LogGpParams>,
    replica_name: String,
    dim: usize,
    k: usize,
    /// Optional telemetry sink recording [`Stage::ReplicaService`] spans and
    /// [`Stage::Failover`] instants for sampled batches.
    telemetry: Option<TelemetrySink>,
}

impl ReplicaSet {
    /// Assembles a replica set.
    ///
    /// # Panics
    /// Panics if no replicas are given or if they disagree on `dim` / `k`.
    pub fn new(
        replicas: Vec<Box<dyn SearchBackend>>,
        health: ReplicaHealthConfig,
        network: Option<LogGpParams>,
    ) -> Self {
        assert!(
            !replicas.is_empty(),
            "replica set needs at least one replica"
        );
        let dim = replicas[0].dim();
        let k = replicas[0].k();
        let replica_name = replicas[0].name();
        for r in &replicas {
            assert_eq!(r.dim(), dim, "replicas must agree on dimensionality");
            assert_eq!(r.k(), k, "replicas must agree on k");
        }
        let stats = Arc::new(StatsInner {
            epoch: Instant::now(),
            failovers: AtomicU64::new(0),
            replicas: (0..replicas.len())
                .map(|_| ReplicaCounters::new())
                .collect(),
        });
        Self {
            replicas,
            stats,
            health,
            network,
            replica_name,
            dim,
            k,
            telemetry: None,
        }
    }

    /// Attaches a telemetry sink: sampled batches record a
    /// [`Stage::ReplicaService`] span around the winning replica's service
    /// time and a [`Stage::Failover`] instant for each reroute.
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// R replica slots sharing one in-memory executor — the cheap way to
    /// model replication of a CPU/flat backend without duplicating the index.
    pub fn replicate_shared(
        backend: Arc<dyn SearchBackend>,
        replicas: usize,
        health: ReplicaHealthConfig,
        network: Option<LogGpParams>,
    ) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        let slots: Vec<Box<dyn SearchBackend>> = (0..replicas)
            .map(|_| Box::new(Arc::clone(&backend)) as Box<dyn SearchBackend>)
            .collect();
        Self::new(slots, health, network)
    }

    /// Number of replicas in the set.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// A cloneable live-stats handle (valid after the set is moved into a
    /// dispatcher or engine).
    pub fn stats(&self) -> ReplicaSetStats {
        ReplicaSetStats {
            inner: Arc::clone(&self.stats),
        }
    }

    /// The modeled network cost of routing one query to a replica and
    /// returning its K results (µs); zero without a network model.
    pub fn network_us_per_query(&self) -> f64 {
        match &self.network {
            Some(net) => replica_route_network_us(
                net,
                query_message_bytes(self.dim),
                result_message_bytes(self.k),
            ),
            None => 0.0,
        }
    }

    /// Picks the next replica to try: an expired-quarantine replica to probe
    /// (half-open circuit breaker) if any, otherwise the healthy replica with
    /// the fewest outstanding requests, otherwise a replica another thread is
    /// currently probing.
    fn pick(&self, tried: &[bool]) -> Option<usize> {
        let now_us = self.stats.now_us();
        for (i, c) in self.stats.replicas.iter().enumerate() {
            if tried[i] {
                continue;
            }
            if c.state.load(Ordering::Acquire) == QUARANTINED
                && now_us >= c.quarantine_until_us.load(Ordering::Acquire)
                && c.state
                    .compare_exchange(QUARANTINED, PROBING, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(i);
            }
        }
        self.stats
            .replicas
            .iter()
            .enumerate()
            .filter(|(i, c)| !tried[*i] && c.state.load(Ordering::Acquire) == HEALTHY)
            .min_by_key(|(_, c)| c.outstanding.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .or_else(|| {
                // Last resort: a replica mid-probe on another thread can
                // serve concurrent batches; routing to it beats failing the
                // batch outright while the rest of the set is quarantined.
                self.stats
                    .replicas
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| !tried[*i] && c.state.load(Ordering::Acquire) == PROBING)
                    .min_by_key(|(_, c)| c.outstanding.load(Ordering::Relaxed))
                    .map(|(i, _)| i)
            })
    }

    fn quarantine(&self, idx: usize) {
        let c = &self.stats.replicas[idx];
        let until = self.stats.now_us() + self.health.quarantine.as_micros() as u64;
        c.quarantine_until_us.store(until, Ordering::Release);
        c.state.store(QUARANTINED, Ordering::Release);
        c.quarantines.fetch_add(1, Ordering::Relaxed);
        c.consecutive_errors.store(0, Ordering::Relaxed);
        c.consecutive_outliers.store(0, Ordering::Relaxed);
    }

    fn on_success(&self, idx: usize, elapsed_us: f64, num_queries: usize) {
        let c = &self.stats.replicas[idx];
        let per_query_us = elapsed_us / num_queries.max(1) as f64;
        let batches = c.completed_batches.fetch_add(1, Ordering::Relaxed) + 1;
        c.completed_queries
            .fetch_add(num_queries as u64, Ordering::Relaxed);
        c.busy_us.fetch_add(elapsed_us as u64, Ordering::Relaxed);
        c.consecutive_errors.store(0, Ordering::Relaxed);

        // `prev` (the EWMA before this sample) is the baseline the outlier
        // check below compares against.
        let prev = c.ewma_us.observe_us(per_query_us);

        // A probe that succeeds restores the replica to the rotation.
        if c.state.load(Ordering::Acquire) == PROBING {
            c.state.store(HEALTHY, Ordering::Release);
            c.consecutive_outliers.store(0, Ordering::Relaxed);
            return;
        }

        // Latency-outlier detection (once the EWMA has warmed up).
        if batches > self.health.warmup_batches
            && prev > 0.0
            && per_query_us > self.health.outlier_factor * prev
        {
            let outliers = c.consecutive_outliers.fetch_add(1, Ordering::Relaxed) + 1;
            if outliers >= self.health.outlier_threshold {
                self.quarantine(idx);
            }
        } else {
            c.consecutive_outliers.store(0, Ordering::Relaxed);
        }
    }

    fn on_error(&self, idx: usize) {
        let c = &self.stats.replicas[idx];
        c.errors.fetch_add(1, Ordering::Relaxed);
        if c.state.load(Ordering::Acquire) == PROBING {
            // Failed probe: straight back into quarantine.
            self.quarantine(idx);
            return;
        }
        let errors = c.consecutive_errors.fetch_add(1, Ordering::Relaxed) + 1;
        if errors >= self.health.error_threshold {
            self.quarantine(idx);
        }
    }

    /// Adds the modeled route cost to each response's simulated latency when
    /// a network model is attached; passes responses through untouched
    /// otherwise.
    fn annotate(
        &self,
        responses: Vec<BackendResponse>,
        elapsed_us: f64,
        num_queries: usize,
    ) -> Vec<BackendResponse> {
        let Some(_) = self.network else {
            return responses;
        };
        let route_us = self.network_us_per_query();
        let per_query_us = elapsed_us / num_queries.max(1) as f64;
        responses
            .into_iter()
            .map(|mut r| {
                r.simulated_us = Some(r.simulated_us.unwrap_or(per_query_us) + route_us);
                r
            })
            .collect()
    }
}

impl SearchBackend for ReplicaSet {
    fn name(&self) -> String {
        let net = if self.network.is_some() {
            "loggp"
        } else {
            "local"
        };
        format!(
            "replicas[{}x {} | {net}]",
            self.replicas.len(),
            self.replica_name
        )
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn k(&self) -> usize {
        self.k
    }

    /// Infallible path: panics only when **every** replica is down.
    fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
        self.try_search_batch(queries)
            .expect("every replica in the set is unavailable")
    }

    fn try_search_batch(&self, queries: &[&[f32]]) -> Result<Vec<BackendResponse>, BackendError> {
        // The engine's per-batch sampling decision arrives via the
        // thread-local flag; standalone use (no engine above) self-samples.
        let traced = self
            .telemetry
            .as_ref()
            .filter(|sink| batch_traced().unwrap_or_else(|| sink.self_sample()));
        let mut tried = vec![false; self.replicas.len()];
        let mut attempts = 0usize;
        loop {
            let Some(idx) = self.pick(&tried) else {
                return Err(BackendError::new(
                    self.name(),
                    format!(
                        "no replica available ({} of {} tried and failed)",
                        attempts,
                        self.replicas.len()
                    ),
                ));
            };
            // A failover is a batch actually rerouted to a replacement
            // replica — counted when the replacement dispatches, so a batch
            // that finds no replacement (all replicas down) records attempts,
            // not failovers.
            if attempts > 0 {
                self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                if let Some(sink) = traced {
                    sink.record_instant(Stage::Failover, idx as u64);
                }
            }
            tried[idx] = true;
            attempts += 1;
            let c = &self.stats.replicas[idx];
            c.outstanding.fetch_add(1, Ordering::Relaxed);
            let start = Instant::now();
            let outcome = self.replicas[idx].try_search_batch(queries);
            let end = Instant::now();
            let elapsed_us = end.saturating_duration_since(start).as_secs_f64() * 1e6;
            c.outstanding.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(responses) if responses.len() == queries.len() => {
                    if let Some(sink) = traced {
                        sink.record_range(Stage::ReplicaService, idx as u64, start, end);
                    }
                    self.on_success(idx, elapsed_us, queries.len());
                    return Ok(self.annotate(responses, elapsed_us, queries.len()));
                }
                // A replica answering with the wrong arity is as broken as
                // one that errors: fail over rather than drop replies.
                Ok(_) | Err(_) => self.on_error(idx),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FlatBackend;
    use crate::fault::{FaultInjector, FaultMode};
    use fanns_dataset::synth::SyntheticSpec;
    use fanns_ivf::flat::FlatIndex;

    fn shared_flat(seed: u64) -> (Arc<dyn SearchBackend>, fanns_dataset::types::QuerySet) {
        let (db, queries) = SyntheticSpec::sift_small(seed).generate();
        let backend: Arc<dyn SearchBackend> = Arc::new(FlatBackend::new(FlatIndex::new(db), 5));
        (backend, queries)
    }

    fn faulty_set(
        shared: &Arc<dyn SearchBackend>,
        replicas: usize,
        health: ReplicaHealthConfig,
    ) -> (ReplicaSet, Vec<crate::fault::FaultHandle>) {
        let mut handles = Vec::new();
        let slots: Vec<Box<dyn SearchBackend>> = (0..replicas)
            .map(|_| {
                let (inj, handle) =
                    FaultInjector::new(Box::new(Arc::clone(shared)) as Box<dyn SearchBackend>);
                handles.push(handle);
                Box::new(inj) as Box<dyn SearchBackend>
            })
            .collect();
        (ReplicaSet::new(slots, health, None), handles)
    }

    #[test]
    fn routes_to_least_loaded_and_answers_correctly() {
        let (shared, queries) = shared_flat(301);
        let set = ReplicaSet::replicate_shared(
            Arc::clone(&shared),
            3,
            ReplicaHealthConfig::default(),
            None,
        );
        assert_eq!(set.num_replicas(), 3);
        let q: Vec<&[f32]> = (0..8).map(|i| queries.get(i)).collect();
        let direct = shared.search_batch(&q);
        let routed = set.search_batch(&q);
        assert_eq!(routed, direct);
        let stats = set.stats();
        assert_eq!(stats.completed_queries(), 8);
        assert_eq!(stats.failovers(), 0);
    }

    #[test]
    fn failover_survives_a_dead_replica() {
        let (shared, queries) = shared_flat(302);
        let (set, handles) = faulty_set(&shared, 3, ReplicaHealthConfig::default());
        let stats = set.stats();
        handles[0].set(FaultMode::Error);
        let q: Vec<&[f32]> = (0..4).map(|i| queries.get(i)).collect();
        let expect = shared.search_batch(&q);
        for _ in 0..20 {
            assert_eq!(set.search_batch(&q), expect);
        }
        assert!(stats.failovers() > 0, "dead replica must cause failovers");
        // After error_threshold consecutive errors the dead replica is
        // quarantined and stops being picked, so failovers stop growing.
        let snap = stats.snapshot(1.0);
        assert!(!snap[0].healthy, "dead replica must be quarantined");
        assert!(snap[0].quarantines >= 1);
        assert_eq!(snap[0].completed_queries, 0);
        assert!(snap[1].completed_queries + snap[2].completed_queries > 0);
    }

    #[test]
    fn quarantined_replica_is_probed_and_restored() {
        let (shared, queries) = shared_flat(303);
        let health = ReplicaHealthConfig::default()
            .with_error_threshold(1)
            .with_quarantine(Duration::from_millis(10));
        let (set, handles) = faulty_set(&shared, 2, health);
        let stats = set.stats();
        let q: Vec<&[f32]> = vec![queries.get(0)];

        handles[0].set(FaultMode::Error);
        set.search_batch(&q); // error -> quarantine replica 0, failover to 1
        assert!(!stats.snapshot(0.0)[0].healthy);

        // Heal the replica, wait out the quarantine: the next request probes
        // it and restores it to the rotation.
        handles[0].set(FaultMode::Healthy);
        std::thread::sleep(Duration::from_millis(15));
        for _ in 0..4 {
            set.search_batch(&q);
        }
        let snap = stats.snapshot(0.0);
        assert!(snap[0].healthy, "probed replica must be restored");
        assert!(snap[0].completed_queries > 0, "probe served a live query");
    }

    #[test]
    fn all_replicas_down_is_an_error_not_a_hang() {
        let (shared, queries) = shared_flat(304);
        let (set, handles) = faulty_set(&shared, 2, ReplicaHealthConfig::default());
        let stats = set.stats();
        for h in &handles {
            h.set(FaultMode::Error);
        }
        let q: Vec<&[f32]> = vec![queries.get(0)];
        let err = set.try_search_batch(&q).unwrap_err();
        assert!(err.message.contains("no replica available"));
        // The batch was rerouted exactly once (to the second replica, which
        // also failed); attempts that find no replacement are not failovers.
        assert_eq!(stats.failovers(), 1);
        assert_eq!(stats.errors(), 2);
    }

    #[test]
    fn single_dead_replica_records_no_failovers() {
        // With R = 1 there is nowhere to fail over to: a failed batch must
        // count as an error, not a failover.
        let (shared, queries) = shared_flat(307);
        let (set, handles) = faulty_set(&shared, 1, ReplicaHealthConfig::default());
        let stats = set.stats();
        handles[0].set(FaultMode::Error);
        let q: Vec<&[f32]> = vec![queries.get(0)];
        assert!(set.try_search_batch(&q).is_err());
        assert_eq!(stats.failovers(), 0);
        assert_eq!(stats.errors(), 1);
    }

    #[test]
    fn concurrent_request_rides_along_with_a_probe() {
        // While one thread probes the only replica (slow to answer), a
        // second thread's batch must route to the probing replica instead of
        // failing with "no replica available".
        let (shared, queries) = shared_flat(308);
        let health = ReplicaHealthConfig::default()
            .with_error_threshold(1)
            .with_quarantine(Duration::from_millis(5));
        let (set, handles) = faulty_set(&shared, 1, health);
        let q: Vec<&[f32]> = vec![queries.get(0)];

        handles[0].set(FaultMode::Error);
        assert!(set.try_search_batch(&q).is_err()); // quarantine the replica
        handles[0].set(FaultMode::Delay(Duration::from_millis(40))); // healed, slow
        std::thread::sleep(Duration::from_millis(10)); // quarantine expires

        let set = Arc::new(set);
        let prober = {
            let set = Arc::clone(&set);
            let query: Vec<f32> = queries.get(0).to_vec();
            std::thread::spawn(move || set.try_search_batch(&[query.as_slice()]).is_ok())
        };
        // Arrive mid-probe: the replica is in the PROBING state for ~40 ms.
        std::thread::sleep(Duration::from_millis(10));
        let rider = set.try_search_batch(&q);
        assert!(prober.join().expect("probe thread"), "probe succeeds");
        assert!(
            rider.is_ok(),
            "a concurrent batch must ride along with the probe, not fail: {rider:?}"
        );
    }

    #[test]
    fn network_model_charges_route_cost() {
        let (shared, queries) = shared_flat(305);
        let set = ReplicaSet::replicate_shared(
            Arc::clone(&shared),
            2,
            ReplicaHealthConfig::default(),
            Some(LogGpParams::paper_infiniband()),
        );
        let route = set.network_us_per_query();
        assert!(route > 0.0);
        let q: Vec<&[f32]> = vec![queries.get(0)];
        let resp = set.search_batch(&q);
        let modeled = resp[0].simulated_us.expect("modeled latency present");
        assert!(
            modeled >= route,
            "modeled {modeled} must include route {route}"
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_replicas_are_rejected() {
        let (db, _) = SyntheticSpec::sift_small(306).generate();
        let a = Box::new(FlatBackend::new(FlatIndex::new(db.clone()), 5));
        let b = Box::new(FlatBackend::new(FlatIndex::new(db), 10));
        let _ = ReplicaSet::new(vec![a, b], ReplicaHealthConfig::default(), None);
    }
}
