//! Latency accounting for the serving path: log-bucketed histograms, SLO
//! attainment tracking, goodput, and the aggregated [`ServeReport`].

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::replica::{ReplicaSetStats, ReplicaSnapshot};
use crate::telemetry::StageReport;

/// EWMA smoothing factor shared by every service-time model in this crate
/// (the engine's shedding estimate, each replica's health tracker).
const EWMA_ALPHA: f64 = 0.2;

/// A lock-free EWMA over microsecond samples, stored as `f64` bits in an
/// atomic. `0` means "no sample yet"; the first sample seeds the average.
/// Updates are plain load/store — a lost update between racing writers only
/// slows convergence of an already-approximate model.
#[derive(Debug)]
pub(crate) struct AtomicEwmaUs {
    bits: AtomicU64,
}

impl AtomicEwmaUs {
    /// An EWMA seeded at `initial_us` (0 = unset).
    pub(crate) fn new(initial_us: f64) -> Self {
        Self {
            bits: AtomicU64::new(initial_us.to_bits()),
        }
    }

    /// The current average (µs); 0 until the first sample.
    pub(crate) fn get_us(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Folds one sample into the average and returns the **previous** value
    /// (callers use it for outlier comparisons). Non-finite or negative
    /// samples are ignored.
    pub(crate) fn observe_us(&self, sample_us: f64) -> f64 {
        let prev = self.get_us();
        if !sample_us.is_finite() || sample_us < 0.0 {
            return prev;
        }
        let next = if prev == 0.0 {
            sample_us
        } else {
            (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * sample_us
        };
        self.bits.store(next.to_bits(), Ordering::Relaxed);
        prev
    }
}

/// A log-bucketed latency histogram over microseconds.
///
/// Buckets grow geometrically (~5 % per bucket), so quantile estimates are
/// accurate to a few percent across nine orders of magnitude while using a
/// fixed, allocation-free footprint per recording site. Exact minimum,
/// maximum and sum are tracked alongside the buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
}

/// Smallest resolvable latency (0.1 µs).
const FLOOR_US: f64 = 0.1;
/// Geometric bucket growth factor.
const GROWTH: f64 = 1.05;
/// Bucket count: covers 0.1 µs … >10 s.
const BUCKETS: usize = 400;

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        }
    }

    fn bucket_for(us: f64) -> usize {
        if us <= FLOOR_US {
            return 0;
        }
        let idx = (us / FLOOR_US).ln() / GROWTH.ln();
        (idx as usize).min(BUCKETS - 1)
    }

    /// Lower edge of a bucket in microseconds.
    fn bucket_floor(idx: usize) -> f64 {
        FLOOR_US * GROWTH.powi(idx as i32)
    }

    /// Ceiling for one sample (µs, ≈ 31 years): non-finite or absurd samples
    /// clamp here so they land in the top bucket while every aggregate
    /// (sum, mean, max, merge) stays finite.
    pub const SAMPLE_CAP_US: f64 = 1e15;

    /// Records one latency sample (µs). Non-finite samples are clamped to
    /// [`Self::SAMPLE_CAP_US`] so they surface in the tail instead of
    /// vanishing or corrupting the mean.
    pub fn record(&mut self, us: f64) {
        let us = if us.is_finite() {
            us.clamp(0.0, Self::SAMPLE_CAP_US)
        } else {
            Self::SAMPLE_CAP_US
        };
        self.counts[Self::bucket_for(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency (µs), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Exact minimum (µs), 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us
        }
    }

    /// Exact maximum (µs), 0 when empty.
    pub fn max(&self) -> f64 {
        self.max_us
    }

    /// Quantile estimate (p in 0–100): rank-interpolated within the bucket
    /// containing the p-th sample, clamped to the exact min/max.
    ///
    /// Reporting a fixed point of the bucket (its lower edge, or even the
    /// geometric midpoint) biases dense quantiles by up to half a bucket
    /// width. Instead, the estimate places the p-th sample at its rank
    /// position *within* the bucket on the geometric scale: the j-th of c
    /// samples in a bucket maps to `floor · G^((j - 0.5) / c)`. For a
    /// single-sample bucket this reduces to the geometric midpoint; for
    /// dense buckets it removes the systematic offset entirely.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if seen + c >= rank {
                if idx == BUCKETS - 1 {
                    // Overflow bucket: interpolation is meaningless, report
                    // the exact maximum.
                    return self.max_us;
                }
                let within = (rank - seen) as f64; // 1..=c
                let frac = ((within - 0.5) / c as f64).clamp(0.0, 1.0);
                let estimate = Self::bucket_floor(idx) * GROWTH.powf(frac);
                return estimate.clamp(self.min_us, self.max_us);
            }
            seen += c;
        }
        self.max_us
    }

    /// Fraction of samples at or below `threshold_us` (exact at bucket
    /// granularity), 1.0 when empty.
    pub fn fraction_below(&self, threshold_us: f64) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        let cutoff = Self::bucket_for(threshold_us);
        let below: u64 = self.counts[..=cutoff].iter().sum();
        below as f64 / self.count as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Mutable serving-side metric state, shared by the engine's workers.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    /// End-to-end wall latency (submit → reply), µs.
    pub wall: LatencyHistogram,
    /// Time spent queued before a batch formed, µs.
    pub queue: LatencyHistogram,
    /// Backend service time per batch, µs.
    pub service: LatencyHistogram,
    /// Backend-simulated device latency (accelerator backends), µs.
    pub simulated: LatencyHistogram,
    /// Completed queries.
    pub completed: u64,
    /// Executed batches.
    pub batches: u64,
    /// Sum of batch sizes (for the mean batch size).
    pub batch_size_sum: u64,
    /// Queries meeting the SLO (when one is configured).
    pub slo_hits: u64,
    /// Queries shed by deadline-aware admission (resolved, not executed).
    pub shed: u64,
    /// Queries whose batch failed on the backend (resolved without results).
    pub failed: u64,
    /// End-to-end wall latency of cache-hit completions, µs. Hits are kept
    /// out of `wall` so the headline percentiles keep measuring the backend
    /// (cache-miss) path; hit latency is reported alongside in the report's
    /// cache section.
    pub cache_hit_wall: LatencyHistogram,
    /// Queries answered from the result cache at submission. (Misses are
    /// counted lock-free on the engine so the common path never takes this
    /// collector's lock just to bump a counter.)
    pub cache_hits: u64,
}

impl MetricsCollector {
    /// Records one completed query.
    pub fn record_query(
        &mut self,
        wall_us: f64,
        queue_us: f64,
        simulated_us: Option<f64>,
        slo_us: Option<f64>,
    ) {
        self.wall.record(wall_us);
        self.queue.record(queue_us);
        if let Some(sim) = simulated_us {
            self.simulated.record(sim);
        }
        if let Some(slo) = slo_us {
            if wall_us <= slo {
                self.slo_hits += 1;
            }
        }
        self.completed += 1;
    }

    /// Records one executed batch.
    pub fn record_batch(&mut self, size: usize, service_us: f64) {
        self.batches += 1;
        self.batch_size_sum += size as u64;
        self.service.record(service_us);
    }

    /// Records `n` queries shed by deadline-aware admission.
    pub fn record_shed(&mut self, n: u64) {
        self.shed += n;
    }

    /// Records `n` queries that failed on the backend.
    pub fn record_failed(&mut self, n: u64) {
        self.failed += n;
    }

    /// Records one query answered from the result cache: it counts as a
    /// completed (and, trivially, in-SLO) query, but its latency lands in
    /// the cache-hit histogram rather than the backend-path one.
    pub fn record_cache_hit(&mut self, wall_us: f64, slo_us: Option<f64>) {
        self.cache_hit_wall.record(wall_us);
        if let Some(slo) = slo_us {
            if wall_us <= slo {
                self.slo_hits += 1;
            }
        }
        self.completed += 1;
        self.cache_hits += 1;
    }
}

/// The cache section of a [`ServeReport`]: engine-observed hit/miss traffic
/// and latency, combined with the cache's own lifetime counters.
#[derive(Debug, Clone, Serialize)]
pub struct CacheReport {
    /// Queries this engine answered from the cache.
    pub hits: u64,
    /// Submissions that consulted the cache and fell through.
    pub misses: u64,
    /// `hits / (hits + misses)` for this engine's traffic.
    pub hit_rate: f64,
    /// Median end-to-end latency of cache-hit completions (µs).
    pub hit_p50_us: f64,
    /// 99th-percentile latency of cache-hit completions (µs).
    pub hit_p99_us: f64,
    /// Median end-to-end latency of backend-path (cache-miss) completions
    /// (µs) — identical to the report's `p50_us`, duplicated here so a hit
    /// vs. miss comparison needs only the cache section.
    pub miss_p50_us: f64,
    /// Entries written over the cache's lifetime.
    pub insertions: u64,
    /// Entries evicted by LRU capacity pressure over the cache's lifetime.
    pub evictions: u64,
    /// Entries dropped for outliving the TTL.
    pub expirations: u64,
    /// Entries dropped by generation invalidation.
    pub invalidated: u64,
    /// Entries resident when the report was taken.
    pub entries: usize,
    /// Total cache capacity.
    pub capacity: usize,
}

impl CacheReport {
    /// Combines the engine's view (hit count and latency histograms from the
    /// collector, the lock-free per-engine miss count) with the cache's
    /// lifetime stats (insert/evict/expire counters, occupancy, capacity —
    /// which aggregate across every engine sharing the cache).
    pub fn new(collector: &MetricsCollector, cache_stats: &CacheStats, misses: u64) -> Self {
        let lookups = collector.cache_hits + misses;
        Self {
            hits: collector.cache_hits,
            misses,
            hit_rate: if lookups == 0 {
                0.0
            } else {
                collector.cache_hits as f64 / lookups as f64
            },
            hit_p50_us: collector.cache_hit_wall.percentile(50.0),
            hit_p99_us: collector.cache_hit_wall.percentile(99.0),
            miss_p50_us: collector.wall.percentile(50.0),
            insertions: cache_stats.insertions,
            evictions: cache_stats.evictions,
            expirations: cache_stats.expirations,
            invalidated: cache_stats.invalidated,
            entries: cache_stats.entries,
            capacity: cache_stats.capacity,
        }
    }
}

/// The aggregated outcome of a serving run — the serving analogue of the
/// offline `SimulationReport`.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Backend description.
    pub backend: String,
    /// Completed queries.
    pub queries: u64,
    /// Queries rejected by backpressure (queue full).
    pub rejected: u64,
    /// Queries shed by deadline-aware admission — accepted, then resolved as
    /// [`crate::engine::QueryStatus::Shed`] because they could no longer
    /// meet their deadline. Counted separately from `rejected`.
    pub shed: u64,
    /// Queries whose batch failed on the backend (resolved as
    /// [`crate::engine::QueryStatus::Failed`]).
    pub failed: u64,
    /// Executed batches.
    pub batches: u64,
    /// Mean formed batch size.
    pub mean_batch_size: f64,
    /// Wall-clock span of the measurement (s).
    pub wall_seconds: f64,
    /// Achieved throughput (completed / wall_seconds).
    pub qps: f64,
    /// **Goodput**: completed-in-SLO queries per second. Equal to `qps` when
    /// no SLO is configured; the deployment-quality metric otherwise — shed,
    /// failed and SLO-missing queries all reduce it.
    pub goodput_qps: f64,
    /// Median end-to-end latency (µs).
    pub p50_us: f64,
    /// 95th-percentile end-to-end latency (µs).
    pub p95_us: f64,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_us: f64,
    /// Mean end-to-end latency (µs).
    pub mean_us: f64,
    /// Maximum end-to-end latency (µs).
    pub max_us: f64,
    /// Mean time spent queued (µs).
    pub mean_queue_us: f64,
    /// Mean backend service time per batch (µs).
    pub mean_service_us: f64,
    /// The latency SLO this run was measured against (µs), if any.
    pub slo_us: Option<f64>,
    /// Fraction of queries within the SLO, if one was configured.
    pub slo_attainment: Option<f64>,
    /// Median simulated device latency (accelerator backends), µs.
    pub simulated_p50_us: Option<f64>,
    /// 99th-percentile simulated device latency, µs.
    pub simulated_p99_us: Option<f64>,
    /// Batches rerouted after a replica failure, summed over every attached
    /// replica set (0 until [`ServeReport::with_replica_stats`] is called).
    pub failover_count: u64,
    /// Per-replica utilization snapshots, in (shard-major, replica-minor)
    /// order (empty until [`ServeReport::with_replica_stats`] is called).
    pub replicas: Vec<ReplicaSnapshot>,
    /// Result-cache traffic and occupancy (`None` when the engine runs
    /// without a cache).
    pub cache: Option<CacheReport>,
    /// Per-stage latency breakdown from the telemetry layer (`None` when the
    /// engine runs without tracing). See
    /// [`crate::telemetry::TelemetryRegistry::stage_report`].
    pub stages: Option<StageReport>,
}

impl ServeReport {
    /// Builds a report from collected metrics.
    pub fn from_collector(
        backend: String,
        collector: &MetricsCollector,
        wall_seconds: f64,
        rejected: u64,
        slo_us: Option<f64>,
    ) -> Self {
        let completed = collector.completed;
        let slo_attainment = slo_us.map(|_| {
            if completed == 0 {
                0.0
            } else {
                collector.slo_hits as f64 / completed as f64
            }
        });
        let (simulated_p50_us, simulated_p99_us) = if collector.simulated.is_empty() {
            (None, None)
        } else {
            (
                Some(collector.simulated.percentile(50.0)),
                Some(collector.simulated.percentile(99.0)),
            )
        };
        let goodput_qps = if wall_seconds > 0.0 {
            match slo_us {
                Some(_) => collector.slo_hits as f64 / wall_seconds,
                None => completed as f64 / wall_seconds,
            }
        } else {
            0.0
        };
        Self {
            backend,
            queries: completed,
            rejected,
            shed: collector.shed,
            failed: collector.failed,
            batches: collector.batches,
            mean_batch_size: if collector.batches == 0 {
                0.0
            } else {
                collector.batch_size_sum as f64 / collector.batches as f64
            },
            wall_seconds,
            qps: if wall_seconds > 0.0 {
                completed as f64 / wall_seconds
            } else {
                0.0
            },
            goodput_qps,
            p50_us: collector.wall.percentile(50.0),
            p95_us: collector.wall.percentile(95.0),
            p99_us: collector.wall.percentile(99.0),
            mean_us: collector.wall.mean(),
            max_us: collector.wall.max(),
            mean_queue_us: collector.queue.mean(),
            mean_service_us: collector.service.mean(),
            slo_us,
            slo_attainment,
            simulated_p50_us,
            simulated_p99_us,
            failover_count: 0,
            replicas: Vec::new(),
            cache: None,
            stages: None,
        }
    }

    /// Attaches the cache section (see [`CacheReport::new`]).
    pub fn with_cache_report(mut self, cache: CacheReport) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches the telemetry per-stage breakdown.
    pub fn with_stage_report(mut self, stages: StageReport) -> Self {
        self.stages = Some(stages);
        self
    }

    /// Folds live replica-set statistics into the report: sums failovers
    /// across sets and snapshots each replica's utilization against this
    /// report's wall-clock window. Pass the stats handles kept from each
    /// shard's [`crate::replica::ReplicaSet`] (one handle per shard).
    pub fn with_replica_stats(mut self, sets: &[ReplicaSetStats]) -> Self {
        self.failover_count = sets.iter().map(ReplicaSetStats::failovers).sum();
        self.replicas = sets
            .iter()
            .flat_map(|s| s.snapshot(self.wall_seconds))
            .collect();
        self
    }

    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let slo = match (self.slo_us, self.slo_attainment) {
            (Some(slo), Some(hit)) => {
                format!(
                    ", SLO {:.0} us met by {:.1}% (goodput {:.0} QPS)",
                    slo,
                    hit * 100.0,
                    self.goodput_qps
                )
            }
            _ => String::new(),
        };
        let drops = if self.shed > 0 || self.failed > 0 {
            format!(" | shed {}, failed {}", self.shed, self.failed)
        } else {
            String::new()
        };
        let failover = if self.failover_count > 0 {
            format!(" | failovers {}", self.failover_count)
        } else {
            String::new()
        };
        let cache = match &self.cache {
            Some(c) => format!(
                " | cache hit-rate {:.1}% (hit p50 {:.1} us)",
                c.hit_rate * 100.0,
                c.hit_p50_us
            ),
            None => String::new(),
        };
        format!(
            "{}: {} queries in {:.2} s -> {:.0} QPS | latency p50 {:.0} us, p95 {:.0} us, p99 {:.0} us | mean batch {:.1}{}{}{}{cache}",
            self.backend,
            self.queries,
            self.wall_seconds,
            self.qps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.mean_batch_size,
            slo,
            drops,
            failover
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered_and_close() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!(p50 < p99);
        // Rank interpolation keeps dense-distribution quantiles within half
        // a bucket width (~2.5 % at 5 % growth) of the exact values.
        assert!((p50 / 5_000.0 - 1.0).abs() < 0.03, "p50 estimate {p50}");
        assert!((p99 / 9_900.0 - 1.0).abs() < 0.03, "p99 estimate {p99}");
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10_000.0);
    }

    #[test]
    fn percentile_interpolates_rank_within_bucket() {
        // 490 µs and 510 µs share one bucket (5 % growth); interpolated
        // quantiles must stay inside that bucket and increase with p
        // instead of collapsing to a fixed bucket point.
        let mut h = LatencyHistogram::new();
        for _ in 0..50 {
            h.record(490.0);
            h.record(510.0);
        }
        let p25 = h.percentile(25.0);
        let p75 = h.percentile(75.0);
        assert!(p25 < p75, "p25 {p25} must rank below p75 {p75}");
        // One bucket spans a 5 % ratio; both estimates are within it.
        assert!(p75 / p25 < 1.05 + 1e-9, "p25 {p25} p75 {p75}");
        assert!((490.0..=510.0).contains(&p25));
        assert!((490.0..=510.0).contains(&p75));
        // A single sample reduces to the geometric midpoint — and the
        // min/max clamp pins it to the exact value here.
        let mut single = LatencyHistogram::new();
        single.record(123.0);
        assert_eq!(single.percentile(50.0), 123.0);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(f64::INFINITY);
        h.record(1e12);
        assert_eq!(h.count(), 3);
        assert!(h.percentile(100.0) >= 1e12);
        // Aggregates stay finite even after non-finite samples and merges.
        assert!(h.mean().is_finite());
        assert_eq!(h.max(), LatencyHistogram::SAMPLE_CAP_US);
        let mut other = LatencyHistogram::new();
        other.record(f64::NAN);
        h.merge(&other);
        assert!(h.mean().is_finite());
    }

    #[test]
    fn fraction_below_tracks_slo() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(100.0);
        }
        for _ in 0..10 {
            h.record(10_000.0);
        }
        let frac = h.fraction_below(1_000.0);
        assert!((frac - 0.9).abs() < 1e-9, "fraction {frac}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        a.record(10.0);
        let mut b = LatencyHistogram::new();
        b.record(1000.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10.0);
        assert_eq!(a.max(), 1000.0);
    }

    #[test]
    fn report_aggregates_collector_state() {
        let mut c = MetricsCollector::default();
        for i in 0..100u64 {
            c.record_query(100.0 + i as f64, 5.0, Some(50.0), Some(150.0));
        }
        c.record_batch(100, 900.0);
        let report = ServeReport::from_collector("test".into(), &c, 2.0, 3, Some(150.0));
        assert_eq!(report.queries, 100);
        assert_eq!(report.rejected, 3);
        assert_eq!(report.qps, 50.0);
        assert!(report.p50_us <= report.p99_us);
        assert!(report.slo_attainment.unwrap() > 0.0);
        assert!(report.simulated_p50_us.is_some());
        assert!(report.summary().contains("QPS"));
        // Goodput counts only in-SLO completions: 50 of 100 queries are at
        // or below 150 µs (wall 100..=149 µs qualify), over 2 s.
        assert_eq!(report.goodput_qps, c.slo_hits as f64 / 2.0);
        assert!(report.goodput_qps <= report.qps);
    }

    #[test]
    fn shed_and_failed_are_counted_separately_from_rejected() {
        let mut c = MetricsCollector::default();
        for _ in 0..10 {
            c.record_query(100.0, 5.0, None, None);
        }
        c.record_shed(4);
        c.record_failed(2);
        let report = ServeReport::from_collector("test".into(), &c, 1.0, 7, None);
        assert_eq!(report.queries, 10);
        assert_eq!(report.shed, 4);
        assert_eq!(report.failed, 2);
        assert_eq!(report.rejected, 7);
        // Without an SLO goodput degenerates to throughput.
        assert_eq!(report.goodput_qps, report.qps);
        assert!(report.summary().contains("shed 4"));
        // No replica stats attached yet.
        assert_eq!(report.failover_count, 0);
        assert!(report.replicas.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn filled(samples: &[f64]) -> LatencyHistogram {
            let mut h = LatencyHistogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        }

        proptest! {
            /// `merge` is order-independent: merging A into B and B into A
            /// yield identical aggregates and quantiles.
            #[test]
            fn merge_is_order_independent(
                a in prop::collection::vec(0.1f64..1e7, 0..60),
                b in prop::collection::vec(0.1f64..1e7, 0..60),
                p in 0.0f64..100.0,
            ) {
                let mut ab = filled(&a);
                ab.merge(&filled(&b));
                let mut ba = filled(&b);
                ba.merge(&filled(&a));
                prop_assert_eq!(ab.count(), ba.count());
                prop_assert_eq!(ab.min(), ba.min());
                prop_assert_eq!(ab.max(), ba.max());
                prop_assert_eq!(ab.mean(), ba.mean());
                prop_assert_eq!(ab.percentile(p), ba.percentile(p));
                prop_assert_eq!(ab.percentile(50.0), ba.percentile(50.0));
            }

            /// Quantile estimates stay within one bucket width (a factor of
            /// `GROWTH`) of the exact order statistic at the same rank.
            #[test]
            fn quantiles_stay_within_one_bucket_of_exact(
                samples in prop::collection::vec(0.1f64..1e7, 1..80),
                p in 0.0f64..100.0,
            ) {
                let h = filled(&samples);
                let mut sorted = samples.clone();
                sorted.sort_by(f64::total_cmp);
                let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
                let exact = sorted[rank - 1];
                let estimate = h.percentile(p);
                prop_assert!(
                    estimate >= exact / GROWTH && estimate <= exact * GROWTH,
                    "estimate {} vs exact {} at p{} (n={})",
                    estimate,
                    exact,
                    p,
                    sorted.len()
                );
            }
        }
    }
}
