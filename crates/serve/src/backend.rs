//! The [`SearchBackend`] abstraction and its concrete executors.
//!
//! A backend answers top-K queries for the partition of the database it
//! owns. Three implementations cover the paper's deployment matrix:
//!
//! * [`CpuBackend`] — the software IVF-PQ executor (the Faiss-CPU stand-in),
//! * [`AcceleratorBackend`] — the generated FANNS accelerator: functional
//!   results from the cycle-level simulator, which also reports the
//!   *simulated* device latency per query alongside the host wall clock,
//! * [`FlatBackend`] — exact brute-force search, used as the correctness
//!   reference for the sharded dispatcher.
//!
//! Backends are `Send + Sync` so engine workers and the sharded dispatcher
//! can drive them from multiple threads concurrently.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use fanns_codegen::plan::{instantiate, AcceleratorPlan};
use fanns_ivf::flat::FlatIndex;
use fanns_ivf::index::IvfPqIndex;
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::search::{
    search_with_kernel, stage_build_lut, stage_ivf_dist, stage_opq, stage_scan_and_select_with,
    stage_sel_cells, SearchResult,
};
use fanns_ivf::simd::{default_kernel, ScanKernel, ScanScratch};
use fanns_ivf::source::IvfSource;
use fanns_ivf::storage::{MappedIndex, StorageError};

use crate::cache::CentroidLutCache;
use crate::telemetry::{batch_traced, Stage, TelemetrySink};

/// One backend answer: the top-K hits plus, for simulated hardware, the
/// modelled device latency (µs) for this query.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendResponse {
    /// The K nearest neighbours, sorted by increasing distance.
    pub results: Vec<SearchResult>,
    /// Simulated device latency in microseconds, when the backend models
    /// hardware rather than executing natively.
    pub simulated_us: Option<f64>,
}

/// A backend-side failure: the replica could not serve the batch at all
/// (crash, timeout, injected fault). Carries the failing backend's name so
/// routing layers can attribute the error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Name of the backend that failed.
    pub backend: String,
    /// What went wrong.
    pub message: String,
}

impl BackendError {
    /// A new error attributed to `backend`.
    pub fn new(backend: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            backend: backend.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "backend `{}` failed: {}", self.backend, self.message)
    }
}

impl std::error::Error for BackendError {}

/// A query-serving backend bound to (a partition of) the database.
pub trait SearchBackend: Send + Sync {
    /// Human-readable description (shown in reports).
    fn name(&self) -> String;

    /// Query dimensionality the backend expects.
    fn dim(&self) -> usize;

    /// Results returned per query.
    fn k(&self) -> usize;

    /// Answers a batch of queries. Must return exactly one response per
    /// query, in order.
    fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse>;

    /// Fallible variant of [`SearchBackend::search_batch`]. In-process
    /// executors never fail, so the default implementation simply delegates;
    /// backends that model remote or faulty replicas (the
    /// [`crate::fault::FaultInjector`] wrapper, a [`crate::replica::ReplicaSet`]
    /// with every replica down) override it to surface [`BackendError`].
    /// Routing layers and the engine's workers call this method so failures
    /// propagate instead of panicking.
    fn try_search_batch(&self, queries: &[&[f32]]) -> Result<Vec<BackendResponse>, BackendError> {
        Ok(self.search_batch(queries))
    }

    /// Whether this backend accepts live [`SearchBackend::insert`] /
    /// [`SearchBackend::delete`] traffic. Immutable backends (the default)
    /// report `false` and reject every mutation.
    fn supports_mutation(&self) -> bool {
        false
    }

    /// Inserts one vector into the served index, returning its assigned id,
    /// or `None` when the backend is immutable. Mutable backends (see
    /// [`crate::mutable::MutableBackend`]) make the vector findable by the
    /// very next search.
    fn insert(&self, _vector: &[f32]) -> Option<u32> {
        None
    }

    /// Tombstones one id in the served index. Returns `true` when the id was
    /// live and is now hidden from every subsequent search; `false` for
    /// unknown/already-deleted ids and for immutable backends.
    fn delete(&self, _id: u32) -> bool {
        false
    }
}

/// Shared backends are backends: lets R replicas route to one in-memory
/// index (`Arc<CpuBackend>` cloned per replica slot) without duplicating the
/// index, and lets wrappers like the fault injector own shared inners.
impl<T: SearchBackend + ?Sized> SearchBackend for std::sync::Arc<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn k(&self) -> usize {
        (**self).k()
    }

    fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
        (**self).search_batch(queries)
    }

    fn try_search_batch(&self, queries: &[&[f32]]) -> Result<Vec<BackendResponse>, BackendError> {
        (**self).try_search_batch(queries)
    }

    fn supports_mutation(&self) -> bool {
        (**self).supports_mutation()
    }

    fn insert(&self, vector: &[f32]) -> Option<u32> {
        (**self).insert(vector)
    }

    fn delete(&self, id: u32) -> bool {
        (**self).delete(id)
    }
}

/// Where a [`CpuBackend`]'s index lives: owned on the heap (built or
/// deserialized in-process) or shared out of a read-only `mmap` of an
/// on-disk index file. Both forms run the identical generic search stages,
/// so results are bit-identical across the two.
#[derive(Debug)]
enum BackendIndex {
    Heap(Box<IvfPqIndex>),
    Mapped(Arc<MappedIndex>),
}

impl IvfSource for BackendIndex {
    fn dim(&self) -> usize {
        match self {
            BackendIndex::Heap(i) => IvfSource::dim(&**i),
            BackendIndex::Mapped(i) => IvfSource::dim(&**i),
        }
    }

    fn m(&self) -> usize {
        match self {
            BackendIndex::Heap(i) => IvfSource::m(&**i),
            BackendIndex::Mapped(i) => IvfSource::m(&**i),
        }
    }

    fn ksub(&self) -> usize {
        match self {
            BackendIndex::Heap(i) => IvfSource::ksub(&**i),
            BackendIndex::Mapped(i) => IvfSource::ksub(&**i),
        }
    }

    fn nlist(&self) -> usize {
        match self {
            BackendIndex::Heap(i) => IvfSource::nlist(&**i),
            BackendIndex::Mapped(i) => IvfSource::nlist(&**i),
        }
    }

    fn ntotal(&self) -> usize {
        match self {
            BackendIndex::Heap(i) => IvfSource::ntotal(&**i),
            BackendIndex::Mapped(i) => IvfSource::ntotal(&**i),
        }
    }

    fn opq(&self) -> Option<&fanns_quantize::opq::OpqTransform> {
        match self {
            BackendIndex::Heap(i) => IvfSource::opq(&**i),
            BackendIndex::Mapped(i) => IvfSource::opq(&**i),
        }
    }

    fn centroids(&self) -> &[f32] {
        match self {
            BackendIndex::Heap(i) => IvfSource::centroids(&**i),
            BackendIndex::Mapped(i) => IvfSource::centroids(&**i),
        }
    }

    fn build_lut(&self, query: &[f32]) -> fanns_quantize::pq::DistanceTable {
        match self {
            BackendIndex::Heap(i) => IvfSource::build_lut(&**i, query),
            BackendIndex::Mapped(i) => IvfSource::build_lut(&**i, query),
        }
    }

    fn list_len(&self, cell: usize) -> usize {
        match self {
            BackendIndex::Heap(i) => IvfSource::list_len(&**i, cell),
            BackendIndex::Mapped(i) => IvfSource::list_len(&**i, cell),
        }
    }

    fn list_ids(&self, cell: usize) -> &[u32] {
        match self {
            BackendIndex::Heap(i) => IvfSource::list_ids(&**i, cell),
            BackendIndex::Mapped(i) => IvfSource::list_ids(&**i, cell),
        }
    }

    fn list_codes(&self, cell: usize) -> &[u8] {
        match self {
            BackendIndex::Heap(i) => IvfSource::list_codes(&**i, cell),
            BackendIndex::Mapped(i) => IvfSource::list_codes(&**i, cell),
        }
    }

    fn slab(&self, cell: usize) -> &fanns_ivf::simd::CodeSlab {
        match self {
            BackendIndex::Heap(i) => IvfSource::slab(&**i, cell),
            BackendIndex::Mapped(i) => IvfSource::slab(&**i, cell),
        }
    }
}

/// The multithreaded CPU IVF-PQ executor behind the serving interface.
#[derive(Debug)]
pub struct CpuBackend {
    index: BackendIndex,
    params: IvfPqParams,
    /// Optional hot-cell centroid/LUT cache: memoizes the coarse-quantizer
    /// stages (OPQ + IVFDist + SelCells) and the ADC lookup table per
    /// distinct query, leaving only the inverted-list scan on a hit.
    lut_cache: Option<CentroidLutCache>,
    /// Optional telemetry sink for pipeline sub-stage spans (coarse
    /// quantization / LUT build / ADC scan).
    telemetry: Option<TelemetrySink>,
    /// Scan kernel override; `None` rides the process default
    /// ([`fanns_ivf::simd::default_kernel`]).
    kernel: Option<ScanKernel>,
}

impl CpuBackend {
    /// Binds an owned index to query-time parameters.
    ///
    /// # Panics
    /// Panics if `params.nlist` / `params.m` do not match the index.
    pub fn new(index: IvfPqIndex, params: IvfPqParams) -> Self {
        assert_eq!(
            params.nlist,
            index.nlist(),
            "params.nlist must match the index"
        );
        assert_eq!(params.m, index.m(), "params.m must match the index");
        Self {
            index: BackendIndex::Heap(Box::new(index)),
            params,
            lut_cache: None,
            telemetry: None,
            kernel: None,
        }
    }

    /// Binds a shared `mmap`-backed index (see [`fanns_ivf::storage`]) to
    /// query-time parameters. The mapping can be shared with other backends
    /// or replica threads via the `Arc`; search results are bit-identical to
    /// a [`CpuBackend::new`] backend over the equivalent heap index.
    ///
    /// # Panics
    /// Panics if `params.nlist` / `params.m` do not match the index.
    pub fn from_mapped(index: Arc<MappedIndex>, params: IvfPqParams) -> Self {
        assert_eq!(
            params.nlist,
            IvfSource::nlist(&*index),
            "params.nlist must match the index"
        );
        assert_eq!(
            params.m,
            IvfSource::m(&*index),
            "params.m must match the index"
        );
        Self {
            index: BackendIndex::Mapped(index),
            params,
            lut_cache: None,
            telemetry: None,
            kernel: None,
        }
    }

    /// Whether this backend serves out of an `mmap`-backed index.
    pub fn is_mapped(&self) -> bool {
        matches!(self.index, BackendIndex::Mapped(_))
    }

    /// Builder-style scan-kernel pin: forces every query this backend serves
    /// through the given ADC scan kernel instead of the process default.
    /// The f32 kernels are bit-identical; [`ScanKernel::Int8`] trades the
    /// quantized first pass for exact re-ranking (recall-preserving).
    pub fn with_kernel(mut self, kernel: ScanKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// The ADC scan kernel this backend executes.
    pub fn kernel(&self) -> ScanKernel {
        self.kernel.unwrap_or_else(default_kernel)
    }

    /// Builder-style switch for the hot-cell centroid-distance cache (see
    /// [`CentroidLutCache`]): up to `capacity` distinct queries keep their
    /// probe-cell selection and ADC lookup table memoized, so a repeated
    /// query skips straight to the inverted-list scan. Results are
    /// bit-identical with or without the cache — entries are keyed on the
    /// exact query and the index is immutable for the backend's lifetime.
    pub fn with_centroid_cache(mut self, capacity: usize) -> Self {
        self.lut_cache = Some(CentroidLutCache::new(capacity, self.index.nlist()));
        self
    }

    /// Builder-style attach of a telemetry sink: traced queries record one
    /// span per pipeline sub-stage — coarse quantization (OPQ + IVFDist +
    /// SelCells), LUT build, and ADC scan — the live analogue of the
    /// paper's Fig. 3 stage split. Which queries are traced follows the
    /// engine's batch-sampling decision when this backend serves an engine
    /// worker ([`crate::telemetry::batch_traced`]); driven standalone, the
    /// sink self-samples at its registry's configured rate. The traced path
    /// runs the same staged kernels as the fused one, so results stay
    /// bit-identical.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// The centroid/LUT cache, when enabled (hit/miss stats, hot cells).
    pub fn centroid_cache(&self) -> Option<&CentroidLutCache> {
        self.lut_cache.as_ref()
    }

    /// The bound parameters.
    pub fn params(&self) -> IvfPqParams {
        self.params
    }

    /// The bound heap index, when this backend owns one (`None` for
    /// `mmap`-backed backends — use [`CpuBackend::mapped_index`]).
    pub fn index(&self) -> Option<&IvfPqIndex> {
        match &self.index {
            BackendIndex::Heap(i) => Some(&**i),
            BackendIndex::Mapped(_) => None,
        }
    }

    /// The shared mapped index, when this backend is `mmap`-backed.
    pub fn mapped_index(&self) -> Option<&Arc<MappedIndex>> {
        match &self.index {
            BackendIndex::Heap(_) => None,
            BackendIndex::Mapped(i) => Some(i),
        }
    }

    /// One query through the cached pipeline: reuse (or compute and memoize)
    /// the probe cells + LUT, then scan. Stage order and arithmetic match
    /// [`fanns_ivf::search::search`] exactly.
    fn search_cached(
        &self,
        cache: &CentroidLutCache,
        query: &[f32],
        scratch: &mut ScanScratch,
    ) -> Vec<SearchResult> {
        let entry = match cache.get(query) {
            Some(entry) => entry,
            None => {
                let rotated = stage_opq(&self.index, query);
                let dists = stage_ivf_dist(&self.index, &rotated);
                let cells = stage_sel_cells(&dists, self.params.effective_nprobe());
                let lut = stage_build_lut(&self.index, &rotated);
                let entry = std::sync::Arc::new((cells, lut));
                cache.insert(query, std::sync::Arc::clone(&entry));
                entry
            }
        };
        let (cells, lut) = (&entry.0, &entry.1);
        cache.record_probes(cells);
        stage_scan_and_select_with(
            &self.index,
            cells,
            lut,
            self.params.k,
            self.kernel(),
            scratch,
        )
    }

    /// One query through the staged pipeline with sub-stage spans recorded.
    /// Calls the same `stage_*` kernels the fused [`search`] composes, so
    /// results are bit-identical to the untraced path; the only extra work
    /// is four `Instant::now()` reads and three ring pushes.
    fn search_traced(
        &self,
        sink: &TelemetrySink,
        query: &[f32],
        scratch: &mut ScanScratch,
    ) -> Vec<SearchResult> {
        let qid = sink.next_id();
        let kernel = self.kernel();
        if let Some(cache) = &self.lut_cache {
            if let Some(entry) = cache.get(query) {
                // Cached hit: coarse quantization and LUT build are
                // memoized away; only the scan runs (and is recorded).
                cache.record_probes(&entry.0);
                let t0 = std::time::Instant::now();
                let results = stage_scan_and_select_with(
                    &self.index,
                    &entry.0,
                    &entry.1,
                    self.params.k,
                    kernel,
                    scratch,
                );
                sink.record_range(Stage::Scan, qid, t0, std::time::Instant::now());
                return results;
            }
        }
        let t0 = std::time::Instant::now();
        let rotated = stage_opq(&self.index, query);
        let dists = stage_ivf_dist(&self.index, &rotated);
        let cells = stage_sel_cells(&dists, self.params.effective_nprobe());
        let t1 = std::time::Instant::now();
        let lut = stage_build_lut(&self.index, &rotated);
        let t2 = std::time::Instant::now();
        let (cells, lut) = match &self.lut_cache {
            Some(cache) => {
                let entry = std::sync::Arc::new((cells, lut));
                cache.insert(query, std::sync::Arc::clone(&entry));
                cache.record_probes(&entry.0);
                (entry.0.clone(), entry.1.clone())
            }
            None => (cells, lut),
        };
        let results =
            stage_scan_and_select_with(&self.index, &cells, &lut, self.params.k, kernel, scratch);
        let t3 = std::time::Instant::now();
        sink.record_range(Stage::Coarse, qid, t0, t1);
        sink.record_range(Stage::BuildLut, qid, t1, t2);
        sink.record_range(Stage::Scan, qid, t2, t3);
        results
    }
}

impl SearchBackend for CpuBackend {
    fn name(&self) -> String {
        let cache = match &self.lut_cache {
            Some(_) => ", lut-cache",
            None => "",
        };
        let mapped = match &self.index {
            BackendIndex::Mapped(_) => ", mmap",
            BackendIndex::Heap(_) => "",
        };
        format!(
            "cpu-ivfpq({}, nprobe={}, scan={}{cache}{mapped})",
            self.params.index_label(),
            self.params.effective_nprobe(),
            self.kernel()
        )
    }

    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn k(&self) -> usize {
        self.params.k
    }

    fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
        // Trace this batch iff the engine worker sampled it; standalone
        // (no engine flag on this thread), self-sample at the sink's rate.
        let traced = self.telemetry.as_ref().and_then(|sink| {
            let on = batch_traced().unwrap_or_else(|| sink.self_sample());
            on.then_some(sink)
        });
        // One scratch (kernel lanes + candidate buffers) amortized over the
        // whole batch; each engine worker drives its own backend call, so
        // this stays free of cross-thread contention.
        let mut scratch = ScanScratch::new();
        let kernel = self.kernel();
        queries
            .iter()
            .map(|q| BackendResponse {
                results: match traced {
                    Some(sink) => self.search_traced(sink, q, &mut scratch),
                    None => match &self.lut_cache {
                        Some(cache) => self.search_cached(cache, q, &mut scratch),
                        None => search_with_kernel(
                            &self.index,
                            q,
                            self.params.k,
                            self.params.effective_nprobe(),
                            kernel,
                            &mut scratch,
                        ),
                    },
                },
                simulated_us: None,
            })
            .collect()
    }
}

/// Cold-start path: `mmap`-opens an on-disk index (full checksum/alignment
/// validation), eagerly warms its scan slabs, and binds it to a
/// [`CpuBackend`]. When a telemetry sink is supplied, the two phases are
/// recorded as [`Stage::IndexMap`] and [`Stage::IndexWarm`] infrastructure
/// spans, so dashboards see exactly what a restart or swap-from-disk cost.
///
/// Returns the backend plus the shared mapping, so callers can hand the
/// same `Arc<MappedIndex>` to further replicas without re-opening the file.
pub fn open_mapped_backend(
    path: &Path,
    params: IvfPqParams,
    telemetry: Option<&TelemetrySink>,
) -> Result<(CpuBackend, Arc<MappedIndex>), StorageError> {
    let t0 = Instant::now();
    let mapped = Arc::new(MappedIndex::open(path)?);
    let t1 = Instant::now();
    mapped.warm();
    let t2 = Instant::now();
    if let Some(sink) = telemetry {
        let id = sink.next_id();
        sink.record_range(Stage::IndexMap, id, t0, t1);
        sink.record_range(Stage::IndexWarm, id, t1, t2);
    }
    let backend = CpuBackend::from_mapped(Arc::clone(&mapped), params);
    Ok((backend, mapped))
}

/// The generated accelerator (cycle-level simulator) behind the serving
/// interface. Owns the index — the "database loaded in HBM" — plus the build
/// plan, mirroring a deployed bitstream.
#[derive(Debug)]
pub struct AcceleratorBackend {
    index: IvfPqIndex,
    plan: AcceleratorPlan,
}

impl AcceleratorBackend {
    /// Binds an owned index to an accelerator plan, validating that the plan
    /// instantiates against the index (the serving-time "bitstream load").
    ///
    /// # Panics
    /// Panics if the plan cannot be instantiated against the index; use the
    /// co-design workflow to produce matching pairs.
    pub fn new(index: IvfPqIndex, plan: AcceleratorPlan) -> Self {
        instantiate(&plan, &index).expect("accelerator plan must instantiate against its index");
        Self { index, plan }
    }

    /// The bound plan.
    pub fn plan(&self) -> &AcceleratorPlan {
        &self.plan
    }

    /// The bound index.
    pub fn index(&self) -> &IvfPqIndex {
        &self.index
    }
}

impl SearchBackend for AcceleratorBackend {
    fn name(&self) -> String {
        format!("fanns-accelerator({})", self.plan.name)
    }

    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn k(&self) -> usize {
        self.plan.params.k
    }

    fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
        // Instantiation is a cheap validation pass (no data is copied); the
        // accelerator borrows the index owned by this backend.
        let accelerator =
            instantiate(&self.plan, &self.index).expect("plan was validated at construction");
        let freq = self.plan.design.freq_mhz;
        queries
            .iter()
            .map(|q| {
                let outcome = accelerator.simulate_query_fast(q);
                BackendResponse {
                    simulated_us: Some(outcome.latency_us(freq)),
                    results: outcome.results,
                }
            })
            .collect()
    }
}

/// Exact brute-force search behind the serving interface (correctness
/// reference; also the `nprobe = nlist = 1` extreme of the design space).
#[derive(Debug)]
pub struct FlatBackend {
    index: FlatIndex,
    k: usize,
}

impl FlatBackend {
    /// Wraps a flat index.
    pub fn new(index: FlatIndex, k: usize) -> Self {
        Self { index, k }
    }
}

impl SearchBackend for FlatBackend {
    fn name(&self) -> String {
        format!("flat-exact(n={})", self.index.ntotal())
    }

    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn k(&self) -> usize {
        self.k
    }

    fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
        queries
            .iter()
            .map(|q| BackendResponse {
                results: self.index.search(q, self.k),
                simulated_us: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::synth::SyntheticSpec;
    use fanns_hwsim::config::AcceleratorConfig;
    use fanns_ivf::index::IvfPqTrainConfig;
    use fanns_ivf::search::search;

    fn small_index() -> (fanns_dataset::types::QuerySet, IvfPqIndex) {
        let (db, queries) = SyntheticSpec::sift_small(91).generate();
        let index = IvfPqIndex::build(
            &db,
            &IvfPqTrainConfig::new(16)
                .with_m(16)
                .with_ksub(64)
                .with_train_sample(1_000),
        );
        (queries, index)
    }

    #[test]
    fn cpu_backend_matches_direct_search() {
        let (queries, index) = small_index();
        let params = IvfPqParams::new(16, 4, 10).with_m(16);
        let direct: Vec<_> = (0..4)
            .map(|i| search(&index, queries.get(i), 10, 4))
            .collect();
        let backend = CpuBackend::new(index, params);
        let qs: Vec<&[f32]> = (0..4).map(|i| queries.get(i)).collect();
        let responses = backend.search_batch(&qs);
        assert_eq!(responses.len(), 4);
        for (resp, expect) in responses.iter().zip(&direct) {
            assert_eq!(&resp.results, expect);
            assert!(resp.simulated_us.is_none());
        }
    }

    #[test]
    fn centroid_cache_preserves_results_and_counts_hits() {
        let (queries, index) = small_index();
        let params = IvfPqParams::new(16, 4, 10).with_m(16);
        let plain = CpuBackend::new(index.clone(), params);
        let cached = CpuBackend::new(index, params).with_centroid_cache(32);
        assert!(cached.name().contains("lut-cache"));

        let qs: Vec<&[f32]> = (0..6).map(|i| queries.get(i % 3)).collect();
        let expected = plain.search_batch(&qs);
        // Run the replayed batch twice: cold fills, warm hits.
        for _ in 0..2 {
            let got = cached.search_batch(&qs);
            assert_eq!(got, expected, "cached path must be bit-identical");
        }
        let stats = cached.centroid_cache().expect("cache enabled").stats();
        // 12 lookups over 3 distinct queries: 3 misses, 9 hits.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 9);
        assert_eq!(stats.insertions, 3);
        let hot = cached.centroid_cache().unwrap().hot_cells(4);
        assert!(!hot.is_empty(), "probed cells must be tracked");
        assert!(hot[0].1 >= hot.last().unwrap().1, "hottest first");
    }

    #[test]
    fn accelerator_backend_reports_simulated_latency() {
        let (queries, index) = small_index();
        let params = IvfPqParams::new(16, 4, 10).with_m(16);
        let plan = AcceleratorPlan::new(
            "serve_test",
            params.index_label(),
            params,
            AcceleratorConfig::balanced(),
            None,
        );
        let backend = AcceleratorBackend::new(index, plan);
        let qs: Vec<&[f32]> = (0..3).map(|i| queries.get(i)).collect();
        let responses = backend.search_batch(&qs);
        assert_eq!(responses.len(), 3);
        for resp in &responses {
            assert!(!resp.results.is_empty());
            let sim = resp.simulated_us.expect("simulated latency present");
            assert!(sim.is_finite() && sim > 0.0);
        }
        assert_eq!(backend.k(), 10);
        assert!(backend.name().contains("fanns-accelerator"));
    }

    #[test]
    fn flat_backend_is_exact() {
        let (db, queries) = SyntheticSpec::sift_small(92).generate();
        let gt = fanns_dataset::ground_truth::ground_truth(&db, &queries, 5);
        let backend = FlatBackend::new(FlatIndex::new(db), 5);
        let qs: Vec<&[f32]> = (0..queries.len()).map(|i| queries.get(i)).collect();
        let responses = backend.search_batch(&qs);
        for (i, resp) in responses.iter().enumerate() {
            let ids: Vec<usize> = resp.results.iter().map(|r| r.id as usize).collect();
            assert_eq!(ids, gt.neighbors(i)[..5].to_vec(), "query {i}");
        }
    }
}
