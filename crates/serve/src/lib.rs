//! `fanns-serve` — the online query-serving subsystem.
//!
//! Everything else in this workspace is offline: build an index, pick a
//! design, simulate a batch. This crate is the layer the paper's deployment
//! story actually needs — the component that accepts a *stream* of
//! concurrent queries and schedules them onto a backend:
//!
//! * [`backend`] — the [`SearchBackend`] trait plus executors: the CPU
//!   IVF-PQ searcher, the generated accelerator (cycle-level simulator, which
//!   also reports modelled device latency), and an exact flat reference,
//! * [`cache`] — the sharded LRU query-result cache the engine consults
//!   before admission (exact / quantized / cell-signature fingerprints,
//!   TTL + generation invalidation) and the centroid/LUT cache inside the
//!   CPU backend that memoizes coarse-quantizer work for repeated queries,
//! * [`engine`] — the multi-threaded [`QueryEngine`]: bounded admission
//!   queue, dynamic batcher (max-batch-size / max-wait), deadline-aware
//!   early shedding and earliest-deadline-first pickup, worker pool,
//!   end-to-end backpressure, graceful shutdown,
//! * [`dispatch`] — the sharded scatter/gather dispatcher with the paper's
//!   LogGP network cost charged per distributed query,
//! * [`replica`] — the [`ReplicaSet`]: R replicas per shard behind
//!   least-loaded routing, health tracking (consecutive-error and
//!   latency-outlier detection), and quarantine-then-probe failover,
//! * [`fault`] — the deterministic [`FaultInjector`] backend wrapper
//!   (delay / error / hang / every-nth modes) that exercises the failover
//!   machinery in tests and benchmarks,
//! * [`metrics`] — log-bucketed latency histograms, SLO attainment, goodput,
//!   per-replica utilization and the aggregated [`ServeReport`],
//! * [`telemetry`] — end-to-end query tracing: sampled per-stage span events
//!   in lock-free bounded rings, a [`TelemetryRegistry`] aggregating them
//!   into per-stage histograms, gauges and JSONL time-series snapshots,
//!   Chrome trace export, and a critical-path analyzer (see
//!   `docs/OBSERVABILITY.md`),
//! * [`loadgen`] — open-loop Poisson and closed-loop load generators,
//! * [`mutable`] — the live-mutation serving path: [`MutableBackend`] over a
//!   segmented mutable index (insert/delete/compact under traffic, cache
//!   generation invalidation on every mutation and compaction swap) plus the
//!   background [`Compactor`] (see `docs/MUTATION.md`).
//!
//! The deployment stack composes bottom-up: an executor backend, optionally
//! wrapped in a [`FaultInjector`], R of them behind a [`ReplicaSet`], one
//! set per shard under a [`ShardedBackend`], and the whole thing behind the
//! [`QueryEngine`] — every layer implements [`SearchBackend`], so each is
//! optional.
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//! use fanns_serve::{BatchPolicy, EngineConfig, OpenLoopConfig, QueryEngine};
//! use fanns_serve::backend::CpuBackend;
//! use fanns_serve::loadgen::run_open_loop;
//! use fanns_dataset::synth::SyntheticSpec;
//! use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
//! use fanns_ivf::params::IvfPqParams;
//!
//! let (db, queries) = SyntheticSpec::sift_small(1).generate();
//! let index = IvfPqIndex::build(&db, &IvfPqTrainConfig::new(16).with_m(16));
//! let backend = CpuBackend::new(index, IvfPqParams::new(16, 4, 10).with_m(16));
//! let engine = QueryEngine::start(
//!     Arc::new(backend),
//!     EngineConfig::new(BatchPolicy::new(32, Duration::from_millis(1))),
//! );
//! run_open_loop(&engine, &queries, OpenLoopConfig::new(1_000.0, 500));
//! println!("{}", engine.shutdown().summary());
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod dispatch;
pub mod engine;
pub mod fault;
pub mod loadgen;
pub mod metrics;
pub mod mutable;
pub mod replica;
pub mod telemetry;

pub use backend::{
    open_mapped_backend, AcceleratorBackend, BackendError, BackendResponse, CpuBackend,
    FlatBackend, SearchBackend,
};
pub use cache::{
    CacheStats, CentroidLutCache, FingerprintMode, LutEntry, QueryResultCache, ResultCacheConfig,
};
pub use dispatch::{
    shard_cpu_backends, shard_flat_backends, shard_replicated_cpu_backends, ShardedBackend,
};
pub use engine::{
    AdmissionPolicy, BatchPolicy, EngineConfig, PickupOrder, QueryEngine, QueryReply, QueryStatus,
    SubmitError, Ticket,
};
pub use fault::{FaultHandle, FaultInjector, FaultMode};
pub use loadgen::{
    run_closed_loop, run_open_loop, LoadgenOutcome, OpenLoopConfig, QueryPopularity, ZipfSampler,
};
pub use metrics::{CacheReport, LatencyHistogram, ServeReport};
pub use mutable::{Compactor, MutableBackend};
pub use replica::{ReplicaHealthConfig, ReplicaSet, ReplicaSetStats, ReplicaSnapshot};
pub use telemetry::{
    analyze_critical_paths, chrome_trace_json, CriticalPathReport, EventRing, Gauge, QueryPath,
    SpanEvent, Stage, StageReport, StageRow, TelemetryConfig, TelemetryRegistry, TelemetrySink,
    TelemetrySnapshot,
};
