//! End-to-end query tracing and telemetry for the serving stack.
//!
//! The paper's core argument (Fig. 3) rests on *stage-level* time
//! attribution: knowing exactly where a query spends its time is what turns
//! "the system is slow" into "ADC scan is 62 % of the pipeline, so that is
//! the stage worth accelerating". This module brings the same discipline to
//! the live serving path. Every sampled query emits one [`SpanEvent`] per
//! lifecycle stage — submit, queue wait, batch formation, dispatch wait,
//! backend service, reply delivery (or shed/failure), plus backend
//! sub-stages (coarse quantization, LUT build, ADC scan) and infrastructure
//! spans (shard service, replica service, failover) — into a lock-free
//! bounded ring buffer.
//!
//! Design constraints, in priority order:
//!
//! 1. **The hot path never blocks and never allocates.** [`EventRing`] is a
//!    bounded Vyukov-style MPMC queue of `Copy` events; when it is full,
//!    [`EventRing::push`] drops the event and increments a drop counter
//!    instead of waiting.
//! 2. **Sampling is cheap and deterministic.** A query is traced iff
//!    `id % sample_every == 0`, so traced runs are reproducible and the
//!    overhead scales down linearly with the sample rate.
//! 3. **Stage spans telescope.** For a completed query the per-stage
//!    durations partition the wall-clock interval exactly (shared boundary
//!    timestamps), so the per-stage breakdown reconciles with measured wall
//!    latency instead of merely correlating with it.
//!
//! A [`TelemetryRegistry`] owns the rings, drains them into per-stage
//! [`LatencyHistogram`]s and a bounded retained-event buffer, tracks live
//! gauges (queue depth, in-flight queries, batch size, cache occupancy,
//! healthy replicas), and renders three artifacts: a [`StageReport`]
//! (attached to `ServeReport.stages`), periodic [`TelemetrySnapshot`]s for
//! JSON-Lines time series, and a Chrome trace-event export via
//! [`chrome_trace_json`]. [`analyze_critical_paths`] turns retained events
//! into a per-query critical path and an aggregate attribution table — the
//! serving-path analogue of the paper's Figure 3.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::Serialize;

use crate::metrics::LatencyHistogram;

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// A lifecycle stage a query (or batch) passes through.
///
/// The *path* stages ([`Stage::is_query_path`]) partition a sampled query's
/// wall-clock time: their durations share boundary timestamps, so summing
/// them reproduces the [`Stage::Wall`] span exactly. The backend sub-stages
/// and infrastructure stages overlap the `Service` interval and are reported
/// as shares of their own group instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Admission-side work: dimension check, cache lookup, enqueue attempt.
    Submit,
    /// A query answered entirely from the result cache (whole wall time).
    CacheHit,
    /// Waiting in the bounded admission queue for the batcher to pick it up.
    QueueWait,
    /// Held by the batcher while the batch window fills.
    BatchForm,
    /// Dispatched batch waiting for a worker to start service.
    DispatchWait,
    /// Backend service interval of the query's batch.
    Service,
    /// Reply delivery: metrics recording, cache fill, channel send.
    Reply,
    /// Terminal stage of a deadline-shed query (shed decision to reply).
    Shed,
    /// Terminal stage of a query whose batch failed (error to reply).
    Failed,
    /// End-to-end wall interval, submit to reply delivery (reference span).
    Wall,
    /// Backend sub-stage: OPQ rotation + coarse quantization + cell select.
    Coarse,
    /// Backend sub-stage: ADC lookup-table construction.
    BuildLut,
    /// Backend sub-stage: PQ distance scan + top-k selection.
    Scan,
    /// One shard worker serving its scattered slice of a batch.
    ShardService,
    /// The chosen replica serving a batch inside a replica set.
    ReplicaService,
    /// Instant event: a batch was rerouted to another replica.
    Failover,
    /// Infrastructure span: `mmap`-opening and validating an on-disk index
    /// (the cold-start cost [`crate::backend::open_mapped_backend`] pays).
    IndexMap,
    /// Infrastructure span: eager scan-slab rebuild of a mapped index
    /// ([`fanns_ivf::storage::MappedIndex::warm`]).
    IndexWarm,
    /// Backend sub-stage of the mutable path: one query fanned out across
    /// the segment set (sealed ADC scans + exact write-segment scan +
    /// tombstone-filtered merge) by a
    /// [`MutableBackend`](crate::mutable::MutableBackend).
    SegmentScan,
    /// Infrastructure span: one segment compaction — seal + merge + swap
    /// ([`fanns_ivf::segmented::SegmentedIndex::compact`]).
    Compact,
}

impl Stage {
    /// Number of distinct stages (histogram array size).
    pub const COUNT: usize = 20;

    /// All stages in display order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Submit,
        Stage::CacheHit,
        Stage::QueueWait,
        Stage::BatchForm,
        Stage::DispatchWait,
        Stage::Service,
        Stage::Reply,
        Stage::Shed,
        Stage::Failed,
        Stage::Wall,
        Stage::Coarse,
        Stage::BuildLut,
        Stage::Scan,
        Stage::ShardService,
        Stage::ReplicaService,
        Stage::Failover,
        Stage::IndexMap,
        Stage::IndexWarm,
        Stage::SegmentScan,
        Stage::Compact,
    ];

    /// Dense index for per-stage arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in every export format.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Submit => "submit",
            Stage::CacheHit => "cache_hit",
            Stage::QueueWait => "queue_wait",
            Stage::BatchForm => "batch_form",
            Stage::DispatchWait => "dispatch_wait",
            Stage::Service => "service",
            Stage::Reply => "reply",
            Stage::Shed => "shed",
            Stage::Failed => "failed",
            Stage::Wall => "wall",
            Stage::Coarse => "coarse",
            Stage::BuildLut => "build_lut",
            Stage::Scan => "scan",
            Stage::ShardService => "shard_service",
            Stage::ReplicaService => "replica_service",
            Stage::Failover => "failover",
            Stage::IndexMap => "index_map",
            Stage::IndexWarm => "index_warm",
            Stage::SegmentScan => "segment_scan",
            Stage::Compact => "compact",
        }
    }

    /// Stage from its dense index (inverse of [`Stage::idx`]).
    pub fn from_idx(idx: usize) -> Option<Stage> {
        Stage::ALL.get(idx).copied()
    }

    /// True for stages whose durations partition a query's wall time.
    ///
    /// Completed query: submit + queue_wait + batch_form + dispatch_wait +
    /// service + reply. Shed query: submit + queue_wait + shed. Cache hit:
    /// cache_hit. Failed query: the completed chain with `failed` as the
    /// terminal stage. Summing path-stage totals therefore reproduces the
    /// summed `wall` spans.
    pub fn is_query_path(self) -> bool {
        matches!(
            self,
            Stage::Submit
                | Stage::CacheHit
                | Stage::QueueWait
                | Stage::BatchForm
                | Stage::DispatchWait
                | Stage::Service
                | Stage::Reply
                | Stage::Shed
                | Stage::Failed
        )
    }

    /// True for the backend-compute sub-stages (the Fig. 3 pipeline split).
    pub fn is_backend_substage(self) -> bool {
        matches!(self, Stage::Coarse | Stage::BuildLut | Stage::Scan)
    }

    /// True for stages whose `query` field is a real engine query id, so
    /// their events can be grouped into per-query paths. Backend sub-stage
    /// and infrastructure events carry private ordinals instead.
    pub fn is_query_scoped(self) -> bool {
        self.is_query_path() || self == Stage::Wall
    }
}

// ---------------------------------------------------------------------------
// Events and the lock-free ring
// ---------------------------------------------------------------------------

/// One traced span: a stage of one query (or batch), with microsecond
/// timestamps relative to the registry epoch. `Copy` and fixed-size so the
/// hot path moves it into the ring without allocating.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// Engine query id for query-scoped stages; a recorder-local ordinal for
    /// backend sub-stages; the shard/replica index for infrastructure spans.
    pub query: u64,
    /// Which lifecycle stage this span covers.
    pub stage: Stage,
    /// Recording lane: a small dense id for the emitting thread.
    pub lane: u32,
    /// Span start, microseconds since the registry epoch.
    pub start_us: f64,
    /// Span duration in microseconds (0 for instant events).
    pub dur_us: f64,
}

struct RingSlot {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<SpanEvent>>,
}

/// A bounded lock-free MPMC ring buffer of [`SpanEvent`]s (Vyukov queue).
///
/// Producers never block: when the ring is full, [`EventRing::push`] drops
/// the event and increments [`EventRing::dropped`]. Capacity is rounded up
/// to a power of two.
pub struct EventRing {
    slots: Box<[RingSlot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    pushed: AtomicU64,
    dropped: AtomicU64,
}

// SAFETY: slots are only written by the producer that won the CAS on
// `enqueue_pos` and only read by the consumer that won the CAS on
// `dequeue_pos`; the per-slot `seq` (acquire/release) sequences the
// hand-off of the cell contents between them.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.pushed())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventRing {
    /// Creates a ring holding at least `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| RingSlot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pushes an event; returns `false` (and counts a drop) if the ring is
    /// full. Never blocks, never allocates.
    pub fn push(&self, event: SpanEvent) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive write
                        // access to this slot until the release store below.
                        unsafe { (*slot.value.get()).write(event) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        self.pushed.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                // The slot still holds an unconsumed event: ring is full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest event, or `None` if the ring is empty.
    pub fn pop(&self) -> Option<SpanEvent> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive read
                        // access; the producer's release store made the
                        // write visible.
                        let event = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(event);
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Total events successfully pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Total events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Lanes and the batch-traced flag
// ---------------------------------------------------------------------------

static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LANE: Cell<u32> = const { Cell::new(u32::MAX) };
    /// Tri-state: 0 = unset, 1 = current batch untraced, 2 = traced.
    static BATCH_TRACED: Cell<u8> = const { Cell::new(0) };
}

fn current_lane() -> u32 {
    LANE.with(|lane| {
        let mut id = lane.get();
        if id == u32::MAX {
            id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            lane.set(id);
        }
        id
    })
}

/// Marks the current thread as serving a traced (or explicitly untraced)
/// batch. Set by the engine worker around the backend call so nested
/// recorders (backend sub-stages, shards, replicas) trace exactly the
/// batches the engine sampled.
pub fn set_batch_traced(traced: bool) {
    BATCH_TRACED.with(|flag| flag.set(if traced { 2 } else { 1 }));
}

/// Clears the per-thread batch-traced flag (back to "unset").
pub fn clear_batch_traced() {
    BATCH_TRACED.with(|flag| flag.set(0));
}

/// Returns the engine's tracing decision for the batch currently being
/// served on this thread, or `None` when no engine worker set one (e.g. a
/// backend driven directly); standalone recorders then self-sample.
pub fn batch_traced() -> Option<bool> {
    BATCH_TRACED.with(|flag| match flag.get() {
        1 => Some(false),
        2 => Some(true),
        _ => None,
    })
}

// ---------------------------------------------------------------------------
// Configuration, sink, gauges
// ---------------------------------------------------------------------------

/// Tuning knobs for the telemetry layer.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Trace one query in `sample_every` (by id); minimum 1 (= every query).
    pub sample_every: u64,
    /// Capacity of each recorder's event ring (rounded up to a power of 2).
    pub ring_capacity: usize,
    /// Cap on retained raw events for trace export / critical-path analysis;
    /// beyond this the registry keeps aggregating histograms but stops
    /// retaining raw events (counted, not silently).
    pub max_retained_events: usize,
}

impl TelemetryConfig {
    /// Default: sample 1-in-8 queries, 65 536-slot rings, retain ≤ 1 M events.
    pub fn new() -> Self {
        TelemetryConfig {
            sample_every: 8,
            ring_capacity: 1 << 16,
            max_retained_events: 1 << 20,
        }
    }

    /// Sets the sampling period (clamped to ≥ 1).
    pub fn with_sample_every(mut self, sample_every: u64) -> Self {
        self.sample_every = sample_every.max(1);
        self
    }

    /// Sets the per-recorder ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Sets the retained raw-event cap.
    pub fn with_max_retained_events(mut self, cap: usize) -> Self {
        self.max_retained_events = cap;
        self
    }

    /// Whether the query with this id is sampled.
    #[inline]
    pub fn samples(&self, query_id: u64) -> bool {
        query_id.is_multiple_of(self.sample_every)
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::new()
    }
}

/// A cloneable handle for recording span events into a registry-owned ring.
///
/// Cheap to clone (three `Arc`s); safe to share across threads — the ring is
/// MPMC and recording is wait-free aside from a bounded CAS loop.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    ring: Arc<EventRing>,
    epoch: Instant,
    sample_every: u64,
    probe: Arc<AtomicU64>,
    ids: Arc<AtomicU64>,
}

impl TelemetrySink {
    /// Microseconds elapsed since the registry epoch.
    #[inline]
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Records a span covering `start..end` (saturating if out of order).
    #[inline]
    pub fn record_range(&self, stage: Stage, query: u64, start: Instant, end: Instant) {
        let start_us = start.saturating_duration_since(self.epoch).as_secs_f64() * 1e6;
        let dur_us = end.saturating_duration_since(start).as_secs_f64() * 1e6;
        self.ring.push(SpanEvent {
            query,
            stage,
            lane: current_lane(),
            start_us,
            dur_us,
        });
    }

    /// Records a zero-duration instant event at "now".
    #[inline]
    pub fn record_instant(&self, stage: Stage, query: u64) {
        let now = Instant::now();
        self.record_range(stage, query, now, now);
    }

    /// Self-sampling decision for standalone recorders (backends or shard
    /// workers driven without an engine): true once per `sample_every` calls.
    #[inline]
    pub fn self_sample(&self) -> bool {
        self.probe
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample_every)
    }

    /// A fresh ordinal for correlating the sub-stage events of one query.
    #[inline]
    pub fn next_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed)
    }
}

/// Live operational gauges tracked by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Requests waiting in the bounded admission queue.
    QueueDepth,
    /// Queries dispatched to workers and not yet resolved.
    InFlight,
    /// Size of the most recently dispatched batch.
    BatchSize,
    /// Entries currently resident in the query-result cache.
    CacheEntries,
    /// Healthy (non-quarantined) replicas across replica sets.
    HealthyReplicas,
}

impl Gauge {
    const COUNT: usize = 5;

    fn idx(self) -> usize {
        self as usize
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Aggregate {
    hists: Vec<LatencyHistogram>,
    totals: Vec<f64>,
    events: Vec<SpanEvent>,
    retained_truncated: u64,
    drained: u64,
}

/// Aggregates event rings into per-stage histograms, retains raw events for
/// trace export, and tracks operational gauges.
pub struct TelemetryRegistry {
    config: TelemetryConfig,
    epoch: Instant,
    rings: Mutex<Vec<Arc<EventRing>>>,
    agg: Mutex<Aggregate>,
    gauges: [AtomicI64; Gauge::COUNT],
}

impl TelemetryRegistry {
    /// Creates a registry with the given configuration.
    pub fn new(config: TelemetryConfig) -> Self {
        TelemetryRegistry {
            config,
            epoch: Instant::now(),
            rings: Mutex::new(Vec::new()),
            agg: Mutex::new(Aggregate {
                hists: (0..Stage::COUNT).map(|_| LatencyHistogram::new()).collect(),
                totals: vec![0.0; Stage::COUNT],
                events: Vec::new(),
                retained_truncated: 0,
                drained: 0,
            }),
            gauges: [const { AtomicI64::new(0) }; Gauge::COUNT],
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// The instant all event timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Registers a new event ring and returns a sink recording into it.
    pub fn sink(&self) -> TelemetrySink {
        let ring = Arc::new(EventRing::with_capacity(self.config.ring_capacity));
        self.rings.lock().unwrap().push(Arc::clone(&ring));
        TelemetrySink {
            ring,
            epoch: self.epoch,
            sample_every: self.config.sample_every,
            probe: Arc::new(AtomicU64::new(0)),
            ids: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Drains every ring into the per-stage aggregate; returns the number of
    /// events consumed. Call periodically (or before reporting) — producers
    /// drop events once a ring fills.
    pub fn drain(&self) -> usize {
        let rings: Vec<Arc<EventRing>> = self.rings.lock().unwrap().clone();
        let mut agg = self.agg.lock().unwrap();
        let mut consumed = 0usize;
        for ring in &rings {
            while let Some(event) = ring.pop() {
                let idx = event.stage.idx();
                agg.hists[idx].record(event.dur_us);
                agg.totals[idx] += event.dur_us;
                if agg.events.len() < self.config.max_retained_events {
                    agg.events.push(event);
                } else {
                    agg.retained_truncated += 1;
                }
                consumed += 1;
            }
        }
        agg.drained += consumed as u64;
        consumed
    }

    /// Total events dropped at the rings because they were full.
    pub fn dropped(&self) -> u64 {
        self.rings.lock().unwrap().iter().map(|r| r.dropped()).sum()
    }

    /// Retained raw events (drains first). Clones the buffer so analysis can
    /// run while recording continues.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.drain();
        self.agg.lock().unwrap().events.clone()
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&self, gauge: Gauge, value: i64) {
        self.gauges[gauge.idx()].store(value, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta to a gauge.
    pub fn add_gauge(&self, gauge: Gauge, delta: i64) {
        self.gauges[gauge.idx()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Current gauge value.
    pub fn gauge(&self, gauge: Gauge) -> i64 {
        self.gauges[gauge.idx()].load(Ordering::Relaxed)
    }

    /// Drains and returns a cumulative time-series snapshot (one JSONL row).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.drain();
        let agg = self.agg.lock().unwrap();
        let stages = Stage::ALL
            .iter()
            .filter(|s| !agg.hists[s.idx()].is_empty())
            .map(|s| {
                let h = &agg.hists[s.idx()];
                StageSnapshot {
                    stage: s.name().to_string(),
                    count: h.count(),
                    mean_us: h.mean(),
                    p50_us: h.percentile(50.0),
                    p99_us: h.percentile(99.0),
                }
            })
            .collect();
        TelemetrySnapshot {
            t_s: self.epoch.elapsed().as_secs_f64(),
            events: agg.drained,
            dropped: self.rings.lock().unwrap().iter().map(|r| r.dropped()).sum(),
            queue_depth: self.gauge(Gauge::QueueDepth),
            in_flight: self.gauge(Gauge::InFlight),
            batch_size: self.gauge(Gauge::BatchSize),
            cache_entries: self.gauge(Gauge::CacheEntries),
            healthy_replicas: self.gauge(Gauge::HealthyReplicas),
            stages,
        }
    }

    /// Drains and builds the per-stage breakdown attached to
    /// `ServeReport.stages`.
    pub fn stage_report(&self) -> StageReport {
        self.drain();
        let dropped = self.dropped();
        let agg = self.agg.lock().unwrap();

        let wall = &agg.hists[Stage::Wall.idx()];
        let wall_total = agg.totals[Stage::Wall.idx()];
        let path_total: f64 = Stage::ALL
            .iter()
            .filter(|s| s.is_query_path())
            .map(|s| agg.totals[s.idx()])
            .sum();
        let backend_total: f64 = Stage::ALL
            .iter()
            .filter(|s| s.is_backend_substage())
            .map(|s| agg.totals[s.idx()])
            .sum();

        let rows = Stage::ALL
            .iter()
            .filter(|s| !agg.hists[s.idx()].is_empty())
            .map(|s| {
                let h = &agg.hists[s.idx()];
                let total = agg.totals[s.idx()];
                let share = if s.is_query_path() && wall_total > 0.0 {
                    total / wall_total
                } else if s.is_backend_substage() && backend_total > 0.0 {
                    total / backend_total
                } else {
                    0.0
                };
                StageRow {
                    stage: s.name().to_string(),
                    count: h.count(),
                    mean_us: h.mean(),
                    p50_us: h.percentile(50.0),
                    p99_us: h.percentile(99.0),
                    total_us: total,
                    share,
                }
            })
            .collect();

        StageReport {
            sample_every: self.config.sample_every,
            events: agg.drained,
            dropped,
            retained_truncated: agg.retained_truncated,
            sampled_queries: wall.count(),
            wall_mean_us: wall.mean(),
            path_sum_mean_us: if wall.count() > 0 {
                path_total / wall.count() as f64
            } else {
                0.0
            },
            reconciliation: if wall_total > 0.0 {
                path_total / wall_total
            } else {
                0.0
            },
            rows,
        }
    }
}

impl Default for TelemetryRegistry {
    fn default() -> Self {
        TelemetryRegistry::new(TelemetryConfig::new())
    }
}

// ---------------------------------------------------------------------------
// Snapshots and reports
// ---------------------------------------------------------------------------

/// Per-stage cumulative statistics inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Serialize)]
pub struct StageSnapshot {
    /// Stage name ([`Stage::name`]).
    pub stage: String,
    /// Spans recorded so far.
    pub count: u64,
    /// Mean span duration in microseconds.
    pub mean_us: f64,
    /// Median span duration in microseconds.
    pub p50_us: f64,
    /// 99th-percentile span duration in microseconds.
    pub p99_us: f64,
}

/// One cumulative time-series sample, serialized as a JSON Lines row.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySnapshot {
    /// Seconds since the registry epoch.
    pub t_s: f64,
    /// Events drained into the aggregate so far.
    pub events: u64,
    /// Events dropped at full rings so far.
    pub dropped: u64,
    /// Current admission-queue depth.
    pub queue_depth: i64,
    /// Queries dispatched and not yet resolved.
    pub in_flight: i64,
    /// Most recent dispatched batch size.
    pub batch_size: i64,
    /// Result-cache resident entries.
    pub cache_entries: i64,
    /// Healthy replicas (0 when no replica sets report).
    pub healthy_replicas: i64,
    /// Cumulative per-stage statistics (non-empty stages only).
    pub stages: Vec<StageSnapshot>,
}

/// One row of the per-stage breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct StageRow {
    /// Stage name ([`Stage::name`]).
    pub stage: String,
    /// Spans recorded for this stage.
    pub count: u64,
    /// Mean duration in microseconds.
    pub mean_us: f64,
    /// Median duration in microseconds.
    pub p50_us: f64,
    /// 99th-percentile duration in microseconds.
    pub p99_us: f64,
    /// Summed duration in microseconds.
    pub total_us: f64,
    /// Share of summed wall time (path stages), share of backend compute
    /// (coarse/build_lut/scan), or 0 for infrastructure stages.
    pub share: f64,
}

/// The per-stage breakdown attached to `ServeReport.stages`.
#[derive(Debug, Clone, Serialize)]
pub struct StageReport {
    /// Sampling period the engine traced with (1 = every query).
    pub sample_every: u64,
    /// Events aggregated.
    pub events: u64,
    /// Events dropped at full rings (never blocks the hot path).
    pub dropped: u64,
    /// Events aggregated into histograms but not retained raw (cap hit).
    pub retained_truncated: u64,
    /// Sampled queries that reached a terminal stage (wall spans).
    pub sampled_queries: u64,
    /// Mean wall time of sampled queries, microseconds.
    pub wall_mean_us: f64,
    /// Mean summed path-stage time per sampled query, microseconds.
    pub path_sum_mean_us: f64,
    /// Σ path-stage time / Σ wall time — ≈ 1.0 when the breakdown fully
    /// accounts for wall latency.
    pub reconciliation: f64,
    /// Per-stage rows in lifecycle order (non-empty stages only).
    pub rows: Vec<StageRow>,
}

impl StageReport {
    /// Renders the one-screen stage-attribution table (the live-path Fig. 3
    /// analogue) printed by `serve_demo` and `serve_trace`.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stage attribution ({} sampled queries, 1-in-{} sampling, {} events, {} dropped)\n",
            self.sampled_queries, self.sample_every, self.events, self.dropped
        ));
        out.push_str(&format!(
            "  {:<14} {:>9} {:>11} {:>11} {:>11} {:>8}\n",
            "stage", "count", "mean_us", "p50_us", "p99_us", "share"
        ));
        let mut backend_header = false;
        let mut infra_header = false;
        for row in &self.rows {
            let stage = Stage::ALL
                .iter()
                .copied()
                .find(|s| s.name() == row.stage)
                .unwrap_or(Stage::Wall);
            if stage.is_backend_substage() && !backend_header {
                out.push_str("  -- backend pipeline (share of backend compute) --\n");
                backend_header = true;
            }
            if !stage.is_query_scoped() && !stage.is_backend_substage() && !infra_header {
                out.push_str("  -- infrastructure spans --\n");
                infra_header = true;
            }
            let share = if stage == Stage::Wall || (!stage.is_query_path() && row.share == 0.0) {
                "-".to_string()
            } else {
                format!("{:.1}%", row.share * 100.0)
            };
            out.push_str(&format!(
                "  {:<14} {:>9} {:>11.1} {:>11.1} {:>11.1} {:>8}\n",
                row.stage, row.count, row.mean_us, row.p50_us, row.p99_us, share
            ));
        }
        out.push_str(&format!(
            "  path-sum mean {:.1} us vs wall mean {:.1} us (reconciliation {:.3})",
            self.path_sum_mean_us, self.wall_mean_us, self.reconciliation
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// Critical-path analysis
// ---------------------------------------------------------------------------

/// One query's reconstructed lifecycle path.
#[derive(Debug, Clone)]
pub struct QueryPath {
    /// Engine query id.
    pub query: u64,
    /// Measured wall time in microseconds.
    pub wall_us: f64,
    /// Sum of path-stage durations in microseconds.
    pub path_us: f64,
    /// Path-stage durations in lifecycle order.
    pub spans: Vec<(Stage, f64)>,
    /// The stage that consumed the most time (the critical stage).
    pub dominant: Stage,
}

/// Aggregate output of [`analyze_critical_paths`].
#[derive(Debug, Clone)]
pub struct CriticalPathReport {
    /// Per-query paths, sorted by descending wall time.
    pub paths: Vec<QueryPath>,
    /// `(stage, total_us, share_of_total_wall)` in lifecycle order.
    pub attribution: Vec<(Stage, f64, f64)>,
    /// How many queries each stage dominated, sorted descending.
    pub dominant_counts: Vec<(Stage, u64)>,
}

impl CriticalPathReport {
    /// Renders the aggregate attribution plus dominant-stage counts.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path over {} sampled queries\n",
            self.paths.len()
        ));
        out.push_str(&format!(
            "  {:<14} {:>14} {:>8} {:>16}\n",
            "stage", "total_us", "share", "dominates_queries"
        ));
        for (stage, total, share) in &self.attribution {
            let dominated = self
                .dominant_counts
                .iter()
                .find(|(s, _)| s == stage)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            out.push_str(&format!(
                "  {:<14} {:>14.1} {:>7.1}% {:>16}\n",
                stage.name(),
                total,
                share * 100.0,
                dominated
            ));
        }
        if let Some(slowest) = self.paths.first() {
            out.push_str(&format!(
                "  slowest query #{}: wall {:.1} us, dominated by {}",
                slowest.query,
                slowest.wall_us,
                slowest.dominant.name()
            ));
        }
        out
    }
}

/// Groups query-scoped events by query id and computes each query's
/// critical path plus the aggregate stage attribution. Backend sub-stage
/// and infrastructure events (whose ids are private ordinals) are ignored.
pub fn analyze_critical_paths(events: &[SpanEvent]) -> CriticalPathReport {
    use std::collections::HashMap;

    let mut per_query: HashMap<u64, (f64, Vec<(Stage, f64)>)> = HashMap::new();
    for event in events {
        if !event.stage.is_query_scoped() {
            continue;
        }
        let entry = per_query.entry(event.query).or_insert((0.0, Vec::new()));
        if event.stage == Stage::Wall {
            entry.0 = event.dur_us;
        } else {
            entry.1.push((event.stage, event.dur_us));
        }
    }

    let stage_order = |s: Stage| s.idx();
    let mut paths: Vec<QueryPath> = per_query
        .into_iter()
        .filter(|(_, (wall, spans))| *wall > 0.0 && !spans.is_empty())
        .map(|(query, (wall_us, mut spans))| {
            spans.sort_by_key(|(s, _)| stage_order(*s));
            let path_us = spans.iter().map(|(_, d)| d).sum();
            let dominant = spans
                .iter()
                .cloned()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(s, _)| s)
                .unwrap_or(Stage::Wall);
            QueryPath {
                query,
                wall_us,
                path_us,
                spans,
                dominant,
            }
        })
        .collect();
    paths.sort_by(|a, b| b.wall_us.total_cmp(&a.wall_us));

    let total_wall: f64 = paths.iter().map(|p| p.wall_us).sum();
    let mut totals = [0.0f64; Stage::COUNT];
    let mut dominated = [0u64; Stage::COUNT];
    for path in &paths {
        for (stage, dur) in &path.spans {
            totals[stage.idx()] += dur;
        }
        dominated[path.dominant.idx()] += 1;
    }

    let attribution = Stage::ALL
        .iter()
        .copied()
        .filter(|s| s.is_query_path() && totals[s.idx()] > 0.0)
        .map(|s| {
            let total = totals[s.idx()];
            let share = if total_wall > 0.0 {
                total / total_wall
            } else {
                0.0
            };
            (s, total, share)
        })
        .collect();

    let mut dominant_counts: Vec<(Stage, u64)> = Stage::ALL
        .iter()
        .copied()
        .filter(|s| dominated[s.idx()] > 0)
        .map(|s| (s, dominated[s.idx()]))
        .collect();
    dominant_counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

    CriticalPathReport {
        paths,
        attribution,
        dominant_counts,
    }
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Serializes events as Chrome trace-event JSON (the "JSON Object Format"
/// with a `traceEvents` array of `ph: "X"` complete events). Open the file
/// in `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are in
/// microseconds since the registry epoch; each recording thread maps to a
/// `tid`.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"serve\",\"ph\":\"{}\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"query\":{}}}}}",
            event.stage.name(),
            if event.dur_us == 0.0 && event.stage == Stage::Failover { "i" } else { "X" },
            event.start_us,
            event.dur_us,
            event.lane,
            event.query
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;
    use std::time::Duration;

    fn event(stage: Stage, query: u64, start_us: f64, dur_us: f64) -> SpanEvent {
        SpanEvent {
            query,
            stage,
            lane: 0,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn ring_roundtrips_in_fifo_order() {
        let ring = EventRing::with_capacity(8);
        for i in 0..5 {
            assert!(ring.push(event(Stage::Service, i, i as f64, 1.0)));
        }
        for i in 0..5 {
            assert_eq!(ring.pop().unwrap().query, i);
        }
        assert!(ring.pop().is_none());
    }

    #[test]
    fn full_ring_drops_and_counts_instead_of_blocking() {
        let ring = EventRing::with_capacity(4);
        for i in 0..4 {
            assert!(ring.push(event(Stage::Service, i, 0.0, 1.0)));
        }
        // The ring is full: pushes must return immediately with `false`
        // (drop-counted), never block the producer.
        let start = Instant::now();
        for _ in 0..100 {
            assert!(!ring.push(event(Stage::Service, 99, 0.0, 1.0)));
        }
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "full-ring pushes must not block"
        );
        assert_eq!(ring.dropped(), 100);
        assert_eq!(ring.pushed(), 4);
        // Earlier events are preserved, not overwritten.
        assert_eq!(ring.pop().unwrap().query, 0);
        // Space freed by the pop is reusable.
        assert!(ring.push(event(Stage::Service, 7, 0.0, 1.0)));
    }

    #[test]
    fn ring_capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(5).capacity(), 8);
        assert_eq!(EventRing::with_capacity(0).capacity(), 2);
        assert_eq!(EventRing::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn concurrent_producers_never_block_and_all_events_account() {
        let ring = Arc::new(EventRing::with_capacity(1 << 10));
        let stop = Arc::new(AtomicBool::new(false));
        let mut producers = Vec::new();
        for t in 0..4 {
            let ring = Arc::clone(&ring);
            producers.push(thread::spawn(move || {
                for i in 0..5_000u64 {
                    ring.push(event(Stage::Service, t * 1_000_000 + i, 0.0, 1.0));
                }
            }));
        }
        let consumer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut popped = 0u64;
                while !stop.load(Ordering::Relaxed) || ring.pop().is_some() {
                    if ring.pop().is_some() {
                        popped += 1;
                    }
                }
                popped
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let popped = consumer.join().unwrap();
        // Whatever was not dropped was eventually popped.
        let mut rest = 0u64;
        while ring.pop().is_some() {
            rest += 1;
        }
        assert_eq!(ring.pushed(), popped + rest);
        assert_eq!(ring.pushed() + ring.dropped(), 20_000);
    }

    #[test]
    fn registry_aggregates_and_reconciles_telescoping_spans() {
        let registry = TelemetryRegistry::new(TelemetryConfig::new().with_sample_every(1));
        let sink = registry.sink();
        let epoch = registry.epoch();
        // Two synthetic queries with telescoping path spans.
        for q in 0..2u64 {
            let t0 = epoch + Duration::from_micros(10 * q);
            let t1 = t0 + Duration::from_micros(5);
            let t2 = t1 + Duration::from_micros(20);
            let t3 = t2 + Duration::from_micros(100);
            sink.record_range(Stage::Submit, q, t0, t1);
            sink.record_range(Stage::QueueWait, q, t1, t2);
            sink.record_range(Stage::Service, q, t2, t3);
            sink.record_range(Stage::Wall, q, t0, t3);
        }
        let report = registry.stage_report();
        assert_eq!(report.sampled_queries, 2);
        assert!(
            (report.reconciliation - 1.0).abs() < 1e-9,
            "telescoping spans must reconcile exactly, got {}",
            report.reconciliation
        );
        assert_eq!(report.events, 8);
        let service = report.rows.iter().find(|r| r.stage == "service").unwrap();
        assert_eq!(service.count, 2);
        assert!((service.mean_us - 100.0).abs() < 1e-6);
        // Share of wall: 100 / 125.
        assert!((service.share - 0.8).abs() < 1e-9);
        assert!(!report.table().is_empty());
    }

    #[test]
    fn gauges_track_set_and_add() {
        let registry = TelemetryRegistry::default();
        registry.set_gauge(Gauge::QueueDepth, 5);
        registry.add_gauge(Gauge::QueueDepth, -2);
        registry.add_gauge(Gauge::InFlight, 7);
        assert_eq!(registry.gauge(Gauge::QueueDepth), 3);
        assert_eq!(registry.gauge(Gauge::InFlight), 7);
        let snap = registry.snapshot();
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.in_flight, 7);
    }

    #[test]
    fn critical_path_attributes_dominant_stage() {
        let events = vec![
            event(Stage::Submit, 1, 0.0, 1.0),
            event(Stage::QueueWait, 1, 1.0, 500.0),
            event(Stage::Service, 1, 501.0, 100.0),
            event(Stage::Wall, 1, 0.0, 601.0),
            event(Stage::Submit, 2, 0.0, 1.0),
            event(Stage::QueueWait, 2, 1.0, 10.0),
            event(Stage::Service, 2, 11.0, 800.0),
            event(Stage::Wall, 2, 0.0, 811.0),
            // Sub-stage events with colliding ordinals must be ignored.
            event(Stage::Scan, 1, 0.0, 1e9),
        ];
        let report = analyze_critical_paths(&events);
        assert_eq!(report.paths.len(), 2);
        // Sorted by wall descending: query 2 first.
        assert_eq!(report.paths[0].query, 2);
        assert_eq!(report.paths[0].dominant, Stage::Service);
        assert_eq!(report.paths[1].dominant, Stage::QueueWait);
        let service = report
            .attribution
            .iter()
            .find(|(s, _, _)| *s == Stage::Service)
            .unwrap();
        assert!((service.1 - 900.0).abs() < 1e-9);
        assert!(!report.summary_table().is_empty());
    }

    #[test]
    fn chrome_trace_has_required_fields() {
        let events = vec![
            event(Stage::Service, 3, 12.5, 40.25),
            event(Stage::Failover, 0, 50.0, 0.0),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"service\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":12.500"));
        assert!(json.contains("\"dur\":40.250"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn batch_traced_flag_is_tri_state_and_thread_local() {
        assert_eq!(batch_traced(), None);
        set_batch_traced(true);
        assert_eq!(batch_traced(), Some(true));
        set_batch_traced(false);
        assert_eq!(batch_traced(), Some(false));
        clear_batch_traced();
        assert_eq!(batch_traced(), None);
        // Another thread starts unset.
        std::thread::spawn(|| assert_eq!(batch_traced(), None))
            .join()
            .unwrap();
    }

    #[test]
    fn sampling_is_deterministic_by_id() {
        let config = TelemetryConfig::new().with_sample_every(4);
        assert!(config.samples(0));
        assert!(!config.samples(1));
        assert!(config.samples(4));
        let every = TelemetryConfig::new().with_sample_every(0);
        assert_eq!(every.sample_every, 1);
        assert!(every.samples(17));
    }
}
