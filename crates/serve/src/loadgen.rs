//! Load generation against a running [`QueryEngine`].
//!
//! Two standard methodologies:
//!
//! * **Open loop** ([`run_open_loop`]): queries arrive as a Poisson process
//!   at a target rate, independent of completions — the honest way to
//!   measure tail latency under load (no coordinated omission). Arrivals
//!   that find the admission queue full are *shed* and counted, not blocked.
//! * **Closed loop** ([`run_closed_loop`]): a fixed number of in-flight
//!   requests, each replaced on completion — the classic
//!   "N concurrent clients" throughput measurement.
//!
//! Arrivals pick their query vector through a [`QueryPopularity`] policy:
//! the default round-robin replay, or a [`ZipfSampler`]-driven skewed draw
//! from the finite query pool — the workload shape that makes result-cache
//! hit rates measurable against the skew parameter θ.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use fanns_dataset::types::QuerySet;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::engine::{QueryEngine, QueryStatus, SubmitError, Ticket};

/// How each arrival picks its query vector from the finite query pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryPopularity {
    /// Cycle through the pool in order (`arrival i` → `query i mod pool`):
    /// every query is equally popular and repeats are maximally spaced.
    RoundRobin,
    /// Draw each arrival independently from a Zipf(θ) popularity law over
    /// the pool: rank r is picked with probability ∝ 1/(r+1)^θ. θ = 0 is
    /// uniform; real search traffic is typically θ ≈ 0.6–1.1. The mapping
    /// from popularity rank to query index is a seeded shuffle, so "the hot
    /// query" is not always pool entry 0.
    Zipf {
        /// The skew exponent θ (≥ 0).
        theta: f64,
    },
}

/// Open-loop generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopConfig {
    /// Target offered rate (queries per second).
    pub target_qps: f64,
    /// Number of arrivals to generate.
    pub num_queries: usize,
    /// RNG seed for the Poisson arrival process (and the popularity draw).
    pub seed: u64,
    /// How arrivals pick their query from the pool.
    pub popularity: QueryPopularity,
}

impl OpenLoopConfig {
    /// A generator at `target_qps` for `num_queries` arrivals, replaying the
    /// pool round-robin.
    pub fn new(target_qps: f64, num_queries: usize) -> Self {
        Self {
            target_qps,
            num_queries,
            seed: 0x10AD_0001,
            popularity: QueryPopularity::RoundRobin,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style switch to Zipf(θ)-skewed query popularity.
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.popularity = QueryPopularity::Zipf { theta };
        self
    }
}

/// A seeded Zipf(θ) sampler over a finite pool of `n` items.
///
/// Rank `r ∈ [0, n)` is drawn with probability `(r+1)^-θ / H` (`H` the
/// generalised harmonic normaliser) by inverse-CDF binary search, then
/// mapped through a seeded permutation so popularity ranks are spread over
/// the pool rather than concentrated at its front.
///
/// ```
/// use fanns_serve::loadgen::ZipfSampler;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let zipf = ZipfSampler::new(100, 1.0, 42);
/// let mut rng = ChaCha8Rng::seed_from_u64(7);
/// let idx = zipf.sample(&mut rng);
/// assert!(idx < 100);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative probability of ranks `0..=i` at entry `i`.
    cdf: Vec<f64>,
    /// Popularity rank → query-pool index.
    perm: Vec<usize>,
}

impl ZipfSampler {
    /// A sampler over `pool` items with skew `theta` (θ = 0 is uniform).
    ///
    /// # Panics
    /// Panics if `pool` is 0 or `theta` is negative/non-finite.
    pub fn new(pool: usize, theta: f64, seed: u64) -> Self {
        assert!(pool > 0, "Zipf pool must be non-empty");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(pool);
        let mut acc = 0.0f64;
        for rank in 0..pool {
            acc += ((rank + 1) as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Seeded Fisher–Yates: decouple popularity rank from pool position.
        let mut perm: Vec<usize> = (0..pool).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x21F5_AB1E);
        for i in (1..pool).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        Self { cdf, perm }
    }

    /// Pool size.
    pub fn pool(&self) -> usize {
        self.perm.len()
    }

    /// Draws one pool index (consumes one uniform draw from `rng`).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        self.perm[rank]
    }
}

/// What the load generator observed (engine-side latency lives in the
/// engine's `ServeReport`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenOutcome {
    /// Arrivals offered to the engine.
    pub offered: usize,
    /// Arrivals accepted into the queue.
    pub accepted: usize,
    /// Arrivals shed at submission due to backpressure (`QueueFull`).
    pub shed: usize,
    /// Completed replies (with results) observed by the generator.
    pub completed: usize,
    /// Accepted queries the engine shed for missing their deadline
    /// ([`QueryStatus::Shed`] tickets).
    pub deadline_shed: usize,
    /// Accepted queries that failed on the backend
    /// ([`QueryStatus::Failed`] tickets).
    pub failed: usize,
    /// Offered rate over the generation window (QPS).
    pub offered_qps: f64,
    /// Completion rate over the full window including drain (QPS).
    pub achieved_qps: f64,
    /// Wall-clock duration of the whole run including drain (s).
    pub wall_seconds: f64,
}

/// Tallies a drained ticket into (completed, deadline_shed, failed) counters.
fn tally(ticket: Ticket, completed: &mut usize, deadline_shed: &mut usize, failed: &mut usize) {
    match ticket.wait().map(|reply| reply.status) {
        Some(QueryStatus::Completed) => *completed += 1,
        Some(QueryStatus::Shed) => *deadline_shed += 1,
        Some(QueryStatus::Failed) => *failed += 1,
        // Engine dropped the request mid-shutdown; counted nowhere.
        None => {}
    }
}

/// Drives a Poisson arrival process against the engine. Each arrival picks
/// its query per `config.popularity` (round-robin replay or a Zipf(θ) draw
/// from the pool), is submitted non-blocking, and sheds on backpressure.
/// Returns once every accepted query has completed.
pub fn run_open_loop(
    engine: &QueryEngine,
    queries: &QuerySet,
    config: OpenLoopConfig,
) -> LoadgenOutcome {
    assert!(config.target_qps > 0.0, "target QPS must be positive");
    assert!(!queries.is_empty(), "need at least one query vector");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let zipf = match config.popularity {
        QueryPopularity::RoundRobin => None,
        QueryPopularity::Zipf { theta } => {
            Some(ZipfSampler::new(queries.len(), theta, config.seed))
        }
    };
    let mut tickets: Vec<Ticket> = Vec::with_capacity(config.num_queries);
    let mut shed = 0usize;

    let start = Instant::now();
    let mut next_arrival = start;
    for i in 0..config.num_queries {
        // Exponential inter-arrival times → Poisson arrivals.
        let u: f64 = rng.gen();
        let gap_s = -(1.0 - u).ln() / config.target_qps;
        next_arrival += Duration::from_secs_f64(gap_s);
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        let pool_index = match &zipf {
            Some(z) => z.sample(&mut rng),
            None => i % queries.len(),
        };
        let query = queries.get(pool_index).to_vec();
        match engine.try_submit(query) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::QueueFull) => shed += 1,
            Err(other) => panic!("unexpected submit failure: {other}"),
        }
    }
    let offered_window = start.elapsed().as_secs_f64();

    // Drain: wait for every accepted query (each resolves exactly once, as
    // completed, deadline-shed, or failed).
    let accepted = tickets.len();
    let mut completed = 0usize;
    let mut deadline_shed = 0usize;
    let mut failed = 0usize;
    for t in tickets {
        tally(t, &mut completed, &mut deadline_shed, &mut failed);
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    LoadgenOutcome {
        offered: config.num_queries,
        accepted,
        shed,
        completed,
        deadline_shed,
        failed,
        offered_qps: config.num_queries as f64 / offered_window.max(1e-12),
        achieved_qps: completed as f64 / wall_seconds.max(1e-12),
        wall_seconds,
    }
}

/// Drives a closed loop with `concurrency` requests in flight; each
/// completion immediately triggers the next submission, `num_queries` total.
pub fn run_closed_loop(
    engine: &QueryEngine,
    queries: &QuerySet,
    concurrency: usize,
    num_queries: usize,
) -> LoadgenOutcome {
    assert!(concurrency >= 1, "need at least one in-flight request");
    assert!(!queries.is_empty(), "need at least one query vector");
    let start = Instant::now();
    let mut in_flight: VecDeque<Ticket> = VecDeque::with_capacity(concurrency);
    let mut completed = 0usize;
    let mut deadline_shed = 0usize;
    let mut failed = 0usize;

    for i in 0..num_queries {
        if in_flight.len() == concurrency {
            if let Some(t) = in_flight.pop_front() {
                tally(t, &mut completed, &mut deadline_shed, &mut failed);
            }
        }
        let query = queries.get(i % queries.len()).to_vec();
        // Blocking submit: the closed loop *wants* to wait for queue space.
        match engine.submit(query) {
            Ok(t) => in_flight.push_back(t),
            Err(other) => panic!("unexpected submit failure: {other}"),
        }
    }
    for t in in_flight {
        tally(t, &mut completed, &mut deadline_shed, &mut failed);
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    LoadgenOutcome {
        offered: num_queries,
        accepted: num_queries,
        shed: 0,
        completed,
        deadline_shed,
        failed,
        offered_qps: num_queries as f64 / wall_seconds.max(1e-12),
        achieved_qps: completed as f64 / wall_seconds.max(1e-12),
        wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendResponse, SearchBackend};
    use crate::engine::{BatchPolicy, EngineConfig};
    use fanns_dataset::types::VectorDataset;
    use fanns_ivf::search::SearchResult;
    use std::sync::Arc;

    struct EchoBackend;

    impl SearchBackend for EchoBackend {
        fn name(&self) -> String {
            "echo".into()
        }

        fn dim(&self) -> usize {
            2
        }

        fn k(&self) -> usize {
            1
        }

        fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
            queries
                .iter()
                .map(|q| BackendResponse {
                    results: vec![SearchResult {
                        id: 0,
                        distance: q[0],
                    }],
                    simulated_us: None,
                })
                .collect()
        }
    }

    fn tiny_queries() -> QuerySet {
        QuerySet::new(VectorDataset::from_vectors(
            2,
            (0..8).map(|i| [i as f32, 1.0]),
        ))
    }

    #[test]
    fn zipf_sampler_concentrates_mass_as_theta_grows() {
        let draws = 20_000usize;
        let pool = 64usize;
        let top_share = |theta: f64| -> f64 {
            let zipf = ZipfSampler::new(pool, theta, 11);
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            let mut counts = vec![0u64; pool];
            for _ in 0..draws {
                counts[zipf.sample(&mut rng)] += 1;
            }
            *counts.iter().max().unwrap() as f64 / draws as f64
        };
        let uniform = top_share(0.0);
        let mild = top_share(0.8);
        let heavy = top_share(1.4);
        // θ = 0 is uniform: the hottest item holds ~1/64 of the mass.
        assert!(
            uniform < 3.0 / pool as f64,
            "uniform top share too large: {uniform}"
        );
        assert!(
            uniform < mild && mild < heavy,
            "skew must concentrate mass: {uniform} -> {mild} -> {heavy}"
        );
        // Zipf(1.4) over 64 items gives the top item ~37% of the mass.
        assert!(heavy > 0.25, "heavy skew top share too small: {heavy}");
    }

    #[test]
    fn zipf_sampler_is_deterministic_and_in_range() {
        let zipf = ZipfSampler::new(10, 1.0, 5);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        let a = draw(3);
        assert_eq!(a, draw(3), "same seed must reproduce the stream");
        assert!(a.iter().all(|&i| i < 10));
        assert_eq!(zipf.pool(), 10);
    }

    #[test]
    fn open_loop_zipf_repeats_queries() {
        // With heavy skew over a small pool, the arrival stream must contain
        // many repeats (the property result caching exploits).
        let engine = QueryEngine::start(
            Arc::new(EchoBackend),
            EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(200))),
        );
        let outcome = run_open_loop(
            &engine,
            &tiny_queries(),
            OpenLoopConfig::new(50_000.0, 200).with_zipf(1.2),
        );
        assert_eq!(outcome.accepted + outcome.shed, 200);
        assert_eq!(outcome.completed, outcome.accepted);
        engine.shutdown();
    }

    #[test]
    fn open_loop_completes_all_accepted() {
        let engine = QueryEngine::start(
            Arc::new(EchoBackend),
            EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(200))),
        );
        let outcome = run_open_loop(&engine, &tiny_queries(), OpenLoopConfig::new(20_000.0, 200));
        assert_eq!(outcome.offered, 200);
        assert_eq!(outcome.accepted + outcome.shed, 200);
        assert_eq!(outcome.completed, outcome.accepted);
        assert!(outcome.offered_qps > 0.0);
        assert!(outcome.achieved_qps > 0.0);
        let report = engine.shutdown();
        assert_eq!(report.queries as usize, outcome.accepted);
    }

    #[test]
    fn closed_loop_preserves_query_count() {
        let engine = QueryEngine::start(
            Arc::new(EchoBackend),
            EngineConfig::new(BatchPolicy::new(4, Duration::from_micros(100))).with_workers(2),
        );
        let outcome = run_closed_loop(&engine, &tiny_queries(), 8, 300);
        assert_eq!(outcome.completed, 300);
        assert_eq!(outcome.shed, 0);
        let report = engine.shutdown();
        assert_eq!(report.queries, 300);
    }
}
