//! Load generation against a running [`QueryEngine`].
//!
//! Two standard methodologies:
//!
//! * **Open loop** ([`run_open_loop`]): queries arrive as a Poisson process
//!   at a target rate, independent of completions — the honest way to
//!   measure tail latency under load (no coordinated omission). Arrivals
//!   that find the admission queue full are *shed* and counted, not blocked.
//! * **Closed loop** ([`run_closed_loop`]): a fixed number of in-flight
//!   requests, each replaced on completion — the classic
//!   "N concurrent clients" throughput measurement.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use fanns_dataset::types::QuerySet;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::engine::{QueryEngine, QueryStatus, SubmitError, Ticket};

/// Open-loop generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopConfig {
    /// Target offered rate (queries per second).
    pub target_qps: f64,
    /// Number of arrivals to generate.
    pub num_queries: usize,
    /// RNG seed for the Poisson arrival process.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// A generator at `target_qps` for `num_queries` arrivals.
    pub fn new(target_qps: f64, num_queries: usize) -> Self {
        Self {
            target_qps,
            num_queries,
            seed: 0x10AD_0001,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What the load generator observed (engine-side latency lives in the
/// engine's `ServeReport`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenOutcome {
    /// Arrivals offered to the engine.
    pub offered: usize,
    /// Arrivals accepted into the queue.
    pub accepted: usize,
    /// Arrivals shed at submission due to backpressure (`QueueFull`).
    pub shed: usize,
    /// Completed replies (with results) observed by the generator.
    pub completed: usize,
    /// Accepted queries the engine shed for missing their deadline
    /// ([`QueryStatus::Shed`] tickets).
    pub deadline_shed: usize,
    /// Accepted queries that failed on the backend
    /// ([`QueryStatus::Failed`] tickets).
    pub failed: usize,
    /// Offered rate over the generation window (QPS).
    pub offered_qps: f64,
    /// Completion rate over the full window including drain (QPS).
    pub achieved_qps: f64,
    /// Wall-clock duration of the whole run including drain (s).
    pub wall_seconds: f64,
}

/// Tallies a drained ticket into (completed, deadline_shed, failed) counters.
fn tally(ticket: Ticket, completed: &mut usize, deadline_shed: &mut usize, failed: &mut usize) {
    match ticket.wait().map(|reply| reply.status) {
        Some(QueryStatus::Completed) => *completed += 1,
        Some(QueryStatus::Shed) => *deadline_shed += 1,
        Some(QueryStatus::Failed) => *failed += 1,
        // Engine dropped the request mid-shutdown; counted nowhere.
        None => {}
    }
}

/// Drives a Poisson arrival process against the engine. Queries cycle
/// through `queries`; each arrival is submitted non-blocking and sheds on
/// backpressure. Returns once every accepted query has completed.
pub fn run_open_loop(
    engine: &QueryEngine,
    queries: &QuerySet,
    config: OpenLoopConfig,
) -> LoadgenOutcome {
    assert!(config.target_qps > 0.0, "target QPS must be positive");
    assert!(!queries.is_empty(), "need at least one query vector");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut tickets: Vec<Ticket> = Vec::with_capacity(config.num_queries);
    let mut shed = 0usize;

    let start = Instant::now();
    let mut next_arrival = start;
    for i in 0..config.num_queries {
        // Exponential inter-arrival times → Poisson arrivals.
        let u: f64 = rng.gen();
        let gap_s = -(1.0 - u).ln() / config.target_qps;
        next_arrival += Duration::from_secs_f64(gap_s);
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        let query = queries.get(i % queries.len()).to_vec();
        match engine.try_submit(query) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::QueueFull) => shed += 1,
            Err(other) => panic!("unexpected submit failure: {other}"),
        }
    }
    let offered_window = start.elapsed().as_secs_f64();

    // Drain: wait for every accepted query (each resolves exactly once, as
    // completed, deadline-shed, or failed).
    let accepted = tickets.len();
    let mut completed = 0usize;
    let mut deadline_shed = 0usize;
    let mut failed = 0usize;
    for t in tickets {
        tally(t, &mut completed, &mut deadline_shed, &mut failed);
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    LoadgenOutcome {
        offered: config.num_queries,
        accepted,
        shed,
        completed,
        deadline_shed,
        failed,
        offered_qps: config.num_queries as f64 / offered_window.max(1e-12),
        achieved_qps: completed as f64 / wall_seconds.max(1e-12),
        wall_seconds,
    }
}

/// Drives a closed loop with `concurrency` requests in flight; each
/// completion immediately triggers the next submission, `num_queries` total.
pub fn run_closed_loop(
    engine: &QueryEngine,
    queries: &QuerySet,
    concurrency: usize,
    num_queries: usize,
) -> LoadgenOutcome {
    assert!(concurrency >= 1, "need at least one in-flight request");
    assert!(!queries.is_empty(), "need at least one query vector");
    let start = Instant::now();
    let mut in_flight: VecDeque<Ticket> = VecDeque::with_capacity(concurrency);
    let mut completed = 0usize;
    let mut deadline_shed = 0usize;
    let mut failed = 0usize;

    for i in 0..num_queries {
        if in_flight.len() == concurrency {
            if let Some(t) = in_flight.pop_front() {
                tally(t, &mut completed, &mut deadline_shed, &mut failed);
            }
        }
        let query = queries.get(i % queries.len()).to_vec();
        // Blocking submit: the closed loop *wants* to wait for queue space.
        match engine.submit(query) {
            Ok(t) => in_flight.push_back(t),
            Err(other) => panic!("unexpected submit failure: {other}"),
        }
    }
    for t in in_flight {
        tally(t, &mut completed, &mut deadline_shed, &mut failed);
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    LoadgenOutcome {
        offered: num_queries,
        accepted: num_queries,
        shed: 0,
        completed,
        deadline_shed,
        failed,
        offered_qps: num_queries as f64 / wall_seconds.max(1e-12),
        achieved_qps: completed as f64 / wall_seconds.max(1e-12),
        wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendResponse, SearchBackend};
    use crate::engine::{BatchPolicy, EngineConfig};
    use fanns_dataset::types::VectorDataset;
    use fanns_ivf::search::SearchResult;
    use std::sync::Arc;

    struct EchoBackend;

    impl SearchBackend for EchoBackend {
        fn name(&self) -> String {
            "echo".into()
        }

        fn dim(&self) -> usize {
            2
        }

        fn k(&self) -> usize {
            1
        }

        fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
            queries
                .iter()
                .map(|q| BackendResponse {
                    results: vec![SearchResult {
                        id: 0,
                        distance: q[0],
                    }],
                    simulated_us: None,
                })
                .collect()
        }
    }

    fn tiny_queries() -> QuerySet {
        QuerySet::new(VectorDataset::from_vectors(
            2,
            (0..8).map(|i| [i as f32, 1.0]),
        ))
    }

    #[test]
    fn open_loop_completes_all_accepted() {
        let engine = QueryEngine::start(
            Arc::new(EchoBackend),
            EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(200))),
        );
        let outcome = run_open_loop(&engine, &tiny_queries(), OpenLoopConfig::new(20_000.0, 200));
        assert_eq!(outcome.offered, 200);
        assert_eq!(outcome.accepted + outcome.shed, 200);
        assert_eq!(outcome.completed, outcome.accepted);
        assert!(outcome.offered_qps > 0.0);
        assert!(outcome.achieved_qps > 0.0);
        let report = engine.shutdown();
        assert_eq!(report.queries as usize, outcome.accepted);
    }

    #[test]
    fn closed_loop_preserves_query_count() {
        let engine = QueryEngine::start(
            Arc::new(EchoBackend),
            EngineConfig::new(BatchPolicy::new(4, Duration::from_micros(100))).with_workers(2),
        );
        let outcome = run_closed_loop(&engine, &tiny_queries(), 8, 300);
        assert_eq!(outcome.completed, 300);
        assert_eq!(outcome.shed, 0);
        let report = engine.shutdown();
        assert_eq!(report.queries, 300);
    }
}
