//! Serving-side caches: the query-result cache in front of the engine and
//! the centroid/LUT cache inside the CPU IVF-PQ executor.
//!
//! Real vector-search traffic is heavily skewed — repeated and near-duplicate
//! queries dominate — while the paper's cost model assumes every query pays
//! the full IVF-PQ pipeline. Two caches exploit that skew:
//!
//! * [`QueryResultCache`] — a sharded, thread-safe map from a *query
//!   fingerprint* to the finished top-K results. The [`crate::QueryEngine`]
//!   consults it at submission: a hit resolves the ticket as
//!   [`crate::QueryStatus::Completed`] immediately, skipping admission,
//!   batching and the backend entirely (and therefore consuming none of the
//!   query's deadline budget). Eviction is LRU with an optional TTL, and a
//!   generation counter ([`QueryResultCache::invalidate_all`]) drops every
//!   cached entry in O(1) when the underlying index is swapped.
//! * [`CentroidLutCache`] — inside [`crate::backend::CpuBackend`]: memoizes
//!   the coarse-quantizer work (IVFDist + SelCells) and the per-query ADC
//!   lookup table (BuildLUT) for repeated queries, and counts per-cell probe
//!   frequencies so the hottest cells are observable. In this reproduction
//!   the LUT is cell-independent (no residual encoding — see
//!   `IvfPqIndex::train`), so "per-cell LUTs for hot cells" degenerates to
//!   one LUT per distinct query whose hot probe cells keep it resident in
//!   the LRU; the [`CentroidLutCache::hot_cells`] histogram reports which
//!   cells the skewed workload actually concentrates on.
//!
//! # Fingerprints
//!
//! A cache key must decide when two `&[f32]` queries are "the same". Three
//! policies ([`FingerprintMode`]):
//!
//! * [`FingerprintMode::Exact`] — bit-exact equality. Safe by construction:
//!   cache-on results are identical to cache-off results for any replayed
//!   trace (the integration tests prove this).
//! * [`FingerprintMode::Quantized`] — coordinates are snapped to a grid
//!   before hashing, so near-duplicate queries (e.g. re-embedded text with
//!   float jitter) collapse onto one entry. Approximate: the hit returns the
//!   first-seen duplicate's results.
//! * [`FingerprintMode::CellSignature`] — the query's `probes` closest
//!   coarse-quantizer cells form the key, so any two queries that would scan
//!   the same IVF cells share an entry. The coarsest (highest hit-rate,
//!   least exact) policy; the signature is the information the SelCells
//!   stage computes — pass the index's OPQ rotation when it has one, since
//!   the pipeline selects cells from the rotated query.
//!
//! Every fingerprint stores its canonical form alongside the 64-bit hash and
//! compares it on lookup, so hash collisions degrade to misses, never to
//! wrong results.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;

use fanns_ivf::search::{stage_sel_cells, SearchResult};
use fanns_quantize::distance::all_l2;
use fanns_quantize::kmeans::KMeans;
use fanns_quantize::opq::OpqTransform;
use fanns_quantize::pq::DistanceTable;

/// How a query vector is reduced to a cache key (see the module docs for the
/// exactness trade-off of each policy).
#[derive(Clone)]
pub enum FingerprintMode {
    /// Bit-exact: two queries share an entry only if every `f32` is
    /// identical. The only policy that preserves exact cache-off results.
    Exact,
    /// Snap every coordinate to a multiple of `grid` before hashing, so
    /// queries within ~`grid`/2 per coordinate collapse onto one entry.
    Quantized {
        /// Grid pitch in the query's coordinate units (must be positive).
        grid: f32,
    },
    /// Key on the `probes` nearest coarse-quantizer cells (the SelCells
    /// output): queries probing the same cells share an entry.
    CellSignature {
        /// The trained coarse quantizer whose cells define the signature.
        coarse: Arc<KMeans>,
        /// The index's OPQ rotation, when it has one. The search pipeline
        /// selects cells from the *rotated* query, so an OPQ index needs the
        /// same rotation here for the signature to match the cells actually
        /// probed; `None` for indexes trained without OPQ.
        opq: Option<Arc<OpqTransform>>,
        /// Signature length — how many nearest cells form the key.
        probes: usize,
    },
}

impl std::fmt::Debug for FingerprintMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FingerprintMode::Exact => write!(f, "Exact"),
            FingerprintMode::Quantized { grid } => write!(f, "Quantized {{ grid: {grid} }}"),
            FingerprintMode::CellSignature { probes, .. } => {
                write!(f, "CellSignature {{ probes: {probes} }}")
            }
        }
    }
}

impl FingerprintMode {
    /// The canonical form of `query` under this policy. Lookup compares this
    /// form, not just its hash, so collisions cannot alias.
    fn canon(&self, query: &[f32]) -> Vec<u32> {
        match self {
            FingerprintMode::Exact => query.iter().map(|x| x.to_bits()).collect(),
            FingerprintMode::Quantized { grid } => query
                .iter()
                // +0.0 normalises -0.0 so the two zero representations and
                // values rounding to zero share one canonical cell.
                .map(|x| (((x / grid).round() + 0.0) as i32) as u32)
                .collect(),
            FingerprintMode::CellSignature {
                coarse,
                opq,
                probes,
            } => {
                // Mirror the query pipeline: rotate first (when the index
                // uses OPQ), then rank centroids — so the signature is the
                // probe set SelCells would actually compute.
                let rotated = opq.as_ref().map(|t| t.apply(query));
                let v: &[f32] = rotated.as_deref().unwrap_or(query);
                let mut dists = Vec::new();
                all_l2(v, coarse.centroids(), coarse.dim(), &mut dists);
                stage_sel_cells(&dists, (*probes).max(1))
                    .into_iter()
                    .map(|c| c as u32)
                    .collect()
            }
        }
    }
}

/// Hashes a canonical fingerprint to the 64-bit shard/map key.
fn hash_canon(canon: &[u32]) -> u64 {
    let mut h = DefaultHasher::new();
    canon.hash(&mut h);
    h.finish()
}

/// A prepared cache key: the hash, the canonical form it must match, and the
/// cache generation it was computed under (inserts from before an
/// [`QueryResultCache::invalidate_all`] are discarded, closing the race
/// between an in-flight query and an index swap).
#[derive(Debug, Clone)]
pub struct CacheKey {
    hash: u64,
    canon: Vec<u32>,
    generation: u64,
}

// ---------------------------------------------------------------------------
// The sharded LRU core shared by both caches.
// ---------------------------------------------------------------------------

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// One resident entry: the key it answers for, its value, and its position
/// in the shard's recency list.
#[derive(Debug)]
struct Entry<V> {
    key: u64,
    canon: Vec<u32>,
    value: V,
    generation: u64,
    inserted: Instant,
    prev: usize,
    next: usize,
}

/// Why a lookup failed (drives the per-cache counters).
enum MissKind {
    /// Key absent (or a hash collision with a different canonical form).
    Absent,
    /// Present but older than the TTL; the entry was removed.
    Expired,
    /// Present but from a previous generation; the entry was removed.
    Invalidated,
}

/// One lock's worth of LRU state: a hash map into a slot arena threaded as a
/// doubly-linked recency list (head = most recent, tail = eviction victim).
#[derive(Debug)]
struct LruShard<V> {
    map: HashMap<u64, usize>,
    slots: Vec<Option<Entry<V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V> LruShard<V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn entry(&self, slot: usize) -> &Entry<V> {
        self.slots[slot].as_ref().expect("slot is live")
    }

    fn entry_mut(&mut self, slot: usize) -> &mut Entry<V> {
        self.slots[slot].as_mut().expect("slot is live")
    }

    /// Unthreads `slot` from the recency list (it stays in the arena).
    fn detach(&mut self, slot: usize) {
        let (prev, next) = {
            let e = self.entry(slot);
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.entry_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entry_mut(n).prev = prev,
        }
    }

    /// Threads `slot` in as most-recently-used.
    fn push_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let e = self.entry_mut(slot);
            e.prev = NIL;
            e.next = old_head;
        }
        match old_head {
            NIL => self.tail = slot,
            h => self.entry_mut(h).prev = slot,
        }
        self.head = slot;
    }

    /// Removes `slot` entirely, returning its arena cell to the free list.
    fn remove(&mut self, slot: usize) {
        self.detach(slot);
        let entry = self.slots[slot].take().expect("slot is live");
        self.map.remove(&entry.key);
        self.free.push(slot);
    }

    /// Looks `key` up; on a hit the entry is promoted to most-recent and its
    /// value cloned out.
    fn get(
        &mut self,
        key: u64,
        canon: &[u32],
        generation: u64,
        ttl: Option<Duration>,
        now: Instant,
    ) -> Result<V, MissKind>
    where
        V: Clone,
    {
        let Some(&slot) = self.map.get(&key) else {
            return Err(MissKind::Absent);
        };
        if self.entry(slot).canon != canon {
            // 64-bit hash collision: a different query owns the slot. Treat
            // as a miss; the resident entry keeps its place.
            return Err(MissKind::Absent);
        }
        if self.entry(slot).generation != generation {
            self.remove(slot);
            return Err(MissKind::Invalidated);
        }
        if let Some(ttl) = ttl {
            if now.duration_since(self.entry(slot).inserted) >= ttl {
                self.remove(slot);
                return Err(MissKind::Expired);
            }
        }
        self.detach(slot);
        self.push_front(slot);
        Ok(self.entry(slot).value.clone())
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used
    /// resident if the shard is full. Returns the number of evictions (0/1).
    fn insert(
        &mut self,
        key: u64,
        canon: Vec<u32>,
        value: V,
        generation: u64,
        now: Instant,
    ) -> u64 {
        if let Some(&slot) = self.map.get(&key) {
            // Refresh in place (covers both a re-insert of the same query
            // and a hash collision, where the newer query wins the slot).
            let e = self.entry_mut(slot);
            e.canon = canon;
            e.value = value;
            e.generation = generation;
            e.inserted = now;
            self.detach(slot);
            self.push_front(slot);
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full shard must have a tail");
            self.remove(victim);
            evicted = 1;
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[slot] = Some(Entry {
            key,
            canon,
            value,
            generation,
            inserted: now,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, slot);
        self.push_front(slot);
        evicted
    }
}

/// Lock-free monotonic counters shared by both cache types.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
    invalidated: AtomicU64,
}

impl CacheCounters {
    fn count_miss(&self, kind: &MissKind) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        match kind {
            MissKind::Absent => {}
            MissKind::Expired => {
                self.expirations.fetch_add(1, Ordering::Relaxed);
            }
            MissKind::Invalidated => {
                self.invalidated.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A point-in-time snapshot of a cache's counters (serialisable — embedded
/// in bench rows and in [`crate::metrics::ServeReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through (absent, expired or invalidated).
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped because they outlived the TTL.
    pub expirations: u64,
    /// Entries dropped because the cache generation moved past them.
    pub invalidated: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total capacity across shards.
    pub capacity: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, 0 when no lookup has happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// `entries / capacity` — the fill fraction behind the
    /// [`CacheEntries`](crate::telemetry::Gauge::CacheEntries) gauge; 0 for a
    /// zero-capacity (disabled) cache.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.entries as f64 / self.capacity as f64
        }
    }
}

// ---------------------------------------------------------------------------
// The query-result cache (in front of the engine).
// ---------------------------------------------------------------------------

/// Configuration of a [`QueryResultCache`].
#[derive(Debug, Clone)]
pub struct ResultCacheConfig {
    /// Maximum resident entries across all shards.
    pub capacity: usize,
    /// Number of independently locked shards (contention control).
    pub shards: usize,
    /// Entries older than this are treated as misses and dropped; `None`
    /// disables time-based expiry.
    pub ttl: Option<Duration>,
    /// The fingerprint policy deciding when two queries share an entry.
    pub fingerprint: FingerprintMode,
}

impl ResultCacheConfig {
    /// An exact-match cache of `capacity` entries over 8 shards, no TTL.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            shards: 8,
            ttl: None,
            fingerprint: FingerprintMode::Exact,
        }
    }

    /// Builder-style shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Builder-style TTL override.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Builder-style fingerprint-policy override.
    pub fn with_fingerprint(mut self, fingerprint: FingerprintMode) -> Self {
        self.fingerprint = fingerprint;
        self
    }
}

/// The sharded, thread-safe query-result cache (see the module docs).
///
/// ```
/// use fanns_serve::cache::{QueryResultCache, ResultCacheConfig};
/// use fanns_ivf::search::SearchResult;
///
/// let cache = QueryResultCache::new(ResultCacheConfig::new(128));
/// let query = [1.0f32, 2.0];
/// assert!(cache.lookup(&query).is_none());             // cold
/// let key = cache.key(&query);
/// cache.insert(&key, vec![SearchResult { id: 7, distance: 0.5 }]);
/// assert_eq!(cache.lookup(&query).unwrap()[0].id, 7);  // warm
/// cache.invalidate_all();                              // index swapped
/// assert!(cache.lookup(&query).is_none());             // cold again
/// ```
#[derive(Debug)]
pub struct QueryResultCache {
    shards: Vec<Mutex<LruShard<Vec<SearchResult>>>>,
    fingerprint: FingerprintMode,
    ttl: Option<Duration>,
    generation: AtomicU64,
    counters: CacheCounters,
    capacity: usize,
}

impl QueryResultCache {
    /// Builds an empty cache; capacity is split evenly over the shards
    /// (rounded up, so the effective total is at least `config.capacity`).
    pub fn new(config: ResultCacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard = config.capacity.div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            fingerprint: config.fingerprint,
            ttl: config.ttl,
            generation: AtomicU64::new(0),
            counters: CacheCounters::default(),
            capacity: per_shard * shards,
        }
    }

    fn shard_for(&self, hash: u64) -> &Mutex<LruShard<Vec<SearchResult>>> {
        // High bits pick the shard so the map's low-bit bucketing inside a
        // shard stays independent of shard selection.
        let idx = (hash >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Fingerprints a query. The key also captures the current generation,
    /// so an [`QueryResultCache::insert`] computed against a since-swapped
    /// index is discarded instead of poisoning the new generation.
    pub fn key(&self, query: &[f32]) -> CacheKey {
        let canon = self.fingerprint.canon(query);
        CacheKey {
            hash: hash_canon(&canon),
            canon,
            generation: self.generation.load(Ordering::Acquire),
        }
    }

    /// Looks a prepared key up, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Vec<SearchResult>> {
        let generation = self.generation.load(Ordering::Acquire);
        let outcome = {
            let mut shard = self.shard_for(key.hash).lock().expect("cache shard lock");
            shard.get(key.hash, &key.canon, generation, self.ttl, Instant::now())
        };
        match outcome {
            Ok(results) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(results)
            }
            Err(kind) => {
                self.counters.count_miss(&kind);
                None
            }
        }
    }

    /// Convenience: [`QueryResultCache::key`] + [`QueryResultCache::get`].
    pub fn lookup(&self, query: &[f32]) -> Option<Vec<SearchResult>> {
        self.get(&self.key(query))
    }

    /// Caches the results for `key`. A no-op when the cache generation has
    /// moved past the key (the index was swapped while the query was in
    /// flight — its results describe the old index).
    pub fn insert(&self, key: &CacheKey, results: Vec<SearchResult>) {
        if self.generation.load(Ordering::Acquire) != key.generation {
            return;
        }
        let evicted = {
            let mut shard = self.shard_for(key.hash).lock().expect("cache shard lock");
            shard.insert(
                key.hash,
                key.canon.clone(),
                results,
                key.generation,
                Instant::now(),
            )
        };
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drops every cached entry in O(1) by advancing the generation; stale
    /// entries are reclaimed lazily as lookups touch them. Call this
    /// whenever the backend's index is swapped or retrained.
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// The current cache generation. Advances on every
    /// [`QueryResultCache::invalidate_all`]; keys minted before an advance
    /// can neither hit nor insert. Exposed so tests and serving layers can
    /// assert an index swap actually invalidated the cache.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Entries currently resident (stale-generation entries count until a
    /// lookup reclaims them).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            expirations: self.counters.expirations.load(Ordering::Relaxed),
            invalidated: self.counters.invalidated.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }
}

// ---------------------------------------------------------------------------
// The centroid/LUT cache (inside the CPU backend).
// ---------------------------------------------------------------------------

/// What the CPU backend memoizes per distinct query: the selected probe
/// cells and the ADC lookup table (shared via `Arc` so hits — and the
/// insert itself — clone a pointer, not an `m × ksub` table).
pub type LutEntry = Arc<(Vec<usize>, DistanceTable)>;

/// The hot-cell centroid-distance cache inside the CPU IVF-PQ backend (see
/// the module docs): skips OPQ + IVFDist + SelCells + BuildLUT for repeated
/// queries, leaving only the inverted-list scan, and tracks per-cell probe
/// frequency so the workload's hot cells are observable.
#[derive(Debug)]
pub struct CentroidLutCache {
    shards: Vec<Mutex<LruShard<LutEntry>>>,
    counters: CacheCounters,
    probe_counts: Vec<AtomicU64>,
    capacity: usize,
}

impl CentroidLutCache {
    /// A cache of `capacity` (query → probe cells + LUT) entries over an
    /// index with `nlist` cells.
    pub fn new(capacity: usize, nlist: usize) -> Self {
        let shards = 8usize;
        let per_shard = capacity.max(1).div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            counters: CacheCounters::default(),
            probe_counts: (0..nlist).map(|_| AtomicU64::new(0)).collect(),
            capacity: per_shard * shards,
        }
    }

    fn key(query: &[f32]) -> (u64, Vec<u32>) {
        let canon: Vec<u32> = query.iter().map(|x| x.to_bits()).collect();
        (hash_canon(&canon), canon)
    }

    /// The memoized (probe cells, LUT) for a bit-identical query, if cached.
    pub fn get(&self, query: &[f32]) -> Option<LutEntry> {
        let (hash, canon) = Self::key(query);
        let idx = (hash >> 32) as usize % self.shards.len();
        let outcome = {
            let mut shard = self.shards[idx].lock().expect("lut cache shard lock");
            shard.get(hash, &canon, 0, None, Instant::now())
        };
        match outcome {
            Ok(entry) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            Err(kind) => {
                self.counters.count_miss(&kind);
                None
            }
        }
    }

    /// Memoizes the coarse-quantizer + LUT work for `query`. Takes the
    /// shared entry so the caller keeps using the same allocation it just
    /// built (no table copy on the miss path).
    pub fn insert(&self, query: &[f32], entry: LutEntry) {
        let (hash, canon) = Self::key(query);
        let idx = (hash >> 32) as usize % self.shards.len();
        let evicted = {
            let mut shard = self.shards[idx].lock().expect("lut cache shard lock");
            shard.insert(hash, canon, entry, 0, Instant::now())
        };
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Records that a query probed `cells` (hit and miss paths both call
    /// this, so the histogram reflects the full served workload).
    pub fn record_probes(&self, cells: &[usize]) {
        for &c in cells {
            if let Some(count) = self.probe_counts.get(c) {
                count.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The `top` most-probed cells as `(cell, probe_count)`, hottest first
    /// (ties broken by cell id for determinism).
    pub fn hot_cells(&self, top: usize) -> Vec<(usize, u64)> {
        let mut cells: Vec<(usize, u64)> = self
            .probe_counts
            .iter()
            .enumerate()
            .map(|(c, n)| (c, n.load(Ordering::Relaxed)))
            .filter(|&(_, n)| n > 0)
            .collect();
        cells.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        cells.truncate(top);
        cells
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            expirations: 0,
            invalidated: 0,
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("lut cache shard lock").len())
                .sum(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_fill_fraction_and_zero_when_disabled() {
        let stats = CacheStats {
            entries: 25,
            capacity: 100,
            ..CacheStats::default()
        };
        assert!((stats.occupancy() - 0.25).abs() < 1e-12);
        let disabled = CacheStats::default();
        assert_eq!(disabled.occupancy(), 0.0);
    }

    fn hits(cache: &QueryResultCache) -> u64 {
        cache.stats().hits
    }

    fn result(id: u32) -> Vec<SearchResult> {
        vec![SearchResult {
            id,
            distance: id as f32,
        }]
    }

    #[test]
    fn exact_cache_round_trips() {
        let cache = QueryResultCache::new(ResultCacheConfig::new(16));
        let q = [0.5f32, -1.25, 3.0];
        assert!(cache.lookup(&q).is_none());
        let key = cache.key(&q);
        cache.insert(&key, result(9));
        assert_eq!(cache.lookup(&q).unwrap(), result(9));
        // A bit-different query misses under the exact policy.
        assert!(cache.lookup(&[0.5f32, -1.25, 3.0001]).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // One shard so recency order is global and deterministic.
        let cache = QueryResultCache::new(ResultCacheConfig::new(2).with_shards(1));
        let (a, b, c) = ([1.0f32], [2.0f32], [3.0f32]);
        cache.insert(&cache.key(&a), result(1));
        cache.insert(&cache.key(&b), result(2));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.lookup(&a).is_some());
        cache.insert(&cache.key(&c), result(3));
        assert!(cache.lookup(&a).is_some(), "recently used must survive");
        assert!(cache.lookup(&b).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn ttl_expires_entries() {
        let cache =
            QueryResultCache::new(ResultCacheConfig::new(4).with_ttl(Duration::from_millis(20)));
        let q = [7.0f32];
        cache.insert(&cache.key(&q), result(7));
        assert!(cache.lookup(&q).is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(cache.lookup(&q).is_none(), "entry must expire after TTL");
        let stats = cache.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.entries, 0, "expired entry is reclaimed");
    }

    #[test]
    fn invalidate_all_drops_every_entry_and_stale_inserts() {
        let cache = QueryResultCache::new(ResultCacheConfig::new(8));
        let q = [1.0f32, 2.0];
        let pre_swap_key = cache.key(&q);
        cache.insert(&pre_swap_key, result(1));
        assert!(cache.lookup(&q).is_some());

        cache.invalidate_all();
        assert!(cache.lookup(&q).is_none(), "old generation must not serve");
        assert_eq!(cache.stats().invalidated, 1);

        // An insert whose key predates the invalidation is discarded: its
        // results were computed against the swapped-out index.
        cache.insert(&pre_swap_key, result(1));
        assert!(cache.lookup(&q).is_none(), "stale insert must be discarded");

        // A fresh key inserts fine.
        cache.insert(&cache.key(&q), result(2));
        assert_eq!(cache.lookup(&q).unwrap(), result(2));
    }

    #[test]
    fn quantized_fingerprint_matches_near_duplicates() {
        let cache = QueryResultCache::new(
            ResultCacheConfig::new(8).with_fingerprint(FingerprintMode::Quantized { grid: 0.1 }),
        );
        cache.insert(&cache.key(&[1.00f32, 2.00]), result(4));
        // Jitter below the grid pitch lands in the same cell.
        assert_eq!(cache.lookup(&[1.01f32, 1.99]).unwrap(), result(4));
        // A full grid step away misses.
        assert!(cache.lookup(&[1.30f32, 2.00]).is_none());
    }

    #[test]
    fn cell_signature_fingerprint_keys_on_probe_set() {
        use fanns_quantize::kmeans::KMeansConfig;
        // Two well-separated 1-d clusters -> two centroids near 0 and 10.
        let data: Vec<f32> = vec![0.0, 0.1, 0.2, 9.9, 10.0, 10.1];
        let coarse = Arc::new(KMeans::train(&data, 1, &KMeansConfig::new(2)));
        let cache = QueryResultCache::new(ResultCacheConfig::new(8).with_fingerprint(
            FingerprintMode::CellSignature {
                coarse,
                opq: None,
                probes: 1,
            },
        ));
        cache.insert(&cache.key(&[0.05f32]), result(11));
        // Any query whose nearest cell is the "0" cluster shares the entry…
        assert_eq!(cache.lookup(&[0.3f32]).unwrap(), result(11));
        // …while a query probing the other cell misses.
        assert!(cache.lookup(&[9.8f32]).is_none());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(QueryResultCache::new(ResultCacheConfig::new(64)));
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let q = [(i % 32) as f32, t as f32];
                        match cache.lookup(&q) {
                            Some(r) => assert_eq!(r[0].id, i % 32),
                            None => cache.insert(&cache.key(&q), result(i % 32)),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "repeated keys must hit");
        assert!(stats.entries <= stats.capacity);
        assert!(hits(&cache) == stats.hits);
    }

    #[test]
    fn centroid_lut_cache_memoizes_and_tracks_hot_cells() {
        let lut = DistanceTable::from_flat(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
        let cache = CentroidLutCache::new(4, 8);
        let q = [1.0f32, 2.0];
        assert!(cache.get(&q).is_none());
        cache.insert(&q, Arc::new((vec![3, 1], lut)));
        let entry = cache.get(&q).expect("memoized");
        assert_eq!(entry.0, vec![3, 1]);
        cache.record_probes(&entry.0);
        cache.record_probes(&[3]);
        let hot = cache.hot_cells(2);
        assert_eq!(hot, vec![(3, 2), (1, 1)]);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn capacity_is_bounded_under_churn() {
        let cache = QueryResultCache::new(ResultCacheConfig::new(10).with_shards(2));
        for i in 0..1000u32 {
            let q = [i as f32];
            cache.insert(&cache.key(&q), result(i));
        }
        assert!(cache.len() <= cache.capacity());
        let stats = cache.stats();
        assert_eq!(stats.insertions, 1000);
        assert!(stats.evictions >= 1000 - cache.capacity() as u64);
    }
}
