//! Deterministic fault injection for exercising failover paths.
//!
//! [`FaultInjector`] wraps any [`SearchBackend`] and, controlled by a shared
//! [`FaultHandle`], makes it misbehave on demand: add latency, fail every
//! call, emulate a hung replica (sleep, then time out), or fail
//! deterministically every N-th call. The handle can be flipped from another
//! thread mid-run, which is how `examples/serve_failover.rs` kills a replica
//! while traffic is flowing and how the replication tests prove the
//! [`crate::replica::ReplicaSet`] reroutes around a sick backend.
//!
//! Faults are *deterministic*: there is no RNG. `ErrorEveryNth(n)` uses a
//! per-injector call counter, so a test that submits a known number of
//! batches knows exactly which ones fail.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::backend::{BackendError, BackendResponse, SearchBackend};

/// What the injector does to each `search_batch` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Pass every call straight through to the inner backend.
    Healthy,
    /// Add a fixed latency before serving (a slow replica).
    Delay(Duration),
    /// Fail every call immediately (a crashed replica).
    Error,
    /// Sleep for the given duration, then fail (a hung replica whose caller
    /// times out). Bounded so tests terminate.
    Hang(Duration),
    /// Fail deterministically every `n`-th call (an intermittently flaky
    /// replica); `n = 0` behaves like [`FaultMode::Healthy`].
    ErrorEveryNth(u64),
}

#[derive(Debug)]
struct FaultState {
    mode: Mutex<FaultMode>,
    calls: AtomicU64,
    injected: AtomicU64,
}

/// Shared remote control for one [`FaultInjector`]. Cloneable; flip the mode
/// from any thread while the injector is serving.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    state: Arc<FaultState>,
}

impl FaultHandle {
    /// Switches the injector to `mode` (takes effect on the next call).
    pub fn set(&self, mode: FaultMode) {
        *self.state.mode.lock().expect("fault mode lock") = mode;
    }

    /// The currently configured mode.
    pub fn mode(&self) -> FaultMode {
        *self.state.mode.lock().expect("fault mode lock")
    }

    /// Total `search_batch` calls observed by the injector.
    pub fn calls(&self) -> u64 {
        self.state.calls.load(Ordering::Relaxed)
    }

    /// Number of calls that were failed (error or hang) by injection.
    pub fn injected_faults(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }
}

/// A [`SearchBackend`] wrapper that injects faults per [`FaultMode`].
///
/// ```
/// use fanns_serve::backend::{FlatBackend, SearchBackend};
/// use fanns_serve::fault::{FaultInjector, FaultMode};
/// use fanns_dataset::types::VectorDataset;
/// use fanns_ivf::flat::FlatIndex;
///
/// let db = VectorDataset::from_vectors(2, (0..16).map(|i| [i as f32, 0.0]));
/// let inner = FlatBackend::new(FlatIndex::new(db), 3);
/// let (faulty, handle) = FaultInjector::new(Box::new(inner));
/// let q: &[f32] = &[1.0, 0.0];
/// assert!(faulty.try_search_batch(&[q]).is_ok());
/// handle.set(FaultMode::Error);
/// assert!(faulty.try_search_batch(&[q]).is_err());
/// assert_eq!(handle.injected_faults(), 1);
/// ```
pub struct FaultInjector {
    inner: Box<dyn SearchBackend>,
    state: Arc<FaultState>,
}

impl FaultInjector {
    /// Wraps `inner`, starting in [`FaultMode::Healthy`]. Returns the wrapper
    /// and the control handle.
    pub fn new(inner: Box<dyn SearchBackend>) -> (Self, FaultHandle) {
        let state = Arc::new(FaultState {
            mode: Mutex::new(FaultMode::Healthy),
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        });
        let handle = FaultHandle {
            state: Arc::clone(&state),
        };
        (Self { inner, state }, handle)
    }

    /// Wraps `inner` starting in the given mode.
    pub fn with_mode(inner: Box<dyn SearchBackend>, mode: FaultMode) -> (Self, FaultHandle) {
        let (injector, handle) = Self::new(inner);
        handle.set(mode);
        (injector, handle)
    }

    fn inject(&self, kind: &str) -> BackendError {
        self.state.injected.fetch_add(1, Ordering::Relaxed);
        BackendError::new(self.name(), format!("injected fault: {kind}"))
    }
}

impl SearchBackend for FaultInjector {
    fn name(&self) -> String {
        format!("faulty[{}]", self.inner.name())
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    /// Infallible path: panics if the configured mode injects an error.
    /// Callers that exercise faults must go through
    /// [`SearchBackend::try_search_batch`].
    fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
        self.try_search_batch(queries)
            .expect("fault injected on the infallible search path")
    }

    fn try_search_batch(&self, queries: &[&[f32]]) -> Result<Vec<BackendResponse>, BackendError> {
        let call = self.state.calls.fetch_add(1, Ordering::Relaxed);
        let mode = *self.state.mode.lock().expect("fault mode lock");
        match mode {
            FaultMode::Healthy => self.inner.try_search_batch(queries),
            FaultMode::Delay(d) => {
                std::thread::sleep(d);
                self.inner.try_search_batch(queries)
            }
            FaultMode::Error => Err(self.inject("unconditional error")),
            FaultMode::Hang(d) => {
                std::thread::sleep(d);
                Err(self.inject("hang (timed out)"))
            }
            FaultMode::ErrorEveryNth(n) => {
                if n > 0 && (call + 1).is_multiple_of(n) {
                    Err(self.inject("every-nth error"))
                } else {
                    self.inner.try_search_batch(queries)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::types::VectorDataset;
    use fanns_ivf::flat::FlatIndex;

    fn flat() -> Box<dyn SearchBackend> {
        let db = VectorDataset::from_vectors(2, (0..16).map(|i| [i as f32, 0.0]));
        Box::new(crate::backend::FlatBackend::new(FlatIndex::new(db), 3))
    }

    #[test]
    fn healthy_passes_through() {
        let (faulty, handle) = FaultInjector::new(flat());
        let q: &[f32] = &[2.0, 0.0];
        let out = faulty.try_search_batch(&[q]).expect("healthy");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].results[0].id, 2);
        assert_eq!(handle.calls(), 1);
        assert_eq!(handle.injected_faults(), 0);
    }

    #[test]
    fn error_mode_fails_every_call() {
        let (faulty, handle) = FaultInjector::with_mode(flat(), FaultMode::Error);
        let q: &[f32] = &[0.0, 0.0];
        for _ in 0..3 {
            let err = faulty.try_search_batch(&[q]).unwrap_err();
            assert!(err.backend.contains("faulty["));
        }
        assert_eq!(handle.injected_faults(), 3);
    }

    #[test]
    fn every_nth_is_deterministic() {
        let (faulty, handle) = FaultInjector::with_mode(flat(), FaultMode::ErrorEveryNth(3));
        let q: &[f32] = &[0.0, 0.0];
        let outcomes: Vec<bool> = (0..9)
            .map(|_| faulty.try_search_batch(&[q]).is_ok())
            .collect();
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(handle.injected_faults(), 3);
    }

    #[test]
    fn hang_sleeps_then_fails() {
        let (faulty, handle) =
            FaultInjector::with_mode(flat(), FaultMode::Hang(Duration::from_millis(5)));
        let q: &[f32] = &[0.0, 0.0];
        let start = std::time::Instant::now();
        assert!(faulty.try_search_batch(&[q]).is_err());
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(handle.injected_faults(), 1);
        handle.set(FaultMode::Healthy);
        assert!(faulty.try_search_batch(&[q]).is_ok());
    }
}
