//! The multi-threaded [`QueryEngine`]: bounded admission queue → dynamic
//! batcher → worker pool over a [`SearchBackend`].
//!
//! Threading model (std threads and channels only — no async runtime):
//!
//! ```text
//!  clients ──try_send──▶ [submit queue, bounded] ──▶ batcher thread
//!                                                        │ (max_batch_size /
//!                                                        ▼  max_wait policy)
//!                                         [batch queue, bounded]
//!                                          ▲ backpressure when workers lag
//!                 worker 0 ◀───────────────┤
//!                 worker 1 ◀───────────────┘  each: backend.search_batch
//!                     │
//!                     └──▶ per-request reply channel + shared metrics
//! ```
//!
//! Backpressure is end-to-end: when workers fall behind, the bounded batch
//! queue blocks the batcher, the bounded submit queue fills, and
//! [`QueryEngine::try_submit`] starts returning [`SubmitError::QueueFull`] —
//! the signal an upstream load balancer uses to shed load. Shutdown is
//! graceful: queued queries are drained, workers join, and the final
//! [`ServeReport`] accounts for every accepted query.
//!
//! Admission is optionally **deadline-aware**: when an SLO is configured,
//! every query carries an absolute deadline (`submitted + SLO`, or an
//! explicit per-query budget via [`QueryEngine::submit_with_budget`]). With
//! [`AdmissionPolicy::deadline_shedding`] enabled, the batcher sheds queries
//! whose remaining budget is below the backend's modeled service time — an
//! EWMA the workers maintain from observed batches — *before* wasting
//! backend work on them, and the [`PickupOrder::EarliestDeadlineFirst`]
//! policy serves the most urgent queries first. Shed queries are never
//! silently dropped: their tickets resolve with [`QueryStatus::Shed`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fanns_ivf::search::SearchResult;

use crate::backend::SearchBackend;
use crate::cache::{CacheKey, QueryResultCache};
use crate::metrics::{CacheReport, MetricsCollector, ServeReport};
use crate::telemetry::{self, Gauge, Stage, TelemetryRegistry, TelemetrySink};

/// Order in which the batcher picks pending queries into a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PickupOrder {
    /// Arrival order — fair, and optimal when every query has the same
    /// deadline.
    #[default]
    Fifo,
    /// Earliest absolute deadline first: under overload, queries that can
    /// still meet their SLO are served before queries with more slack.
    /// Queries without a deadline sort after all deadlined ones, preserving
    /// arrival order among themselves.
    EarliestDeadlineFirst,
}

/// Dynamic batching policy: dispatch when `max_batch_size` queries are
/// waiting or when the oldest query has waited `max_wait`, whichever first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch handed to the backend.
    pub max_batch_size: usize,
    /// Longest time the oldest queued query may wait for co-batched work.
    pub max_wait: Duration,
    /// How the batcher orders pending queries into batches.
    pub pickup: PickupOrder,
}

impl BatchPolicy {
    /// A FIFO policy with the given size cap and wait bound.
    pub fn new(max_batch_size: usize, max_wait: Duration) -> Self {
        Self {
            max_batch_size: max_batch_size.max(1),
            max_wait,
            pickup: PickupOrder::Fifo,
        }
    }

    /// Builder-style pickup-order override.
    pub fn with_pickup(mut self, pickup: PickupOrder) -> Self {
        self.pickup = pickup;
        self
    }

    /// Latency-leaning default: small batches, short waits.
    pub fn low_latency() -> Self {
        Self::new(8, Duration::from_micros(200))
    }

    /// Throughput-leaning default: large batches, tolerant waits.
    pub fn high_throughput() -> Self {
        Self::new(256, Duration::from_millis(2))
    }
}

/// Deadline-aware admission policy.
///
/// With shedding enabled, the batcher drops (with a resolved
/// [`QueryStatus::Shed`] ticket) any pending query whose deadline has passed
/// or whose remaining budget is below the modeled per-query service time, so
/// backend capacity is spent only on queries that can still meet their SLO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Shed queries that can no longer meet their deadline.
    pub deadline_shedding: bool,
    /// Seed for the modeled per-query service time (µs) before the workers
    /// have observed any batch; 0 means "shed only already-expired queries
    /// until the estimate warms up".
    pub initial_service_estimate_us: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            deadline_shedding: false,
            initial_service_estimate_us: 0.0,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// The dynamic batching policy.
    pub batch: BatchPolicy,
    /// Worker threads executing batches on the backend.
    pub workers: usize,
    /// Capacity of the submit queue (admission control).
    pub queue_depth: usize,
    /// Latency SLO in microseconds; tracked in the report when set, and the
    /// source of each query's absolute deadline.
    pub slo_us: Option<f64>,
    /// Deadline-aware admission policy.
    pub admission: AdmissionPolicy,
}

impl EngineConfig {
    /// A sensible default: one worker per two cores, depth 1024, FIFO
    /// admission with no deadline shedding.
    pub fn new(batch: BatchPolicy) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| (n.get() / 2).max(1))
            .unwrap_or(1);
        Self {
            batch,
            workers,
            queue_depth: 1024,
            slo_us: None,
            admission: AdmissionPolicy::default(),
        }
    }

    /// Builder-style worker count override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style queue depth override.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Builder-style SLO (µs). Queries submitted without an explicit budget
    /// get `submitted + SLO` as their absolute deadline.
    pub fn with_slo_us(mut self, slo_us: f64) -> Self {
        self.slo_us = Some(slo_us);
        self
    }

    /// Builder-style switch for deadline shedding (see [`AdmissionPolicy`]).
    pub fn with_deadline_shedding(mut self) -> Self {
        self.admission.deadline_shedding = true;
        self
    }

    /// Builder-style seed for the modeled per-query service time (µs) used
    /// by deadline shedding before any batch has been observed.
    pub fn with_service_estimate_us(mut self, estimate_us: f64) -> Self {
        self.admission.initial_service_estimate_us = estimate_us.max(0.0);
        self
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full (backpressure) — retry later or shed.
    QueueFull,
    /// The engine is shutting down.
    ShuttingDown,
    /// The query's dimensionality does not match the backend.
    DimensionMismatch {
        /// Dimensionality the backend expects.
        expected: usize,
        /// Dimensionality of the rejected query.
        found: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue is full"),
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
            SubmitError::DimensionMismatch { expected, found } => {
                write!(f, "query dim {found} does not match backend dim {expected}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a query's lifetime ended. Every accepted query resolves its ticket
/// with exactly one of these — nothing is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// The backend answered; `results` holds the top-K hits.
    Completed,
    /// Deadline-aware admission shed the query before execution because it
    /// could no longer meet its deadline; `results` is empty.
    Shed,
    /// The backend failed the whole batch (e.g. every replica down);
    /// `results` is empty.
    Failed,
}

/// A finished query as delivered to its submitter.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// The id assigned at submission.
    pub id: u64,
    /// How the query ended; `results` is only meaningful for
    /// [`QueryStatus::Completed`].
    pub status: QueryStatus,
    /// The top-K hits (empty unless completed).
    pub results: Vec<SearchResult>,
    /// End-to-end wall latency (µs): submit → reply ready.
    pub latency_us: f64,
    /// Time spent queued before the batch formed (µs).
    pub queue_us: f64,
    /// Size of the batch this query was served in (0 when shed).
    pub batch_size: usize,
    /// Simulated device latency (µs) for simulated backends.
    pub simulated_us: Option<f64>,
}

/// A handle to a pending query.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<QueryReply>,
}

impl Ticket {
    /// The query id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the reply arrives. Returns `None` if the engine dropped
    /// the request (it was shut down mid-flight with the queue force-cleared).
    pub fn wait(self) -> Option<QueryReply> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn poll(&self) -> Option<QueryReply> {
        self.rx.try_recv().ok()
    }
}

struct Request {
    id: u64,
    query: Vec<f32>,
    submitted: Instant,
    /// Absolute deadline (from the SLO or an explicit budget), when known.
    deadline: Option<Instant>,
    /// The query's result-cache key, when the engine has a cache and the
    /// lookup missed — the worker fills the cache under this key once the
    /// backend answers.
    cache_key: Option<CacheKey>,
    reply_tx: std::sync::mpsc::Sender<QueryReply>,
    /// Whether telemetry traces this query (`id % sample_every == 0`).
    /// Always `false` when the engine runs without a registry.
    sampled: bool,
    /// Stage boundary stamps, written as the request moves through the
    /// pipeline (only when `sampled`; initialized to `submitted` so spans
    /// degrade to zero duration rather than garbage if a stage is skipped).
    t_enqueued: Instant,
    t_picked: Instant,
    t_dispatched: Instant,
}

impl Request {
    /// Resolves the ticket without backend results (shed / failed paths).
    /// `queue_us` is the time the query spent waiting for a batch; `None`
    /// means it never left the queue (shed), so queueing equals the wall
    /// time.
    fn resolve_empty(self, status: QueryStatus, batch_size: usize, queue_us: Option<f64>) {
        let wall_us = self.submitted.elapsed().as_secs_f64() * 1e6;
        // The client may have dropped its ticket; that is fine.
        let _ = self.reply_tx.send(QueryReply {
            id: self.id,
            status,
            results: Vec::new(),
            latency_us: wall_us,
            queue_us: queue_us.unwrap_or(wall_us),
            batch_size,
            simulated_us: None,
        });
    }
}

/// The workers' modeled per-query service time, read by the batcher's
/// shedding decision.
type ServiceEstimate = crate::metrics::AtomicEwmaUs;

/// The online query-serving engine (see [`QueryEngine::start`] for a
/// runnable submit → wait → shutdown example).
pub struct QueryEngine {
    submit_tx: Option<SyncSender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Mutex<MetricsCollector>>,
    estimate: Arc<ServiceEstimate>,
    cache: Option<Arc<QueryResultCache>>,
    backend_name: String,
    dim: usize,
    k: usize,
    config: EngineConfig,
    next_id: AtomicU64,
    rejected: AtomicU64,
    cache_misses: AtomicU64,
    started: Instant,
    telemetry: Option<Arc<TelemetryRegistry>>,
    /// Sink for spans emitted on the submitter's thread (cache hits).
    front_sink: Option<TelemetrySink>,
}

/// The outcome of admitting one query: either the cache answered it on the
/// spot, or a request is ready for the submit queue.
enum Admission {
    /// Result-cache hit — the ticket's reply is already delivered.
    Resolved(Ticket),
    /// Cache miss (or no cache): enqueue the request.
    Enqueue(Request, Ticket),
}

impl QueryEngine {
    /// Starts the engine: spawns the batcher and `config.workers` workers
    /// over the shared backend.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use std::time::Duration;
    /// use fanns_serve::{BatchPolicy, EngineConfig, QueryEngine, QueryStatus};
    /// use fanns_serve::backend::FlatBackend;
    /// use fanns_dataset::types::VectorDataset;
    /// use fanns_ivf::flat::FlatIndex;
    ///
    /// // A tiny exact backend: 32 2-d vectors, top-3 per query.
    /// let db = VectorDataset::from_vectors(2, (0..32).map(|i| [i as f32, 0.0]));
    /// let backend = FlatBackend::new(FlatIndex::new(db), 3);
    ///
    /// // Start -> submit -> wait -> shutdown.
    /// let engine = QueryEngine::start(
    ///     Arc::new(backend),
    ///     EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(200))),
    /// );
    /// let ticket = engine.submit(vec![5.2, 0.0]).expect("accepted");
    /// let reply = ticket.wait().expect("reply delivered");
    /// assert_eq!(reply.status, QueryStatus::Completed);
    /// assert_eq!(reply.results[0].id, 5);
    /// let report = engine.shutdown();
    /// assert_eq!(report.queries, 1);
    /// ```
    pub fn start(backend: Arc<dyn SearchBackend>, config: EngineConfig) -> Self {
        Self::start_with_cache(backend, config, None)
    }

    /// Starts the engine with a result cache in front of admission: every
    /// submission consults `cache` first, and a hit resolves the ticket as
    /// [`QueryStatus::Completed`] immediately — no queueing, no batching, no
    /// backend work, and none of the query's deadline budget consumed.
    /// Workers fill the cache as backend answers complete. The cache may be
    /// shared across engines (e.g. across an index swap — call
    /// [`QueryResultCache::invalidate_all`] when the backend changes).
    pub fn start_with_cache(
        backend: Arc<dyn SearchBackend>,
        config: EngineConfig,
        cache: Option<Arc<QueryResultCache>>,
    ) -> Self {
        Self::start_with_telemetry(backend, config, cache, None)
    }

    /// Starts the engine with tracing attached: when `telemetry` is `Some`,
    /// every `sample_every`-th query emits per-stage span events into the
    /// registry's lock-free rings, live gauges (queue depth, in-flight,
    /// batch size) are maintained, and [`QueryEngine::report`] /
    /// [`QueryEngine::shutdown`] attach the per-stage breakdown as
    /// `ServeReport.stages`. See `docs/OBSERVABILITY.md` for the event
    /// model and overhead budget.
    pub fn start_with_telemetry(
        backend: Arc<dyn SearchBackend>,
        config: EngineConfig,
        cache: Option<Arc<QueryResultCache>>,
        telemetry: Option<Arc<TelemetryRegistry>>,
    ) -> Self {
        let (submit_tx, submit_rx) = sync_channel::<Request>(config.queue_depth);
        // A shallow batch queue: enough to keep workers busy, small enough
        // that backpressure reaches the admission queue quickly.
        let (batch_tx, batch_rx) = sync_channel::<Vec<Request>>(config.workers * 2);
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let metrics = Arc::new(Mutex::new(MetricsCollector::default()));
        let estimate = Arc::new(ServiceEstimate::new(
            config.admission.initial_service_estimate_us,
        ));

        let batcher = {
            let ctx = BatcherCtx {
                policy: config.batch,
                admission: config.admission,
                queue_depth: config.queue_depth,
                estimate: Arc::clone(&estimate),
                metrics: Arc::clone(&metrics),
                telemetry: telemetry.clone(),
            };
            std::thread::Builder::new()
                .name("fanns-serve-batcher".into())
                .spawn(move || run_batcher(submit_rx, batch_tx, ctx))
                .expect("spawn batcher thread")
        };

        let workers = (0..config.workers)
            .map(|w| {
                let ctx = WorkerCtx {
                    backend: Arc::clone(&backend),
                    batch_rx: Arc::clone(&batch_rx),
                    metrics: Arc::clone(&metrics),
                    estimate: Arc::clone(&estimate),
                    cache: cache.clone(),
                    slo_us: config.slo_us,
                    telemetry: telemetry.clone(),
                    sink: telemetry.as_ref().map(|t| t.sink()),
                };
                std::thread::Builder::new()
                    .name(format!("fanns-serve-worker-{w}"))
                    .spawn(move || run_worker(ctx))
                    .expect("spawn worker thread")
            })
            .collect();

        Self {
            submit_tx: Some(submit_tx),
            batcher: Some(batcher),
            workers,
            metrics,
            estimate,
            cache,
            backend_name: backend.name(),
            dim: backend.dim(),
            k: backend.k(),
            config,
            next_id: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            started: Instant::now(),
            front_sink: telemetry.as_ref().map(|t| t.sink()),
            telemetry,
        }
    }

    /// The backend's query dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Results per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Validates a submission and consults the result cache: a hit resolves
    /// the ticket on the caller's thread (no admission, no deadline budget
    /// consumed); a miss yields a queue-ready request carrying its cache key.
    fn admit(&self, query: Vec<f32>, budget: Option<Duration>) -> Result<Admission, SubmitError> {
        if query.len() != self.dim {
            return Err(SubmitError::DimensionMismatch {
                expected: self.dim,
                found: query.len(),
            });
        }
        let submitted = Instant::now();
        let mut cache_key = None;
        if let Some(cache) = &self.cache {
            let key = cache.key(&query);
            if let Some(results) = cache.get(&key) {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                let wall_us = submitted.elapsed().as_secs_f64() * 1e6;
                {
                    let mut collector = self.metrics.lock().expect("metrics lock");
                    collector.record_cache_hit(wall_us, self.config.slo_us);
                }
                if let (Some(registry), Some(sink)) = (&self.telemetry, &self.front_sink) {
                    if registry.config().samples(id) {
                        let done = Instant::now();
                        sink.record_range(Stage::CacheHit, id, submitted, done);
                        sink.record_range(Stage::Wall, id, submitted, done);
                    }
                }
                // The send cannot fail: the receiver is alive in our hands.
                let _ = reply_tx.send(QueryReply {
                    id,
                    status: QueryStatus::Completed,
                    results,
                    latency_us: wall_us,
                    queue_us: 0.0,
                    batch_size: 0,
                    simulated_us: None,
                });
                return Ok(Admission::Resolved(Ticket { id, rx: reply_rx }));
            }
            // Lock-free miss counting keeps the (common) miss path off the
            // metrics mutex — only hits pay for it, for the histogram.
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            cache_key = Some(key);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        // Explicit budget wins; otherwise the SLO sets the deadline.
        let deadline = budget.map(|b| submitted + b).or_else(|| {
            self.config
                .slo_us
                .map(|slo| submitted + Duration::from_secs_f64(slo / 1e6))
        });
        let sampled = match &self.telemetry {
            Some(registry) => registry.config().samples(id),
            None => false,
        };
        Ok(Admission::Enqueue(
            Request {
                id,
                query,
                submitted,
                deadline,
                cache_key,
                reply_tx,
                sampled,
                t_enqueued: submitted,
                t_picked: submitted,
                t_dispatched: submitted,
            },
            Ticket { id, rx: reply_rx },
        ))
    }

    fn push(&self, mut request: Request, ticket: Ticket) -> Result<Ticket, SubmitError> {
        let tx = self.submit_tx.as_ref().ok_or(SubmitError::ShuttingDown)?;
        if request.sampled {
            request.t_enqueued = Instant::now();
        }
        match tx.try_send(request) {
            Ok(()) => {
                if let Some(registry) = &self.telemetry {
                    registry.add_gauge(Gauge::QueueDepth, 1);
                }
                Ok(ticket)
            }
            Err(TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Blocking enqueue of an admitted request (closed-loop clients).
    fn enqueue_blocking(
        &self,
        mut request: Request,
        ticket: Ticket,
    ) -> Result<Ticket, SubmitError> {
        let tx = self.submit_tx.as_ref().ok_or(SubmitError::ShuttingDown)?;
        if request.sampled {
            request.t_enqueued = Instant::now();
        }
        tx.send(request).map_err(|_| SubmitError::ShuttingDown)?;
        if let Some(registry) = &self.telemetry {
            registry.add_gauge(Gauge::QueueDepth, 1);
        }
        Ok(ticket)
    }

    /// Non-blocking submission; fails fast under backpressure. The query's
    /// deadline, if any, derives from the configured SLO. A result-cache hit
    /// resolves immediately and never touches the queue.
    pub fn try_submit(&self, query: Vec<f32>) -> Result<Ticket, SubmitError> {
        match self.admit(query, None)? {
            Admission::Resolved(ticket) => Ok(ticket),
            Admission::Enqueue(request, ticket) => self.push(request, ticket),
        }
    }

    /// Non-blocking submission with an explicit latency budget: the query's
    /// absolute deadline is `now + budget`, overriding the SLO-derived one.
    /// A result-cache hit resolves immediately regardless of the budget.
    pub fn try_submit_with_budget(
        &self,
        query: Vec<f32>,
        budget: Duration,
    ) -> Result<Ticket, SubmitError> {
        match self.admit(query, Some(budget))? {
            Admission::Resolved(ticket) => Ok(ticket),
            Admission::Enqueue(request, ticket) => self.push(request, ticket),
        }
    }

    /// Blocking submission; waits for queue space (closed-loop clients).
    pub fn submit(&self, query: Vec<f32>) -> Result<Ticket, SubmitError> {
        match self.admit(query, None)? {
            Admission::Resolved(ticket) => Ok(ticket),
            Admission::Enqueue(request, ticket) => self.enqueue_blocking(request, ticket),
        }
    }

    /// Blocking submission with an explicit latency budget (see
    /// [`QueryEngine::try_submit_with_budget`]).
    pub fn submit_with_budget(
        &self,
        query: Vec<f32>,
        budget: Duration,
    ) -> Result<Ticket, SubmitError> {
        match self.admit(query, Some(budget))? {
            Admission::Resolved(ticket) => Ok(ticket),
            Admission::Enqueue(request, ticket) => self.enqueue_blocking(request, ticket),
        }
    }

    /// Queries rejected by backpressure so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The workers' current modeled per-query service time (µs) — the value
    /// deadline shedding compares remaining budgets against.
    pub fn service_estimate_us(&self) -> f64 {
        self.estimate.get_us()
    }

    /// The result cache the engine consults, if one is attached.
    pub fn cache(&self) -> Option<&Arc<QueryResultCache>> {
        self.cache.as_ref()
    }

    /// The telemetry registry tracing this engine, if one is attached.
    pub fn telemetry(&self) -> Option<&Arc<TelemetryRegistry>> {
        self.telemetry.as_ref()
    }

    /// Publishes point-in-time gauges the hot path cannot maintain
    /// incrementally (currently: result-cache occupancy). Call before
    /// snapshotting when both a cache and telemetry are attached; a no-op
    /// otherwise.
    pub fn publish_gauges(&self) {
        if let (Some(registry), Some(cache)) = (&self.telemetry, &self.cache) {
            registry.set_gauge(Gauge::CacheEntries, cache.stats().entries as i64);
        }
    }

    /// A point-in-time report over everything completed so far.
    pub fn report(&self) -> ServeReport {
        let collector = self.metrics.lock().expect("metrics lock");
        let report = ServeReport::from_collector(
            self.backend_name.clone(),
            &collector,
            self.started.elapsed().as_secs_f64(),
            self.rejected.load(Ordering::Relaxed),
            self.config.slo_us,
        );
        let report = match &self.cache {
            Some(cache) => report.with_cache_report(CacheReport::new(
                &collector,
                &cache.stats(),
                self.cache_misses.load(Ordering::Relaxed),
            )),
            None => report,
        };
        match &self.telemetry {
            Some(registry) => report.with_stage_report(registry.stage_report()),
            None => report,
        }
    }

    /// Graceful shutdown: stops admissions, drains queued queries, joins all
    /// threads, and returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        // Closing the submit channel lets the batcher drain and exit; the
        // batcher closing the batch channel lets the workers drain and exit.
        drop(self.submit_tx.take());
        if let Some(batcher) = self.batcher.take() {
            batcher.join().expect("batcher thread panicked");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let collector = self.metrics.lock().expect("metrics lock");
        let report = ServeReport::from_collector(
            self.backend_name.clone(),
            &collector,
            wall_seconds,
            self.rejected.load(Ordering::Relaxed),
            self.config.slo_us,
        );
        let report = match &self.cache {
            Some(cache) => report.with_cache_report(CacheReport::new(
                &collector,
                &cache.stats(),
                self.cache_misses.load(Ordering::Relaxed),
            )),
            None => report,
        };
        match &self.telemetry {
            Some(registry) => report.with_stage_report(registry.stage_report()),
            None => report,
        }
    }
}

/// Everything the batcher thread needs, bundled so the spawn site stays
/// readable as the engine grows (policies, shared state, telemetry).
struct BatcherCtx {
    policy: BatchPolicy,
    admission: AdmissionPolicy,
    queue_depth: usize,
    estimate: Arc<ServiceEstimate>,
    metrics: Arc<Mutex<MetricsCollector>>,
    telemetry: Option<Arc<TelemetryRegistry>>,
}

/// The batcher loop: forms batches under the max-size / max-wait policy,
/// sheds queries that can no longer meet their deadline, and picks batch
/// members FIFO or earliest-deadline-first.
fn run_batcher(submit_rx: Receiver<Request>, batch_tx: SyncSender<Vec<Request>>, ctx: BatcherCtx) {
    let BatcherCtx {
        policy,
        admission,
        queue_depth,
        estimate,
        metrics,
        telemetry,
    } = ctx;
    let sink = telemetry.as_ref().map(|t| t.sink());
    // Stamp every pull from the submit queue: the queue-depth gauge tracks
    // occupancy, and a sampled request records when the batcher first saw
    // it (the queue_wait -> batch_form boundary).
    let pull = |req: &mut Request| {
        if let Some(registry) = &telemetry {
            registry.add_gauge(Gauge::QueueDepth, -1);
            if req.sampled {
                req.t_picked = Instant::now();
            }
        }
    };
    // Queries pulled from the channel but not yet dispatched (EDF pickup can
    // leave lower-urgency queries behind for the next batch).
    let mut pending: VecDeque<Request> = VecDeque::new();
    // Deadline shedding and EDF only act on queries they can see, so those
    // modes buffer up to one queue_depth here in addition to the channel —
    // admission is then bounded by 2x queue_depth. Plain FIFO gains nothing
    // from look-ahead, so it keeps the channel as the only queue and
    // backpressure semantics identical to a max_batch-bounded batcher.
    let look_ahead = if admission.deadline_shedding || policy.pickup != PickupOrder::Fifo {
        queue_depth.max(policy.max_batch_size)
    } else {
        policy.max_batch_size
    };
    let mut open = true;
    while open || !pending.is_empty() {
        if pending.is_empty() {
            // Block for the first query of the next batch.
            match submit_rx.recv() {
                Ok(mut req) => {
                    pull(&mut req);
                    pending.push_back(req);
                }
                Err(_) => {
                    open = false; // engine shut down, channel drained
                    continue;
                }
            }
        }
        // Fill window: wait up to max_wait for co-batched work.
        let window_end = Instant::now() + policy.max_wait;
        while open && pending.len() < policy.max_batch_size {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            match submit_rx.recv_timeout(window_end - now) {
                Ok(mut req) => {
                    pull(&mut req);
                    pending.push_back(req);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        // Opportunistic drain (no waiting): pull already-queued work up to
        // the look-ahead bound so shedding sees waiting queries and the
        // pickup policy chooses among them, not just the first max_batch
        // arrivals.
        while open && pending.len() < look_ahead {
            match submit_rx.try_recv() {
                Ok(mut req) => {
                    pull(&mut req);
                    pending.push_back(req);
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }

        // Early shedding: a query whose remaining budget is below the
        // modeled service time cannot meet its deadline — resolving it now
        // costs nothing and frees backend capacity for queries that can.
        if admission.deadline_shedding {
            let est = Duration::from_secs_f64(estimate.get_us().max(0.0) / 1e6);
            let now = Instant::now();
            let mut kept = VecDeque::with_capacity(pending.len());
            let mut shed = Vec::new();
            for req in pending.drain(..) {
                match req.deadline {
                    Some(deadline) if now + est >= deadline => shed.push(req),
                    _ => kept.push_back(req),
                }
            }
            pending = kept;
            if !shed.is_empty() {
                let mut collector = metrics.lock().expect("metrics lock");
                collector.record_shed(shed.len() as u64);
                drop(collector);
                for req in shed {
                    if let Some(sink) = &sink {
                        if req.sampled {
                            let done = Instant::now();
                            sink.record_range(Stage::Submit, req.id, req.submitted, req.t_enqueued);
                            sink.record_range(
                                Stage::QueueWait,
                                req.id,
                                req.t_enqueued,
                                req.t_picked,
                            );
                            sink.record_range(Stage::Shed, req.id, req.t_picked, done);
                            sink.record_range(Stage::Wall, req.id, req.submitted, done);
                        }
                    }
                    req.resolve_empty(QueryStatus::Shed, 0, None);
                }
            }
            if pending.is_empty() {
                continue;
            }
        }

        // Pickup: choose which pending queries form this batch.
        let take = pending.len().min(policy.max_batch_size);
        let batch: Vec<Request> = match policy.pickup {
            PickupOrder::Fifo => pending.drain(..take).collect(),
            PickupOrder::EarliestDeadlineFirst => {
                let mut all: Vec<Request> = pending.drain(..).collect();
                // Stable sort: no-deadline queries go last, keeping arrival
                // order among themselves and among equal deadlines.
                all.sort_by(|a, b| match (a.deadline, b.deadline) {
                    (Some(x), Some(y)) => x.cmp(&y),
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    (None, None) => std::cmp::Ordering::Equal,
                });
                let rest = all.split_off(take);
                pending.extend(rest);
                all
            }
        };

        // Blocking send: when workers lag this stalls the batcher and, in
        // turn, fills the submit queue — end-to-end backpressure.
        let mut batch = batch;
        if let Some(registry) = &telemetry {
            registry.add_gauge(Gauge::InFlight, batch.len() as i64);
            registry.set_gauge(Gauge::BatchSize, batch.len() as i64);
            let dispatched = Instant::now();
            for req in &mut batch {
                if req.sampled {
                    req.t_dispatched = dispatched;
                }
            }
        }
        if batch_tx.send(batch).is_err() {
            return;
        }
    }
}

/// Everything a worker thread needs, bundled like [`BatcherCtx`].
struct WorkerCtx {
    backend: Arc<dyn SearchBackend>,
    batch_rx: Arc<Mutex<Receiver<Vec<Request>>>>,
    metrics: Arc<Mutex<MetricsCollector>>,
    estimate: Arc<ServiceEstimate>,
    cache: Option<Arc<QueryResultCache>>,
    slo_us: Option<f64>,
    telemetry: Option<Arc<TelemetryRegistry>>,
    sink: Option<TelemetrySink>,
}

/// Emits the telescoping per-query path spans for one resolved request.
/// Every boundary instant is shared with the adjacent stage, so the stage
/// durations partition `submitted..done` exactly and the stage breakdown
/// reconciles with wall latency by construction. `terminal` is
/// [`Stage::Reply`] for completions and [`Stage::Failed`] for batch
/// failures.
fn emit_path_spans(
    sink: &TelemetrySink,
    req: &Request,
    service_start: Instant,
    service_end: Instant,
    terminal: Stage,
    done: Instant,
) {
    sink.record_range(Stage::Submit, req.id, req.submitted, req.t_enqueued);
    sink.record_range(Stage::QueueWait, req.id, req.t_enqueued, req.t_picked);
    sink.record_range(Stage::BatchForm, req.id, req.t_picked, req.t_dispatched);
    sink.record_range(Stage::DispatchWait, req.id, req.t_dispatched, service_start);
    sink.record_range(Stage::Service, req.id, service_start, service_end);
    sink.record_range(terminal, req.id, service_end, done);
    sink.record_range(Stage::Wall, req.id, req.submitted, done);
}

/// A worker loop: executes batches on the backend and delivers replies.
fn run_worker(ctx: WorkerCtx) {
    let WorkerCtx {
        backend,
        batch_rx,
        metrics,
        estimate,
        cache,
        slo_us,
        telemetry,
        sink,
    } = ctx;
    loop {
        // Hold the lock only while receiving so workers pull batches
        // round-robin without serialising backend execution.
        let batch = {
            let rx = batch_rx.lock().expect("batch queue lock");
            rx.recv()
        };
        let batch = match batch {
            Ok(b) => b,
            Err(_) => return, // batcher gone and queue drained
        };

        let batch_size = batch.len();
        let queries: Vec<&[f32]> = batch.iter().map(|r| r.query.as_slice()).collect();
        // Mark the thread so nested recorders (backend sub-stages, shard
        // workers, replica sets) trace exactly the batches the engine
        // sampled, instead of self-sampling on their own cadence.
        let any_sampled = sink.is_some() && batch.iter().any(|r| r.sampled);
        if sink.is_some() {
            telemetry::set_batch_traced(any_sampled);
        }
        let service_start = Instant::now();
        let outcome = backend.try_search_batch(&queries);
        let service_end = Instant::now();
        if sink.is_some() {
            telemetry::clear_batch_traced();
        }
        let service_us = (service_end - service_start).as_secs_f64() * 1e6;

        let responses = match outcome {
            Ok(responses) => responses,
            Err(_) => {
                // The whole batch failed (e.g. every replica down). Resolve
                // every ticket as Failed — accepted queries are never
                // silently dropped — and keep serving later batches.
                let mut collector = metrics.lock().expect("metrics lock");
                collector.record_failed(batch_size as u64);
                drop(collector);
                for request in batch {
                    let queue_us = (service_start - request.submitted).as_secs_f64() * 1e6;
                    if let Some(sink) = &sink {
                        if request.sampled {
                            emit_path_spans(
                                sink,
                                &request,
                                service_start,
                                service_end,
                                Stage::Failed,
                                Instant::now(),
                            );
                        }
                    }
                    request.resolve_empty(QueryStatus::Failed, batch_size, Some(queue_us));
                }
                if let Some(registry) = &telemetry {
                    registry.add_gauge(Gauge::InFlight, -(batch_size as i64));
                }
                continue;
            }
        };
        // A backend returning the wrong arity must fail loudly: a silent zip
        // truncation would drop the tail requests' replies and break the
        // "every accepted query is accounted for" guarantee.
        assert_eq!(
            responses.len(),
            batch_size,
            "backend returned {} responses for a batch of {batch_size}",
            responses.len()
        );
        estimate.observe_us(service_us / batch_size.max(1) as f64);

        let completed = Instant::now();
        {
            // Metrics only under the shared lock; cache fills and reply
            // sends (clones, cache-shard locks) happen after it is released
            // so submitters and sibling workers are not serialized behind
            // this batch's delivery.
            let mut collector = metrics.lock().expect("metrics lock");
            collector.record_batch(batch_size, service_us);
            for (request, response) in batch.iter().zip(&responses) {
                let wall_us = (completed - request.submitted).as_secs_f64() * 1e6;
                let queue_us = (service_start - request.submitted).as_secs_f64() * 1e6;
                collector.record_query(wall_us, queue_us, response.simulated_us, slo_us);
            }
        }
        for (request, response) in batch.into_iter().zip(responses) {
            let wall_us = (completed - request.submitted).as_secs_f64() * 1e6;
            let queue_us = (service_start - request.submitted).as_secs_f64() * 1e6;
            // Fill the result cache so the next identical query short-
            // circuits at admission — before the reply is delivered, so a
            // client that waits on its ticket and resubmits the same query
            // is guaranteed a hit. The insert checks the key's generation,
            // so an answer computed against a since-swapped index is dropped.
            if let (Some(cache), Some(key)) = (&cache, &request.cache_key) {
                cache.insert(key, response.results.clone());
            }
            // The client may have dropped its ticket; that is fine.
            let _ = request.reply_tx.send(QueryReply {
                id: request.id,
                status: QueryStatus::Completed,
                results: response.results,
                latency_us: wall_us,
                queue_us,
                batch_size,
                simulated_us: response.simulated_us,
            });
            // Spans are stamped after the send, so the reply stage covers
            // the full delivery (cache fill included).
            if let Some(sink) = &sink {
                if request.sampled {
                    emit_path_spans(
                        sink,
                        &request,
                        service_start,
                        service_end,
                        Stage::Reply,
                        Instant::now(),
                    );
                }
            }
        }
        if let Some(registry) = &telemetry {
            registry.add_gauge(Gauge::InFlight, -(batch_size as i64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendResponse, SearchBackend};

    /// A deterministic toy backend: returns the query's first component as
    /// the "distance" and optionally sleeps to emulate service time.
    struct ToyBackend {
        dim: usize,
        k: usize,
        service: Duration,
    }

    impl SearchBackend for ToyBackend {
        fn name(&self) -> String {
            "toy".into()
        }

        fn dim(&self) -> usize {
            self.dim
        }

        fn k(&self) -> usize {
            self.k
        }

        fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
            if !self.service.is_zero() {
                std::thread::sleep(self.service);
            }
            queries
                .iter()
                .map(|q| BackendResponse {
                    results: vec![SearchResult {
                        id: q[0] as u32,
                        distance: q[0],
                    }],
                    simulated_us: Some(1.0),
                })
                .collect()
        }
    }

    fn toy_engine(service: Duration, config: EngineConfig) -> QueryEngine {
        QueryEngine::start(
            Arc::new(ToyBackend {
                dim: 2,
                k: 1,
                service,
            }),
            config,
        )
    }

    #[test]
    fn replies_match_their_queries() {
        let engine = toy_engine(
            Duration::ZERO,
            EngineConfig::new(BatchPolicy::new(4, Duration::from_micros(100))).with_workers(2),
        );
        let tickets: Vec<Ticket> = (0..50)
            .map(|i| engine.submit(vec![i as f32, 0.0]).unwrap())
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let reply = t.wait().expect("reply delivered");
            assert_eq!(reply.results[0].id, i as u32);
            assert!(reply.latency_us >= 0.0);
            assert!(reply.batch_size >= 1);
            assert_eq!(reply.simulated_us, Some(1.0));
        }
        let report = engine.shutdown();
        assert_eq!(report.queries, 50);
        assert!(report.qps > 0.0);
    }

    #[test]
    fn dimension_mismatch_is_rejected_up_front() {
        let engine = toy_engine(
            Duration::ZERO,
            EngineConfig::new(BatchPolicy::low_latency()),
        );
        let err = engine.submit(vec![1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(
            err,
            SubmitError::DimensionMismatch {
                expected: 2,
                found: 3
            }
        ));
        engine.shutdown();
    }

    #[test]
    fn batches_form_up_to_the_size_cap() {
        // Slow service + burst submission => later queries coalesce.
        let engine = toy_engine(
            Duration::from_millis(5),
            EngineConfig::new(BatchPolicy::new(16, Duration::from_millis(20))).with_workers(1),
        );
        let tickets: Vec<Ticket> = (0..64)
            .map(|i| engine.submit(vec![i as f32, 0.0]).unwrap())
            .collect();
        let max_batch = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().batch_size)
            .max()
            .unwrap();
        assert!(
            max_batch > 1,
            "burst traffic should batch (max {max_batch})"
        );
        assert!(max_batch <= 16, "batch cap respected (max {max_batch})");
        let report = engine.shutdown();
        assert_eq!(report.queries, 64);
        assert!(report.mean_batch_size > 1.0);
    }

    #[test]
    fn backpressure_rejects_when_saturated() {
        // One very slow worker and a tiny queue: try_submit must eventually
        // report QueueFull instead of blocking.
        let engine = toy_engine(
            Duration::from_millis(50),
            EngineConfig::new(BatchPolicy::new(1, Duration::ZERO))
                .with_workers(1)
                .with_queue_depth(2),
        );
        let mut accepted = Vec::new();
        let mut rejections = 0u64;
        for i in 0..64 {
            match engine.try_submit(vec![i as f32, 0.0]) {
                Ok(t) => accepted.push(t),
                Err(SubmitError::QueueFull) => rejections += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(rejections > 0, "saturated engine must shed load");
        for t in accepted {
            assert!(t.wait().is_some(), "accepted queries still complete");
        }
        let report = engine.shutdown();
        assert_eq!(report.rejected, rejections);
        assert_eq!(report.queries + report.rejected, 64);
    }

    #[test]
    fn fifo_backpressure_is_bounded_without_shedding() {
        // FIFO with no shedding must keep the submit channel as the only
        // queue: the batcher may not hoard arrivals in its pending pool, so
        // a saturated engine rejects even a slow trickle of submissions
        // (a greedy unbounded drain would keep the channel empty and accept
        // everything, unboundedly).
        let engine = toy_engine(
            Duration::from_millis(50),
            EngineConfig::new(BatchPolicy::new(1, Duration::ZERO))
                .with_workers(1)
                .with_queue_depth(2),
        );
        let mut accepted = Vec::new();
        let mut rejections = 0u64;
        for i in 0..32 {
            // Slow enough that a channel-draining batcher would always win
            // the race and never leave the channel full.
            std::thread::sleep(Duration::from_micros(200));
            match engine.try_submit(vec![i as f32, 0.0]) {
                Ok(t) => accepted.push(t),
                Err(SubmitError::QueueFull) => rejections += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(
            rejections > 0,
            "bounded admission must reject under sustained overload"
        );
        for t in accepted {
            assert!(t.wait().is_some());
        }
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let engine = toy_engine(
            Duration::from_millis(1),
            EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(500))).with_workers(2),
        );
        let tickets: Vec<Ticket> = (0..200)
            .map(|i| engine.submit(vec![i as f32, 0.0]).unwrap())
            .collect();
        // Shut down immediately; every accepted query must still complete.
        let report = engine.shutdown();
        assert_eq!(report.queries, 200);
        for t in tickets {
            assert!(t.wait().is_some());
        }
    }

    #[test]
    fn deadline_shedding_resolves_expired_queries() {
        // Slow backend (5 ms/batch), 1 ms SLO: the first few batches fill
        // the pipeline; everything queued behind them exceeds its budget
        // while waiting and is shed -- with a resolved ticket, never dropped.
        let engine = toy_engine(
            Duration::from_millis(5),
            EngineConfig::new(BatchPolicy::new(1, Duration::ZERO))
                .with_workers(1)
                .with_slo_us(1_000.0)
                .with_deadline_shedding()
                .with_service_estimate_us(500.0),
        );
        let tickets: Vec<Ticket> = (0..32)
            .map(|i| engine.submit(vec![i as f32, 0.0]).unwrap())
            .collect();
        let mut completed = 0u64;
        let mut shed = 0u64;
        for t in tickets {
            let reply = t.wait().expect("every ticket resolves");
            match reply.status {
                QueryStatus::Completed => completed += 1,
                QueryStatus::Shed => {
                    shed += 1;
                    assert!(reply.results.is_empty());
                }
                QueryStatus::Failed => panic!("no failures expected"),
            }
        }
        assert!(shed > 0, "overloaded engine must shed");
        let report = engine.shutdown();
        assert_eq!(report.queries, completed);
        assert_eq!(report.shed, shed);
        assert_eq!(report.queries + report.shed, 32);
        assert!(report.goodput_qps <= report.qps || report.qps == 0.0);
    }

    #[test]
    fn queries_with_slack_are_not_shed() {
        let engine = toy_engine(
            Duration::ZERO,
            EngineConfig::new(BatchPolicy::low_latency())
                .with_slo_us(10_000_000.0)
                .with_deadline_shedding(),
        );
        for i in 0..20 {
            let reply = engine.submit(vec![i as f32, 0.0]).unwrap().wait().unwrap();
            assert_eq!(reply.status, QueryStatus::Completed);
        }
        let report = engine.shutdown();
        assert_eq!(report.queries, 20);
        assert_eq!(report.shed, 0);
    }

    #[test]
    fn edf_pickup_serves_urgent_queries_first() {
        // One worker at 30 ms/batch, batch queue depth workers*2 = 2. The
        // prime + filler submissions keep the batcher blocked on a full
        // batch queue, so the relaxed and urgent queries accumulate in the
        // submit channel. When the batcher unblocks it drains both and EDF
        // must dispatch the urgent one (tighter absolute deadline) first,
        // even though the relaxed one arrived earlier.
        let engine = toy_engine(
            Duration::from_millis(30),
            EngineConfig::new(
                BatchPolicy::new(1, Duration::ZERO).with_pickup(PickupOrder::EarliestDeadlineFirst),
            )
            .with_workers(1),
        );
        let fillers: Vec<Ticket> = (0..4)
            .map(|i| engine.submit(vec![i as f32, 0.0]).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(2));
        let relaxed = engine
            .submit_with_budget(vec![10.0, 0.0], Duration::from_secs(600))
            .unwrap();
        let urgent = engine
            .submit_with_budget(vec![11.0, 0.0], Duration::from_secs(300))
            .unwrap();
        let urgent_reply = urgent.wait().unwrap();
        let relaxed_reply = relaxed.wait().unwrap();
        for t in fillers {
            assert_eq!(t.wait().unwrap().status, QueryStatus::Completed);
        }
        assert_eq!(urgent_reply.status, QueryStatus::Completed);
        assert!(
            urgent_reply.latency_us < relaxed_reply.latency_us,
            "urgent ({:.0} us) must finish before relaxed ({:.0} us)",
            urgent_reply.latency_us,
            relaxed_reply.latency_us
        );
        engine.shutdown();
    }

    #[test]
    fn failed_batches_resolve_every_ticket() {
        struct BrokenBackend;
        impl SearchBackend for BrokenBackend {
            fn name(&self) -> String {
                "broken".into()
            }
            fn dim(&self) -> usize {
                2
            }
            fn k(&self) -> usize {
                1
            }
            fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
                let _ = queries;
                unreachable!("engine must use the fallible path")
            }
            fn try_search_batch(
                &self,
                queries: &[&[f32]],
            ) -> Result<Vec<BackendResponse>, crate::backend::BackendError> {
                let _ = queries;
                Err(crate::backend::BackendError::new("broken", "always down"))
            }
        }
        let engine = QueryEngine::start(
            Arc::new(BrokenBackend),
            EngineConfig::new(BatchPolicy::new(4, Duration::from_micros(100))).with_workers(2),
        );
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| engine.submit(vec![i as f32, 0.0]).unwrap())
            .collect();
        for t in tickets {
            let reply = t.wait().expect("failed queries still resolve");
            assert_eq!(reply.status, QueryStatus::Failed);
            assert!(reply.results.is_empty());
        }
        let report = engine.shutdown();
        assert_eq!(report.queries, 0);
        assert_eq!(report.failed, 16);
    }

    #[test]
    fn service_estimate_warms_up_from_observations() {
        let engine = toy_engine(
            Duration::from_millis(2),
            EngineConfig::new(BatchPolicy::new(1, Duration::ZERO)).with_workers(1),
        );
        assert_eq!(engine.service_estimate_us(), 0.0);
        for i in 0..8 {
            engine.submit(vec![i as f32, 0.0]).unwrap().wait().unwrap();
        }
        let est = engine.service_estimate_us();
        assert!(
            est >= 1_000.0,
            "estimate must reflect the ~2 ms service time: {est}"
        );
        engine.shutdown();
    }

    #[test]
    fn cache_hits_skip_the_backend_entirely() {
        use crate::cache::{QueryResultCache, ResultCacheConfig};
        use std::sync::atomic::AtomicUsize;

        /// Counts every query that reaches the backend.
        struct CountingBackend {
            served: AtomicUsize,
        }
        impl SearchBackend for CountingBackend {
            fn name(&self) -> String {
                "counting".into()
            }
            fn dim(&self) -> usize {
                2
            }
            fn k(&self) -> usize {
                1
            }
            fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
                self.served.fetch_add(queries.len(), Ordering::Relaxed);
                queries
                    .iter()
                    .map(|q| BackendResponse {
                        results: vec![SearchResult {
                            id: q[0] as u32,
                            distance: q[0],
                        }],
                        simulated_us: None,
                    })
                    .collect()
            }
        }

        let backend = Arc::new(CountingBackend {
            served: AtomicUsize::new(0),
        });
        let cache = Arc::new(QueryResultCache::new(ResultCacheConfig::new(64)));
        let engine = QueryEngine::start_with_cache(
            Arc::clone(&backend) as Arc<dyn SearchBackend>,
            EngineConfig::new(BatchPolicy::new(4, Duration::from_micros(100))).with_workers(2),
            Some(Arc::clone(&cache)),
        );
        // Warm: 8 distinct queries reach the backend.
        for i in 0..8 {
            let reply = engine.submit(vec![i as f32, 0.0]).unwrap().wait().unwrap();
            assert_eq!(reply.status, QueryStatus::Completed);
        }
        let after_warm = backend.served.load(Ordering::Relaxed);
        assert_eq!(after_warm, 8);
        // Replay: identical queries must be served from the cache with the
        // same results and zero additional backend work.
        for i in 0..8 {
            let reply = engine.submit(vec![i as f32, 0.0]).unwrap().wait().unwrap();
            assert_eq!(reply.status, QueryStatus::Completed);
            assert_eq!(reply.results[0].id, i as u32);
            assert_eq!(reply.batch_size, 0, "hits never join a batch");
        }
        assert_eq!(
            backend.served.load(Ordering::Relaxed),
            after_warm,
            "replayed queries must not reach the backend"
        );
        let report = engine.shutdown();
        assert_eq!(report.queries, 16, "hits count as completed queries");
        let cache_report = report.cache.expect("cache section present");
        assert_eq!(cache_report.hits, 8);
        assert_eq!(cache_report.misses, 8);
        assert!((cache_report.hit_rate - 0.5).abs() < 1e-12);
        assert!(cache_report.hit_p50_us >= 0.0);
        assert_eq!(cache_report.insertions, 8);
    }

    #[test]
    fn cache_hits_do_not_consume_deadline_budget() {
        use crate::cache::{QueryResultCache, ResultCacheConfig};
        // Slow backend + aggressive shedding: a warm cache must answer even
        // queries whose budget is far below the modeled service time.
        let cache = Arc::new(QueryResultCache::new(ResultCacheConfig::new(16)));
        let engine = QueryEngine::start_with_cache(
            Arc::new(ToyBackend {
                dim: 2,
                k: 1,
                service: Duration::from_millis(5),
            }),
            EngineConfig::new(BatchPolicy::new(1, Duration::ZERO))
                .with_workers(1)
                .with_slo_us(1_000_000.0)
                .with_deadline_shedding()
                .with_service_estimate_us(5_000.0),
            Some(Arc::clone(&cache)),
        );
        // Warm the cache with a generous budget.
        let reply = engine
            .submit_with_budget(vec![3.0, 0.0], Duration::from_secs(60))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(reply.status, QueryStatus::Completed);
        // A 1 µs budget is impossible for the 5 ms backend — but the hit
        // path never consults the deadline.
        let reply = engine
            .submit_with_budget(vec![3.0, 0.0], Duration::from_micros(1))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            reply.status,
            QueryStatus::Completed,
            "a cache hit must resolve without consuming deadline budget"
        );
        let report = engine.shutdown();
        assert_eq!(report.shed, 0);
        assert_eq!(report.cache.expect("cache section").hits, 1);
    }

    #[test]
    fn slo_attainment_is_tracked() {
        let engine = toy_engine(
            Duration::ZERO,
            EngineConfig::new(BatchPolicy::low_latency()).with_slo_us(10_000_000.0),
        );
        for i in 0..20 {
            engine.submit(vec![i as f32, 0.0]).unwrap().wait().unwrap();
        }
        let report = engine.shutdown();
        let attainment = report.slo_attainment.expect("slo configured");
        assert!(
            attainment > 0.99,
            "10 s SLO should always be met: {attainment}"
        );
    }
}
