//! The multi-threaded [`QueryEngine`]: bounded admission queue → dynamic
//! batcher → worker pool over a [`SearchBackend`].
//!
//! Threading model (std threads and channels only — no async runtime):
//!
//! ```text
//!  clients ──try_send──▶ [submit queue, bounded] ──▶ batcher thread
//!                                                        │ (max_batch_size /
//!                                                        ▼  max_wait policy)
//!                                         [batch queue, bounded]
//!                                          ▲ backpressure when workers lag
//!                 worker 0 ◀───────────────┤
//!                 worker 1 ◀───────────────┘  each: backend.search_batch
//!                     │
//!                     └──▶ per-request reply channel + shared metrics
//! ```
//!
//! Backpressure is end-to-end: when workers fall behind, the bounded batch
//! queue blocks the batcher, the bounded submit queue fills, and
//! [`QueryEngine::try_submit`] starts returning [`SubmitError::QueueFull`] —
//! the signal an upstream load balancer uses to shed load. Shutdown is
//! graceful: queued queries are drained, workers join, and the final
//! [`ServeReport`] accounts for every accepted query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fanns_ivf::search::SearchResult;

use crate::backend::SearchBackend;
use crate::metrics::{MetricsCollector, ServeReport};

/// Dynamic batching policy: dispatch when `max_batch_size` queries are
/// waiting or when the oldest query has waited `max_wait`, whichever first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch handed to the backend.
    pub max_batch_size: usize,
    /// Longest time the oldest queued query may wait for co-batched work.
    pub max_wait: Duration,
}

impl BatchPolicy {
    /// A policy with the given size cap and wait bound.
    pub fn new(max_batch_size: usize, max_wait: Duration) -> Self {
        Self {
            max_batch_size: max_batch_size.max(1),
            max_wait,
        }
    }

    /// Latency-leaning default: small batches, short waits.
    pub fn low_latency() -> Self {
        Self::new(8, Duration::from_micros(200))
    }

    /// Throughput-leaning default: large batches, tolerant waits.
    pub fn high_throughput() -> Self {
        Self::new(256, Duration::from_millis(2))
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// The dynamic batching policy.
    pub batch: BatchPolicy,
    /// Worker threads executing batches on the backend.
    pub workers: usize,
    /// Capacity of the submit queue (admission control).
    pub queue_depth: usize,
    /// Latency SLO in microseconds, tracked in the report when set.
    pub slo_us: Option<f64>,
}

impl EngineConfig {
    /// A sensible default: one worker per two cores, depth 1024.
    pub fn new(batch: BatchPolicy) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| (n.get() / 2).max(1))
            .unwrap_or(1);
        Self {
            batch,
            workers,
            queue_depth: 1024,
            slo_us: None,
        }
    }

    /// Builder-style worker count override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style queue depth override.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Builder-style SLO (µs).
    pub fn with_slo_us(mut self, slo_us: f64) -> Self {
        self.slo_us = Some(slo_us);
        self
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full (backpressure) — retry later or shed.
    QueueFull,
    /// The engine is shutting down.
    ShuttingDown,
    /// The query's dimensionality does not match the backend.
    DimensionMismatch {
        /// Dimensionality the backend expects.
        expected: usize,
        /// Dimensionality of the rejected query.
        found: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue is full"),
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
            SubmitError::DimensionMismatch { expected, found } => {
                write!(f, "query dim {found} does not match backend dim {expected}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A completed query as delivered to its submitter.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// The id assigned at submission.
    pub id: u64,
    /// The top-K hits.
    pub results: Vec<SearchResult>,
    /// End-to-end wall latency (µs): submit → reply ready.
    pub latency_us: f64,
    /// Time spent queued before the batch formed (µs).
    pub queue_us: f64,
    /// Size of the batch this query was served in.
    pub batch_size: usize,
    /// Simulated device latency (µs) for simulated backends.
    pub simulated_us: Option<f64>,
}

/// A handle to a pending query.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<QueryReply>,
}

impl Ticket {
    /// The query id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the reply arrives. Returns `None` if the engine dropped
    /// the request (it was shut down mid-flight with the queue force-cleared).
    pub fn wait(self) -> Option<QueryReply> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn poll(&self) -> Option<QueryReply> {
        self.rx.try_recv().ok()
    }
}

struct Request {
    id: u64,
    query: Vec<f32>,
    submitted: Instant,
    reply_tx: std::sync::mpsc::Sender<QueryReply>,
}

/// The online query-serving engine.
pub struct QueryEngine {
    submit_tx: Option<SyncSender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Mutex<MetricsCollector>>,
    backend_name: String,
    dim: usize,
    k: usize,
    config: EngineConfig,
    next_id: AtomicU64,
    rejected: AtomicU64,
    started: Instant,
}

impl QueryEngine {
    /// Starts the engine: spawns the batcher and `config.workers` workers
    /// over the shared backend.
    pub fn start(backend: Arc<dyn SearchBackend>, config: EngineConfig) -> Self {
        let (submit_tx, submit_rx) = sync_channel::<Request>(config.queue_depth);
        // A shallow batch queue: enough to keep workers busy, small enough
        // that backpressure reaches the admission queue quickly.
        let (batch_tx, batch_rx) = sync_channel::<Vec<Request>>(config.workers * 2);
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let metrics = Arc::new(Mutex::new(MetricsCollector::default()));

        let policy = config.batch;
        let batcher = std::thread::Builder::new()
            .name("fanns-serve-batcher".into())
            .spawn(move || run_batcher(submit_rx, batch_tx, policy))
            .expect("spawn batcher thread");

        let workers = (0..config.workers)
            .map(|w| {
                let backend = Arc::clone(&backend);
                let batch_rx = Arc::clone(&batch_rx);
                let metrics = Arc::clone(&metrics);
                let slo_us = config.slo_us;
                std::thread::Builder::new()
                    .name(format!("fanns-serve-worker-{w}"))
                    .spawn(move || run_worker(backend, batch_rx, metrics, slo_us))
                    .expect("spawn worker thread")
            })
            .collect();

        Self {
            submit_tx: Some(submit_tx),
            batcher: Some(batcher),
            workers,
            metrics,
            backend_name: backend.name(),
            dim: backend.dim(),
            k: backend.k(),
            config,
            next_id: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The backend's query dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Results per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    fn make_request(&self, query: Vec<f32>) -> Result<(Request, Ticket), SubmitError> {
        if query.len() != self.dim {
            return Err(SubmitError::DimensionMismatch {
                expected: self.dim,
                found: query.len(),
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        Ok((
            Request {
                id,
                query,
                submitted: Instant::now(),
                reply_tx,
            },
            Ticket { id, rx: reply_rx },
        ))
    }

    /// Non-blocking submission; fails fast under backpressure.
    pub fn try_submit(&self, query: Vec<f32>) -> Result<Ticket, SubmitError> {
        let (request, ticket) = self.make_request(query)?;
        let tx = self.submit_tx.as_ref().ok_or(SubmitError::ShuttingDown)?;
        match tx.try_send(request) {
            Ok(()) => Ok(ticket),
            Err(TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Blocking submission; waits for queue space (closed-loop clients).
    pub fn submit(&self, query: Vec<f32>) -> Result<Ticket, SubmitError> {
        let (request, ticket) = self.make_request(query)?;
        let tx = self.submit_tx.as_ref().ok_or(SubmitError::ShuttingDown)?;
        tx.send(request).map_err(|_| SubmitError::ShuttingDown)?;
        Ok(ticket)
    }

    /// Queries rejected by backpressure so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// A point-in-time report over everything completed so far.
    pub fn report(&self) -> ServeReport {
        let collector = self.metrics.lock().expect("metrics lock");
        ServeReport::from_collector(
            self.backend_name.clone(),
            &collector,
            self.started.elapsed().as_secs_f64(),
            self.rejected.load(Ordering::Relaxed),
            self.config.slo_us,
        )
    }

    /// Graceful shutdown: stops admissions, drains queued queries, joins all
    /// threads, and returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        // Closing the submit channel lets the batcher drain and exit; the
        // batcher closing the batch channel lets the workers drain and exit.
        drop(self.submit_tx.take());
        if let Some(batcher) = self.batcher.take() {
            batcher.join().expect("batcher thread panicked");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let collector = self.metrics.lock().expect("metrics lock");
        ServeReport::from_collector(
            self.backend_name.clone(),
            &collector,
            wall_seconds,
            self.rejected.load(Ordering::Relaxed),
            self.config.slo_us,
        )
    }
}

/// The batcher loop: forms batches under the max-size / max-wait policy.
fn run_batcher(
    submit_rx: Receiver<Request>,
    batch_tx: SyncSender<Vec<Request>>,
    policy: BatchPolicy,
) {
    loop {
        // Block for the first query of the next batch.
        let first = match submit_rx.recv() {
            Ok(req) => req,
            Err(_) => return, // engine shut down, queue drained
        };
        let deadline = Instant::now() + policy.max_wait;
        let mut batch = vec![first];
        let mut disconnected = false;
        while batch.len() < policy.max_batch_size {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match submit_rx.recv_timeout(deadline - now) {
                Ok(req) => batch.push(req),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => break,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        // Blocking send: when workers lag this stalls the batcher and, in
        // turn, fills the submit queue — end-to-end backpressure.
        if batch_tx.send(batch).is_err() {
            return;
        }
        if disconnected {
            return;
        }
    }
}

/// A worker loop: executes batches on the backend and delivers replies.
fn run_worker(
    backend: Arc<dyn SearchBackend>,
    batch_rx: Arc<Mutex<Receiver<Vec<Request>>>>,
    metrics: Arc<Mutex<MetricsCollector>>,
    slo_us: Option<f64>,
) {
    loop {
        // Hold the lock only while receiving so workers pull batches
        // round-robin without serialising backend execution.
        let batch = {
            let rx = batch_rx.lock().expect("batch queue lock");
            rx.recv()
        };
        let batch = match batch {
            Ok(b) => b,
            Err(_) => return, // batcher gone and queue drained
        };

        let batch_size = batch.len();
        let queries: Vec<&[f32]> = batch.iter().map(|r| r.query.as_slice()).collect();
        let service_start = Instant::now();
        let responses = backend.search_batch(&queries);
        let service_us = service_start.elapsed().as_secs_f64() * 1e6;
        // A backend returning the wrong arity must fail loudly: a silent zip
        // truncation would drop the tail requests' replies and break the
        // "every accepted query is accounted for" guarantee.
        assert_eq!(
            responses.len(),
            batch_size,
            "backend returned {} responses for a batch of {batch_size}",
            responses.len()
        );

        let completed = Instant::now();
        let mut collector = metrics.lock().expect("metrics lock");
        collector.record_batch(batch_size, service_us);
        for (request, response) in batch.into_iter().zip(responses) {
            let wall_us = (completed - request.submitted).as_secs_f64() * 1e6;
            let queue_us = (service_start - request.submitted).as_secs_f64() * 1e6;
            collector.record_query(wall_us, queue_us, response.simulated_us, slo_us);
            // The client may have dropped its ticket; that is fine.
            let _ = request.reply_tx.send(QueryReply {
                id: request.id,
                results: response.results,
                latency_us: wall_us,
                queue_us,
                batch_size,
                simulated_us: response.simulated_us,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendResponse, SearchBackend};

    /// A deterministic toy backend: returns the query's first component as
    /// the "distance" and optionally sleeps to emulate service time.
    struct ToyBackend {
        dim: usize,
        k: usize,
        service: Duration,
    }

    impl SearchBackend for ToyBackend {
        fn name(&self) -> String {
            "toy".into()
        }

        fn dim(&self) -> usize {
            self.dim
        }

        fn k(&self) -> usize {
            self.k
        }

        fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
            if !self.service.is_zero() {
                std::thread::sleep(self.service);
            }
            queries
                .iter()
                .map(|q| BackendResponse {
                    results: vec![SearchResult {
                        id: q[0] as u32,
                        distance: q[0],
                    }],
                    simulated_us: Some(1.0),
                })
                .collect()
        }
    }

    fn toy_engine(service: Duration, config: EngineConfig) -> QueryEngine {
        QueryEngine::start(
            Arc::new(ToyBackend {
                dim: 2,
                k: 1,
                service,
            }),
            config,
        )
    }

    #[test]
    fn replies_match_their_queries() {
        let engine = toy_engine(
            Duration::ZERO,
            EngineConfig::new(BatchPolicy::new(4, Duration::from_micros(100))).with_workers(2),
        );
        let tickets: Vec<Ticket> = (0..50)
            .map(|i| engine.submit(vec![i as f32, 0.0]).unwrap())
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let reply = t.wait().expect("reply delivered");
            assert_eq!(reply.results[0].id, i as u32);
            assert!(reply.latency_us >= 0.0);
            assert!(reply.batch_size >= 1);
            assert_eq!(reply.simulated_us, Some(1.0));
        }
        let report = engine.shutdown();
        assert_eq!(report.queries, 50);
        assert!(report.qps > 0.0);
    }

    #[test]
    fn dimension_mismatch_is_rejected_up_front() {
        let engine = toy_engine(
            Duration::ZERO,
            EngineConfig::new(BatchPolicy::low_latency()),
        );
        let err = engine.submit(vec![1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(
            err,
            SubmitError::DimensionMismatch {
                expected: 2,
                found: 3
            }
        ));
        engine.shutdown();
    }

    #[test]
    fn batches_form_up_to_the_size_cap() {
        // Slow service + burst submission => later queries coalesce.
        let engine = toy_engine(
            Duration::from_millis(5),
            EngineConfig::new(BatchPolicy::new(16, Duration::from_millis(20))).with_workers(1),
        );
        let tickets: Vec<Ticket> = (0..64)
            .map(|i| engine.submit(vec![i as f32, 0.0]).unwrap())
            .collect();
        let max_batch = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().batch_size)
            .max()
            .unwrap();
        assert!(
            max_batch > 1,
            "burst traffic should batch (max {max_batch})"
        );
        assert!(max_batch <= 16, "batch cap respected (max {max_batch})");
        let report = engine.shutdown();
        assert_eq!(report.queries, 64);
        assert!(report.mean_batch_size > 1.0);
    }

    #[test]
    fn backpressure_rejects_when_saturated() {
        // One very slow worker and a tiny queue: try_submit must eventually
        // report QueueFull instead of blocking.
        let engine = toy_engine(
            Duration::from_millis(50),
            EngineConfig::new(BatchPolicy::new(1, Duration::ZERO))
                .with_workers(1)
                .with_queue_depth(2),
        );
        let mut accepted = Vec::new();
        let mut rejections = 0u64;
        for i in 0..64 {
            match engine.try_submit(vec![i as f32, 0.0]) {
                Ok(t) => accepted.push(t),
                Err(SubmitError::QueueFull) => rejections += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(rejections > 0, "saturated engine must shed load");
        for t in accepted {
            assert!(t.wait().is_some(), "accepted queries still complete");
        }
        let report = engine.shutdown();
        assert_eq!(report.rejected, rejections);
        assert_eq!(report.queries + report.rejected, 64);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let engine = toy_engine(
            Duration::from_millis(1),
            EngineConfig::new(BatchPolicy::new(8, Duration::from_micros(500))).with_workers(2),
        );
        let tickets: Vec<Ticket> = (0..200)
            .map(|i| engine.submit(vec![i as f32, 0.0]).unwrap())
            .collect();
        // Shut down immediately; every accepted query must still complete.
        let report = engine.shutdown();
        assert_eq!(report.queries, 200);
        for t in tickets {
            assert!(t.wait().is_some());
        }
    }

    #[test]
    fn slo_attainment_is_tracked() {
        let engine = toy_engine(
            Duration::ZERO,
            EngineConfig::new(BatchPolicy::low_latency()).with_slo_us(10_000_000.0),
        );
        for i in 0..20 {
            engine.submit(vec![i as f32, 0.0]).unwrap().wait().unwrap();
        }
        let report = engine.shutdown();
        let attainment = report.slo_attainment.expect("slo configured");
        assert!(
            attainment > 0.99,
            "10 s SLO should always be met: {attainment}"
        );
    }
}
