//! Sharded dispatch: scatter queries over dataset partitions, merge
//! per-shard top-K, and charge the LogGP network cost of the scatter/gather.
//!
//! This is the serving-side counterpart of the paper's scale-out methodology
//! (Figures 1 and 12): each shard owns one contiguous partition of the
//! database, every query fans out to all shards, and the reply is the
//! K best hits across partitions. [`ShardedBackend`] implements
//! [`SearchBackend`] itself, so a sharded deployment drops into the
//! [`crate::engine::QueryEngine`] unchanged — and because each shard is just
//! a `Box<dyn SearchBackend>`, a shard can itself be a
//! [`crate::replica::ReplicaSet`] of R replicas with least-loaded routing
//! and failover (see [`shard_replicated_cpu_backends`]).
//!
//! Each replica is served by a **persistent worker thread** spawned at
//! construction (not per batch): batches are scattered over per-shard job
//! queues and gathered through per-job reply channels, so steady-state
//! dispatch pays channel sends, not thread spawns.
//!
//! Every merged response carries a **modeled distributed latency** in
//! `simulated_us`: the slowest shard's latency (its cycle-model latency for
//! simulated backends, its measured batch service time for native ones)
//! plus the LogGP broadcast/reduce cost when a network model is attached.

use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;
use std::time::Instant;

use fanns_dataset::types::VectorDataset;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::search::TopK;
use fanns_scaleout::collective::distributed_query_network_us;
use fanns_scaleout::loggp::{query_message_bytes, result_message_bytes, LogGpParams};

use crate::backend::{BackendError, BackendResponse, CpuBackend, FlatBackend, SearchBackend};
use crate::replica::{ReplicaHealthConfig, ReplicaSet, ReplicaSetStats};
use crate::telemetry::{batch_traced, set_batch_traced, Stage, TelemetrySink};

/// One scattered batch handed to a shard worker.
struct ShardJob {
    /// Owned copy of the batch (the "scatter message" to the replica).
    queries: Vec<Vec<f32>>,
    /// Where the shard's partial answers go.
    reply: Sender<ShardReply>,
    /// The dispatching thread's tracing decision, captured at scatter time
    /// (the batch-traced flag is thread-local and the worker is another
    /// thread). `None` when the dispatcher saw no engine decision.
    traced: Option<bool>,
}

/// A shard worker's answer for one batch.
struct ShardReply {
    /// The shard's partial answers, or the failure that prevented them
    /// (e.g. every replica of the shard down).
    responses: Result<Vec<BackendResponse>, BackendError>,
    /// Wall time the replica spent serving this batch (µs).
    service_us: f64,
}

/// A persistent replica worker: owns one shard backend, serves jobs in order.
struct ShardWorker {
    tx: Option<SyncSender<ShardJob>>,
    handle: Option<JoinHandle<()>>,
}

impl ShardWorker {
    fn spawn(idx: usize, backend: Box<dyn SearchBackend>, sink: Option<TelemetrySink>) -> Self {
        let (tx, rx) = sync_channel::<ShardJob>(4);
        let handle = std::thread::Builder::new()
            .name(format!("fanns-serve-shard-{idx}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let refs: Vec<&[f32]> = job.queries.iter().map(Vec::as_slice).collect();
                    // Re-establish the dispatcher's tracing decision on this
                    // thread so the shard's own backend (and any replica set
                    // inside it) traces the same batches; no decision means
                    // self-sample.
                    let traced = match &sink {
                        Some(sink) => job.traced.unwrap_or_else(|| sink.self_sample()),
                        None => false,
                    };
                    if sink.is_some() {
                        set_batch_traced(traced);
                    }
                    let start = Instant::now();
                    let responses = backend.try_search_batch(&refs);
                    let end = Instant::now();
                    if sink.is_some() {
                        crate::telemetry::clear_batch_traced();
                    }
                    if let (Some(sink), true) = (&sink, traced) {
                        sink.record_range(Stage::ShardService, idx as u64, start, end);
                    }
                    let service_us = (end - start).as_secs_f64() * 1e6;
                    // The dispatcher may have given up on the batch; fine.
                    let _ = job.reply.send(ShardReply {
                        responses,
                        service_us,
                    });
                }
            })
            .expect("spawn shard worker thread");
        Self {
            tx: Some(tx),
            handle: Some(handle),
        }
    }
}

/// A set of shard replicas behind a scatter/gather dispatcher.
pub struct ShardedBackend {
    workers: Vec<ShardWorker>,
    /// Global id of each shard's local id 0.
    id_offsets: Vec<u32>,
    /// Network model for the scatter/gather; `None` models co-located shards
    /// (e.g. several kernels on one card) with zero network cost.
    network: Option<LogGpParams>,
    shard_name: String,
    dim: usize,
    k: usize,
}

impl ShardedBackend {
    /// Assembles a dispatcher over shard backends, spawning one persistent
    /// worker thread per replica.
    ///
    /// `id_offsets[p]` maps shard `p`'s local vector ids into the global id
    /// space (shard results are offset by it during the merge).
    ///
    /// # Panics
    /// Panics if no shards are given, if offsets and shards differ in length,
    /// or if the shards disagree on `dim` / `k`.
    pub fn new(
        shards: Vec<Box<dyn SearchBackend>>,
        id_offsets: Vec<u32>,
        network: Option<LogGpParams>,
    ) -> Self {
        Self::new_with_telemetry(shards, id_offsets, network, None)
    }

    /// [`ShardedBackend::new`] with a telemetry sink attached: each shard
    /// worker records a [`Stage::ShardService`] span per traced batch
    /// (worker threads are spawned here, so the sink must be supplied at
    /// construction). Traced batches follow the dispatching engine's
    /// sampling decision; driven standalone, workers self-sample at the
    /// sink's configured rate.
    ///
    /// # Panics
    /// Same conditions as [`ShardedBackend::new`].
    pub fn new_with_telemetry(
        shards: Vec<Box<dyn SearchBackend>>,
        id_offsets: Vec<u32>,
        network: Option<LogGpParams>,
        telemetry: Option<TelemetrySink>,
    ) -> Self {
        assert!(
            !shards.is_empty(),
            "sharded backend needs at least one shard"
        );
        assert_eq!(shards.len(), id_offsets.len(), "one id offset per shard");
        let dim = shards[0].dim();
        let k = shards[0].k();
        let shard_name = shards[0].name();
        for s in &shards {
            assert_eq!(s.dim(), dim, "shards must agree on dimensionality");
            assert_eq!(s.k(), k, "shards must agree on k");
        }
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(idx, backend)| ShardWorker::spawn(idx, backend, telemetry.clone()))
            .collect();
        Self {
            workers,
            id_offsets,
            network,
            shard_name,
            dim,
            k,
        }
    }

    /// Number of shard replicas.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The modeled network cost per distributed query (µs): binary-tree
    /// broadcast of the query plus binary-tree reduce of the partial top-K,
    /// from the paper's LogGP constants. Zero without a network model or with
    /// a single shard.
    pub fn network_us_per_query(&self) -> f64 {
        match &self.network {
            Some(net) => distributed_query_network_us(
                net,
                self.workers.len(),
                query_message_bytes(self.dim),
                result_message_bytes(self.k),
            ),
            None => 0.0,
        }
    }

    /// Merges per-shard responses for one query into the global top-K.
    ///
    /// The modeled distributed latency is the slowest shard's latency — its
    /// cycle-model latency when the shard simulates hardware, otherwise its
    /// measured batch service time — plus the network cost. It is reported
    /// whenever a network model is attached or any shard simulates.
    fn merge(&self, per_shard: &[(BackendResponse, f64)]) -> BackendResponse {
        let mut topk = TopK::new(self.k);
        for (shard_idx, (resp, _)) in per_shard.iter().enumerate() {
            let offset = self.id_offsets[shard_idx];
            for hit in &resp.results {
                topk.push(hit.distance, hit.id + offset);
            }
        }
        let any_simulated = per_shard.iter().any(|(r, _)| r.simulated_us.is_some());
        let simulated_us = if any_simulated || self.network.is_some() {
            let slowest = per_shard
                .iter()
                .map(|(r, service_us)| r.simulated_us.unwrap_or(*service_us))
                .fold(0.0f64, f64::max);
            Some(slowest + self.network_us_per_query())
        } else {
            None
        };
        BackendResponse {
            results: topk.into_sorted(),
            simulated_us,
        }
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        // Close the job queues, then join the replica threads.
        for w in &mut self.workers {
            drop(w.tx.take());
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl SearchBackend for ShardedBackend {
    fn name(&self) -> String {
        let net = if self.network.is_some() {
            "loggp"
        } else {
            "local"
        };
        format!(
            "sharded[{}x {} | {net}]",
            self.workers.len(),
            self.shard_name
        )
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn k(&self) -> usize {
        self.k
    }

    /// Infallible path: panics if any shard fails the batch outright (use
    /// [`SearchBackend::try_search_batch`] when shards can fail, e.g. when
    /// they are replica sets under fault injection).
    fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
        self.try_search_batch(queries)
            .expect("a shard failed the batch")
    }

    fn try_search_batch(&self, queries: &[&[f32]]) -> Result<Vec<BackendResponse>, BackendError> {
        // Capture this thread's tracing decision so shard workers (separate
        // threads) can re-establish it around their backend calls.
        let traced = batch_traced();
        // Scatter: hand the batch to every replica's persistent worker.
        let receivers: Vec<Receiver<ShardReply>> = self
            .workers
            .iter()
            .map(|worker| {
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                let job = ShardJob {
                    queries: queries.iter().map(|q| q.to_vec()).collect(),
                    reply: reply_tx,
                    traced,
                };
                worker
                    .tx
                    .as_ref()
                    .expect("shard worker alive while backend exists")
                    .send(job)
                    .expect("shard worker accepts jobs");
                reply_rx
            })
            .collect();

        // Gather: collect every replica's partial answers (shard order). A
        // query's global top-K needs *every* partition, so one failed shard
        // fails the batch — replication below the shard (a ReplicaSet per
        // shard) is the layer that absorbs individual replica faults.
        let mut per_shard: Vec<(Vec<BackendResponse>, f64)> =
            Vec::with_capacity(self.workers.len());
        for (idx, rx) in receivers.into_iter().enumerate() {
            let reply = rx.recv().expect("shard worker replies");
            let responses = reply
                .responses
                .map_err(|e| BackendError::new(self.name(), format!("shard {idx} failed: {e}")))?;
            if responses.len() != queries.len() {
                return Err(BackendError::new(
                    self.name(),
                    format!(
                        "shard {idx} returned {} responses for a batch of {}",
                        responses.len(),
                        queries.len()
                    ),
                ));
            }
            per_shard.push((responses, reply.service_us));
        }

        // Merge the partial top-K lists per query.
        Ok((0..queries.len())
            .map(|q| {
                let partials: Vec<(BackendResponse, f64)> = per_shard
                    .iter()
                    .map(|(responses, service_us)| (responses[q].clone(), *service_us))
                    .collect();
                self.merge(&partials)
            })
            .collect())
    }
}

/// Partitions a dataset into `parts` contiguous shards and returns the
/// per-shard datasets together with their global id offsets.
pub fn partition_with_offsets(
    database: &VectorDataset,
    parts: usize,
) -> (Vec<VectorDataset>, Vec<u32>) {
    let shards = database.shard(parts);
    let mut offsets = Vec::with_capacity(parts);
    let mut start = 0u32;
    for shard in &shards {
        offsets.push(start);
        start += shard.len() as u32;
    }
    (shards, offsets)
}

/// Builds a sharded deployment of CPU IVF-PQ replicas: each shard trains its
/// own index on its partition with `train`, then serves with `params`.
pub fn shard_cpu_backends(
    database: &VectorDataset,
    parts: usize,
    train: &IvfPqTrainConfig,
    params: IvfPqParams,
    network: Option<LogGpParams>,
) -> ShardedBackend {
    let (datasets, offsets) = partition_with_offsets(database, parts);
    let shards: Vec<Box<dyn SearchBackend>> = datasets
        .iter()
        .map(|shard| {
            let index = IvfPqIndex::build(shard, train);
            Box::new(CpuBackend::new(index, params)) as Box<dyn SearchBackend>
        })
        .collect();
    ShardedBackend::new(shards, offsets, network)
}

/// Builds the full replicated + sharded deployment: the database is split
/// into `parts` partitions, each partition trains one CPU IVF-PQ index, and
/// each index is served by a [`ReplicaSet`] of `replicas` slots (sharing the
/// in-memory index) with least-loaded routing and failover. Queries scatter
/// over shards (paying the LogGP fan-out cost when `network` is set) and,
/// within a shard, route to the least-loaded healthy replica.
///
/// Returns the dispatcher plus one live [`ReplicaSetStats`] handle per shard
/// — keep them to fold failover counts and per-replica utilization into the
/// final report via [`crate::metrics::ServeReport::with_replica_stats`].
pub fn shard_replicated_cpu_backends(
    database: &VectorDataset,
    parts: usize,
    replicas: usize,
    train: &IvfPqTrainConfig,
    params: IvfPqParams,
    health: ReplicaHealthConfig,
    network: Option<LogGpParams>,
) -> (ShardedBackend, Vec<ReplicaSetStats>) {
    let (datasets, offsets) = partition_with_offsets(database, parts);
    let mut stats = Vec::with_capacity(parts);
    let shards: Vec<Box<dyn SearchBackend>> = datasets
        .iter()
        .map(|shard| {
            let index = IvfPqIndex::build(shard, train);
            let executor: std::sync::Arc<dyn SearchBackend> =
                std::sync::Arc::new(CpuBackend::new(index, params));
            let set = ReplicaSet::replicate_shared(executor, replicas, health, network);
            stats.push(set.stats());
            Box::new(set) as Box<dyn SearchBackend>
        })
        .collect();
    (ShardedBackend::new(shards, offsets, network), stats)
}

/// Builds a sharded deployment of exact flat replicas (the correctness
/// reference: the merged result of exact shards equals exact global search).
pub fn shard_flat_backends(
    database: &VectorDataset,
    parts: usize,
    k: usize,
    network: Option<LogGpParams>,
) -> ShardedBackend {
    let (datasets, offsets) = partition_with_offsets(database, parts);
    let shards: Vec<Box<dyn SearchBackend>> = datasets
        .into_iter()
        .map(|shard| {
            Box::new(FlatBackend::new(fanns_ivf::flat::FlatIndex::new(shard), k))
                as Box<dyn SearchBackend>
        })
        .collect();
    ShardedBackend::new(shards, offsets, network)
}

/// Extracts plain global-id lists from responses (for recall evaluation).
pub fn ids_only(responses: &[BackendResponse]) -> Vec<Vec<usize>> {
    responses
        .iter()
        .map(|r| r.results.iter().map(|h| h.id as usize).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::synth::SyntheticSpec;
    use fanns_ivf::flat::FlatIndex;

    #[test]
    fn sharded_flat_equals_global_flat() {
        let (db, queries) = SyntheticSpec::sift_small(93).generate();
        let global = FlatIndex::new(db.clone());
        let sharded = shard_flat_backends(&db, 4, 10, None);
        assert_eq!(sharded.num_shards(), 4);
        let qs: Vec<&[f32]> = (0..16).map(|i| queries.get(i)).collect();
        let merged = sharded.search_batch(&qs);
        for (i, q) in qs.iter().enumerate() {
            let expect = global.search(q, 10);
            assert_eq!(merged[i].results, expect, "query {i}");
        }
    }

    #[test]
    fn network_cost_appears_only_with_a_model() {
        let (db, _) = SyntheticSpec::sift_small(94).generate();
        let local = shard_flat_backends(&db, 4, 10, None);
        assert_eq!(local.network_us_per_query(), 0.0);
        let networked = shard_flat_backends(&db, 4, 10, Some(LogGpParams::paper_infiniband()));
        assert!(networked.network_us_per_query() > 0.0);
    }

    #[test]
    fn native_shards_with_network_report_modeled_latency() {
        // CPU/flat replicas have no cycle model, but with a network attached
        // the merged response must still carry the modeled distributed
        // latency: measured shard service time plus the LogGP fan-out cost.
        let (db, queries) = SyntheticSpec::sift_small(97).generate();
        let networked = shard_flat_backends(&db, 4, 10, Some(LogGpParams::paper_infiniband()));
        let net_us = networked.network_us_per_query();
        let qs: Vec<&[f32]> = (0..4).map(|i| queries.get(i)).collect();
        for resp in networked.search_batch(&qs) {
            let modeled = resp.simulated_us.expect("modeled latency present");
            assert!(
                modeled >= net_us,
                "modeled {modeled} must include network {net_us}"
            );
        }
        // Without a network, native shards stay native: no modeled latency.
        let local = shard_flat_backends(&db, 2, 10, None);
        for resp in local.search_batch(&qs) {
            assert!(resp.simulated_us.is_none());
        }
    }

    #[test]
    fn repeated_batches_reuse_the_same_workers() {
        // Persistent replica threads: many small batches must work and stay
        // consistent (this is the serving engine's steady-state pattern).
        let (db, queries) = SyntheticSpec::sift_small(98).generate();
        let sharded = shard_flat_backends(&db, 3, 5, None);
        let global = FlatIndex::new(db);
        for i in 0..32 {
            let q = queries.get(i % queries.len());
            let resp = sharded.search_batch(&[q]);
            assert_eq!(resp[0].results, global.search(q, 5), "batch {i}");
        }
    }

    #[test]
    fn replicated_shards_match_unreplicated_results() {
        // Replication must be invisible to correctness: the same partitions
        // behind 1x and 3x replicas return identical merged top-K, and the
        // stats handles stay live after the dispatcher takes ownership.
        let (db, queries) = SyntheticSpec::sift_small(99).generate();
        let train = fanns_ivf::index::IvfPqTrainConfig::new(8)
            .with_m(8)
            .with_ksub(32)
            .with_train_sample(1_000);
        let params = fanns_ivf::params::IvfPqParams::new(8, 4, 5).with_m(8);
        let plain = shard_cpu_backends(&db, 2, &train, params, None);
        let (replicated, stats) = shard_replicated_cpu_backends(
            &db,
            2,
            3,
            &train,
            params,
            ReplicaHealthConfig::default(),
            None,
        );
        assert_eq!(stats.len(), 2, "one stats handle per shard");
        assert_eq!(stats[0].num_replicas(), 3);
        let qs: Vec<&[f32]> = (0..8).map(|i| queries.get(i)).collect();
        assert_eq!(replicated.search_batch(&qs), plain.search_batch(&qs));
        let served: u64 = stats.iter().map(|s| s.completed_queries()).sum();
        // Every query fans out to both shards: 8 queries x 2 shards.
        assert_eq!(served, 16);
        assert_eq!(stats.iter().map(|s| s.failovers()).sum::<u64>(), 0);
    }

    #[test]
    fn offsets_partition_the_id_space() {
        let (db, _) = SyntheticSpec::sift_small(95).generate();
        let (shards, offsets) = partition_with_offsets(&db, 3);
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[1] as usize, shards[0].len());
        assert_eq!(
            offsets[2] as usize + shards[2].len(),
            db.len(),
            "offsets + sizes must cover the dataset"
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_offsets_are_rejected() {
        let (db, _) = SyntheticSpec::sift_small(96).generate();
        let (datasets, _) = partition_with_offsets(&db, 2);
        let shards: Vec<Box<dyn SearchBackend>> = datasets
            .into_iter()
            .map(|d| Box::new(FlatBackend::new(FlatIndex::new(d), 5)) as Box<dyn SearchBackend>)
            .collect();
        let _ = ShardedBackend::new(shards, vec![0], None);
    }
}
