//! The mutable serving path: a [`SearchBackend`] over a
//! [`SegmentedIndex`] plus a background [`Compactor`].
//!
//! [`MutableBackend`] is the serving adapter for the segmented mutable IVF
//! layer (`fanns_ivf::segmented`, see `docs/MUTATION.md`): searches fan out
//! across the sealed segments + write segment with tombstone filtering, and
//! the [`SearchBackend::insert`] / [`SearchBackend::delete`] hooks are live.
//!
//! # Cache coherence
//!
//! When a [`QueryResultCache`] is attached, the backend keeps it coherent
//! with the index by advancing the cache generation:
//!
//! * **delete** — a cached reply might contain the tombstoned id, so serving
//!   it would violate the no-resurrection invariant; the cache is
//!   invalidated for *safety*.
//! * **insert** — a cached reply can never contain a wrong id, but it may
//!   omit a closer, newly inserted vector; the cache is invalidated for
//!   *freshness* (matching the "findable by the very next search" contract).
//! * **compaction swap** — sealed-segment distances are preserved
//!   bit-identically, but write-segment vectors transition exact → ADC, so
//!   replies computed before the swap are not reproducible after it; the
//!   cache is invalidated on every non-skipped compaction.
//!
//! The engine's stale-generation insert discard (see
//! [`QueryResultCache::insert`]) closes the race with in-flight queries:
//! a reply computed against the pre-mutation index cannot repopulate the
//! post-mutation cache.
//!
//! # Telemetry
//!
//! Traced queries record one [`Stage::SegmentScan`] span (the whole
//! fan-out-and-merge); every compaction records a [`Stage::Compact`]
//! infrastructure span, like the `index_map`/`index_warm` cold-start spans.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fanns_ivf::params::IvfPqParams;
use fanns_ivf::search::SearchResult;
use fanns_ivf::segmented::{CompactionReport, SegmentedIndex};
use fanns_ivf::simd::{default_kernel, ScanKernel, ScanScratch};

use crate::backend::{BackendResponse, SearchBackend};
use crate::cache::QueryResultCache;
use crate::telemetry::{batch_traced, Stage, TelemetrySink};

/// A [`SearchBackend`] serving live queries out of a [`SegmentedIndex`],
/// with live insert/delete and compaction-aware cache invalidation.
pub struct MutableBackend {
    index: Arc<SegmentedIndex>,
    params: IvfPqParams,
    kernel: Option<ScanKernel>,
    telemetry: Option<TelemetrySink>,
    cache: Option<Arc<QueryResultCache>>,
}

impl std::fmt::Debug for MutableBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutableBackend")
            .field("index", &self.index)
            .field("params", &self.params)
            .field("kernel", &self.kernel)
            .finish()
    }
}

impl MutableBackend {
    /// Binds a shared segmented index to query-time parameters.
    ///
    /// # Panics
    /// Panics if `params.nlist` / `params.m` do not match the index.
    pub fn new(index: Arc<SegmentedIndex>, params: IvfPqParams) -> Self {
        assert_eq!(
            params.nlist,
            index.nlist(),
            "params.nlist must match the index"
        );
        assert_eq!(params.m, index.m(), "params.m must match the index");
        Self {
            index,
            params,
            kernel: None,
            telemetry: None,
            cache: None,
        }
    }

    /// Builder-style scan-kernel pin for the sealed-segment ADC scans (the
    /// write segment is always scanned exactly, kernel-independent).
    pub fn with_kernel(mut self, kernel: ScanKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Builder-style telemetry attach: traced queries record one
    /// [`Stage::SegmentScan`] span; compactions record [`Stage::Compact`].
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Builder-style result-cache attach. The backend advances the cache
    /// generation on every insert, delete and compaction swap (see the
    /// module docs), keeping cached replies coherent with the live index.
    /// Pass the *same* `Arc` the engine consults
    /// ([`crate::QueryEngine::start_with_cache`]).
    pub fn with_result_cache(mut self, cache: Arc<QueryResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The served segmented index.
    pub fn index(&self) -> &Arc<SegmentedIndex> {
        &self.index
    }

    /// The bound parameters.
    pub fn params(&self) -> IvfPqParams {
        self.params
    }

    /// The ADC scan kernel the sealed-segment scans execute.
    pub fn kernel(&self) -> ScanKernel {
        self.kernel.unwrap_or_else(default_kernel)
    }

    /// Runs one compaction on the served index (seal + merge + swap),
    /// recording a [`Stage::Compact`] span and invalidating the attached
    /// result cache when a swap actually happened. Safe to call from any
    /// thread; concurrent calls serialize inside the index.
    pub fn compact(&self) -> CompactionReport {
        let t0 = Instant::now();
        let report = self.index.compact();
        let t1 = Instant::now();
        if let Some(sink) = &self.telemetry {
            let id = sink.next_id();
            sink.record_range(Stage::Compact, id, t0, t1);
        }
        if !report.skipped {
            if let Some(cache) = &self.cache {
                cache.invalidate_all();
            }
        }
        report
    }

    fn search_one(&self, query: &[f32], scratch: &mut ScanScratch) -> Vec<SearchResult> {
        self.index.search_with_kernel(
            query,
            self.params.k,
            self.params.effective_nprobe(),
            self.kernel(),
            scratch,
        )
    }
}

impl SearchBackend for MutableBackend {
    fn name(&self) -> String {
        format!(
            "mutable-ivfpq({}, nprobe={}, scan={})",
            self.params.index_label(),
            self.params.effective_nprobe(),
            self.kernel()
        )
    }

    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn k(&self) -> usize {
        self.params.k
    }

    fn search_batch(&self, queries: &[&[f32]]) -> Vec<BackendResponse> {
        let traced = self.telemetry.as_ref().and_then(|sink| {
            let on = batch_traced().unwrap_or_else(|| sink.self_sample());
            on.then_some(sink)
        });
        let mut scratch = ScanScratch::new();
        queries
            .iter()
            .map(|q| {
                let results = match traced {
                    Some(sink) => {
                        let qid = sink.next_id();
                        let t0 = Instant::now();
                        let results = self.search_one(q, &mut scratch);
                        sink.record_range(Stage::SegmentScan, qid, t0, Instant::now());
                        results
                    }
                    None => self.search_one(q, &mut scratch),
                };
                BackendResponse {
                    results,
                    simulated_us: None,
                }
            })
            .collect()
    }

    fn supports_mutation(&self) -> bool {
        true
    }

    fn insert(&self, vector: &[f32]) -> Option<u32> {
        let id = self.index.insert(vector);
        if let Some(cache) = &self.cache {
            // Freshness: a cached reply may omit the new, closer vector.
            cache.invalidate_all();
        }
        Some(id)
    }

    fn delete(&self, id: u32) -> bool {
        let deleted = self.index.delete(id);
        if deleted {
            if let Some(cache) = &self.cache {
                // Safety: a cached reply may contain the tombstoned id.
                cache.invalidate_all();
            }
        }
        deleted
    }
}

/// A background thread that periodically compacts a [`MutableBackend`]'s
/// index whenever its policy advises it
/// ([`SegmentedIndex::needs_compaction`]), mirroring how serving systems run
/// merges off the query path.
pub struct Compactor {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl std::fmt::Debug for Compactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compactor")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Compactor {
    /// Spawns the compaction thread: every `interval` it checks
    /// [`SegmentedIndex::needs_compaction`] and, when advised, runs
    /// [`MutableBackend::compact`] (telemetry + cache invalidation
    /// included).
    pub fn start(backend: Arc<MutableBackend>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fanns-compactor".into())
            .spawn(move || {
                let mut performed = 0u64;
                while !stop_flag.load(Ordering::Acquire) {
                    if backend.index().needs_compaction() && !backend.compact().skipped {
                        performed += 1;
                    }
                    // Sleep in short slices so stop() returns promptly.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !stop_flag.load(Ordering::Acquire) {
                        let slice = remaining.min(Duration::from_millis(5));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
                performed
            })
            .expect("spawn compactor thread");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread to exit and joins it, returning how many
    /// compactions it performed.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        match self.handle.take() {
            Some(h) => h.join().expect("compactor thread panicked"),
            None => 0,
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{QueryResultCache, ResultCacheConfig};
    use fanns_dataset::synth::SyntheticSpec;
    use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
    use fanns_ivf::segmented::SegmentedConfig;

    fn build_backend() -> (fanns_dataset::types::QuerySet, MutableBackend) {
        let (db, queries) = SyntheticSpec::sift_small(71).generate();
        let index = IvfPqIndex::build(
            &db,
            &IvfPqTrainConfig::new(8)
                .with_m(8)
                .with_ksub(16)
                .with_train_sample(1_000),
        );
        let segmented = Arc::new(SegmentedIndex::new(
            index,
            SegmentedConfig::default().with_seal_threshold(32),
        ));
        let params = IvfPqParams::new(8, 8, 10).with_m(8);
        (queries, MutableBackend::new(segmented, params))
    }

    #[test]
    fn mutation_hooks_are_live_and_results_filter_deletes() {
        let (queries, backend) = build_backend();
        assert!(backend.supports_mutation());
        let probe = queries.get(0).to_vec();
        let id = backend.insert(&probe).expect("mutable backend inserts");
        let got = backend.search_batch(&[&probe]);
        assert_eq!(got[0].results[0].id, id);
        assert!(backend.delete(id));
        assert!(!backend.delete(id));
        let got = backend.search_batch(&[&probe]);
        assert!(got[0].results.iter().all(|r| r.id != id));
    }

    #[test]
    fn immutable_backends_reject_mutation() {
        let (db, _) = SyntheticSpec::sift_small(72).generate();
        let index = IvfPqIndex::build(
            &db,
            &IvfPqTrainConfig::new(8)
                .with_m(8)
                .with_ksub(16)
                .with_train_sample(1_000),
        );
        let cpu = crate::backend::CpuBackend::new(index, IvfPqParams::new(8, 4, 10).with_m(8));
        assert!(!cpu.supports_mutation());
        assert_eq!(cpu.insert(&vec![0.0; cpu.dim()]), None);
        assert!(!cpu.delete(0));
    }

    #[test]
    fn mutations_and_compaction_advance_cache_generation() {
        let (queries, backend) = build_backend();
        let cache = Arc::new(QueryResultCache::new(ResultCacheConfig::new(64)));
        let backend = MutableBackend::new(Arc::clone(backend.index()), backend.params())
            .with_result_cache(Arc::clone(&cache));

        let g0 = cache.generation();
        let id = backend.insert(queries.get(0)).unwrap();
        assert!(cache.generation() > g0, "insert must invalidate");
        let g1 = cache.generation();
        assert!(backend.delete(id));
        assert!(cache.generation() > g1, "delete must invalidate");
        let g2 = cache.generation();
        let report = backend.compact();
        assert!(!report.skipped);
        assert!(cache.generation() > g2, "compaction swap must invalidate");
        let g3 = cache.generation();
        assert!(backend.compact().skipped);
        assert_eq!(cache.generation(), g3, "skipped compaction must not");
    }

    #[test]
    fn compactor_compacts_in_background() {
        let (queries, backend) = build_backend();
        let backend = Arc::new(backend);
        let compactor = Compactor::start(Arc::clone(&backend), Duration::from_millis(1));
        // Push the write segment past its seal threshold (32).
        for i in 0..64 {
            backend.insert(queries.get(i % queries.len()));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while backend.index().stats().compactions == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let performed = compactor.stop();
        assert!(performed >= 1, "compactor must have compacted");
        assert!(backend.index().stats().generation >= 1);
        assert_eq!(backend.index().live(), 1_064);
    }
}
