//! IVF-PQ index construction.
//!
//! An [`IvfPqIndex`] holds:
//! * the coarse quantizer — `nlist` Voronoi cell centroids trained with
//!   k-means (§2.1.1),
//! * an optional OPQ rotation applied to every vector before quantization,
//! * the product quantizer (`m`-byte codes, §2.1.2),
//! * `nlist` inverted lists, each storing the PQ codes and original ids of
//!   the vectors assigned to that cell.
//!
//! The same structure is consumed by the CPU search path (`search.rs`), by
//! the hardware simulator (which reads the inverted lists as its HBM
//! contents), and by the performance model (which needs the list-size
//! distribution to estimate the expected number of codes scanned per query).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use fanns_dataset::types::VectorDataset;
use fanns_quantize::kmeans::{KMeans, KMeansConfig};
use fanns_quantize::opq::{train_opq, OpqConfig, OpqTransform};
use fanns_quantize::pq::{PqConfig, ProductQuantizer};

use crate::simd::CodeSlab;

/// One inverted list: the ids and PQ codes of the vectors in one Voronoi cell.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InvertedList {
    /// Original database ids, in insertion order.
    pub ids: Vec<u32>,
    /// Flat `len × m` PQ code buffer, matching `ids`.
    pub codes: Vec<u8>,
}

impl InvertedList {
    /// Number of vectors stored in this list.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Training configuration for an IVF-PQ index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvfPqTrainConfig {
    /// Number of Voronoi cells.
    pub nlist: usize,
    /// Number of PQ sub-quantizers (bytes per code). The paper uses 16.
    pub m: usize,
    /// PQ codebook size per sub-space (256 in the paper; smaller in tests).
    pub ksub: usize,
    /// Whether to train and apply an OPQ rotation.
    pub use_opq: bool,
    /// Maximum number of training vectors sampled for k-means/PQ training.
    pub train_sample: usize,
    /// k-means iterations for the coarse quantizer.
    pub coarse_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl IvfPqTrainConfig {
    /// Reasonable defaults for a given `nlist`, mirroring the paper's setup
    /// (m=16, 256-entry codebooks, no OPQ).
    pub fn new(nlist: usize) -> Self {
        Self {
            nlist,
            m: 16,
            ksub: 256,
            use_opq: false,
            train_sample: 65_536,
            coarse_iters: 15,
            seed: 0xFA1715,
        }
    }

    /// Builder-style OPQ toggle.
    pub fn with_opq(mut self, use_opq: bool) -> Self {
        self.use_opq = use_opq;
        self
    }

    /// Builder-style `m` override.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Builder-style codebook-size override (useful for fast tests).
    pub fn with_ksub(mut self, ksub: usize) -> Self {
        self.ksub = ksub;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style training-sample-size override.
    pub fn with_train_sample(mut self, n: usize) -> Self {
        self.train_sample = n;
        self
    }
}

/// A trained and populated IVF-PQ index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IvfPqIndex {
    dim: usize,
    coarse: KMeans,
    opq: Option<OpqTransform>,
    pq: ProductQuantizer,
    lists: Vec<InvertedList>,
    /// Per-list 64-byte-aligned block-transposed code mirrors — the layout
    /// the SIMD scan kernels stream (`lists[c].codes` stays the canonical
    /// row-major form the hardware simulator and serializers read).
    slabs: Vec<CodeSlab>,
    ntotal: usize,
    config: IvfPqTrainConfig,
}

impl IvfPqIndex {
    /// Trains the quantizers on (a sample of) `dataset` and populates the
    /// inverted lists with every vector of `dataset`.
    pub fn build(dataset: &VectorDataset, config: &IvfPqTrainConfig) -> Self {
        let mut index = Self::train(dataset, config);
        index.add(dataset, 0);
        index
    }

    /// Trains the coarse quantizer, PQ and (optionally) OPQ without adding
    /// any database vectors.
    pub fn train(dataset: &VectorDataset, config: &IvfPqTrainConfig) -> Self {
        assert!(
            !dataset.is_empty(),
            "cannot train an index on an empty dataset"
        );
        assert!(config.nlist > 0, "nlist must be positive");
        let dim = dataset.dim();
        assert!(
            dim.is_multiple_of(config.m),
            "dimension {dim} not divisible by m={}",
            config.m
        );

        let training = fanns_dataset::sampling::sample_training_set(
            dataset,
            config.train_sample,
            config.seed ^ 0xA5A5,
        );

        // Optional OPQ rotation, trained on the raw sample.
        let (opq, rotated_training) = if config.use_opq {
            let opq_cfg = OpqConfig {
                pq: PqConfig {
                    m: config.m,
                    ksub: config.ksub,
                    train_iters: 10,
                    seed: config.seed,
                },
                outer_iters: 3,
                random_init: false,
                seed: config.seed,
            };
            let trained = train_opq(training.as_flat(), dim, &opq_cfg);
            let rotated = trained.transform.apply_all(training.as_flat());
            (Some(trained.transform), rotated)
        } else {
            (None, training.as_flat().to_vec())
        };

        // Coarse quantizer on the (possibly rotated) training sample.
        let coarse_cfg = KMeansConfig {
            k: config.nlist,
            max_iters: config.coarse_iters,
            tol: 1e-4,
            seed: config.seed ^ 0x1157,
            plus_plus_init: true,
        };
        let coarse = KMeans::train(&rotated_training, dim, &coarse_cfg);

        // Product quantizer on residual-free rotated vectors. (The paper's
        // setup, like Faiss' IVFPQ with `by_residual = false` on these
        // benchmarks, quantizes the vectors directly; this keeps Stage
        // BuildLUT independent of the probed cell, matching the hardware.)
        let pq_cfg = PqConfig {
            m: config.m,
            ksub: config.ksub,
            train_iters: 12,
            seed: config.seed ^ 0x90AB,
        };
        let pq = ProductQuantizer::train(&rotated_training, dim, &pq_cfg);

        Self {
            dim,
            coarse,
            opq,
            pq,
            lists: vec![InvertedList::default(); config.nlist],
            slabs: vec![CodeSlab::from_codes(&[], config.m); config.nlist],
            ntotal: 0,
            config: *config,
        }
    }

    /// Reassembles an index from already-validated parts (the storage
    /// loader's path back to a heap-owned index). Slabs are rebuilt from the
    /// canonical codes.
    pub(crate) fn from_parts(
        dim: usize,
        coarse: KMeans,
        opq: Option<OpqTransform>,
        pq: ProductQuantizer,
        lists: Vec<InvertedList>,
        ntotal: usize,
        config: IvfPqTrainConfig,
    ) -> Self {
        let m = pq.m();
        let slabs = lists
            .iter()
            .map(|l| CodeSlab::from_codes(&l.codes, m))
            .collect();
        Self {
            dim,
            coarse,
            opq,
            pq,
            lists,
            slabs,
            ntotal,
            config,
        }
    }

    /// Writes the index to `path` in the on-disk storage format, returning
    /// the number of bytes written. See [`crate::storage`].
    pub fn write_index(&self, path: &std::path::Path) -> Result<u64, crate::storage::StorageError> {
        crate::storage::write_index(self, path)
    }

    /// Opens an index previously written with [`IvfPqIndex::write_index`] as
    /// a zero-copy [`crate::storage::MappedIndex`].
    pub fn open_index(
        path: &std::path::Path,
    ) -> Result<crate::storage::MappedIndex, crate::storage::StorageError> {
        crate::storage::open_index(path)
    }

    /// Adds every vector of `dataset` to the index. Ids are assigned
    /// sequentially starting at `id_offset`.
    pub fn add(&mut self, dataset: &VectorDataset, id_offset: usize) {
        assert_eq!(dataset.dim(), self.dim, "dataset dimensionality mismatch");
        let n = dataset.len();
        if n == 0 {
            return;
        }

        // Rotate (if OPQ), assign to cells and encode, all in parallel.
        let prepared: Vec<(usize, Vec<u8>)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let raw = dataset.get(i);
                let rotated;
                let v: &[f32] = match &self.opq {
                    Some(t) => {
                        rotated = t.apply(raw);
                        &rotated
                    }
                    None => raw,
                };
                let (cell, _) = self.coarse.assign(v);
                let code = self.pq.encode(v);
                (cell, code)
            })
            .collect();

        let mut touched = vec![false; self.lists.len()];
        for (i, (cell, code)) in prepared.into_iter().enumerate() {
            let list = &mut self.lists[cell];
            list.ids.push((id_offset + i) as u32);
            list.codes.extend_from_slice(&code);
            touched[cell] = true;
        }
        self.ntotal += n;
        // Refresh the transposed scan mirrors of every list that grew.
        let m = self.pq.m();
        for (cell, touched) in touched.into_iter().enumerate() {
            if touched {
                self.slabs[cell] = CodeSlab::from_codes(&self.lists[cell].codes, m);
            }
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of Voronoi cells.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Number of PQ sub-quantizers (code bytes).
    pub fn m(&self) -> usize {
        self.pq.m()
    }

    /// Total number of indexed vectors.
    pub fn ntotal(&self) -> usize {
        self.ntotal
    }

    /// Whether the index applies an OPQ rotation.
    pub fn has_opq(&self) -> bool {
        self.opq.is_some()
    }

    /// The training configuration the index was built with.
    pub fn config(&self) -> &IvfPqTrainConfig {
        &self.config
    }

    /// The coarse quantizer.
    pub fn coarse(&self) -> &KMeans {
        &self.coarse
    }

    /// The OPQ transform, if any.
    pub fn opq(&self) -> Option<&OpqTransform> {
        self.opq.as_ref()
    }

    /// The product quantizer.
    pub fn pq(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// Borrow inverted list `cell`.
    pub fn list(&self, cell: usize) -> &InvertedList {
        &self.lists[cell]
    }

    /// Borrow the block-transposed scan slab of cell `cell` (same codes as
    /// [`IvfPqIndex::list`], laid out for the SIMD kernels — see
    /// [`crate::simd::slab`]).
    pub fn slab(&self, cell: usize) -> &CodeSlab {
        &self.slabs[cell]
    }

    /// Size in bytes of the transposed scan mirrors (tail padding included)
    /// — the extra resident memory the SIMD data plane costs.
    pub fn slab_bytes(&self) -> usize {
        self.slabs.iter().map(|s| s.nbytes()).sum()
    }

    /// Sizes of every inverted list.
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(|l| l.len()).collect()
    }

    /// Size in bytes of the PQ-coded database (what must fit in accelerator
    /// device memory).
    pub fn code_bytes(&self) -> usize {
        self.ntotal * self.m()
    }

    /// Size in bytes of the coarse centroid table (the IVF index that may be
    /// cached on-chip or spilled to HBM — a hardware design choice in Table 2).
    pub fn centroid_bytes(&self) -> usize {
        self.nlist() * self.dim * std::mem::size_of::<f32>()
    }

    /// The imbalance factor `nlist · Σ len²  / ntotal²` (1.0 = perfectly
    /// balanced lists). Large values mean some cells are much more populated,
    /// which raises the expected scan cost.
    pub fn imbalance_factor(&self) -> f64 {
        if self.ntotal == 0 {
            return 1.0;
        }
        let sum_sq: f64 = self.lists.iter().map(|l| (l.len() as f64).powi(2)).sum();
        self.nlist() as f64 * sum_sq / (self.ntotal as f64).powi(2)
    }

    /// Expected number of PQ codes scanned per query for a given `nprobe`,
    /// assuming the query distribution matches the database distribution
    /// (the assumption the paper's performance model makes in §6.3): cells
    /// containing more vectors are proportionally more likely to be probed.
    pub fn expected_scanned_codes(&self, nprobe: usize) -> f64 {
        if self.ntotal == 0 {
            return 0.0;
        }
        let nprobe = nprobe.min(self.nlist()).max(1);
        // E[codes] = nprobe * Σ_c p_c · len_c with p_c = len_c / ntotal equals
        // nprobe · ntotal / nlist · imbalance_factor.
        let balanced = self.ntotal as f64 / self.nlist() as f64;
        nprobe as f64 * balanced * self.imbalance_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::synth::SyntheticSpec;

    fn tiny_config(nlist: usize) -> IvfPqTrainConfig {
        IvfPqTrainConfig::new(nlist)
            .with_m(8)
            .with_ksub(16)
            .with_train_sample(1_000)
            .with_seed(77)
    }

    #[test]
    fn build_populates_all_vectors() {
        let (db, _) = SyntheticSpec::sift_small(5).generate();
        let index = IvfPqIndex::build(&db, &tiny_config(16));
        assert_eq!(index.ntotal(), db.len());
        assert_eq!(index.nlist(), 16);
        assert_eq!(index.list_sizes().iter().sum::<usize>(), db.len());
        assert_eq!(index.code_bytes(), db.len() * 8);
    }

    #[test]
    fn ids_are_unique_and_cover_the_range() {
        let (db, _) = SyntheticSpec::sift_small(6).generate();
        let index = IvfPqIndex::build(&db, &tiny_config(8));
        let mut all_ids: Vec<u32> = (0..index.nlist())
            .flat_map(|c| index.list(c).ids.clone())
            .collect();
        all_ids.sort_unstable();
        let expected: Vec<u32> = (0..db.len() as u32).collect();
        assert_eq!(all_ids, expected);
    }

    #[test]
    fn list_codes_match_ids_times_m() {
        let (db, _) = SyntheticSpec::sift_small(7).generate();
        let index = IvfPqIndex::build(&db, &tiny_config(8));
        for c in 0..index.nlist() {
            let list = index.list(c);
            assert_eq!(list.codes.len(), list.ids.len() * index.m());
        }
    }

    #[test]
    fn add_with_offset_shifts_ids() {
        let (db, _) = SyntheticSpec::sift_small(8).generate();
        let mut index = IvfPqIndex::train(&db, &tiny_config(8));
        index.add(&db, 1_000);
        let min_id = (0..index.nlist())
            .flat_map(|c| index.list(c).ids.clone())
            .min()
            .unwrap();
        assert_eq!(min_id, 1_000);
        assert_eq!(index.ntotal(), db.len());
    }

    #[test]
    fn slabs_mirror_list_codes() {
        let (db, _) = SyntheticSpec::sift_small(7).generate();
        let mut index = IvfPqIndex::train(&db, &tiny_config(8));
        index.add(&db, 0);
        index.add(&db, db.len());
        for c in 0..index.nlist() {
            let list = index.list(c);
            let slab = index.slab(c);
            assert_eq!(slab.len(), list.len(), "cell {c}");
            assert_eq!(slab.m(), index.m());
            assert_eq!(slab.to_flat_codes(), list.codes, "cell {c}");
        }
        assert!(index.slab_bytes() >= index.code_bytes());
    }

    #[test]
    fn opq_index_stores_transform() {
        let (db, _) = SyntheticSpec::sift_small(9).generate();
        let index = IvfPqIndex::build(&db, &tiny_config(8).with_opq(true));
        assert!(index.has_opq());
        assert!(index.opq().is_some());
    }

    #[test]
    fn imbalance_factor_is_at_least_one() {
        let (db, _) = SyntheticSpec::sift_small(10).generate();
        let index = IvfPqIndex::build(&db, &tiny_config(16));
        assert!(index.imbalance_factor() >= 1.0 - 1e-9);
    }

    #[test]
    fn expected_scanned_codes_scales_with_nprobe() {
        let (db, _) = SyntheticSpec::sift_small(11).generate();
        let index = IvfPqIndex::build(&db, &tiny_config(16));
        let one = index.expected_scanned_codes(1);
        let four = index.expected_scanned_codes(4);
        assert!(four > one);
        assert!((four / one - 4.0).abs() < 1e-9);
        // Probing every cell can exceed ntotal only through the imbalance
        // approximation; it must at least cover the balanced estimate.
        assert!(index.expected_scanned_codes(16) >= db.len() as f64 * 0.99);
    }

    #[test]
    fn centroid_bytes_counts_the_coarse_table() {
        let (db, _) = SyntheticSpec::sift_small(12).generate();
        let index = IvfPqIndex::build(&db, &tiny_config(16));
        assert_eq!(index.centroid_bytes(), 16 * 128 * 4);
    }
}
