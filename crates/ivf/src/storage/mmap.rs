//! Zero-copy `mmap` loader for the on-disk index format.
//!
//! [`MappedIndex`] opens a file written by [`super::write_index`], validates
//! every header, table and section checksum, and then serves searches
//! directly out of the read-only mapping: centroids, inverted-list offsets,
//! ids and codes are *typed views into the mapped bytes* — no
//! deserialization, no per-list heap copies. Only two small structures are
//! rebuilt on the heap at open time, because the search arithmetic contract
//! requires byte-identical behaviour with the heap index:
//!
//! * the [`ProductQuantizer`] (so `build_lut` runs exactly the same code as
//!   the in-memory path — `dim × ksub` floats, a few hundred KiB at most),
//! * the optional [`OpqTransform`].
//!
//! The block-transposed [`CodeSlab`] mirrors the SIMD kernels stream are not
//! stored on disk (they are derivable, and keeping the canonical row-major
//! codes as the single source of truth keeps the format layout-independent).
//! They are rebuilt **lazily per list on first touch** via `OnceLock`, or
//! eagerly for every list by [`MappedIndex::warm`].
//!
//! # Safety argument
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: the kernel never lets anyone
//! write through it, and writes to the underlying file by other processes
//! are not guaranteed to be (and on Linux private mappings effectively are
//! not expected to be) part of our snapshot — the format's contract is that
//! index files are immutable once written (writers create a new file and
//! swap paths). Typed views (`&[f32]`, `&[u32]`, `&[u64]`) are only created
//! after `open` has verified that every section offset is 64-byte aligned,
//! in bounds, exactly the length the header shape implies, and CRC-clean;
//! the base address of an `mmap` is page-aligned, so section alignment in
//! the file carries over to alignment in memory (and is re-checked against
//! the live pointer anyway). All integer/float payloads are little-endian;
//! big-endian hosts are rejected at open rather than silently mis-read.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use rayon::prelude::*;

use fanns_quantize::kmeans::KMeans;
use fanns_quantize::linalg::Matrix;
use fanns_quantize::opq::OpqTransform;
use fanns_quantize::pq::{DistanceTable, ProductQuantizer};

use crate::index::{InvertedList, IvfPqIndex, IvfPqTrainConfig};
use crate::simd::CodeSlab;
use crate::source::IvfSource;

use super::format::{
    parse_header, parse_sections, IndexHeader, SectionKind, StorageError, HEADER_LEN, SECTION_ALIGN,
};

// ---------------------------------------------------------------------------
// The raw mapping
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    // Self-declared prototypes (no libc crate in the build environment);
    // these match the POSIX ABI on every 64-bit unix we target.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed(ptr: *mut c_void) -> bool {
        ptr as isize == -1
    }
}

/// A 64-byte-aligned heap buffer — the no-`mmap` fallback backing store.
#[cfg(not(unix))]
struct AlignedBytes {
    chunks: Vec<Align64>,
    len: usize,
}

#[cfg(not(unix))]
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Align64([u8; 64]);

#[cfg(not(unix))]
impl AlignedBytes {
    fn from_vec(bytes: &[u8]) -> Self {
        let mut chunks = vec![Align64([0u8; 64]); bytes.len().div_ceil(64)];
        // SAFETY: `chunks` is a contiguous `chunks.len() * 64`-byte
        // allocation of plain bytes; copying into its prefix is in bounds.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                chunks.as_mut_ptr() as *mut u8,
                bytes.len(),
            );
        }
        Self {
            chunks,
            len: bytes.len(),
        }
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: the prefix `[0, len)` of the chunk storage was initialised
        // in `from_vec` (and the rest is zeroed).
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr() as *const u8, self.len) }
    }
}

/// The backing bytes of a [`MappedIndex`]: a real `mmap` on unix, an aligned
/// heap read elsewhere (or when `mmap` is unavailable).
enum Mapping {
    #[cfg(unix)]
    Mmap { ptr: *const u8, len: usize },
    #[cfg(not(unix))]
    Heap(AlignedBytes),
}

// SAFETY: the mmap variant is a private, read-only mapping that nothing can
// write through for the lifetime of the value; sharing immutable byte views
// across threads is sound. The heap variant is an ordinary owned buffer.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, unmapped only in `Drop`.
            Mapping::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            #[cfg(not(unix))]
            Mapping::Heap(buf) => buf.as_slice(),
        }
    }

    fn is_mmap(&self) -> bool {
        match self {
            #[cfg(unix)]
            Mapping::Mmap { .. } => true,
            #[cfg(not(unix))]
            Mapping::Heap(_) => false,
        }
    }

    #[cfg(unix)]
    fn open_mmap(path: &Path, len: usize) -> Result<Self, StorageError> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        // SAFETY: fd is valid for the duration of the call; a private
        // read-only mapping of a regular file has no other preconditions.
        // The mapping outlives the fd (POSIX keeps it after close).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if sys::map_failed(ptr) {
            return Err(StorageError::Io(std::io::Error::last_os_error()));
        }
        Ok(Mapping::Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    fn open(path: &Path) -> Result<Self, StorageError> {
        let meta = std::fs::metadata(path)?;
        let len = meta.len();
        if len < HEADER_LEN as u64 {
            return Err(StorageError::Truncated {
                expected: HEADER_LEN as u64,
                actual: len,
            });
        }
        #[cfg(unix)]
        {
            Mapping::open_mmap(path, len as usize)
        }
        #[cfg(not(unix))]
        {
            Ok(Mapping::Heap(AlignedBytes::from_vec(
                &super::format::read_file_bytes(path)?,
            )))
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        {
            let Mapping::Mmap { ptr, len } = self;
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once, here.
            unsafe {
                sys::munmap(*ptr as *mut std::ffi::c_void, *len);
            }
        }
    }
}

// Little-endian only: the typed views below reinterpret the mapped bytes
// directly, which is only correct when host order matches file order.
#[cfg(target_endian = "big")]
compile_error!("the FANNS index format requires a little-endian host");

// ---------------------------------------------------------------------------
// MappedIndex
// ---------------------------------------------------------------------------

type ByteRange = std::ops::Range<usize>;

/// A read-only, searchable IVF-PQ index backed by an `mmap` of an on-disk
/// index file. Implements [`IvfSource`], so every search stage, scan kernel
/// and `CpuSearcher`/`CpuBackend` path accepts it interchangeably with a
/// heap-owned [`IvfPqIndex`] — with bit-identical results.
pub struct MappedIndex {
    mapping: Mapping,
    path: PathBuf,
    header: IndexHeader,
    centroids: ByteRange,
    list_offsets: ByteRange,
    ids: ByteRange,
    codes: ByteRange,
    pq: ProductQuantizer,
    opq: Option<OpqTransform>,
    slabs: Vec<OnceLock<CodeSlab>>,
}

impl std::fmt::Debug for MappedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedIndex")
            .field("path", &self.path)
            .field("dim", &self.header.dim)
            .field("m", &self.header.m)
            .field("ksub", &self.header.ksub)
            .field("nlist", &self.header.nlist)
            .field("ntotal", &self.header.ntotal)
            .field("has_opq", &self.header.has_opq)
            .field("mmap", &self.mapping.is_mmap())
            .finish()
    }
}

impl MappedIndex {
    /// Opens and fully validates an on-disk index. Every checksum is
    /// verified and every section offset is alignment- and bounds-checked
    /// before any typed view is created; malformed input of any kind yields
    /// a typed [`StorageError`], never a panic or undefined behaviour.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let mapping = Mapping::open(path)?;
        let bytes = mapping.bytes();
        let header = parse_header(bytes)?;
        let sections = parse_sections(bytes, &header)?;

        let mut centroids = None;
        let mut codebooks = None;
        let mut rotation = None;
        let mut list_offsets = None;
        let mut ids = None;
        let mut codes = None;
        for entry in &sections {
            let range = entry.offset as usize..(entry.offset + entry.len) as usize;
            // Belt-and-braces: re-check element alignment against the live
            // pointer (mmap bases are page-aligned, so this cannot fire for
            // a real mapping, but it keeps the typed views locally provable).
            let elem_align = match entry.kind {
                SectionKind::ListOffsets => std::mem::align_of::<u64>(),
                SectionKind::Ids => std::mem::align_of::<u32>(),
                SectionKind::Codes => 1,
                _ => std::mem::align_of::<f32>(),
            };
            if !(bytes.as_ptr() as usize + range.start).is_multiple_of(elem_align.max(1)) {
                return Err(StorageError::Misaligned(entry.kind));
            }
            match entry.kind {
                SectionKind::Centroids => centroids = Some(range),
                SectionKind::PqCodebooks => codebooks = Some(range),
                SectionKind::OpqRotation => rotation = Some(range),
                SectionKind::ListOffsets => list_offsets = Some(range),
                SectionKind::Ids => ids = Some(range),
                SectionKind::Codes => codes = Some(range),
            }
        }
        // parse_sections guarantees the full expected kind set in order.
        let centroids = centroids.expect("validated section set");
        let codebooks = codebooks.expect("validated section set");
        let list_offsets = list_offsets.expect("validated section set");
        let ids = ids.expect("validated section set");
        let codes = codes.expect("validated section set");

        // Rebuild the small owned quantizer structures.
        let codebook_floats = read_f32s(&bytes[codebooks]);
        let pq =
            ProductQuantizer::from_codebooks(header.dim, header.m, header.ksub, codebook_floats);
        let opq = match rotation {
            Some(range) => {
                let data = read_f32s(&bytes[range]);
                let matrix = Matrix::from_vec(header.dim, header.dim, data);
                // `OpqTransform::from_rotation` asserts orthonormality;
                // check it here first so corruption that survives CRC
                // re-signing (in tests) still surfaces as a typed error.
                let err = matrix.orthogonality_error();
                if err >= 1e-2 {
                    return Err(StorageError::Inconsistent(format!(
                        "OPQ rotation is not orthonormal (error {err})"
                    )));
                }
                Some(OpqTransform::from_rotation(header.dim, matrix))
            }
            None => None,
        };

        let index = Self {
            mapping,
            path: path.to_path_buf(),
            header,
            centroids,
            list_offsets,
            ids,
            codes,
            pq,
            opq,
            slabs: (0..header.nlist).map(|_| OnceLock::new()).collect(),
        };

        // Inverted-list structure: prefix sums must start at 0, end at
        // ntotal and never decrease — everything list slicing relies on.
        let offsets = index.list_offset_view();
        if offsets.first() != Some(&0) || offsets.last() != Some(&(header.ntotal as u64)) {
            return Err(StorageError::Inconsistent(
                "list offsets do not span [0, ntotal]".to_string(),
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(StorageError::Inconsistent(
                "list offsets are not monotone".to_string(),
            ));
        }
        Ok(index)
    }

    /// The parsed file header.
    pub fn header(&self) -> &IndexHeader {
        &self.header
    }

    /// The path the index was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total size of the backing file in bytes.
    pub fn file_len(&self) -> usize {
        self.mapping.bytes().len()
    }

    /// Whether the backing store is a real `mmap` (false on the heap-read
    /// fallback used by non-unix targets).
    pub fn is_mmap(&self) -> bool {
        self.mapping.is_mmap()
    }

    /// The training configuration recorded in the header (informational
    /// fields round-trip; retraining from it reproduces an equivalent
    /// index only when the same dataset is supplied).
    pub fn train_config(&self) -> IvfPqTrainConfig {
        IvfPqTrainConfig {
            nlist: self.header.nlist,
            m: self.header.m,
            ksub: self.header.ksub,
            use_opq: self.header.has_opq,
            train_sample: self.header.train_sample as usize,
            coarse_iters: self.header.coarse_iters as usize,
            seed: self.header.seed,
        }
    }

    fn view<T: Copy>(&self, range: &ByteRange) -> &[T] {
        let bytes = &self.mapping.bytes()[range.clone()];
        debug_assert_eq!(bytes.len() % std::mem::size_of::<T>(), 0);
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        // SAFETY: alignment and exact length were validated at open; T is a
        // plain Copy number type with no invalid bit patterns; the mapping
        // is immutable and outlives `&self`.
        unsafe {
            std::slice::from_raw_parts(
                bytes.as_ptr() as *const T,
                bytes.len() / std::mem::size_of::<T>(),
            )
        }
    }

    fn list_offset_view(&self) -> &[u64] {
        self.view::<u64>(&self.list_offsets)
    }

    fn list_bounds(&self, cell: usize) -> (usize, usize) {
        let offsets = self.list_offset_view();
        (offsets[cell] as usize, offsets[cell + 1] as usize)
    }

    /// Eagerly rebuilds the block-transposed scan slab of every inverted
    /// list (in parallel), so the first queries don't pay the lazy rebuild.
    /// Returns the total slab bytes materialised.
    pub fn warm(&self) -> usize {
        (0..self.header.nlist)
            .into_par_iter()
            .map(|cell| IvfSource::slab(self, cell).nbytes())
            .sum()
    }

    /// Copies the mapped data into a fully heap-owned [`IvfPqIndex`] —
    /// useful when an owner wants to drop the file, or to compare the two
    /// representations in tests.
    pub fn to_owned_index(&self) -> IvfPqIndex {
        let lists: Vec<InvertedList> = (0..self.header.nlist)
            .map(|cell| InvertedList {
                ids: IvfSource::list_ids(self, cell).to_vec(),
                codes: IvfSource::list_codes(self, cell).to_vec(),
            })
            .collect();
        let coarse = KMeans::from_centroids(self.header.dim, IvfSource::centroids(self).to_vec());
        IvfPqIndex::from_parts(
            self.header.dim,
            coarse,
            self.opq.clone(),
            self.pq.clone(),
            lists,
            self.header.ntotal,
            self.train_config(),
        )
    }
}

impl IvfSource for MappedIndex {
    fn dim(&self) -> usize {
        self.header.dim
    }

    fn m(&self) -> usize {
        self.header.m
    }

    fn ksub(&self) -> usize {
        self.header.ksub
    }

    fn nlist(&self) -> usize {
        self.header.nlist
    }

    fn ntotal(&self) -> usize {
        self.header.ntotal
    }

    fn opq(&self) -> Option<&OpqTransform> {
        self.opq.as_ref()
    }

    fn centroids(&self) -> &[f32] {
        self.view::<f32>(&self.centroids)
    }

    fn build_lut(&self, query: &[f32]) -> DistanceTable {
        self.pq.build_distance_table(query)
    }

    fn list_len(&self, cell: usize) -> usize {
        let (start, end) = self.list_bounds(cell);
        end - start
    }

    fn list_ids(&self, cell: usize) -> &[u32] {
        let (start, end) = self.list_bounds(cell);
        &self.view::<u32>(&self.ids)[start..end]
    }

    fn list_codes(&self, cell: usize) -> &[u8] {
        let (start, end) = self.list_bounds(cell);
        let m = self.header.m;
        &self.mapping.bytes()[self.codes.clone()][start * m..end * m]
    }

    fn slab(&self, cell: usize) -> &CodeSlab {
        self.slabs[cell].get_or_init(|| CodeSlab::from_codes(self.list_codes(cell), self.header.m))
    }
}

fn read_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

// Compile-time reminder that SECTION_ALIGN covers every element type we view.
const _: () = assert!(SECTION_ALIGN >= std::mem::align_of::<u64>());
