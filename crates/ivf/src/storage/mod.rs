//! On-disk index persistence: a versioned, checksummed binary format
//! ([`mod@format`]) and a zero-copy `mmap` loader ([`mmap`]).
//!
//! ```no_run
//! use fanns_ivf::storage;
//! # let index: fanns_ivf::index::IvfPqIndex = unimplemented!();
//! let path = std::path::Path::new("/tmp/index.fanns");
//! storage::write_index(&index, path).unwrap();
//! let mapped = storage::open_index(path).unwrap();
//! mapped.warm(); // optional: eager slab rebuild
//! ```
//!
//! See `docs/STORAGE.md` for the byte-level layout and the safety contract.

pub mod format;
pub mod mmap;

pub use format::{
    crc32, encode_index, write_index, IndexHeader, SectionEntry, SectionKind, StorageError,
    ENDIAN_TAG, FORMAT_VERSION, HEADER_CRC_OFFSET, HEADER_LEN, MAGIC, SECTION_ALIGN,
    SECTION_ENTRY_LEN, TABLE_CRC_OFFSET,
};
pub use mmap::MappedIndex;

use std::path::Path;

/// Opens an on-disk index file as a searchable [`MappedIndex`]. See
/// [`MappedIndex::open`].
pub fn open_index(path: &Path) -> Result<MappedIndex, StorageError> {
    MappedIndex::open(path)
}
