//! The versioned, checksummed on-disk index format.
//!
//! Layout (all integers and floats little-endian; see `docs/STORAGE.md` for
//! the full contract):
//!
//! ```text
//! [ header          | 128 bytes, CRC-protected                     ]
//! [ section table   | section_count × 32 bytes, CRC-protected     ]
//! [ zero padding to the next 64-byte boundary                     ]
//! [ section: Centroids    | nlist × dim     × f32, 64-byte aligned ]
//! [ section: PqCodebooks  | dim × ksub      × f32, 64-byte aligned ]
//! [ section: OpqRotation  | dim × dim       × f32, only when OPQ   ]
//! [ section: ListOffsets  | (nlist+1)       × u64, 64-byte aligned ]
//! [ section: Ids          | ntotal          × u32, 64-byte aligned ]
//! [ section: Codes        | ntotal × m      × u8,  64-byte aligned ]
//! ```
//!
//! Every section offset is a multiple of [`SECTION_ALIGN`], so an `mmap` of
//! the file (page-aligned base) yields correctly aligned `&[f32]`/`&[u32]`
//! views with zero copying. Each section carries a CRC32 in the table; the
//! header and the table carry their own CRCs. [`open`](super::open_index)
//! verifies all of them, so any flipped or truncated byte surfaces as a
//! typed [`StorageError`] — never undefined behaviour or a wrong answer.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::index::IvfPqIndex;
use crate::source::IvfSource;

/// File magic, bytes `[0, 8)`.
pub const MAGIC: [u8; 8] = *b"FANNSIDX";

/// Current format version (bumped on any incompatible layout change).
pub const FORMAT_VERSION: u32 = 1;

/// Endianness tag stored little-endian; a reader on the wrong byte order
/// (or a corrupted file) sees a different value.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

/// Alignment of every section offset — one x86 cache line, matching the
/// in-memory `CodeSlab` alignment contract.
pub const SECTION_ALIGN: usize = 64;

/// Fixed header length in bytes (`[0, HEADER_LEN)`).
pub const HEADER_LEN: usize = 128;

/// Length of one section-table entry in bytes.
pub const SECTION_ENTRY_LEN: usize = 32;

/// Byte offset of the header CRC field inside the header.
pub const HEADER_CRC_OFFSET: usize = 120;

/// Byte offset of the section-table CRC field inside the header.
pub const TABLE_CRC_OFFSET: usize = 104;

/// Typed failure opening or validating an on-disk index. Every corruption
/// mode the test battery exercises maps onto one of these variants;
/// [`super::open_index`] never panics on malformed input.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not one this build reads.
    UnsupportedVersion(u32),
    /// The endianness tag does not match (foreign byte order or corruption).
    BadEndian,
    /// The file is shorter than its own accounting says it must be.
    Truncated {
        /// Bytes the header (or fixed layout) requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The header bytes fail their CRC.
    HeaderChecksum,
    /// The section table bytes fail their CRC.
    TableChecksum,
    /// A section's payload fails its CRC.
    SectionChecksum(SectionKind),
    /// A section offset is not [`SECTION_ALIGN`]-aligned.
    Misaligned(SectionKind),
    /// A section extends past the end of the file.
    OutOfBounds(SectionKind),
    /// Structurally invalid metadata (bad shape, bad section set, offsets
    /// that do not add up) with a human-readable explanation.
    Inconsistent(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::BadMagic => write!(f, "not a FANNS index file (bad magic)"),
            StorageError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported index format version {v} (expected {FORMAT_VERSION})"
                )
            }
            StorageError::BadEndian => write!(
                f,
                "endianness tag mismatch (foreign byte order or corrupted header)"
            ),
            StorageError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated index file: need {expected} bytes, have {actual}"
                )
            }
            StorageError::HeaderChecksum => write!(f, "header checksum mismatch"),
            StorageError::TableChecksum => write!(f, "section table checksum mismatch"),
            StorageError::SectionChecksum(kind) => {
                write!(f, "checksum mismatch in section {kind:?}")
            }
            StorageError::Misaligned(kind) => write!(
                f,
                "section {kind:?} offset is not {SECTION_ALIGN}-byte aligned"
            ),
            StorageError::OutOfBounds(kind) => {
                write!(f, "section {kind:?} extends past the end of the file")
            }
            StorageError::Inconsistent(msg) => write!(f, "inconsistent index metadata: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// What a section stores. The discriminant is the on-disk `kind` tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionKind {
    /// Coarse-quantizer centroids, `nlist × dim` f32.
    Centroids = 1,
    /// PQ codebooks, `m` blocks of `ksub × dsub` f32 (= `dim × ksub`).
    PqCodebooks = 2,
    /// OPQ rotation matrix, `dim × dim` f32 (present iff the OPQ flag is set).
    OpqRotation = 3,
    /// Inverted-list vector-count prefix sums, `nlist + 1` u64.
    ListOffsets = 4,
    /// Concatenated per-list database ids, `ntotal` u32.
    Ids = 5,
    /// Concatenated per-list canonical row-major PQ codes, `ntotal × m` u8.
    Codes = 6,
}

impl SectionKind {
    /// Parses the on-disk tag.
    pub fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            1 => Some(SectionKind::Centroids),
            2 => Some(SectionKind::PqCodebooks),
            3 => Some(SectionKind::OpqRotation),
            4 => Some(SectionKind::ListOffsets),
            5 => Some(SectionKind::Ids),
            6 => Some(SectionKind::Codes),
            _ => None,
        }
    }
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy)]
pub struct SectionEntry {
    /// What the section stores.
    pub kind: SectionKind,
    /// Byte offset of the payload from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC32 (IEEE) of the payload bytes.
    pub crc: u32,
}

/// The parsed, validated fixed header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexHeader {
    /// Vector dimensionality.
    pub dim: usize,
    /// PQ sub-quantizers (code bytes).
    pub m: usize,
    /// PQ codebook size per sub-space.
    pub ksub: usize,
    /// Number of inverted lists.
    pub nlist: usize,
    /// Total indexed vectors.
    pub ntotal: usize,
    /// Whether an OPQ rotation section is present.
    pub has_opq: bool,
    /// Training-sample cap the index was built with (informational).
    pub train_sample: u64,
    /// Coarse k-means iteration cap the index was built with (informational).
    pub coarse_iters: u64,
    /// RNG seed the index was built with (informational).
    pub seed: u64,
    /// Number of section-table entries.
    pub section_count: usize,
    /// Total file length the writer recorded.
    pub file_len: u64,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven
// ---------------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC32 (IEEE polynomial, the zlib/PNG variant) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Little-endian scribbling helpers
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

fn pad_to(buf: &mut Vec<u8>, align: usize) {
    while !buf.len().is_multiple_of(align) {
        buf.push(0);
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn f32s_to_le(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Serialises `index` into the on-disk byte image (header + table +
/// sections). Exposed for tests; [`write_index`] streams this to a file.
pub fn encode_index(index: &IvfPqIndex) -> Vec<u8> {
    let dim = IvfSource::dim(index);
    let m = IvfSource::m(index);
    let nlist = IvfSource::nlist(index);
    let ntotal = IvfSource::ntotal(index);
    let ksub = index.pq().ksub();
    let config = index.config();

    // Section payloads, in on-disk order.
    let centroids = f32s_to_le(index.coarse().centroids());
    let codebooks = f32s_to_le(index.pq().codebooks());
    let rotation = index.opq().map(|t| f32s_to_le(t.rotation().as_slice()));

    let mut offsets_payload = Vec::with_capacity((nlist + 1) * 8);
    let mut ids_payload = Vec::with_capacity(ntotal * 4);
    let mut codes_payload = Vec::with_capacity(ntotal * m);
    let mut running = 0u64;
    put_u64(&mut offsets_payload, 0);
    for cell in 0..nlist {
        let list = index.list(cell);
        running += list.len() as u64;
        put_u64(&mut offsets_payload, running);
        for &id in &list.ids {
            put_u32(&mut ids_payload, id);
        }
        codes_payload.extend_from_slice(&list.codes);
    }
    debug_assert_eq!(running as usize, ntotal);

    let mut sections: Vec<(SectionKind, Vec<u8>)> = vec![
        (SectionKind::Centroids, centroids),
        (SectionKind::PqCodebooks, codebooks),
    ];
    if let Some(rot) = rotation {
        sections.push((SectionKind::OpqRotation, rot));
    }
    sections.push((SectionKind::ListOffsets, offsets_payload));
    sections.push((SectionKind::Ids, ids_payload));
    sections.push((SectionKind::Codes, codes_payload));

    // Lay the sections out after the header + table, 64-byte aligned.
    let table_len = sections.len() * SECTION_ENTRY_LEN;
    let mut cursor = HEADER_LEN + table_len;
    cursor = cursor.div_ceil(SECTION_ALIGN) * SECTION_ALIGN;
    let mut entries = Vec::with_capacity(sections.len());
    for (kind, payload) in &sections {
        entries.push(SectionEntry {
            kind: *kind,
            offset: cursor as u64,
            len: payload.len() as u64,
            crc: crc32(payload),
        });
        cursor += payload.len();
        cursor = cursor.div_ceil(SECTION_ALIGN) * SECTION_ALIGN;
    }
    // file_len records the end of the last payload (without its tail pad).
    let file_len = entries
        .last()
        .map(|e| e.offset + e.len)
        .unwrap_or((HEADER_LEN + table_len) as u64);

    // Section table bytes.
    let mut table = Vec::with_capacity(table_len);
    for e in &entries {
        put_u32(&mut table, e.kind as u32);
        put_u32(&mut table, 0);
        put_u64(&mut table, e.offset);
        put_u64(&mut table, e.len);
        put_u32(&mut table, e.crc);
        put_u32(&mut table, 0);
    }

    // Header bytes.
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    put_u32(&mut header, FORMAT_VERSION);
    put_u32(&mut header, ENDIAN_TAG);
    put_u64(&mut header, dim as u64);
    put_u64(&mut header, m as u64);
    put_u64(&mut header, ksub as u64);
    put_u64(&mut header, nlist as u64);
    put_u64(&mut header, ntotal as u64);
    put_u64(&mut header, u64::from(index.has_opq()));
    put_u64(&mut header, config.train_sample as u64);
    put_u64(&mut header, config.coarse_iters as u64);
    put_u64(&mut header, config.seed);
    put_u64(&mut header, sections.len() as u64);
    put_u64(&mut header, file_len);
    debug_assert_eq!(header.len(), TABLE_CRC_OFFSET);
    put_u32(&mut header, crc32(&table));
    put_u32(&mut header, 0); // reserved
    put_u64(&mut header, 0); // reserved
    debug_assert_eq!(header.len(), HEADER_CRC_OFFSET);
    let header_crc = crc32(&header);
    put_u32(&mut header, header_crc);
    put_u32(&mut header, 0); // pad
    debug_assert_eq!(header.len(), HEADER_LEN);

    // Assemble the image.
    let mut image = Vec::with_capacity(file_len as usize);
    image.extend_from_slice(&header);
    image.extend_from_slice(&table);
    for (entry, (_, payload)) in entries.iter().zip(&sections) {
        pad_to(&mut image, SECTION_ALIGN);
        debug_assert_eq!(image.len() as u64, entry.offset);
        image.extend_from_slice(payload);
    }
    debug_assert_eq!(image.len() as u64, file_len);
    image
}

/// Writes `index` to `path` in the on-disk format, returning the number of
/// bytes written. The file is written through a buffered writer and synced
/// before returning.
pub fn write_index(index: &IvfPqIndex, path: &Path) -> Result<u64, StorageError> {
    let image = encode_index(index);
    let file = std::fs::File::create(path)?;
    let mut writer = io::BufWriter::new(file);
    writer.write_all(&image)?;
    writer.flush()?;
    writer.get_ref().sync_all()?;
    Ok(image.len() as u64)
}

// ---------------------------------------------------------------------------
// Header / table parsing
// ---------------------------------------------------------------------------

/// Parses and CRC-validates the fixed header from the start of a file image.
pub fn parse_header(bytes: &[u8]) -> Result<IndexHeader, StorageError> {
    if bytes.len() < HEADER_LEN {
        return Err(StorageError::Truncated {
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = read_u32(bytes, 8);
    if version != FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    if read_u32(bytes, 12) != ENDIAN_TAG {
        return Err(StorageError::BadEndian);
    }
    let stored_crc = read_u32(bytes, HEADER_CRC_OFFSET);
    if crc32(&bytes[..HEADER_CRC_OFFSET]) != stored_crc {
        return Err(StorageError::HeaderChecksum);
    }

    let dim = read_u64(bytes, 16);
    let m = read_u64(bytes, 24);
    let ksub = read_u64(bytes, 32);
    let nlist = read_u64(bytes, 40);
    let ntotal = read_u64(bytes, 48);
    let flags = read_u64(bytes, 56);
    let train_sample = read_u64(bytes, 64);
    let coarse_iters = read_u64(bytes, 72);
    let seed = read_u64(bytes, 80);
    let section_count = read_u64(bytes, 88);
    let file_len = read_u64(bytes, 96);

    // Shape sanity. These bounds keep every later size computation inside
    // u64/usize range on 64-bit hosts.
    let fail = |msg: String| Err(StorageError::Inconsistent(msg));
    if dim == 0 || dim > 1 << 20 {
        return fail(format!("dim {dim} out of range"));
    }
    if m == 0 || m > dim || !dim.is_multiple_of(m) {
        return fail(format!("m {m} incompatible with dim {dim}"));
    }
    if !(2..=256).contains(&ksub) {
        return fail(format!("ksub {ksub} out of [2, 256]"));
    }
    if nlist == 0 || nlist > 1 << 32 {
        return fail(format!("nlist {nlist} out of range"));
    }
    if ntotal > u64::from(u32::MAX) {
        return fail(format!("ntotal {ntotal} exceeds the u32 id space"));
    }
    if flags > 1 {
        return fail(format!("unknown flag bits {flags:#x}"));
    }
    let has_opq = flags & 1 != 0;
    let expected_sections = if has_opq { 6 } else { 5 };
    if section_count != expected_sections {
        return fail(format!(
            "section count {section_count}, expected {expected_sections}"
        ));
    }

    Ok(IndexHeader {
        dim: dim as usize,
        m: m as usize,
        ksub: ksub as usize,
        nlist: nlist as usize,
        ntotal: ntotal as usize,
        has_opq,
        train_sample,
        coarse_iters,
        seed,
        section_count: section_count as usize,
        file_len,
    })
}

/// Expected payload length in bytes for a section, given the header shape.
pub fn expected_section_len(header: &IndexHeader, kind: SectionKind) -> u64 {
    let (dim, m, ksub, nlist, ntotal) = (
        header.dim as u64,
        header.m as u64,
        header.ksub as u64,
        header.nlist as u64,
        header.ntotal as u64,
    );
    match kind {
        SectionKind::Centroids => nlist * dim * 4,
        SectionKind::PqCodebooks => dim * ksub * 4,
        SectionKind::OpqRotation => dim * dim * 4,
        SectionKind::ListOffsets => (nlist + 1) * 8,
        SectionKind::Ids => ntotal * 4,
        SectionKind::Codes => ntotal * m,
    }
}

/// The section kinds a file with this header must contain, in on-disk order.
pub fn expected_sections(header: &IndexHeader) -> Vec<SectionKind> {
    let mut kinds = vec![SectionKind::Centroids, SectionKind::PqCodebooks];
    if header.has_opq {
        kinds.push(SectionKind::OpqRotation);
    }
    kinds.extend([
        SectionKind::ListOffsets,
        SectionKind::Ids,
        SectionKind::Codes,
    ]);
    kinds
}

/// Parses and fully validates the section table against `header` and the
/// file image: CRC of the table itself, kind set and order, alignment,
/// bounds, expected lengths, and every section's payload CRC.
pub fn parse_sections(
    bytes: &[u8],
    header: &IndexHeader,
) -> Result<Vec<SectionEntry>, StorageError> {
    let table_end = HEADER_LEN + header.section_count * SECTION_ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(StorageError::Truncated {
            expected: table_end as u64,
            actual: bytes.len() as u64,
        });
    }
    if header.file_len != bytes.len() as u64 {
        return Err(StorageError::Truncated {
            expected: header.file_len,
            actual: bytes.len() as u64,
        });
    }
    let table = &bytes[HEADER_LEN..table_end];
    let stored_table_crc = read_u32(bytes, TABLE_CRC_OFFSET);
    if crc32(table) != stored_table_crc {
        return Err(StorageError::TableChecksum);
    }

    let expected = expected_sections(header);
    let mut entries = Vec::with_capacity(header.section_count);
    for (i, want_kind) in expected.iter().enumerate() {
        let at = i * SECTION_ENTRY_LEN;
        let tag = read_u32(table, at);
        let kind = SectionKind::from_tag(tag)
            .ok_or_else(|| StorageError::Inconsistent(format!("unknown section kind tag {tag}")))?;
        if kind != *want_kind {
            return Err(StorageError::Inconsistent(format!(
                "section {i} is {kind:?}, expected {want_kind:?}"
            )));
        }
        let offset = read_u64(table, at + 8);
        let len = read_u64(table, at + 16);
        let crc = read_u32(table, at + 24);
        if !offset.is_multiple_of(SECTION_ALIGN as u64) {
            return Err(StorageError::Misaligned(kind));
        }
        let end = offset
            .checked_add(len)
            .ok_or(StorageError::OutOfBounds(kind))?;
        if end > bytes.len() as u64 || offset < table_end as u64 {
            return Err(StorageError::OutOfBounds(kind));
        }
        if len != expected_section_len(header, kind) {
            return Err(StorageError::Inconsistent(format!(
                "section {kind:?} length {len}, expected {}",
                expected_section_len(header, kind)
            )));
        }
        if crc32(&bytes[offset as usize..end as usize]) != crc {
            return Err(StorageError::SectionChecksum(kind));
        }
        entries.push(SectionEntry {
            kind,
            offset,
            len,
            crc,
        });
    }
    Ok(entries)
}

/// Reads a file fully into memory (used by the no-mmap fallback and tests).
pub fn read_file_bytes(path: &Path) -> Result<Vec<u8>, StorageError> {
    let mut file = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    Ok(bytes)
}
