//! The algorithm parameter space (Table 2 of the paper) and the six search
//! stages shared by every component of the workspace.

use serde::{Deserialize, Serialize};

/// The six IVF-PQ query-serving stages (§2.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SearchStage {
    /// Transform the query vector by the OPQ rotation matrix.
    Opq,
    /// Evaluate distances between the query and all `nlist` cell centroids.
    IvfDist,
    /// Select the `nprobe` closest cells.
    SelCells,
    /// Construct the per-query distance lookup table (`m × ksub`).
    BuildLut,
    /// Approximate distances to the PQ codes in the selected cells (ADC).
    PqDist,
    /// Collect the `K` smallest distances.
    SelK,
}

/// All six stages in pipeline order.
pub const ALL_STAGES: [SearchStage; 6] = [
    SearchStage::Opq,
    SearchStage::IvfDist,
    SearchStage::SelCells,
    SearchStage::BuildLut,
    SearchStage::PqDist,
    SearchStage::SelK,
];

impl SearchStage {
    /// Short display name matching the paper's figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            SearchStage::Opq => "OPQ",
            SearchStage::IvfDist => "IVFDist",
            SearchStage::SelCells => "SelCells",
            SearchStage::BuildLut => "BuildLUT",
            SearchStage::PqDist => "PQDist",
            SearchStage::SelK => "SelK",
        }
    }

    /// Position of the stage in the pipeline (0-based).
    pub fn position(&self) -> usize {
        ALL_STAGES
            .iter()
            .position(|s| s == self)
            .expect("stage is in ALL_STAGES")
    }
}

/// Query-time algorithm parameters (the tunable part of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IvfPqParams {
    /// Total number of Voronoi cells in the index.
    pub nlist: usize,
    /// Number of cells scanned per query.
    pub nprobe: usize,
    /// Number of results to return.
    pub k: usize,
    /// Number of PQ sub-quantizers (bytes per code).
    pub m: usize,
    /// Whether the index applies an OPQ rotation at query time.
    pub opq: bool,
}

impl IvfPqParams {
    /// The paper's standard configuration skeleton: 16-byte PQ codes.
    pub fn new(nlist: usize, nprobe: usize, k: usize) -> Self {
        Self {
            nlist,
            nprobe,
            k,
            m: 16,
            opq: false,
        }
    }

    /// Builder-style OPQ toggle.
    pub fn with_opq(mut self, opq: bool) -> Self {
        self.opq = opq;
        self
    }

    /// Builder-style `m` override.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Builder-style `nprobe` override.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe;
        self
    }

    /// Builder-style `K` override.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Clamp `nprobe` to `nlist` (probing more cells than exist is a no-op).
    pub fn effective_nprobe(&self) -> usize {
        self.nprobe.min(self.nlist).max(1)
    }

    /// A short human-readable index label like `OPQ+IVF8192`.
    pub fn index_label(&self) -> String {
        if self.opq {
            format!("OPQ+IVF{}", self.nlist)
        } else {
            format!("IVF{}", self.nlist)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_and_positions() {
        assert_eq!(SearchStage::Opq.name(), "OPQ");
        assert_eq!(SearchStage::SelK.name(), "SelK");
        assert_eq!(SearchStage::Opq.position(), 0);
        assert_eq!(SearchStage::SelK.position(), 5);
        assert_eq!(ALL_STAGES.len(), 6);
    }

    #[test]
    fn params_builders_compose() {
        let p = IvfPqParams::new(1024, 16, 10)
            .with_opq(true)
            .with_m(8)
            .with_k(100);
        assert_eq!(p.nlist, 1024);
        assert_eq!(p.nprobe, 16);
        assert_eq!(p.k, 100);
        assert_eq!(p.m, 8);
        assert!(p.opq);
        assert_eq!(p.index_label(), "OPQ+IVF1024");
    }

    #[test]
    fn effective_nprobe_is_clamped() {
        let p = IvfPqParams::new(8, 100, 10);
        assert_eq!(p.effective_nprobe(), 8);
        let p = IvfPqParams::new(8, 0, 10);
        assert_eq!(p.effective_nprobe(), 1);
    }

    #[test]
    fn index_label_without_opq() {
        assert_eq!(IvfPqParams::new(4096, 5, 1).index_label(), "IVF4096");
    }
}
