//! The six-stage IVF-PQ query pipeline with per-stage instrumentation.
//!
//! Queries run through the stages of §2.1.3 in order. Each stage is a
//! separate function so that (a) wall-clock time can be attributed per stage —
//! the measurement behind the bottleneck analysis of Figure 3 — and (b) the
//! stages map one-to-one onto the hardware PEs modelled in `fanns-hwsim`.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

use fanns_quantize::pq::DistanceTable;

use crate::params::{SearchStage, ALL_STAGES};
use crate::simd::{self, ScanKernel, ScanScratch};
use crate::source::IvfSource;

/// One search hit: database id and approximated squared distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Database vector id.
    pub id: u32,
    /// Approximated (ADC) squared L2 distance.
    pub distance: f32,
}

/// Wall-clock time spent in each of the six stages for one or more queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Nanoseconds spent per stage, indexed by [`SearchStage::position`].
    pub nanos: [u64; 6],
    /// Number of queries the timings cover.
    pub queries: usize,
}

impl StageTimings {
    /// Time spent in `stage`.
    pub fn get(&self, stage: SearchStage) -> Duration {
        Duration::from_nanos(self.nanos[stage.position()])
    }

    /// Adds a measurement for `stage`.
    pub fn record(&mut self, stage: SearchStage, elapsed: Duration) {
        self.nanos[stage.position()] += elapsed.as_nanos() as u64;
    }

    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Per-stage share of the total time (sums to 1 unless total is zero).
    /// This is the quantity plotted in Figure 3.
    pub fn fractions(&self) -> [f64; 6] {
        let total: u64 = self.nanos.iter().sum();
        let mut out = [0.0; 6];
        if total == 0 {
            return out;
        }
        for (o, &nanos) in out.iter_mut().zip(&self.nanos) {
            *o = nanos as f64 / total as f64;
        }
        out
    }

    /// The stage with the largest share of time — the bottleneck.
    pub fn bottleneck(&self) -> SearchStage {
        let mut best = SearchStage::Opq;
        let mut best_nanos = 0u64;
        for stage in ALL_STAGES {
            let n = self.nanos[stage.position()];
            if n > best_nanos {
                best_nanos = n;
                best = stage;
            }
        }
        best
    }

    /// Merges another timing record into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        for i in 0..6 {
            self.nanos[i] += other.nanos[i];
        }
        self.queries += other.queries;
    }
}

/// A bounded max-heap keeping the `k` smallest (distance, id) pairs seen.
/// This is the software analogue of the hardware priority queues in Stage
/// SelCells / SelK.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Cached rejection threshold: +inf until the heap fills, then the root
    // distance. Keeping it in a dedicated field makes the common reject in
    // `push` a single load + compare with no heap access.
    threshold: f32,
    // (distance, id), organised as a binary max-heap on distance.
    heap: Vec<(f32, u32)>,
}

impl TopK {
    /// Creates an empty top-K collector.
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            threshold: f32::INFINITY,
            heap: Vec::with_capacity(k.max(1)),
        }
    }

    /// Number of elements currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no element has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current worst (largest) retained distance, or infinity if not full.
    #[inline]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Offers a candidate; it is kept only if it beats the current threshold.
    /// The common scan-loop case — a full heap rejecting a far candidate —
    /// is one comparison against the cached threshold.
    #[inline]
    pub fn push(&mut self, distance: f32, id: u32) {
        if distance >= self.threshold {
            return;
        }
        self.insert(distance, id);
    }

    /// The accept path of [`TopK::push`], kept out of line so the reject
    /// fast path stays small enough to inline into scan loops.
    fn insert(&mut self, distance: f32, id: u32) {
        if self.heap.len() < self.k {
            self.heap.push((distance, id));
            self.sift_up(self.heap.len() - 1);
            if self.heap.len() == self.k {
                self.threshold = self.heap[0].0;
            }
        } else if distance < self.heap[0].0 {
            self.heap[0] = (distance, id);
            self.sift_down(0);
            self.threshold = self.heap[0].0;
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].0 > self.heap[parent].0 {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len() && self.heap[l].0 > self.heap[largest].0 {
                largest = l;
            }
            if r < self.heap.len() && self.heap[r].0 > self.heap[largest].0 {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }

    /// Drains the collector into results sorted by increasing distance
    /// (ties broken by id for determinism).
    pub fn into_sorted(self) -> Vec<SearchResult> {
        let mut v: Vec<SearchResult> = self
            .heap
            .into_iter()
            .map(|(distance, id)| SearchResult { id, distance })
            .collect();
        // total_cmp keeps the order total even if a NaN distance slips in
        // (NaN sorts last instead of silently corrupting the comparator).
        v.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        v
    }
}

/// Stage OPQ: rotate the query if the index was trained with OPQ.
pub fn stage_opq<S: IvfSource + ?Sized>(index: &S, query: &[f32]) -> Vec<f32> {
    match index.opq() {
        Some(t) => t.apply(query),
        None => query.to_vec(),
    }
}

/// Stage IVFDist: distances from the (rotated) query to all cell centroids.
pub fn stage_ivf_dist<S: IvfSource + ?Sized>(index: &S, query: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    fanns_quantize::distance::all_l2(query, index.centroids(), index.dim(), &mut out);
    out
}

/// Stage SelCells: indices of the `nprobe` closest cells.
pub fn stage_sel_cells(centroid_dists: &[f32], nprobe: usize) -> Vec<usize> {
    let nprobe = nprobe.min(centroid_dists.len()).max(1);
    let mut topk = TopK::new(nprobe);
    for (i, &d) in centroid_dists.iter().enumerate() {
        topk.push(d, i as u32);
    }
    topk.into_sorted()
        .into_iter()
        .map(|r| r.id as usize)
        .collect()
}

/// Stage BuildLUT: the per-query asymmetric-distance lookup table.
pub fn stage_build_lut<S: IvfSource + ?Sized>(index: &S, query: &[f32]) -> DistanceTable {
    index.build_lut(query)
}

std::thread_local! {
    // Per-thread kernel scratch for the entry points that keep the original
    // scratch-less signatures: each engine/rayon worker reuses its buffers
    // across queries instead of allocating per call.
    static SCAN_SCRATCH: std::cell::RefCell<ScanScratch> =
        std::cell::RefCell::new(ScanScratch::new());
}

/// Stages PQDist + SelK fused: scan the selected cells, computing ADC
/// distances and keeping the best `k`. The two stages are fused here for
/// cache efficiency (as Faiss does); [`search_with_timings`] still reports
/// them separately by running PQDist into a buffer first.
///
/// Executes on the process-default kernel ([`simd::default_kernel`]):
/// the AVX2 slab kernel when the host supports it, the portable chunked
/// kernel otherwise, or whatever `FANNS_SCAN_KERNEL` forces. Use
/// [`stage_scan_and_select_with`] to pin a kernel explicitly.
pub fn stage_scan_and_select<S: IvfSource + ?Sized>(
    index: &S,
    cells: &[usize],
    lut: &DistanceTable,
    k: usize,
) -> Vec<SearchResult> {
    SCAN_SCRATCH.with(|scratch| {
        stage_scan_and_select_with(
            index,
            cells,
            lut,
            k,
            simd::default_kernel(),
            &mut scratch.borrow_mut(),
        )
    })
}

/// [`stage_scan_and_select`] with an explicit kernel and caller-owned
/// scratch. The f32 kernels (`Scalar`/`Portable`/`Avx2`) return bit-identical
/// results; `Int8` re-ranks its quantized first pass with exact f32 ADC.
pub fn stage_scan_and_select_with<S: IvfSource + ?Sized>(
    index: &S,
    cells: &[usize],
    lut: &DistanceTable,
    k: usize,
    kernel: ScanKernel,
    scratch: &mut ScanScratch,
) -> Vec<SearchResult> {
    match kernel {
        ScanKernel::Scalar => {
            let m = index.m();
            let mut topk = TopK::new(k);
            for &cell in cells {
                let ids = index.list_ids(cell);
                for (slot, code) in index.list_codes(cell).chunks_exact(m).enumerate() {
                    let d = lut.adc(code);
                    topk.push(d, ids[slot]);
                }
            }
            topk.into_sorted()
        }
        ScanKernel::Portable | ScanKernel::Avx2 => {
            simd::scan_and_select_f32(index, cells, lut, k, kernel, scratch)
        }
        ScanKernel::Int8 => simd::scan_and_select_int8(index, cells, lut, k, scratch),
    }
}

/// Stage PQDist alone: ADC distances for every code in the selected cells.
/// Returns (id, distance) pairs in scan order.
pub fn stage_pq_dist<S: IvfSource + ?Sized>(
    index: &S,
    cells: &[usize],
    lut: &DistanceTable,
) -> Vec<(u32, f32)> {
    let mut out = Vec::new();
    stage_pq_dist_into(index, cells, lut, &mut out);
    out
}

/// [`stage_pq_dist`] into a caller-owned buffer (cleared, then filled in
/// scan order). Reusing one buffer across queries removes the per-call
/// `Vec` growth from the instrumented pipeline.
pub fn stage_pq_dist_into<S: IvfSource + ?Sized>(
    index: &S,
    cells: &[usize],
    lut: &DistanceTable,
    out: &mut Vec<(u32, f32)>,
) {
    let m = index.m();
    out.clear();
    for &cell in cells {
        let ids = index.list_ids(cell);
        out.reserve(ids.len());
        for (slot, code) in index.list_codes(cell).chunks_exact(m).enumerate() {
            out.push((ids[slot], lut.adc(code)));
        }
    }
}

/// Stage SelK alone: select the `k` best candidates from the PQDist output.
pub fn stage_sel_k(candidates: &[(u32, f32)], k: usize) -> Vec<SearchResult> {
    let mut topk = TopK::new(k);
    for &(id, d) in candidates {
        topk.push(d, id);
    }
    topk.into_sorted()
}

/// Runs a full query through the six stages (fused PQDist/SelK fast path)
/// on the process-default scan kernel.
pub fn search<S: IvfSource + ?Sized>(
    index: &S,
    query: &[f32],
    k: usize,
    nprobe: usize,
) -> Vec<SearchResult> {
    let rotated = stage_opq(index, query);
    let dists = stage_ivf_dist(index, &rotated);
    let cells = stage_sel_cells(&dists, nprobe);
    let lut = stage_build_lut(index, &rotated);
    stage_scan_and_select(index, &cells, &lut, k)
}

/// [`search`] with an explicit scan kernel and caller-owned scratch (the
/// serving backends pin their kernel once and reuse one scratch per batch).
pub fn search_with_kernel<S: IvfSource + ?Sized>(
    index: &S,
    query: &[f32],
    k: usize,
    nprobe: usize,
    kernel: ScanKernel,
    scratch: &mut ScanScratch,
) -> Vec<SearchResult> {
    let rotated = stage_opq(index, query);
    let dists = stage_ivf_dist(index, &rotated);
    let cells = stage_sel_cells(&dists, nprobe);
    let lut = stage_build_lut(index, &rotated);
    stage_scan_and_select_with(index, &cells, &lut, k, kernel, scratch)
}

/// Runs a full query keeping the stages separate and timing each one.
/// Slightly slower than [`search`] (PQDist materialises its candidate list)
/// but returns identical results; used for the Figure 3 breakdowns.
pub fn search_with_timings<S: IvfSource + ?Sized>(
    index: &S,
    query: &[f32],
    k: usize,
    nprobe: usize,
    timings: &mut StageTimings,
) -> Vec<SearchResult> {
    SCAN_SCRATCH.with(|scratch| {
        search_with_timings_kernel(
            index,
            query,
            k,
            nprobe,
            simd::default_kernel(),
            timings,
            &mut scratch.borrow_mut(),
        )
    })
}

/// [`search_with_timings`] with an explicit scan kernel — the measurement
/// behind the per-kernel Figure 3 breakdown. Stage PQDist runs the chosen
/// kernel into the scratch's reused candidate buffer (no per-query `Vec`
/// growth); SelK selects from that buffer as before.
pub fn search_with_timings_kernel<S: IvfSource + ?Sized>(
    index: &S,
    query: &[f32],
    k: usize,
    nprobe: usize,
    kernel: ScanKernel,
    timings: &mut StageTimings,
    scratch: &mut ScanScratch,
) -> Vec<SearchResult> {
    let t0 = Instant::now();
    let rotated = stage_opq(index, query);
    let t1 = Instant::now();
    timings.record(SearchStage::Opq, t1 - t0);

    let dists = stage_ivf_dist(index, &rotated);
    let t2 = Instant::now();
    timings.record(SearchStage::IvfDist, t2 - t1);

    let cells = stage_sel_cells(&dists, nprobe);
    let t3 = Instant::now();
    timings.record(SearchStage::SelCells, t3 - t2);

    let lut = stage_build_lut(index, &rotated);
    let t4 = Instant::now();
    timings.record(SearchStage::BuildLut, t4 - t3);

    simd::scan_pairs(index, &cells, &lut, kernel, scratch);
    let t5 = Instant::now();
    timings.record(SearchStage::PqDist, t5 - t4);

    let results = match kernel {
        // The int8 split path carries first-pass distances; re-rank the
        // top candidates exactly as the fused path does so results match.
        ScanKernel::Int8 => {
            let mut approx = TopK::new(simd::rerank_depth(k));
            for &(id, d) in scratch.pairs() {
                approx.push(d, id);
            }
            let survivors: std::collections::HashSet<u32> =
                approx.into_sorted().into_iter().map(|r| r.id).collect();
            let exact = stage_pq_dist(index, &cells, &lut);
            let mut topk = TopK::new(k);
            for (id, d) in exact {
                if survivors.contains(&id) {
                    topk.push(d, id);
                }
            }
            topk.into_sorted()
        }
        _ => stage_sel_k(scratch.pairs(), k),
    };
    let t6 = Instant::now();
    timings.record(SearchStage::SelK, t6 - t5);

    timings.queries += 1;
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IvfPqIndex, IvfPqTrainConfig};
    use fanns_dataset::ground_truth::ground_truth;
    use fanns_dataset::recall::recall_at_k;
    use fanns_dataset::synth::SyntheticSpec;

    fn build_small() -> (
        fanns_dataset::types::VectorDataset,
        fanns_dataset::types::QuerySet,
        IvfPqIndex,
    ) {
        let (db, queries) = SyntheticSpec::sift_small(21).generate();
        let cfg = IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000)
            .with_seed(3);
        let index = IvfPqIndex::build(&db, &cfg);
        (db, queries, index)
    }

    #[test]
    fn topk_keeps_the_smallest() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0f32, 1.0, 4.0, 0.5, 9.0, 2.0].iter().enumerate() {
            t.push(*d, i as u32);
        }
        let out = t.into_sorted();
        let dists: Vec<f32> = out.iter().map(|r| r.distance).collect();
        assert_eq!(dists, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn topk_threshold_tracks_worst_kept() {
        let mut t = TopK::new(2);
        assert!(t.threshold().is_infinite());
        t.push(3.0, 0);
        t.push(1.0, 1);
        assert_eq!(t.threshold(), 3.0);
        t.push(2.0, 2);
        assert_eq!(t.threshold(), 2.0);
    }

    #[test]
    fn sel_cells_returns_nearest_cells_sorted_by_distance() {
        let dists = vec![3.0f32, 0.5, 2.0, 1.0];
        let cells = stage_sel_cells(&dists, 2);
        assert_eq!(cells, vec![1, 3]);
    }

    #[test]
    fn fused_and_split_paths_agree() {
        let (_, queries, index) = build_small();
        for q in 0..4 {
            let fused = search(&index, queries.get(q), 10, 4);
            let mut timings = StageTimings::default();
            let split = search_with_timings(&index, queries.get(q), 10, 4, &mut timings);
            assert_eq!(fused, split);
            assert_eq!(timings.queries, 1);
            assert!(timings.total() > Duration::ZERO);
        }
    }

    #[test]
    fn probing_all_cells_approaches_exhaustive_pq_search() {
        let (db, queries, index) = build_small();
        let gt = ground_truth(&db, &queries, 10);
        let results: Vec<Vec<usize>> = (0..queries.len())
            .map(|q| {
                search(&index, queries.get(q), 10, index.nlist())
                    .into_iter()
                    .map(|r| r.id as usize)
                    .collect()
            })
            .collect();
        let report = recall_at_k(&results, &gt, 10);
        // Scanning every cell, recall is limited only by PQ quantization
        // error; on this easy clustered dataset that should be high.
        assert!(
            report.recall_at_k > 0.7,
            "full-probe recall unexpectedly low: {}",
            report.recall_at_k
        );
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let (db, queries, index) = build_small();
        let gt = ground_truth(&db, &queries, 10);
        let run = |nprobe: usize| {
            let results: Vec<Vec<usize>> = (0..queries.len())
                .map(|q| {
                    search(&index, queries.get(q), 10, nprobe)
                        .into_iter()
                        .map(|r| r.id as usize)
                        .collect()
                })
                .collect();
            recall_at_k(&results, &gt, 10).recall_at_k
        };
        let low = run(1);
        let high = run(16);
        assert!(high >= low, "recall should not degrade with more probes");
        assert!(high > 0.7);
    }

    #[test]
    fn results_are_sorted_and_bounded_by_k() {
        let (_, queries, index) = build_small();
        let res = search(&index, queries.get(0), 10, 4);
        assert!(res.len() <= 10);
        assert!(res.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn timings_fractions_sum_to_one() {
        let (_, queries, index) = build_small();
        let mut timings = StageTimings::default();
        for q in 0..8 {
            let _ = search_with_timings(&index, queries.get(q), 10, 8, &mut timings);
        }
        let fractions = timings.fractions();
        let sum: f64 = fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(timings.queries, 8);
        // The bottleneck must be one of the six stages.
        let _ = timings.bottleneck();
    }

    #[test]
    fn merge_accumulates_queries_and_time() {
        let mut a = StageTimings::default();
        a.record(SearchStage::PqDist, Duration::from_nanos(100));
        a.queries = 1;
        let mut b = StageTimings::default();
        b.record(SearchStage::PqDist, Duration::from_nanos(50));
        b.record(SearchStage::SelK, Duration::from_nanos(25));
        b.queries = 2;
        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.get(SearchStage::PqDist), Duration::from_nanos(150));
        assert_eq!(a.get(SearchStage::SelK), Duration::from_nanos(25));
    }
}
