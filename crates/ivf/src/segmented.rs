//! Segmented mutable IVF: live inserts and deletes over immutable sealed
//! segments, with background-compactable tombstones.
//!
//! Every other index in this workspace is build-once/search-forever, but
//! production indexes churn. [`SegmentedIndex`] closes that gap with the
//! classic LSM-flavoured segment design (see `docs/MUTATION.md`):
//!
//! * a **write segment** — raw vectors appended by [`SegmentedIndex::insert`]
//!   and scanned *exactly* (brute-force L2) at query time, so freshly
//!   inserted vectors are findable immediately with no quantization error,
//! * **sealed segments** — immutable [`IvfSource`]s (heap-owned
//!   [`IvfPqIndex`]es or `mmap`-backed
//!   [`MappedIndex`](crate::storage::MappedIndex)es) scanned through the
//!   ordinary SIMD ADC data plane,
//! * a **deletion bitmap** — [`SegmentedIndex::delete`] marks ids as
//!   tombstoned; queries filter tombstones out of every candidate list, so a
//!   deleted id is never returned even before its bytes are reclaimed,
//! * **compaction** — [`SegmentedIndex::compact`] seals the write segment
//!   (encoding its vectors with the shared trained quantizers), merges every
//!   sealed segment into one, physically drops tombstoned ids, rebuilds the
//!   transposed scan slabs, and publishes the new segment set under an
//!   atomic **generation** bump — the signal the serving layer's
//!   `QueryResultCache` generation invalidation already understands.
//!
//! # Correctness contract
//!
//! The invariants the model-based test battery
//! (`crates/ivf/tests/mutation_model.rs`) enforces:
//!
//! 1. **No resurrection** — a search never returns a tombstoned id, no
//!    matter how operations interleave with compactions.
//! 2. **Live vectors stay findable** — with `nprobe = nlist` and
//!    `k ≥ live()`, a search returns exactly the live id set.
//! 3. **Compaction is result-invariant** — under full probe the returned id
//!    set is unchanged by a compaction, and ids that were already sealed
//!    keep *bit-identical* ADC distances (their PQ codes are copied
//!    verbatim, never re-encoded). Write-segment vectors transition from
//!    exact to ADC distances when sealed — the one quantization step the
//!    design admits, bounded by the PQ error the recall tests cover.
//!
//! All sealed segments must share the template's trained quantizers (same
//! coarse centroids, OPQ rotation and PQ codebooks); [`SegmentedIndex`]
//! asserts the cheap shape half of that contract (`dim`/`m`/`ksub`/`nlist`)
//! when a segment is attached.
//!
//! # Concurrency
//!
//! Readers take a shared lock for the duration of one query, so a query
//! always sees one coherent segment set + bitmap — never a torn mix of
//! pre- and post-compaction state. Inserts and deletes take the exclusive
//! lock briefly (an append / a bitmap flip). Compaction does its O(ntotal)
//! rebuild *outside* the lock on a snapshot and re-acquires it only for the
//! final swap; inserts and deletes that land during the rebuild are
//! reconciled at swap time (late inserts stay in the write segment, late
//! deletes stay tombstoned in the bitmap and are reclaimed by the next
//! compaction).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use fanns_dataset::types::VectorDataset;
use fanns_quantize::distance::l2_sq;

use crate::index::{InvertedList, IvfPqIndex};
use crate::search::{self, SearchResult, TopK};
use crate::simd::{default_kernel, ScanKernel, ScanScratch};
use crate::source::IvfSource;

/// Mutation-policy knobs for a [`SegmentedIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentedConfig {
    /// Write-segment size at which [`SegmentedIndex::needs_compaction`]
    /// starts reporting `true`. The write segment is scanned exactly
    /// (O(`len · dim`) per query), so this bounds the non-SIMD share of the
    /// scan.
    pub seal_threshold: usize,
    /// Pending-tombstone fraction of the indexed total at which
    /// [`SegmentedIndex::needs_compaction`] starts reporting `true`
    /// (tombstones inflate every query's candidate over-fetch until they
    /// are reclaimed).
    pub tombstone_ratio: f64,
    /// Sealed-segment count above which compaction is advised regardless of
    /// churn (each extra segment adds one coarse-quantizer pass + scan
    /// fan-out to every query).
    pub max_sealed_segments: usize,
}

impl Default for SegmentedConfig {
    fn default() -> Self {
        Self {
            seal_threshold: 4_096,
            tombstone_ratio: 0.25,
            max_sealed_segments: 4,
        }
    }
}

impl SegmentedConfig {
    /// Builder-style write-segment seal threshold.
    pub fn with_seal_threshold(mut self, threshold: usize) -> Self {
        self.seal_threshold = threshold.max(1);
        self
    }

    /// Builder-style pending-tombstone compaction trigger.
    pub fn with_tombstone_ratio(mut self, ratio: f64) -> Self {
        self.tombstone_ratio = ratio.max(0.0);
        self
    }

    /// Builder-style sealed-segment-count compaction trigger.
    pub fn with_max_sealed_segments(mut self, n: usize) -> Self {
        self.max_sealed_segments = n.max(1);
        self
    }
}

/// Growable bitmap over the global id space. Ids are assigned monotonically
/// and never reused, so a set bit is a permanent tombstone.
#[derive(Debug, Clone, Default)]
struct DeletionBitmap {
    words: Vec<u64>,
    marked: usize,
}

impl DeletionBitmap {
    #[inline]
    fn is_deleted(&self, id: u32) -> bool {
        let word = (id as usize) / 64;
        self.words
            .get(word)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Marks `id`; returns `false` when it was already marked.
    fn mark(&mut self, id: u32) -> bool {
        let word = (id as usize) / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (id % 64);
        if self.words[word] & bit != 0 {
            return false;
        }
        self.words[word] |= bit;
        self.marked += 1;
        true
    }
}

/// The mutable state a query reads under one shared lock: the sealed
/// segment list, the write segment, and the deletion bitmap.
struct SegmentState {
    sealed: Vec<Arc<dyn IvfSource>>,
    write_ids: Vec<u32>,
    write_vectors: VectorDataset,
    deleted: DeletionBitmap,
    /// Tombstoned ids still physically present in some segment — the
    /// per-query candidate over-fetch needed to guarantee `k` live results.
    pending_tombstones: usize,
    live: usize,
    next_id: u32,
}

impl SegmentState {
    fn sealed_total(&self) -> usize {
        self.sealed.iter().map(|s| s.ntotal()).sum()
    }
}

/// Outcome of one [`SegmentedIndex::compact`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// `true` when there was nothing to do (no write vectors, no pending
    /// tombstones, at most one sealed segment) — no swap happened and the
    /// generation did **not** advance.
    pub skipped: bool,
    /// Write-segment vectors encoded into the new sealed segment.
    pub sealed_from_write: usize,
    /// Tombstoned ids physically dropped by the merge.
    pub dropped_tombstones: usize,
    /// Sealed segments merged into the one new segment.
    pub merged_segments: usize,
    /// Live vectors after the swap.
    pub live: usize,
    /// The generation published by the swap (unchanged when skipped).
    pub generation: u64,
}

/// A point-in-time summary of a [`SegmentedIndex`] (see the field docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedStats {
    /// Immutable sealed segments currently searched.
    pub sealed_segments: usize,
    /// Vectors stored across sealed segments (tombstoned ones included
    /// until a compaction reclaims them).
    pub sealed_vectors: usize,
    /// Vectors in the exact-scanned write segment (tombstoned included).
    pub write_vectors: usize,
    /// Live (inserted and not deleted) vectors.
    pub live: usize,
    /// Tombstoned ids still physically present in some segment.
    pub pending_tombstones: usize,
    /// Ids ever tombstoned (monotone; never reset).
    pub deleted_total: usize,
    /// Current segment-set generation (bumped by every compaction swap).
    pub generation: u64,
    /// Compactions performed (skipped calls excluded).
    pub compactions: u64,
    /// Next id [`SegmentedIndex::insert`] will assign.
    pub next_id: u32,
}

/// A mutable IVF-PQ index built from one mutable write segment plus
/// immutable sealed segments — see the module docs for the design and
/// `docs/MUTATION.md` for the operating guide.
pub struct SegmentedIndex {
    /// Quantizer holder: the shared coarse k-means, optional OPQ rotation
    /// and PQ codebooks every segment was (or will be) encoded with. Its
    /// inverted lists are empty — data lives in the segments.
    template: IvfPqIndex,
    config: SegmentedConfig,
    state: RwLock<SegmentState>,
    /// Serialises compactions (the swap itself is under `state`'s write
    /// lock; this keeps two concurrent rebuilds from racing each other).
    compaction: Mutex<()>,
    generation: AtomicU64,
    compactions: AtomicU64,
}

impl std::fmt::Debug for SegmentedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SegmentedIndex")
            .field("dim", &self.template.dim())
            .field("nlist", &self.template.nlist())
            .field("stats", &stats)
            .finish()
    }
}

impl SegmentedIndex {
    /// Wraps a built index as the first sealed segment of a mutable index.
    /// The index's trained quantizers become the shared template every
    /// future seal encodes with.
    pub fn new(initial: IvfPqIndex, config: SegmentedConfig) -> Self {
        let template = strip_to_template(&initial);
        let sealed: Vec<Arc<dyn IvfSource>> = if initial.ntotal() > 0 {
            vec![Arc::new(initial)]
        } else {
            Vec::new()
        };
        Self::with_template(template, sealed, config)
    }

    /// Wraps an `mmap`-backed on-disk index as the first sealed segment.
    /// The template quantizers are materialised from the mapping once (the
    /// segment itself keeps serving zero-copy).
    pub fn from_mapped(mapped: Arc<crate::storage::MappedIndex>, config: SegmentedConfig) -> Self {
        let template = strip_to_template(&mapped.to_owned_index());
        let sealed: Vec<Arc<dyn IvfSource>> = vec![mapped];
        Self::with_template(template, sealed, config)
    }

    /// The general constructor: a quantizer template plus any number of
    /// already-sealed segments (heap or mapped).
    ///
    /// # Panics
    /// Panics when a sealed segment's shape (`dim`/`m`/`ksub`/`nlist`)
    /// disagrees with the template — segments must share the template's
    /// trained quantizers (the searchable half of that contract).
    pub fn with_template(
        template: IvfPqIndex,
        sealed: Vec<Arc<dyn IvfSource>>,
        config: SegmentedConfig,
    ) -> Self {
        let mut next_id = 0u32;
        let mut live = 0usize;
        for (s, seg) in sealed.iter().enumerate() {
            assert_eq!(seg.dim(), template.dim(), "segment {s}: dim mismatch");
            assert_eq!(seg.m(), IvfSource::m(&template), "segment {s}: m mismatch");
            assert_eq!(
                seg.ksub(),
                IvfSource::ksub(&template),
                "segment {s}: ksub mismatch"
            );
            assert_eq!(seg.nlist(), template.nlist(), "segment {s}: nlist mismatch");
            live += seg.ntotal();
            for cell in 0..seg.nlist() {
                for &id in seg.list_ids(cell) {
                    next_id = next_id.max(id + 1);
                }
            }
        }
        let dim = template.dim();
        Self {
            template,
            config,
            state: RwLock::new(SegmentState {
                sealed,
                write_ids: Vec::new(),
                write_vectors: VectorDataset::empty(dim),
                deleted: DeletionBitmap::default(),
                pending_tombstones: 0,
                live,
                next_id,
            }),
            compaction: Mutex::new(()),
            generation: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.template.dim()
    }

    /// Number of Voronoi cells of every segment.
    pub fn nlist(&self) -> usize {
        self.template.nlist()
    }

    /// PQ code bytes per vector.
    pub fn m(&self) -> usize {
        IvfSource::m(&self.template)
    }

    /// The mutation-policy configuration.
    pub fn config(&self) -> SegmentedConfig {
        self.config
    }

    /// Vectors physically present across all segments (tombstoned ids
    /// included until a compaction reclaims them).
    pub fn ntotal(&self) -> usize {
        let state = self.state.read().expect("segment state lock");
        state.sealed_total() + state.write_ids.len()
    }

    /// Live (inserted and not deleted) vectors.
    pub fn live(&self) -> usize {
        self.state.read().expect("segment state lock").live
    }

    /// The current segment-set generation. Bumped by every compaction swap;
    /// serving layers key their result-cache invalidation off this.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Point-in-time stats snapshot.
    pub fn stats(&self) -> SegmentedStats {
        let state = self.state.read().expect("segment state lock");
        SegmentedStats {
            sealed_segments: state.sealed.len(),
            sealed_vectors: state.sealed_total(),
            write_vectors: state.write_ids.len(),
            live: state.live,
            pending_tombstones: state.pending_tombstones,
            deleted_total: state.deleted.marked,
            generation: self.generation.load(Ordering::Acquire),
            compactions: self.compactions.load(Ordering::Acquire),
            next_id: state.next_id,
        }
    }

    /// Ids currently stored in sealed segments (tombstoned included), in
    /// unspecified order. Used by the mutation test battery to pin down
    /// which ids must keep bit-identical distances across a compaction.
    pub fn sealed_ids(&self) -> Vec<u32> {
        let state = self.state.read().expect("segment state lock");
        let mut ids = Vec::with_capacity(state.sealed_total());
        for seg in &state.sealed {
            for cell in 0..seg.nlist() {
                ids.extend_from_slice(seg.list_ids(cell));
            }
        }
        ids
    }

    /// Ids currently live, in unspecified order.
    pub fn live_ids(&self) -> Vec<u32> {
        let state = self.state.read().expect("segment state lock");
        let mut ids = Vec::with_capacity(state.live);
        for seg in &state.sealed {
            for cell in 0..seg.nlist() {
                for &id in seg.list_ids(cell) {
                    if !state.deleted.is_deleted(id) {
                        ids.push(id);
                    }
                }
            }
        }
        for &id in &state.write_ids {
            if !state.deleted.is_deleted(id) {
                ids.push(id);
            }
        }
        ids
    }

    /// Appends one vector to the write segment and returns its id. The
    /// vector is findable by the very next search (exact-scanned until a
    /// compaction seals it into PQ form).
    ///
    /// # Panics
    /// Panics when `vector.len()` differs from the index dimensionality.
    pub fn insert(&self, vector: &[f32]) -> u32 {
        assert_eq!(
            vector.len(),
            self.template.dim(),
            "insert dimensionality mismatch"
        );
        let mut state = self.state.write().expect("segment state lock");
        let id = state.next_id;
        state.next_id = state
            .next_id
            .checked_add(1)
            .expect("id space exhausted (u32)");
        state.write_ids.push(id);
        state.write_vectors.push(vector);
        state.live += 1;
        id
    }

    /// Tombstones `id`. Returns `true` when the id was live (the delete took
    /// effect), `false` when it was never inserted or already deleted. The
    /// id disappears from search results immediately; its bytes are
    /// reclaimed by the next compaction.
    pub fn delete(&self, id: u32) -> bool {
        let mut state = self.state.write().expect("segment state lock");
        if id >= state.next_id {
            return false;
        }
        if !state.deleted.mark(id) {
            return false;
        }
        state.live -= 1;
        // Every non-tombstoned id < next_id is physically present in exactly
        // one segment, so a successful delete adds one pending tombstone.
        state.pending_tombstones += 1;
        true
    }

    /// Top-`k` search across every segment on the process-default scan
    /// kernel (see [`default_kernel`]).
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<SearchResult> {
        let mut scratch = ScanScratch::new();
        self.search_with_kernel(query, k, nprobe, default_kernel(), &mut scratch)
    }

    /// Top-`k` search across every segment with an explicit kernel and
    /// caller-owned scratch: sealed segments run the ordinary IVF-PQ
    /// pipeline (ADC distances), the write segment is scanned exactly, and
    /// tombstoned candidates are filtered before the final merge. Sealed
    /// segments are over-fetched by the pending-tombstone count so the
    /// filter can never starve the merged top-`k` of live candidates.
    pub fn search_with_kernel(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        kernel: ScanKernel,
        scratch: &mut ScanScratch,
    ) -> Vec<SearchResult> {
        let state = self.state.read().expect("segment state lock");
        let fetch = k.saturating_add(state.pending_tombstones);
        let mut merged = TopK::new(k);
        for seg in &state.sealed {
            for hit in search::search_with_kernel(seg, query, fetch, nprobe, kernel, scratch) {
                if !state.deleted.is_deleted(hit.id) {
                    merged.push(hit.distance, hit.id);
                }
            }
        }
        for (slot, &id) in state.write_ids.iter().enumerate() {
            if !state.deleted.is_deleted(id) {
                merged.push(l2_sq(query, state.write_vectors.get(slot)), id);
            }
        }
        merged.into_sorted()
    }

    /// Whether the configured compaction policy advises a [`compact`]
    /// (write segment at/over its seal threshold, pending tombstones over
    /// the configured fraction of the indexed total, or too many sealed
    /// segments).
    ///
    /// [`compact`]: SegmentedIndex::compact
    pub fn needs_compaction(&self) -> bool {
        let state = self.state.read().expect("segment state lock");
        if state.write_ids.len() >= self.config.seal_threshold {
            return true;
        }
        if state.sealed.len() > self.config.max_sealed_segments {
            return true;
        }
        let total = state.sealed_total() + state.write_ids.len();
        state.pending_tombstones > 0
            && (state.pending_tombstones as f64) >= self.config.tombstone_ratio * (total as f64)
    }

    /// Seals the write segment, merges every sealed segment into one,
    /// drops tombstoned ids, rebuilds the PQ codes + scan slabs, and
    /// publishes the new segment set under a generation bump.
    ///
    /// The O(ntotal) rebuild runs on a snapshot outside the reader lock;
    /// queries keep flowing against the old segment set and observe the new
    /// one atomically at the swap. Inserts that land during the rebuild
    /// stay in the write segment; deletes stay tombstoned in the bitmap
    /// (their bytes are reclaimed by the *next* compaction). Returns a
    /// [`CompactionReport`]; when there is nothing to do the call is a
    /// no-op with `skipped = true` and the generation does not move.
    pub fn compact(&self) -> CompactionReport {
        let _serialise = self.compaction.lock().expect("compaction lock");

        // Snapshot under the shared lock: cheap Arc clones of the sealed
        // set, a copy of the write segment, and the bitmap as of now.
        let (sealed, write_ids, write_vectors, deleted) = {
            let state = self.state.read().expect("segment state lock");
            if state.write_ids.is_empty()
                && state.pending_tombstones == 0
                && state.sealed.len() <= 1
            {
                return CompactionReport {
                    skipped: true,
                    sealed_from_write: 0,
                    dropped_tombstones: 0,
                    merged_segments: state.sealed.len(),
                    live: state.live,
                    generation: self.generation.load(Ordering::Acquire),
                };
            }
            (
                state.sealed.clone(),
                state.write_ids.clone(),
                state.write_vectors.clone(),
                state.deleted.clone(),
            )
        };

        // Rebuild outside the lock: copy surviving sealed codes verbatim
        // (bit-identical distances), encode surviving write vectors with
        // the shared template quantizers.
        let m = IvfSource::m(&self.template);
        let nlist = self.template.nlist();
        let mut lists = vec![InvertedList::default(); nlist];
        let mut dropped = 0usize;
        for seg in &sealed {
            for (cell, list) in lists.iter_mut().enumerate() {
                let ids = seg.list_ids(cell);
                let codes = seg.list_codes(cell);
                for (slot, &id) in ids.iter().enumerate() {
                    if deleted.is_deleted(id) {
                        dropped += 1;
                        continue;
                    }
                    list.ids.push(id);
                    list.codes
                        .extend_from_slice(&codes[slot * m..(slot + 1) * m]);
                }
            }
        }
        let mut sealed_from_write = 0usize;
        for (slot, &id) in write_ids.iter().enumerate() {
            if deleted.is_deleted(id) {
                dropped += 1;
                continue;
            }
            let raw = write_vectors.get(slot);
            let rotated;
            let v: &[f32] = match self.template.opq() {
                Some(t) => {
                    rotated = t.apply(raw);
                    &rotated
                }
                None => raw,
            };
            let (cell, _) = self.template.coarse().assign(v);
            let code = self.template.pq().encode(v);
            lists[cell].ids.push(id);
            lists[cell].codes.extend_from_slice(&code);
            sealed_from_write += 1;
        }
        let ntotal = lists.iter().map(|l| l.len()).sum();
        let merged = IvfPqIndex::from_parts(
            self.template.dim(),
            self.template.coarse().clone(),
            self.template.opq().cloned(),
            self.template.pq().clone(),
            lists,
            ntotal,
            *self.template.config(),
        );
        let merged: Arc<dyn IvfSource> = Arc::new(merged);

        // Swap under the exclusive lock, reconciling whatever landed while
        // the rebuild ran.
        let mut state = self.state.write().expect("segment state lock");
        state.write_ids.drain(..write_ids.len());
        let mut remaining = VectorDataset::empty(self.template.dim());
        for slot in 0..state.write_ids.len() {
            // Vectors for the surviving (post-snapshot) write ids sit after
            // the drained prefix in the old buffer.
            remaining.push(state.write_vectors.get(write_ids.len() + slot));
        }
        state.write_vectors = remaining;
        state.sealed = vec![merged];
        // Tombstones that arrived during the rebuild are still physically
        // present (in the merged segment or the surviving write tail);
        // recount them against the *current* bitmap.
        let mut pending = 0usize;
        for seg in &state.sealed {
            for cell in 0..seg.nlist() {
                for &id in seg.list_ids(cell) {
                    if state.deleted.is_deleted(id) {
                        pending += 1;
                    }
                }
            }
        }
        for &id in &state.write_ids {
            if state.deleted.is_deleted(id) {
                pending += 1;
            }
        }
        state.pending_tombstones = pending;
        let live = state.live;
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        self.compactions.fetch_add(1, Ordering::AcqRel);
        drop(state);

        CompactionReport {
            skipped: false,
            sealed_from_write,
            dropped_tombstones: dropped,
            merged_segments: sealed.len(),
            live,
            generation,
        }
    }
}

/// Clones an index's trained quantizers into an empty-list template (the
/// shared encoder every future seal uses), without copying any codes.
fn strip_to_template(index: &IvfPqIndex) -> IvfPqIndex {
    IvfPqIndex::from_parts(
        index.dim(),
        index.coarse().clone(),
        index.opq().cloned(),
        index.pq().clone(),
        vec![InvertedList::default(); index.nlist()],
        0,
        *index.config(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::synth::SyntheticSpec;
    use std::collections::HashSet;

    fn tiny_config(nlist: usize) -> crate::index::IvfPqTrainConfig {
        crate::index::IvfPqTrainConfig::new(nlist)
            .with_m(8)
            .with_ksub(16)
            .with_train_sample(1_000)
            .with_seed(11)
    }

    fn build_segmented(seed: u64) -> (fanns_dataset::types::QuerySet, SegmentedIndex) {
        let (db, queries) = SyntheticSpec::sift_small(seed).generate();
        let index = IvfPqIndex::build(&db, &tiny_config(8));
        let segmented =
            SegmentedIndex::new(index, SegmentedConfig::default().with_seal_threshold(64));
        (queries, segmented)
    }

    fn result_ids(results: &[SearchResult]) -> Vec<u32> {
        results.iter().map(|r| r.id).collect()
    }

    #[test]
    fn insert_is_immediately_findable_with_exact_distance() {
        let (queries, segmented) = build_segmented(41);
        let probe = queries.get(0).to_vec();
        let id = segmented.insert(&probe);
        let results = segmented.search(&probe, 1, segmented.nlist());
        assert_eq!(results[0].id, id);
        assert_eq!(results[0].distance, 0.0, "exact scan of the write segment");
        assert_eq!(segmented.live(), 1_001);
    }

    #[test]
    fn delete_hides_the_id_immediately() {
        let (queries, segmented) = build_segmented(42);
        let probe = queries.get(1).to_vec();
        let id = segmented.insert(&probe);
        assert!(segmented.delete(id));
        assert!(!segmented.delete(id), "double delete is a no-op");
        assert!(!segmented.delete(9_999), "unknown id is a no-op");
        let results = segmented.search(&probe, 10, segmented.nlist());
        assert!(!result_ids(&results).contains(&id));
        assert_eq!(segmented.live(), 1_000);
    }

    #[test]
    fn deleted_sealed_id_never_returned_and_k_still_filled() {
        let (queries, segmented) = build_segmented(43);
        // Delete the exact nearest sealed neighbours of a probe; the next
        // search must both hide them and still return k live results.
        let probe = queries.get(2);
        let before = segmented.search(probe, 5, segmented.nlist());
        let victims: Vec<u32> = result_ids(&before);
        for &id in &victims {
            assert!(segmented.delete(id));
        }
        let after = segmented.search(probe, 5, segmented.nlist());
        assert_eq!(after.len(), 5, "over-fetch must keep k live candidates");
        for id in result_ids(&after) {
            assert!(!victims.contains(&id), "deleted id resurfaced");
        }
    }

    #[test]
    fn compaction_preserves_live_id_set_and_sealed_distances() {
        let (queries, segmented) = build_segmented(44);
        for q in 0..8 {
            segmented.insert(queries.get(q));
        }
        let victims = [3u32, 700, 999];
        for &id in &victims {
            assert!(segmented.delete(id));
        }
        let probe = queries.get(3);
        let sealed_before: HashSet<u32> = segmented.sealed_ids().into_iter().collect();
        let before = segmented.search(probe, 50, segmented.nlist());
        let report = segmented.compact();
        assert!(!report.skipped);
        assert_eq!(report.sealed_from_write, 8);
        assert_eq!(report.dropped_tombstones, 3);
        assert_eq!(report.generation, segmented.generation());
        let after = segmented.search(probe, 50, segmented.nlist());
        // Id set invariant under full probe with identical k.
        let ids_before: HashSet<u32> = result_ids(&before).into_iter().collect();
        let ids_after: HashSet<u32> = result_ids(&after).into_iter().collect();
        assert_eq!(ids_before, ids_after, "compaction changed the id set");
        // Already-sealed ids keep bit-identical ADC distances.
        let after_by_id: std::collections::HashMap<u32, f32> =
            after.iter().map(|r| (r.id, r.distance)).collect();
        for r in &before {
            if sealed_before.contains(&r.id) {
                assert_eq!(
                    after_by_id.get(&r.id).copied(),
                    Some(r.distance),
                    "sealed id {} distance changed across compaction",
                    r.id
                );
            }
        }
        // All tombstones were reclaimed; structure collapsed to one segment.
        let stats = segmented.stats();
        assert_eq!(stats.sealed_segments, 1);
        assert_eq!(stats.write_vectors, 0);
        assert_eq!(stats.pending_tombstones, 0);
        assert_eq!(stats.live, 1_005);
    }

    #[test]
    fn compaction_skips_when_nothing_to_do() {
        let (_, segmented) = build_segmented(45);
        let report = segmented.compact();
        assert!(report.skipped);
        assert_eq!(segmented.generation(), 0);
        assert_eq!(segmented.stats().compactions, 0);
    }

    #[test]
    fn needs_compaction_triggers() {
        let (queries, segmented) = build_segmented(46);
        assert!(!segmented.needs_compaction());
        // Tombstone trigger.
        for id in 0..300u32 {
            assert!(segmented.delete(id));
        }
        assert!(segmented.needs_compaction(), "25% tombstones must trigger");
        segmented.compact();
        assert!(!segmented.needs_compaction());
        // Write-segment trigger (threshold 64).
        for i in 0..64 {
            segmented.insert(queries.get(i % queries.len()));
        }
        assert!(segmented.needs_compaction(), "full write segment triggers");
    }

    #[test]
    fn inserts_after_compaction_get_fresh_ids() {
        let (queries, segmented) = build_segmented(47);
        let a = segmented.insert(queries.get(0));
        segmented.compact();
        let b = segmented.insert(queries.get(1));
        assert!(b > a, "ids stay monotone across compactions");
        let live: HashSet<u32> = segmented.live_ids().into_iter().collect();
        assert!(live.contains(&a) && live.contains(&b));
    }

    #[test]
    fn empty_initial_index_supports_insert_then_compact() {
        let (db, queries) = SyntheticSpec::sift_small(48).generate();
        let trained = IvfPqIndex::train(&db, &tiny_config(8));
        let segmented = SegmentedIndex::new(trained, SegmentedConfig::default());
        assert_eq!(segmented.live(), 0);
        for q in 0..16 {
            segmented.insert(queries.get(q));
        }
        let report = segmented.compact();
        assert_eq!(report.sealed_from_write, 16);
        let results = segmented.search(queries.get(0), 4, segmented.nlist());
        assert!(!results.is_empty());
        assert_eq!(segmented.live(), 16);
    }
}
