//! f32 ADC scan kernels over a block-transposed [`CodeSlab`].
//!
//! Both kernels compute, for every code in the slab, the asymmetric distance
//! `Σ_j lut[j][code[j]]` — the exact arithmetic of
//! [`DistanceTable::adc`](fanns_quantize::pq::DistanceTable::adc) — but
//! process [`BLOCK`] codes per iteration with one independent accumulator
//! per lane:
//!
//! * [`scan_f32_portable`] keeps 8 scalar accumulators, which breaks the
//!   add-dependency chain that throttles the per-code scalar loop and gives
//!   the compiler a clean auto-vectorization target on any architecture;
//! * [`scan_f32_avx2`] (x86-64 only, runtime-dispatched) zero-extends 8
//!   adjacent code bytes to 32-bit lane indices and gathers 8 LUT entries
//!   per sub-quantizer with `_mm256_i32gather_ps`, accumulating in one
//!   `__m256` register.
//!
//! Every lane sums its `m` entries in the same order as the scalar
//! reference, so per-code distances are **bit-identical** across scalar,
//! portable and AVX2 kernels (f32 addition is deterministic for a fixed
//! order — only the grouping across *codes* changes, never within one).

use fanns_quantize::pq::DistanceTable;

use super::slab::{CodeSlab, BLOCK};

/// Computes per-code f32 ADC distances for the whole slab into `out`.
///
/// `out` must hold exactly [`CodeSlab::padded_len`] entries; tail-padding
/// lanes receive the distance of the zero code and must be ignored by the
/// caller (bound id loops with [`CodeSlab::len`]).
///
/// # Panics
/// Panics when shapes disagree (`slab.m() != lut.m()`, wrong `out` length).
pub fn scan_f32_portable(slab: &CodeSlab, lut: &DistanceTable, out: &mut [f32]) {
    check_shapes(slab, lut.m(), out.len());
    let m = slab.m();
    let ksub = lut.ksub();
    let table = lut.as_flat();
    let bytes = slab.as_bytes();
    for block in 0..slab.blocks() {
        let base = block * m * BLOCK;
        let mut acc = [0.0f32; BLOCK];
        for j in 0..m {
            let row = &table[j * ksub..(j + 1) * ksub];
            let lanes: &[u8] = &bytes[base + j * BLOCK..base + (j + 1) * BLOCK];
            for (a, &c) in acc.iter_mut().zip(lanes) {
                *a += row[c as usize];
            }
        }
        out[block * BLOCK..(block + 1) * BLOCK].copy_from_slice(&acc);
    }
}

/// Whether the AVX2 kernel can run on this host.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2 gather kernel: same contract as [`scan_f32_portable`], 8 codes per
/// iteration in one vector register. Falls back to the portable kernel when
/// AVX2 is not available (non-x86 builds keep the same entry point).
///
/// # Panics
/// Panics when shapes disagree (`slab.m() != lut.m()`, wrong `out` length).
pub fn scan_f32_avx2(slab: &CodeSlab, lut: &DistanceTable, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        check_shapes(slab, lut.m(), out.len());
        // SAFETY: AVX2 support was just verified at runtime, and
        // `check_shapes` established the buffer contract the unsafe body
        // relies on (see `scan_f32_avx2_impl`).
        unsafe { x86::scan_f32_avx2_impl(slab, lut, out) };
        return;
    }
    scan_f32_portable(slab, lut, out);
}

fn check_shapes(slab: &CodeSlab, lut_m: usize, out_len: usize) {
    assert_eq!(slab.m(), lut_m, "slab and LUT disagree on m");
    assert_eq!(
        out_len,
        slab.padded_len(),
        "output buffer must hold padded_len() distances"
    );
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Gathers the 8 LUT entries sub-quantizer `j` selects for one block.
    ///
    /// # Safety
    /// Requires AVX2; `base` must point at a full `m * BLOCK`-byte block and
    /// every `j * ksub + code` index must stay inside the `table` buffer.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn gather8(table: *const f32, base: *const u8, j: usize, ksub: usize) -> __m256 {
        // 8 adjacent code bytes = sub-quantizer j of 8 codes.
        let lanes = _mm_loadl_epi64(base.add(j * BLOCK) as *const __m128i);
        let idx = _mm256_cvtepu8_epi32(lanes);
        let idx = _mm256_add_epi32(idx, _mm256_set1_epi32((j * ksub) as i32));
        _mm256_i32gather_ps::<4>(table, idx)
    }

    /// # Safety
    /// Requires AVX2. Shape contract (checked by the caller): `out` holds
    /// `slab.padded_len()` entries, `slab.m() == lut.m()`, every code byte
    /// is `< lut.ksub()` (guaranteed by the PQ encoder), so every gather
    /// index is within the `m * ksub` LUT buffer.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_f32_avx2_impl(slab: &CodeSlab, lut: &DistanceTable, out: &mut [f32]) {
        let m = slab.m();
        let ksub = lut.ksub();
        let table = lut.as_flat().as_ptr();
        let bytes = slab.as_bytes().as_ptr();
        let out = out.as_mut_ptr();
        let blocks = slab.blocks();
        let stride = m * BLOCK;
        let mut block = 0usize;
        // Four blocks (32 codes) in flight: each lane still sums its m
        // entries in scalar order (bit-identical), but the four independent
        // accumulator chains hide the FP-add and gather latency that
        // throttles a single chain.
        while block + 4 <= blocks {
            let b0 = bytes.add(block * stride);
            let (b1, b2, b3) = (b0.add(stride), b0.add(2 * stride), b0.add(3 * stride));
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            for j in 0..m {
                a0 = _mm256_add_ps(a0, gather8(table, b0, j, ksub));
                a1 = _mm256_add_ps(a1, gather8(table, b1, j, ksub));
                a2 = _mm256_add_ps(a2, gather8(table, b2, j, ksub));
                a3 = _mm256_add_ps(a3, gather8(table, b3, j, ksub));
            }
            let dst = out.add(block * BLOCK);
            _mm256_storeu_ps(dst, a0);
            _mm256_storeu_ps(dst.add(BLOCK), a1);
            _mm256_storeu_ps(dst.add(2 * BLOCK), a2);
            _mm256_storeu_ps(dst.add(3 * BLOCK), a3);
            block += 4;
        }
        while block < blocks {
            let base = bytes.add(block * stride);
            let mut acc = _mm256_setzero_ps();
            for j in 0..m {
                acc = _mm256_add_ps(acc, gather8(table, base, j, ksub));
            }
            _mm256_storeu_ps(out.add(block * BLOCK), acc);
            block += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_quantize::pq::DistanceTable;

    fn make_lut(m: usize, ksub: usize, seed: u64) -> DistanceTable {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / 1000.0
        };
        let table: Vec<f32> = (0..m * ksub).map(|_| next()).collect();
        DistanceTable::from_flat(m, ksub, table)
    }

    fn make_codes(n: usize, m: usize, ksub: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..n * m)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as usize % ksub) as u8
            })
            .collect()
    }

    fn scalar_reference(codes: &[u8], m: usize, lut: &DistanceTable) -> Vec<f32> {
        codes.chunks_exact(m).map(|code| lut.adc(code)).collect()
    }

    #[test]
    fn portable_matches_scalar_bitwise() {
        for &(n, m, ksub) in &[
            (1usize, 4usize, 16usize),
            (13, 8, 64),
            (64, 16, 256),
            (97, 16, 256),
        ] {
            let lut = make_lut(m, ksub, 42);
            let codes = make_codes(n, m, ksub, 7);
            let slab = CodeSlab::from_codes(&codes, m);
            let mut out = vec![0.0f32; slab.padded_len()];
            scan_f32_portable(&slab, &lut, &mut out);
            let expected = scalar_reference(&codes, m, &lut);
            for i in 0..n {
                assert_eq!(
                    out[i].to_bits(),
                    expected[i].to_bits(),
                    "n={n} m={m} ksub={ksub} code {i}"
                );
            }
        }
    }

    #[test]
    fn avx2_matches_scalar_bitwise_when_available() {
        let (n, m, ksub) = (77usize, 16usize, 256usize);
        let lut = make_lut(m, ksub, 3);
        let codes = make_codes(n, m, ksub, 11);
        let slab = CodeSlab::from_codes(&codes, m);
        let mut out = vec![0.0f32; slab.padded_len()];
        scan_f32_avx2(&slab, &lut, &mut out);
        let expected = scalar_reference(&codes, m, &lut);
        for i in 0..n {
            assert_eq!(out[i].to_bits(), expected[i].to_bits(), "code {i}");
        }
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_is_rejected() {
        let lut = make_lut(4, 16, 1);
        let slab = CodeSlab::from_codes(&make_codes(8, 4, 16, 2), 4);
        let mut out = vec![0.0f32; 3]; // wrong length
        scan_f32_portable(&slab, &lut, &mut out);
    }
}
