//! The vectorized ADC scan data plane: aligned code slabs, SIMD kernels,
//! and runtime kernel dispatch.
//!
//! Every serving number this repo reports bottoms out in the PQ scan loop
//! (Stage PQDist/SelK), which the scalar reference executes one `f32` table
//! lookup at a time. This module family replaces that loop with a
//! register-blocked data plane (see `docs/DATA_PLANE.md`):
//!
//! * [`slab`] — contiguous 64-byte-aligned, block-transposed PQ code storage
//!   built at index construction,
//! * [`kernels`] — f32 scan kernels: a portable 8-lane chunked kernel and an
//!   AVX2 gather kernel, both bit-identical to the scalar reference,
//! * [`int8`] — the int8-quantized-LUT first pass (integer lanes, 4× smaller
//!   table) re-ranked by exact f32 ADC so end-to-end recall is unchanged,
//! * [`ScanKernel`] — the dispatch enum, selected at runtime from CPU
//!   features with an environment override (`FANNS_SCAN_KERNEL`).

pub mod int8;
pub mod kernels;
pub mod slab;

pub use kernels::avx2_available;
pub use slab::{CodeSlab, BLOCK, SLAB_ALIGN};

use std::sync::OnceLock;

use fanns_quantize::pq::DistanceTable;

use crate::search::{SearchResult, TopK};
use crate::source::IvfSource;

/// Which ADC scan implementation executes Stage PQDist/SelK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanKernel {
    /// Per-code scalar reference over the canonical inverted-list layout
    /// (the pre-SIMD baseline; still the arbiter of correctness).
    Scalar,
    /// Register-blocked chunked-scalar kernel over the code slab — the
    /// portable fallback used on non-x86 hosts, bit-identical to `Scalar`.
    Portable,
    /// AVX2 gather kernel over the code slab (x86-64 with AVX2 only),
    /// bit-identical to `Scalar`.
    Avx2,
    /// int8-quantized-LUT first pass over the code slab with exact f32
    /// re-ranking of the surviving candidates (recall-preserving, not
    /// bit-identical: far-away candidates may rank differently below the
    /// re-rank horizon).
    Int8,
}

/// Every kernel, in the order benches sweep them.
pub const ALL_KERNELS: [ScanKernel; 4] = [
    ScanKernel::Scalar,
    ScanKernel::Portable,
    ScanKernel::Avx2,
    ScanKernel::Int8,
];

impl ScanKernel {
    /// Short lowercase label used in bench rows and env overrides.
    pub fn name(&self) -> &'static str {
        match self {
            ScanKernel::Scalar => "scalar",
            ScanKernel::Portable => "portable",
            ScanKernel::Avx2 => "avx2",
            ScanKernel::Int8 => "int8",
        }
    }

    /// Whether this kernel can execute on the current host. Only
    /// [`ScanKernel::Avx2`] is feature-gated; everything else is portable
    /// ([`ScanKernel::Int8`] uses AVX2 internally when present and falls
    /// back to integer chunked-scalar otherwise).
    pub fn is_available(&self) -> bool {
        match self {
            ScanKernel::Avx2 => avx2_available(),
            _ => true,
        }
    }

    /// Parses a kernel name as used by the `FANNS_SCAN_KERNEL` env override
    /// (`auto` and unknown values map to `None` = auto-select).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(ScanKernel::Scalar),
            "portable" => Some(ScanKernel::Portable),
            "avx2" => Some(ScanKernel::Avx2),
            "int8" => Some(ScanKernel::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for ScanKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fastest bit-identical kernel this host supports: AVX2 when detected,
/// the portable chunked kernel otherwise. (Int8 trades exactness for speed
/// and is opt-in via `FANNS_SCAN_KERNEL=int8` or an explicit kernel.)
pub fn auto_kernel() -> ScanKernel {
    if avx2_available() {
        ScanKernel::Avx2
    } else {
        ScanKernel::Portable
    }
}

/// The process-wide default kernel: `FANNS_SCAN_KERNEL` when set to a known
/// name (`scalar` | `portable` | `avx2` | `int8`; an unavailable `avx2`
/// demotes to `portable`), else [`auto_kernel`]. Read once and cached — the
/// serving path must not pay a `getenv` per query.
pub fn default_kernel() -> ScanKernel {
    static DEFAULT: OnceLock<ScanKernel> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let requested = std::env::var("FANNS_SCAN_KERNEL")
            .ok()
            .and_then(|raw| ScanKernel::from_name(&raw));
        match requested {
            Some(kernel) if kernel.is_available() => kernel,
            Some(_) => ScanKernel::Portable,
            None => auto_kernel(),
        }
    })
}

/// Number of candidates the int8 first pass hands to the exact f32 re-rank:
/// `max(4k, k + 32)`. The quantization error bound is additive and small
/// relative to inter-candidate gaps on real tables, so a 4× horizon keeps
/// the true top-k inside the re-rank set in practice (the equivalence tests
/// assert recall parity on the synthetic workloads).
pub fn rerank_depth(k: usize) -> usize {
    (4 * k).max(k + 32)
}

/// Reusable per-thread scratch for the scan kernels: distance/sum buffers
/// sized to the largest probed cell and the int8 candidate list. One
/// instance per searcher thread removes every per-query allocation from the
/// scan stage.
#[derive(Debug, Default, Clone)]
pub struct ScanScratch {
    /// f32 distances per code, padded to whole blocks.
    dists: Vec<f32>,
    /// int8 entry sums per code, padded to whole blocks.
    sums: Vec<u32>,
    /// (cell, slot) of int8 first-pass survivors, indexed by candidate id.
    cands: Vec<(u32, u32)>,
    /// Row-major code buffer for the re-rank pass.
    code: Vec<u8>,
    /// Candidate pairs for the split PQDist stage (id, distance).
    pairs: Vec<(u32, f32)>,
}

impl ScanScratch {
    /// A fresh scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// The (id, distance) candidate buffer of the last split-stage scan.
    pub fn pairs(&self) -> &[(u32, f32)] {
        &self.pairs
    }
}

/// Scans the selected cells with an f32 slab kernel and keeps the best `k`
/// — the vectorized fused Stage PQDist + SelK. Bit-identical to the scalar
/// reference for any list content.
pub fn scan_and_select_f32<S: IvfSource + ?Sized>(
    index: &S,
    cells: &[usize],
    lut: &DistanceTable,
    k: usize,
    kernel: ScanKernel,
    scratch: &mut ScanScratch,
) -> Vec<SearchResult> {
    let mut topk = TopK::new(k);
    for &cell in cells {
        let slab = index.slab(cell);
        if slab.is_empty() {
            continue;
        }
        scratch.dists.resize(slab.padded_len(), 0.0);
        match kernel {
            ScanKernel::Avx2 => kernels::scan_f32_avx2(slab, lut, &mut scratch.dists),
            _ => kernels::scan_f32_portable(slab, lut, &mut scratch.dists),
        }
        let ids = index.list_ids(cell);
        for (slot, &d) in scratch.dists[..slab.len()].iter().enumerate() {
            topk.push(d, ids[slot]);
        }
    }
    topk.into_sorted()
}

/// Scans the selected cells through the int8 first pass and re-ranks the
/// survivors with exact f32 ADC — the fast-first-pass configuration of the
/// data plane. The first pass ranks raw integer entry sums (affine in the
/// true distance); [`rerank_depth`] survivors then get exact distances, so
/// the returned top-k matches the scalar reference whenever the true top-k
/// lies within the re-rank horizon.
pub fn scan_and_select_int8<S: IvfSource + ?Sized>(
    index: &S,
    cells: &[usize],
    lut: &DistanceTable,
    k: usize,
    scratch: &mut ScanScratch,
) -> Vec<SearchResult> {
    let qlut = lut.quantize_i8();
    let depth = rerank_depth(k);
    scratch.cands.clear();
    let mut top_approx = TopK::new(depth);
    for &cell in cells {
        let slab = index.slab(cell);
        if slab.is_empty() {
            continue;
        }
        scratch.sums.resize(slab.padded_len(), 0);
        scan_i8_auto(slab, &qlut, &mut scratch.sums);
        for (slot, &sum) in scratch.sums[..slab.len()].iter().enumerate() {
            // Rank raw sums: monotone in the dequantized distance. Only
            // accepted candidates are materialised in the candidate list.
            let approx = sum as f32;
            if approx < top_approx.threshold() {
                let cand = scratch.cands.len() as u32;
                scratch.cands.push((cell as u32, slot as u32));
                top_approx.push(approx, cand);
            }
        }
    }
    // Exact re-rank of the survivors.
    let m = index.m();
    scratch.code.resize(m, 0);
    let mut topk = TopK::new(k);
    for hit in top_approx.into_sorted() {
        let (cell, slot) = scratch.cands[hit.id as usize];
        let slab = index.slab(cell as usize);
        slab.read_code(slot as usize, &mut scratch.code);
        let exact = lut.adc(&scratch.code);
        topk.push(exact, index.list_ids(cell as usize)[slot as usize]);
    }
    topk.into_sorted()
}

/// int8 slab scan with the best integer kernel for this host.
fn scan_i8_auto(slab: &CodeSlab, qlut: &fanns_quantize::pq::QuantizedLut, out: &mut [u32]) {
    if avx2_available() {
        int8::scan_i8_avx2(slab, qlut, out);
    } else {
        int8::scan_i8_portable(slab, qlut, out);
    }
}

/// Computes per-code (id, distance) pairs for the selected cells with a
/// slab kernel into the scratch's pair buffer — the vectorized *split*
/// Stage PQDist used by the instrumented pipeline. For [`ScanKernel::Int8`]
/// the pairs carry dequantized first-pass distances (the stage split exists
/// for attribution, not for serving, so no re-rank runs here).
pub fn scan_pairs<S: IvfSource + ?Sized>(
    index: &S,
    cells: &[usize],
    lut: &DistanceTable,
    kernel: ScanKernel,
    scratch: &mut ScanScratch,
) {
    scratch.pairs.clear();
    match kernel {
        ScanKernel::Scalar => {
            let m = index.m();
            for &cell in cells {
                let ids = index.list_ids(cell);
                scratch.pairs.reserve(ids.len());
                for (slot, code) in index.list_codes(cell).chunks_exact(m).enumerate() {
                    scratch.pairs.push((ids[slot], lut.adc(code)));
                }
            }
        }
        ScanKernel::Portable | ScanKernel::Avx2 => {
            for &cell in cells {
                let slab = index.slab(cell);
                if slab.is_empty() {
                    continue;
                }
                scratch.dists.resize(slab.padded_len(), 0.0);
                match kernel {
                    ScanKernel::Avx2 => kernels::scan_f32_avx2(slab, lut, &mut scratch.dists),
                    _ => kernels::scan_f32_portable(slab, lut, &mut scratch.dists),
                }
                let ids = index.list_ids(cell);
                scratch.pairs.reserve(slab.len());
                for (slot, &d) in scratch.dists[..slab.len()].iter().enumerate() {
                    scratch.pairs.push((ids[slot], d));
                }
            }
        }
        ScanKernel::Int8 => {
            let qlut = lut.quantize_i8();
            for &cell in cells {
                let slab = index.slab(cell);
                if slab.is_empty() {
                    continue;
                }
                scratch.sums.resize(slab.padded_len(), 0);
                scan_i8_auto(slab, &qlut, &mut scratch.sums);
                let ids = index.list_ids(cell);
                scratch.pairs.reserve(slab.len());
                for (slot, &sum) in scratch.sums[..slab.len()].iter().enumerate() {
                    scratch.pairs.push((ids[slot], qlut.dequantize(sum)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_round_trip() {
        for kernel in ALL_KERNELS {
            assert_eq!(ScanKernel::from_name(kernel.name()), Some(kernel));
        }
        assert_eq!(ScanKernel::from_name("AUTO"), None);
        assert_eq!(ScanKernel::from_name("AVX2"), Some(ScanKernel::Avx2));
    }

    #[test]
    fn auto_kernel_is_available_and_exact() {
        let kernel = auto_kernel();
        assert!(kernel.is_available());
        assert!(matches!(kernel, ScanKernel::Avx2 | ScanKernel::Portable));
    }

    #[test]
    fn default_kernel_is_always_available() {
        assert!(default_kernel().is_available());
    }

    #[test]
    fn rerank_depth_dominates_k() {
        assert_eq!(rerank_depth(1), 33);
        assert_eq!(rerank_depth(10), 42);
        assert_eq!(rerank_depth(100), 400);
        for k in [1usize, 7, 10, 100, 1000] {
            assert!(rerank_depth(k) >= k + 32 || rerank_depth(k) >= 4 * k);
            assert!(rerank_depth(k) > k);
        }
    }
}
