//! int8-LUT scan kernels: 8-bit table entries, integer-lane accumulation.
//!
//! The f32 LUT is affinely quantized to one byte per entry
//! ([`DistanceTable::quantize_i8`](fanns_quantize::pq::DistanceTable::quantize_i8)),
//! shrinking the table 4× (an `m=16 × ksub=256` table drops from 16 KiB to
//! 4 KiB — small enough to stay resident in L1 across the whole scan). The
//! per-code work becomes `m` byte loads plus integer adds; the quantized
//! entry sum is an affine image of the f32 distance, so ordering survives up
//! to the documented error bound and a fast integer first pass can rank
//! candidates that an exact f32 pass then re-ranks.
//!
//! Sums are accumulated in `u32` lanes (a `u16` lane would already hold
//! `m · 255` for any `m ≤ 257`; `u32` keeps the AVX2 gather path simple and
//! leaves headroom for large `m`). Portable and AVX2 variants are
//! bit-identical — integer arithmetic has no rounding to reorder.

use fanns_quantize::pq::QuantizedLut;

use super::kernels::avx2_available;
use super::slab::{CodeSlab, BLOCK};

/// Computes per-code quantized entry sums for the whole slab into `out`
/// (compare with [`QuantizedLut::dequantize`] or rank raw — the mapping is
/// affine with positive scale, so raw sums order identically).
///
/// `out` must hold [`CodeSlab::padded_len`] entries; tail-padding lanes
/// receive the sum of the zero code and must be ignored by the caller.
///
/// # Panics
/// Panics when shapes disagree (`slab.m() != qlut.m()`, wrong `out` length).
pub fn scan_i8_portable(slab: &CodeSlab, qlut: &QuantizedLut, out: &mut [u32]) {
    check_shapes(slab, qlut, out.len());
    let m = slab.m();
    let ksub = qlut.ksub();
    let table = qlut.as_flat();
    let bytes = slab.as_bytes();
    for block in 0..slab.blocks() {
        let base = block * m * BLOCK;
        let mut acc = [0u32; BLOCK];
        for j in 0..m {
            let row = &table[j * ksub..(j + 1) * ksub];
            let lanes: &[u8] = &bytes[base + j * BLOCK..base + (j + 1) * BLOCK];
            for (a, &c) in acc.iter_mut().zip(lanes) {
                *a += u32::from(row[c as usize]);
            }
        }
        out[block * BLOCK..(block + 1) * BLOCK].copy_from_slice(&acc);
    }
}

/// AVX2 variant of [`scan_i8_portable`]: gathers four bytes per lane from
/// the padded table and masks to the low byte, accumulating in `u32` lanes.
/// Falls back to the portable kernel when AVX2 is unavailable.
///
/// # Panics
/// Panics when shapes disagree (`slab.m() != qlut.m()`, wrong `out` length).
pub fn scan_i8_avx2(slab: &CodeSlab, qlut: &QuantizedLut, out: &mut [u32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        check_shapes(slab, qlut, out.len());
        // SAFETY: AVX2 verified at runtime; shape contract established by
        // `check_shapes`, and the gather source is the *padded* table so
        // 4-byte loads anchored at the last entry stay in bounds.
        unsafe { x86::scan_i8_avx2_impl(slab, qlut, out) };
        return;
    }
    scan_i8_portable(slab, qlut, out);
}

fn check_shapes(slab: &CodeSlab, qlut: &QuantizedLut, out_len: usize) {
    assert_eq!(slab.m(), qlut.m(), "slab and quantized LUT disagree on m");
    assert_eq!(
        out_len,
        slab.padded_len(),
        "output buffer must hold padded_len() sums"
    );
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Gathers and masks the 8 byte entries sub-quantizer `j` selects for
    /// one block (byte-granular gather: scale 1, keep the low byte).
    ///
    /// # Safety
    /// Requires AVX2; `base` must point at a full `m * BLOCK`-byte block and
    /// the table must carry the gather pad so 4-byte loads anchored at any
    /// entry stay in bounds.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn gather8_bytes(table: *const u8, base: *const u8, j: usize, ksub: usize) -> __m256i {
        let lanes = _mm_loadl_epi64(base.add(j * BLOCK) as *const __m128i);
        let idx = _mm256_cvtepu8_epi32(lanes);
        let idx = _mm256_add_epi32(idx, _mm256_set1_epi32((j * ksub) as i32));
        let vals = _mm256_i32gather_epi32::<1>(table as *const i32, idx);
        _mm256_and_si256(vals, _mm256_set1_epi32(0xFF))
    }

    /// # Safety
    /// Requires AVX2. Shape contract checked by the caller; gather indices
    /// are `j*ksub + code < m*ksub`, and the table is padded by
    /// [`fanns_quantize::pq::QLUT_GATHER_PAD`] bytes so the 32-bit loads
    /// the gather performs never leave the allocation.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_i8_avx2_impl(slab: &CodeSlab, qlut: &QuantizedLut, out: &mut [u32]) {
        let m = slab.m();
        let ksub = qlut.ksub();
        let table = qlut.as_padded().as_ptr();
        let bytes = slab.as_bytes().as_ptr();
        let out = out.as_mut_ptr();
        let blocks = slab.blocks();
        let stride = m * BLOCK;
        let mut block = 0usize;
        // Four blocks in flight, mirroring the f32 kernel: integer adds are
        // cheap, but the independent chains keep more gathers in flight.
        while block + 4 <= blocks {
            let b0 = bytes.add(block * stride);
            let (b1, b2, b3) = (b0.add(stride), b0.add(2 * stride), b0.add(3 * stride));
            let mut a0 = _mm256_setzero_si256();
            let mut a1 = _mm256_setzero_si256();
            let mut a2 = _mm256_setzero_si256();
            let mut a3 = _mm256_setzero_si256();
            for j in 0..m {
                a0 = _mm256_add_epi32(a0, gather8_bytes(table, b0, j, ksub));
                a1 = _mm256_add_epi32(a1, gather8_bytes(table, b1, j, ksub));
                a2 = _mm256_add_epi32(a2, gather8_bytes(table, b2, j, ksub));
                a3 = _mm256_add_epi32(a3, gather8_bytes(table, b3, j, ksub));
            }
            let dst = out.add(block * BLOCK) as *mut __m256i;
            _mm256_storeu_si256(dst, a0);
            _mm256_storeu_si256(dst.add(1), a1);
            _mm256_storeu_si256(dst.add(2), a2);
            _mm256_storeu_si256(dst.add(3), a3);
            block += 4;
        }
        while block < blocks {
            let base = bytes.add(block * stride);
            let mut acc = _mm256_setzero_si256();
            for j in 0..m {
                acc = _mm256_add_epi32(acc, gather8_bytes(table, base, j, ksub));
            }
            _mm256_storeu_si256(out.add(block * BLOCK) as *mut __m256i, acc);
            block += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_quantize::pq::DistanceTable;

    fn setup(n: usize, m: usize, ksub: usize) -> (CodeSlab, DistanceTable, QuantizedLut) {
        let mut state = 0x1234_5678_9abc_def1u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let table: Vec<f32> = (0..m * ksub)
            .map(|_| (next() >> 40) as f32 / 512.0)
            .collect();
        let lut = DistanceTable::from_flat(m, ksub, table);
        let codes: Vec<u8> = (0..n * m).map(|_| (next() as usize % ksub) as u8).collect();
        let qlut = lut.quantize_i8();
        (CodeSlab::from_codes(&codes, m), lut, qlut)
    }

    #[test]
    fn portable_matches_per_code_reference() {
        let (slab, _, qlut) = setup(41, 16, 256);
        let mut out = vec![0u32; slab.padded_len()];
        scan_i8_portable(&slab, &qlut, &mut out);
        let mut code = vec![0u8; slab.m()];
        for (i, &got) in out.iter().enumerate().take(slab.len()) {
            slab.read_code(i, &mut code);
            let expected: u32 = code
                .iter()
                .enumerate()
                .map(|(j, &c)| u32::from(qlut.as_flat()[j * qlut.ksub() + c as usize]))
                .sum();
            assert_eq!(got, expected, "code {i}");
        }
    }

    #[test]
    fn avx2_matches_portable_exactly() {
        let (slab, _, qlut) = setup(53, 16, 256);
        let mut portable = vec![0u32; slab.padded_len()];
        let mut avx2 = vec![0u32; slab.padded_len()];
        scan_i8_portable(&slab, &qlut, &mut portable);
        scan_i8_avx2(&slab, &qlut, &mut avx2);
        assert_eq!(portable, avx2);
    }

    #[test]
    fn dequantized_sums_respect_the_error_bound() {
        let (slab, lut, qlut) = setup(64, 8, 64);
        let mut out = vec![0u32; slab.padded_len()];
        scan_i8_portable(&slab, &qlut, &mut out);
        let mut code = vec![0u8; slab.m()];
        let bound = qlut.max_abs_error() + 1e-4;
        for (i, &raw) in out.iter().enumerate().take(slab.len()) {
            slab.read_code(i, &mut code);
            let exact = lut.adc(&code);
            let approx = qlut.dequantize(raw);
            assert!(
                (approx - exact).abs() <= bound,
                "code {i}: {approx} vs {exact} (bound {bound})"
            );
        }
    }
}
