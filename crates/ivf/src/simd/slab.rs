//! Cache-aligned, block-transposed PQ code storage for the SIMD scan kernels.
//!
//! The canonical inverted-list layout ([`crate::index::InvertedList::codes`])
//! is row-major: code `i` occupies bytes `[i*m, (i+1)*m)`. That layout is
//! what the hardware simulator streams from HBM, but it is hostile to a
//! register-blocked CPU scan: computing 8 distances at once needs the *j*-th
//! sub-code of 8 *different* vectors, which are `m` bytes apart.
//!
//! A [`CodeSlab`] stores the same codes **block-transposed**: codes are
//! grouped into blocks of [`BLOCK`] consecutive vectors, and inside a block
//! the bytes are laid out sub-quantizer-major, so the 8 lanes a SIMD
//! iteration needs are 8 *adjacent* bytes:
//!
//! ```text
//! byte offset of (code i, sub-quantizer j):
//!     block = i / BLOCK, lane = i % BLOCK
//!     offset = block * (m * BLOCK) + j * BLOCK + lane
//! ```
//!
//! The backing buffer is 64-byte aligned (one x86 cache line, also the DMA
//! burst granularity the paper's accelerator assumes) and the tail block is
//! zero-padded, so kernels always consume whole blocks and never touch
//! unaligned or out-of-bounds memory. Padding lanes are skipped at selection
//! time by bounding the id loop with [`CodeSlab::len`].

use serde::{Deserialize, Serialize, Value};

/// Number of codes per transposed block — one AVX2 register of `f32`
/// distances (8 lanes), and the unroll factor of the portable kernel.
pub const BLOCK: usize = 8;

/// Alignment of the slab's backing buffer in bytes (one cache line).
pub const SLAB_ALIGN: usize = 64;

/// One cache line of storage; `Vec<Chunk>` gives the slab a stable 64-byte
/// aligned base address without unstable allocator APIs.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Chunk([u8; SLAB_ALIGN]);

/// A contiguous, 64-byte-aligned, block-transposed copy of one inverted
/// list's PQ codes (see the module docs for the exact byte layout).
#[derive(Clone)]
pub struct CodeSlab {
    m: usize,
    len: usize,
    chunks: Vec<Chunk>,
}

impl std::fmt::Debug for CodeSlab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodeSlab")
            .field("m", &self.m)
            .field("len", &self.len)
            .field("blocks", &self.blocks())
            .field("nbytes", &self.nbytes())
            .finish()
    }
}

impl PartialEq for CodeSlab {
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m && self.len == other.len && self.as_bytes() == other.as_bytes()
    }
}

impl CodeSlab {
    /// Builds a slab from the canonical flat row-major code buffer
    /// (`len × m`, the [`crate::index::InvertedList::codes`] layout).
    ///
    /// # Panics
    /// Panics when `m == 0` or `codes.len()` is not a multiple of `m`.
    pub fn from_codes(codes: &[u8], m: usize) -> Self {
        assert!(m > 0, "m must be positive");
        assert!(
            codes.len().is_multiple_of(m),
            "code buffer length {} is not a multiple of m={m}",
            codes.len()
        );
        let len = codes.len() / m;
        let blocks = len.div_ceil(BLOCK);
        let nbytes = blocks * m * BLOCK;
        let mut chunks = vec![Chunk([0u8; SLAB_ALIGN]); nbytes.div_ceil(SLAB_ALIGN)];
        {
            // SAFETY: `chunks` is a contiguous allocation of
            // `chunks.len() * 64` initialised bytes; `Chunk` is a
            // `#[repr(C)]` byte array so reinterpreting as `&mut [u8]` is
            // valid and cannot alias anything else.
            let bytes: &mut [u8] = unsafe {
                std::slice::from_raw_parts_mut(
                    chunks.as_mut_ptr() as *mut u8,
                    chunks.len() * SLAB_ALIGN,
                )
            };
            for i in 0..len {
                let (block, lane) = (i / BLOCK, i % BLOCK);
                let base = block * m * BLOCK;
                for j in 0..m {
                    bytes[base + j * BLOCK + lane] = codes[i * m + j];
                }
            }
        }
        Self { m, len, chunks }
    }

    /// Number of codes stored (padding lanes excluded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no codes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes per code (number of PQ sub-quantizers).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of [`BLOCK`]-code transposed blocks (the tail block padded).
    pub fn blocks(&self) -> usize {
        self.len.div_ceil(BLOCK)
    }

    /// Number of code slots including tail padding (`blocks() * BLOCK`).
    pub fn padded_len(&self) -> usize {
        self.blocks() * BLOCK
    }

    /// The transposed byte buffer, `blocks() * m * BLOCK` bytes long and
    /// guaranteed 64-byte aligned. This is the view the kernels stream.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: same representation argument as in `from_codes`; the
        // logical prefix of the chunk storage is always fully initialised.
        let all = unsafe {
            std::slice::from_raw_parts(
                self.chunks.as_ptr() as *const u8,
                self.chunks.len() * SLAB_ALIGN,
            )
        };
        &all[..self.blocks() * self.m * BLOCK]
    }

    /// Size of the transposed buffer in bytes (including tail padding).
    pub fn nbytes(&self) -> usize {
        self.blocks() * self.m * BLOCK
    }

    /// Copies code `i` back into row-major order (used by the int8 re-rank
    /// pass and by tests that check the transpose round-trips).
    ///
    /// # Panics
    /// Panics when `i >= len()` or `out.len() != m`.
    pub fn read_code(&self, i: usize, out: &mut [u8]) {
        assert!(
            i < self.len,
            "code index {i} out of bounds (len {})",
            self.len
        );
        assert_eq!(out.len(), self.m, "output buffer must hold m bytes");
        let bytes = self.as_bytes();
        let (block, lane) = (i / BLOCK, i % BLOCK);
        let base = block * self.m * BLOCK;
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = bytes[base + j * BLOCK + lane];
        }
    }

    /// Reconstructs the canonical flat row-major code buffer (`len × m`) —
    /// the inverse of [`CodeSlab::from_codes`], used for serialization.
    pub fn to_flat_codes(&self) -> Vec<u8> {
        let mut flat = vec![0u8; self.len * self.m];
        let bytes = self.as_bytes();
        for i in 0..self.len {
            let (block, lane) = (i / BLOCK, i % BLOCK);
            let base = block * self.m * BLOCK;
            for j in 0..self.m {
                flat[i * self.m + j] = bytes[base + j * BLOCK + lane];
            }
        }
        flat
    }
}

// The aligned backing store is a scan-time mirror; serialize the canonical
// row-major codes and rebuild the transpose on deserialization so the wire
// format stays layout-independent.
impl Serialize for CodeSlab {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("m".to_string(), self.m.to_value()),
            ("codes".to_string(), self.to_flat_codes().to_value()),
        ])
    }
}

impl Deserialize for CodeSlab {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let m = usize::from_value(value.field("m")?)?;
        let codes = Vec::<u8>::from_value(value.field("codes")?)?;
        if m == 0 || codes.len() % m != 0 {
            return Err(serde::Error::new(format!(
                "CodeSlab: {} code bytes is not a multiple of m={m}",
                codes.len()
            )));
        }
        Ok(Self::from_codes(&codes, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_codes(len: usize, m: usize) -> Vec<u8> {
        (0..len * m).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn transpose_round_trips() {
        for (len, m) in [(0, 4), (1, 4), (7, 8), (8, 8), (9, 16), (100, 16)] {
            let codes = ramp_codes(len, m);
            let slab = CodeSlab::from_codes(&codes, m);
            assert_eq!(slab.len(), len);
            assert_eq!(slab.m(), m);
            assert_eq!(slab.to_flat_codes(), codes, "len={len} m={m}");
            let mut buf = vec![0u8; m];
            for i in 0..len {
                slab.read_code(i, &mut buf);
                assert_eq!(&buf, &codes[i * m..(i + 1) * m]);
            }
        }
    }

    #[test]
    fn buffer_is_cache_aligned_and_block_padded() {
        let slab = CodeSlab::from_codes(&ramp_codes(13, 8), 8);
        assert_eq!(slab.as_bytes().as_ptr() as usize % SLAB_ALIGN, 0);
        assert_eq!(slab.blocks(), 2);
        assert_eq!(slab.padded_len(), 16);
        assert_eq!(slab.nbytes(), 2 * 8 * BLOCK);
        assert_eq!(slab.as_bytes().len(), slab.nbytes());
    }

    #[test]
    fn padding_lanes_are_zero() {
        let slab = CodeSlab::from_codes(&ramp_codes(9, 4), 4);
        let bytes = slab.as_bytes();
        // Block 1 holds code 8 in lane 0; lanes 1..8 of every sub-quantizer
        // group must be zero.
        let base = 4 * BLOCK;
        for j in 0..4 {
            for lane in 1..BLOCK {
                assert_eq!(bytes[base + j * BLOCK + lane], 0);
            }
        }
    }

    #[test]
    fn lanes_are_adjacent_within_a_block() {
        // Codes 0..8, m=2: sub-quantizer 0's bytes of all 8 codes must be
        // contiguous at the block start.
        let mut codes = Vec::new();
        for i in 0..8u8 {
            codes.push(i); // sub-quantizer 0
            codes.push(100 + i); // sub-quantizer 1
        }
        let slab = CodeSlab::from_codes(&codes, 2);
        let bytes = slab.as_bytes();
        assert_eq!(&bytes[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(&bytes[8..16], &[100, 101, 102, 103, 104, 105, 106, 107]);
    }

    #[test]
    fn serde_round_trips() {
        let codes = ramp_codes(11, 8);
        let slab = CodeSlab::from_codes(&codes, 8);
        let value = slab.to_value();
        let back = CodeSlab::from_value(&value).expect("round trip");
        assert_eq!(back, slab);
    }

    #[test]
    fn empty_slab_is_well_formed() {
        let slab = CodeSlab::from_codes(&[], 16);
        assert!(slab.is_empty());
        assert_eq!(slab.blocks(), 0);
        assert_eq!(slab.as_bytes().len(), 0);
        assert!(slab.to_flat_codes().is_empty());
    }
}
