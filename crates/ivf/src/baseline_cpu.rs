//! The multithreaded CPU baseline (the stand-in for Faiss on the Xeon).
//!
//! The paper's CPU baseline runs Faiss' IVF-PQ on a 16-vCPU Xeon server in
//! two modes: offline batch processing (queries batched by 10K, throughput in
//! QPS — Figure 10) and online processing (one query at a time, latency
//! distribution — Figure 11). [`CpuSearcher`] reproduces both modes on top of
//! the from-scratch IVF-PQ implementation in this crate, parallelising over
//! queries with rayon exactly as Faiss parallelises with OpenMP.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

use fanns_dataset::types::QuerySet;

use crate::index::IvfPqIndex;
use crate::params::IvfPqParams;
use crate::search::{
    search, search_with_kernel, search_with_timings_kernel, SearchResult, StageTimings,
};
use crate::simd::{self, ScanKernel, ScanScratch};
use crate::source::IvfSource;

/// Throughput/latency measurement for a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Queries processed.
    pub queries: usize,
    /// Wall-clock time for the whole batch.
    pub wall_seconds: f64,
    /// Queries per second.
    pub qps: f64,
}

/// Latency distribution for online (one-at-a-time) query processing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Per-query latencies in microseconds, in submission order.
    pub latencies_us: Vec<f64>,
}

impl LatencyReport {
    /// A percentile of the latency distribution (0–100), linear interpolation.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.latencies_us, p)
    }

    /// Median latency in microseconds.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Mean latency in microseconds.
    pub fn mean(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<f64>() / self.latencies_us.len() as f64
    }
}

/// Linear-interpolation percentile over an unsorted sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0) / 100.0;
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A CPU searcher binding an index (heap-owned [`IvfPqIndex`] or an
/// mmap-backed [`crate::storage::MappedIndex`] — anything implementing
/// [`IvfSource`]) to a set of query-time parameters.
pub struct CpuSearcher<'a, S: IvfSource + ?Sized = IvfPqIndex> {
    index: &'a S,
    params: IvfPqParams,
    /// Scan kernel override; `None` rides the process default
    /// ([`simd::default_kernel`]).
    kernel: Option<ScanKernel>,
}

// Manual impls: deriving would demand `S: Clone`/`S: Debug`, but the
// searcher only holds a shared reference.
impl<S: IvfSource + ?Sized> Clone for CpuSearcher<'_, S> {
    fn clone(&self) -> Self {
        Self {
            index: self.index,
            params: self.params,
            kernel: self.kernel,
        }
    }
}

impl<S: IvfSource + ?Sized> std::fmt::Debug for CpuSearcher<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuSearcher")
            .field("params", &self.params)
            .field("kernel", &self.kernel)
            .finish_non_exhaustive()
    }
}

impl<'a, S: IvfSource + ?Sized> CpuSearcher<'a, S> {
    /// Creates a searcher. `params.nlist` and `params.m` must match the index.
    pub fn new(index: &'a S, params: IvfPqParams) -> Self {
        assert_eq!(
            params.nlist,
            index.nlist(),
            "params.nlist must match the index"
        );
        assert_eq!(params.m, index.m(), "params.m must match the index");
        Self {
            index,
            params,
            kernel: None,
        }
    }

    /// Builder-style scan-kernel pin (benches and the per-kernel Figure 3
    /// breakdown; serving paths normally ride the process default).
    pub fn with_kernel(mut self, kernel: ScanKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// The scan kernel this searcher executes.
    pub fn kernel(&self) -> ScanKernel {
        self.kernel.unwrap_or_else(simd::default_kernel)
    }

    /// The bound parameters.
    pub fn params(&self) -> IvfPqParams {
        self.params
    }

    /// Searches a single query.
    pub fn search_one(&self, query: &[f32]) -> Vec<SearchResult> {
        match self.kernel {
            None => search(
                self.index,
                query,
                self.params.k,
                self.params.effective_nprobe(),
            ),
            Some(kernel) => search_with_kernel(
                self.index,
                query,
                self.params.k,
                self.params.effective_nprobe(),
                kernel,
                &mut ScanScratch::new(),
            ),
        }
    }

    /// Searches every query in parallel (offline batch mode), returning the
    /// per-query results.
    pub fn search_batch(&self, queries: &QuerySet) -> Vec<Vec<SearchResult>> {
        (0..queries.len())
            .into_par_iter()
            .map(|q| self.search_one(queries.get(q)))
            .collect()
    }

    /// Batch mode with throughput measurement (Figure 10 methodology: no
    /// latency constraint, maximise QPS).
    pub fn measure_throughput(
        &self,
        queries: &QuerySet,
    ) -> (Vec<Vec<SearchResult>>, ThroughputReport) {
        let start = Instant::now();
        let results = self.search_batch(queries);
        let wall = start.elapsed();
        let report = ThroughputReport {
            queries: queries.len(),
            wall_seconds: wall.as_secs_f64(),
            qps: queries.len() as f64 / wall.as_secs_f64().max(1e-12),
        };
        (results, report)
    }

    /// Online mode: queries are processed one at a time and each latency is
    /// recorded (Figure 11 methodology).
    pub fn measure_latency(&self, queries: &QuerySet) -> (Vec<Vec<SearchResult>>, LatencyReport) {
        let mut results = Vec::with_capacity(queries.len());
        let mut latencies = Vec::with_capacity(queries.len());
        for q in 0..queries.len() {
            let start = Instant::now();
            results.push(self.search_one(queries.get(q)));
            latencies.push(start.elapsed().as_secs_f64() * 1e6);
        }
        (
            results,
            LatencyReport {
                latencies_us: latencies,
            },
        )
    }

    /// Runs every query sequentially with per-stage instrumentation and
    /// returns the aggregate breakdown (the Figure 3 measurement). One
    /// scratch (candidate buffer + kernel lanes) is reused across all
    /// queries, so Stage PQDist measures the scan, not allocator growth.
    pub fn profile_stages(&self, queries: &QuerySet) -> StageTimings {
        let mut timings = StageTimings::default();
        let mut scratch = ScanScratch::new();
        let kernel = self.kernel();
        for q in 0..queries.len() {
            let _ = search_with_timings_kernel(
                self.index,
                queries.get(q),
                self.params.k,
                self.params.effective_nprobe(),
                kernel,
                &mut timings,
                &mut scratch,
            );
        }
        timings
    }
}

// In its own non-generic impl so `CpuSearcher::ids_only(..)` keeps resolving
// without a type annotation (defaulted type parameters don't apply in
// expression position).
impl CpuSearcher<'_, IvfPqIndex> {
    /// Extracts plain id lists from search results (for recall evaluation).
    pub fn ids_only(results: &[Vec<SearchResult>]) -> Vec<Vec<usize>> {
        results
            .iter()
            .map(|r| r.iter().map(|h| h.id as usize).collect())
            .collect()
    }
}

/// Convenience: measure a duration in microseconds.
pub fn elapsed_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IvfPqTrainConfig;
    use fanns_dataset::ground_truth::ground_truth;
    use fanns_dataset::recall::recall_at_k;
    use fanns_dataset::synth::SyntheticSpec;

    fn setup() -> (fanns_dataset::types::VectorDataset, QuerySet, IvfPqIndex) {
        let (db, queries) = SyntheticSpec::sift_small(40).generate();
        let cfg = IvfPqTrainConfig::new(16)
            .with_m(16)
            .with_ksub(64)
            .with_train_sample(1_000)
            .with_seed(13);
        let index = IvfPqIndex::build(&db, &cfg);
        (db, queries, index)
    }

    #[test]
    fn percentile_interpolates() {
        let samples = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert!((percentile(&samples, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn batch_results_match_single_query_results() {
        let (_, queries, index) = setup();
        let searcher = CpuSearcher::new(&index, IvfPqParams::new(16, 4, 10).with_m(16));
        let batch = searcher.search_batch(&queries);
        for (q, got) in batch.iter().enumerate() {
            assert_eq!(*got, searcher.search_one(queries.get(q)));
        }
    }

    #[test]
    fn throughput_report_is_consistent() {
        let (_, queries, index) = setup();
        let searcher = CpuSearcher::new(&index, IvfPqParams::new(16, 4, 10).with_m(16));
        let (results, report) = searcher.measure_throughput(&queries);
        assert_eq!(results.len(), queries.len());
        assert_eq!(report.queries, queries.len());
        assert!(report.qps > 0.0);
        assert!(report.wall_seconds > 0.0);
    }

    #[test]
    fn latency_report_covers_every_query() {
        let (_, queries, index) = setup();
        let searcher = CpuSearcher::new(&index, IvfPqParams::new(16, 4, 10).with_m(16));
        let (_, report) = searcher.measure_latency(&queries);
        assert_eq!(report.latencies_us.len(), queries.len());
        assert!(report.median() > 0.0);
        assert!(report.percentile(95.0) >= report.median());
        assert!(report.mean() > 0.0);
    }

    #[test]
    fn profile_stages_accumulates_all_queries() {
        let (_, queries, index) = setup();
        let searcher = CpuSearcher::new(&index, IvfPqParams::new(16, 8, 10).with_m(16));
        let timings = searcher.profile_stages(&queries);
        assert_eq!(timings.queries, queries.len());
        assert!(timings.total().as_nanos() > 0);
    }

    #[test]
    fn searcher_achieves_reasonable_recall() {
        let (db, queries, index) = setup();
        let gt = ground_truth(&db, &queries, 10);
        let searcher = CpuSearcher::new(&index, IvfPqParams::new(16, 16, 10).with_m(16));
        let results = searcher.search_batch(&queries);
        let report = recall_at_k(&CpuSearcher::ids_only(&results), &gt, 10);
        assert!(report.recall_at_k > 0.7, "recall {}", report.recall_at_k);
    }

    #[test]
    #[should_panic]
    fn mismatched_nlist_is_rejected() {
        let (_, _, index) = setup();
        let _ = CpuSearcher::new(&index, IvfPqParams::new(999, 4, 10).with_m(16));
    }
}
