//! Exact flat (brute-force) index.
//!
//! Used as the reference answer for recall evaluation and as the "no index"
//! extreme of the algorithm parameter space. Unlike
//! [`fanns_dataset::ground_truth::ground_truth`], which is a free function
//! over a dataset, this wraps the database in the same `search`-shaped API as
//! the IVF-PQ index so baselines can be swapped behind a common interface.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use fanns_dataset::types::VectorDataset;
use fanns_quantize::distance::l2_sq;

use crate::search::{SearchResult, TopK};

/// An exact L2 flat index (stores raw vectors, scans all of them per query).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatIndex {
    vectors: VectorDataset,
}

impl FlatIndex {
    /// Wraps a dataset as a flat index.
    pub fn new(vectors: VectorDataset) -> Self {
        Self { vectors }
    }

    /// Number of indexed vectors.
    pub fn ntotal(&self) -> usize {
        self.vectors.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.vectors.dim()
    }

    /// Exact top-`k` search for one query.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        assert_eq!(query.len(), self.dim(), "query dimensionality mismatch");
        let mut topk = TopK::new(k);
        for (id, v) in self.vectors.iter().enumerate() {
            topk.push(l2_sq(query, v), id as u32);
        }
        topk.into_sorted()
    }

    /// Exact top-`k` search for a batch of queries, parallel over queries.
    pub fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<SearchResult>> {
        queries.par_iter().map(|q| self.search(q, k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanns_dataset::ground_truth::exact_topk;
    use fanns_dataset::synth::SyntheticSpec;

    #[test]
    fn flat_search_matches_ground_truth_helper() {
        let (db, queries) = SyntheticSpec::sift_small(31).generate();
        let index = FlatIndex::new(db.clone());
        for q in 0..5 {
            let res = index.search(queries.get(q), 10);
            let (ids, dists) = exact_topk(&db, queries.get(q), 10);
            let res_ids: Vec<usize> = res.iter().map(|r| r.id as usize).collect();
            assert_eq!(res_ids, ids);
            for (r, d) in res.iter().zip(dists.iter()) {
                assert!((r.distance - d).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn batch_matches_single_queries() {
        let (db, queries) = SyntheticSpec::sift_small(32).generate();
        let index = FlatIndex::new(db);
        let refs: Vec<&[f32]> = (0..4).map(|q| queries.get(q)).collect();
        let batch = index.search_batch(&refs, 5);
        for (q, r) in refs.iter().enumerate() {
            assert_eq!(batch[q], index.search(r, 5));
        }
    }

    #[test]
    fn k_larger_than_database_returns_everything() {
        let db = VectorDataset::from_vectors(1, (0..5).map(|i| [i as f32]));
        let index = FlatIndex::new(db);
        let res = index.search(&[2.0], 100);
        assert_eq!(res.len(), 5);
    }
}
