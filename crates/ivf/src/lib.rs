//! IVF-PQ vector search — the algorithm the paper accelerates.
//!
//! This crate implements the full software (CPU) side of IVF-PQ as described
//! in §2 of the paper:
//!
//! * [`params`] — the algorithm parameter space of Table 2 (`nlist`,
//!   `nprobe`, `K`, OPQ on/off, `m`),
//! * [`index`] — index training (coarse k-means + PQ, optionally OPQ) and
//!   population of the inverted lists,
//! * [`search`] — the six query-time stages (OPQ → IVFDist → SelCells →
//!   BuildLUT → PQDist → SelK) with per-stage wall-clock instrumentation used
//!   to reproduce the bottleneck analysis of Figure 3,
//! * [`flat`] — an exact flat index used for ground truth and sanity checks,
//! * [`baseline_cpu`] — the multithreaded batch/online CPU searcher standing
//!   in for the paper's Faiss CPU baseline,
//! * [`simd`] — the vectorized ADC scan data plane: 64-byte-aligned
//!   block-transposed code slabs, AVX2/portable f32 kernels (bit-identical
//!   to the scalar reference) and an int8-quantized-LUT fast pass with
//!   exact re-ranking, runtime-dispatched per host (see
//!   `docs/DATA_PLANE.md`),
//! * [`source`] — the [`IvfSource`] abstraction every search stage is
//!   generic over, so heap-owned and mmap-backed indexes run identical
//!   arithmetic,
//! * [`storage`] — the versioned, checksummed on-disk index format and the
//!   zero-copy `mmap` loader (see `docs/STORAGE.md`),
//! * [`segmented`] — the mutable layer: live inserts/deletes over a write
//!   segment + immutable sealed segments with tombstones and generation-
//!   swapped compaction (see `docs/MUTATION.md`).

#![warn(missing_docs)]

pub mod baseline_cpu;
pub mod flat;
pub mod index;
pub mod params;
pub mod search;
pub mod segmented;
pub mod simd;
pub mod source;
pub mod storage;

pub use baseline_cpu::CpuSearcher;
pub use flat::FlatIndex;
pub use index::{IvfPqIndex, IvfPqTrainConfig};
pub use params::{IvfPqParams, SearchStage, ALL_STAGES};
pub use search::{SearchResult, StageTimings};
pub use segmented::{CompactionReport, SegmentedConfig, SegmentedIndex, SegmentedStats};
pub use simd::{CodeSlab, ScanKernel, ScanScratch};
pub use source::IvfSource;
pub use storage::{open_index, write_index, MappedIndex, StorageError};
