//! The [`IvfSource`] abstraction: everything the query pipeline needs from
//! an IVF-PQ index, independent of where the index lives.
//!
//! Two implementations exist:
//!
//! * [`IvfPqIndex`] — the heap-owned index built
//!   by training (`lists` own their id/code buffers, slabs are materialised
//!   eagerly),
//! * [`MappedIndex`](crate::storage::MappedIndex) — a read-only view over an
//!   on-disk index opened with `mmap` (ids/codes/centroids are zero-copy
//!   typed views into the mapping; scan slabs are rebuilt lazily per list or
//!   eagerly via `warm()`).
//!
//! Every stage function in [`crate::search`] and every scan entry point in
//! [`crate::simd`] is generic over this trait, so the two index forms are
//! guaranteed to run the *same* arithmetic in the *same* order — the
//! bit-identical-results contract the storage test battery asserts.

use fanns_quantize::opq::OpqTransform;
use fanns_quantize::pq::DistanceTable;

use crate::index::IvfPqIndex;
use crate::simd::CodeSlab;

/// Read access to a searchable IVF-PQ index, heap-owned or mmap-backed.
///
/// Implementations must be immutable for the lifetime of any borrow handed
/// out (the serving layers share one source across worker threads).
pub trait IvfSource: Send + Sync {
    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Number of PQ sub-quantizers (code bytes).
    fn m(&self) -> usize;

    /// PQ codebook size per sub-space.
    fn ksub(&self) -> usize;

    /// Number of Voronoi cells (inverted lists).
    fn nlist(&self) -> usize;

    /// Total number of indexed vectors.
    fn ntotal(&self) -> usize;

    /// The OPQ rotation, when the index was trained with one.
    fn opq(&self) -> Option<&OpqTransform>;

    /// The coarse-quantizer centroid table, flat `nlist × dim` row-major.
    fn centroids(&self) -> &[f32];

    /// Builds the per-query ADC lookup table (Stage BuildLUT).
    fn build_lut(&self, query: &[f32]) -> DistanceTable;

    /// Number of vectors in cell `cell`.
    fn list_len(&self, cell: usize) -> usize {
        self.list_ids(cell).len()
    }

    /// Database ids of cell `cell`, in insertion order.
    fn list_ids(&self, cell: usize) -> &[u32];

    /// Canonical row-major `len × m` PQ code buffer of cell `cell`.
    fn list_codes(&self, cell: usize) -> &[u8];

    /// The 64-byte-aligned block-transposed scan mirror of cell `cell`
    /// (see [`crate::simd::slab`]). Mapped indexes may build this lazily on
    /// first touch.
    fn slab(&self, cell: usize) -> &CodeSlab;
}

impl IvfSource for IvfPqIndex {
    fn dim(&self) -> usize {
        IvfPqIndex::dim(self)
    }

    fn m(&self) -> usize {
        IvfPqIndex::m(self)
    }

    fn ksub(&self) -> usize {
        self.pq().ksub()
    }

    fn nlist(&self) -> usize {
        IvfPqIndex::nlist(self)
    }

    fn ntotal(&self) -> usize {
        IvfPqIndex::ntotal(self)
    }

    fn opq(&self) -> Option<&OpqTransform> {
        IvfPqIndex::opq(self)
    }

    fn centroids(&self) -> &[f32] {
        self.coarse().centroids()
    }

    fn build_lut(&self, query: &[f32]) -> DistanceTable {
        self.pq().build_distance_table(query)
    }

    fn list_len(&self, cell: usize) -> usize {
        self.list(cell).len()
    }

    fn list_ids(&self, cell: usize) -> &[u32] {
        &self.list(cell).ids
    }

    fn list_codes(&self, cell: usize) -> &[u8] {
        &self.list(cell).codes
    }

    fn slab(&self, cell: usize) -> &CodeSlab {
        IvfPqIndex::slab(self, cell)
    }
}

/// Blanket impl so `Arc<MappedIndex>` / `Arc<IvfPqIndex>` (and any other
/// shared pointer deref-ing to a source) can be searched directly.
impl<T: IvfSource + ?Sized> IvfSource for std::sync::Arc<T> {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn m(&self) -> usize {
        (**self).m()
    }

    fn ksub(&self) -> usize {
        (**self).ksub()
    }

    fn nlist(&self) -> usize {
        (**self).nlist()
    }

    fn ntotal(&self) -> usize {
        (**self).ntotal()
    }

    fn opq(&self) -> Option<&OpqTransform> {
        (**self).opq()
    }

    fn centroids(&self) -> &[f32] {
        (**self).centroids()
    }

    fn build_lut(&self, query: &[f32]) -> DistanceTable {
        (**self).build_lut(query)
    }

    fn list_len(&self, cell: usize) -> usize {
        (**self).list_len(cell)
    }

    fn list_ids(&self, cell: usize) -> &[u32] {
        (**self).list_ids(cell)
    }

    fn list_codes(&self, cell: usize) -> &[u8] {
        (**self).list_codes(cell)
    }

    fn slab(&self, cell: usize) -> &CodeSlab {
        (**self).slab(cell)
    }
}
