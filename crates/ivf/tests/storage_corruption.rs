//! Corruption battery for the on-disk index format.
//!
//! Every way a file can be damaged — truncation, bit flips in the header,
//! table or payloads, wrong magic/version/endianness, misaligned or
//! out-of-bounds section offsets, inconsistent shapes — must surface as a
//! *typed* [`StorageError`] from `open_index`, never as a panic, UB, or a
//! silently wrong index. Deliberate tampering past the checksums (to reach
//! the deeper alignment/bounds/shape checks) re-signs the table and header
//! CRCs the same way a malicious or buggy writer would.

use fanns_dataset::synth::{DatasetKind, SyntheticSpec};
use fanns_ivf::source::IvfSource;
use fanns_ivf::storage::{
    crc32, encode_index, open_index, StorageError, FORMAT_VERSION, HEADER_CRC_OFFSET, HEADER_LEN,
    SECTION_ENTRY_LEN, TABLE_CRC_OFFSET,
};
use fanns_ivf::{IvfPqIndex, IvfPqTrainConfig};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn build(opq: bool) -> IvfPqIndex {
    let (db, _) = SyntheticSpec::sift_small(7).with_vectors(400).generate();
    let cfg = IvfPqTrainConfig::new(4)
        .with_m(8)
        .with_ksub(16)
        .with_opq(opq)
        .with_train_sample(300)
        .with_seed(7);
    IvfPqIndex::build(&db, &cfg)
}

/// A deliberately small (16-d) index so the exhaustive byte-flip sweep stays
/// cheap: the image is a few KiB instead of the ~80 KiB a 128-d OPQ rotation
/// costs, and the sweep re-validates the whole file once per byte.
fn tiny_build() -> IvfPqIndex {
    let (db, _) = SyntheticSpec {
        kind: DatasetKind::Custom(16),
        num_vectors: 300,
        num_queries: 1,
        n_concepts: 8,
        skew: 0.8,
        noise: 0.25,
        seed: 11,
    }
    .generate();
    let cfg = IvfPqTrainConfig::new(4)
        .with_m(4)
        .with_ksub(16)
        .with_opq(true)
        .with_train_sample(200)
        .with_seed(11);
    IvfPqIndex::build(&db, &cfg)
}

fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fanns-corruption-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes `bytes` to a fresh file and runs `open_index` on it.
fn open_bytes(tag: &str, bytes: &[u8]) -> Result<fanns_ivf::MappedIndex, StorageError> {
    let path = scratch_dir().join(format!("{tag}.fanns"));
    std::fs::write(&path, bytes).expect("write corrupted image");
    let outcome = open_index(&path);
    let _ = std::fs::remove_file(&path);
    outcome
}

fn put_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Re-signs a deliberately tampered image: recomputes the section-table CRC
/// and then the header CRC, exactly as a hostile writer would, so the
/// corruption reaches the structural checks behind the checksums.
fn resign(bytes: &mut [u8]) {
    let section_count = get_u64(bytes, 88) as usize;
    let table_end = HEADER_LEN + section_count * SECTION_ENTRY_LEN;
    let table_crc = crc32(&bytes[HEADER_LEN..table_end]);
    put_u32(bytes, TABLE_CRC_OFFSET, table_crc);
    let header_crc = crc32(&bytes[..HEADER_CRC_OFFSET]);
    put_u32(bytes, HEADER_CRC_OFFSET, header_crc);
}

/// (kind tag, offset, len) of section-table entry `i`.
fn entry(bytes: &[u8], i: usize) -> (u32, u64, u64) {
    let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
    let tag = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    (tag, get_u64(bytes, at + 8), get_u64(bytes, at + 16))
}

fn section_count(bytes: &[u8]) -> usize {
    get_u64(bytes, 88) as usize
}

// ---------------------------------------------------------------------------
// Sanity
// ---------------------------------------------------------------------------

#[test]
fn pristine_image_opens() {
    for opq in [false, true] {
        let index = build(opq);
        let image = encode_index(&index);
        let mapped = open_bytes(&format!("pristine-opq{opq}"), &image).expect("pristine opens");
        assert_eq!(IvfSource::ntotal(&mapped), index.ntotal());
        assert_eq!(IvfSource::opq(&mapped).is_some(), opq);
        assert_eq!(section_count(&image), if opq { 6 } else { 5 });
    }
}

// ---------------------------------------------------------------------------
// Truncation
// ---------------------------------------------------------------------------

#[test]
fn every_truncation_is_a_typed_truncated_error() {
    let image = encode_index(&build(false));
    let table_end = HEADER_LEN + section_count(&image) * SECTION_ENTRY_LEN;
    let probes = [
        0,
        1,
        7,
        HEADER_LEN - 1,
        HEADER_LEN,
        table_end - 1,
        table_end,
        image.len() / 2,
        image.len() - 1,
    ];
    for &len in &probes {
        let err = open_bytes(&format!("trunc-{len}"), &image[..len])
            .expect_err("truncated file must not open");
        assert!(
            matches!(err, StorageError::Truncated { .. }),
            "truncation to {len} bytes gave {err:?}, expected Truncated"
        );
    }
}

// ---------------------------------------------------------------------------
// Header damage
// ---------------------------------------------------------------------------

#[test]
fn flipped_magic_bytes_fail_with_bad_magic() {
    let image = encode_index(&build(false));
    for at in 0..8 {
        let mut bad = image.clone();
        bad[at] ^= 0xFF;
        let err = open_bytes(&format!("magic-{at}"), &bad).expect_err("bad magic must not open");
        assert!(matches!(err, StorageError::BadMagic), "byte {at}: {err:?}");
    }
}

#[test]
fn unknown_version_is_rejected_even_with_a_valid_crc() {
    let image = encode_index(&build(false));
    for version in [0u32, FORMAT_VERSION + 1, u32::MAX] {
        // With a re-signed CRC (a future-format file is internally valid)...
        let mut bad = image.clone();
        put_u32(&mut bad, 8, version);
        resign(&mut bad);
        let err = open_bytes(&format!("version-{version}"), &bad).expect_err("must not open");
        assert!(
            matches!(err, StorageError::UnsupportedVersion(v) if v == version),
            "version {version}: {err:?}"
        );
        // ...and without: the version check must come before the CRC check so
        // future formats report their version, not a checksum mismatch.
        let mut unsigned = image.clone();
        put_u32(&mut unsigned, 8, version);
        let err =
            open_bytes(&format!("version-raw-{version}"), &unsigned).expect_err("must not open");
        assert!(
            matches!(err, StorageError::UnsupportedVersion(v) if v == version),
            "unsigned version {version}: {err:?}"
        );
    }
}

#[test]
fn wrong_endian_tag_is_rejected() {
    let image = encode_index(&build(false));
    let mut bad = image.clone();
    // A big-endian writer would store the tag byte-swapped.
    bad[12..16].reverse();
    resign(&mut bad);
    let err = open_bytes("endian", &bad).expect_err("byte-swapped endian tag must not open");
    assert!(matches!(err, StorageError::BadEndian), "{err:?}");
}

#[test]
fn every_header_field_flip_fails_the_header_checksum() {
    let image = encode_index(&build(false));
    // Bytes 16..120 are shape fields + table CRC + reserved, all covered by
    // the header CRC; bytes 120..124 are the stored CRC itself.
    for at in 16..HEADER_CRC_OFFSET + 4 {
        let mut bad = image.clone();
        bad[at] ^= 0x01;
        let err = open_bytes(&format!("hdr-{at}"), &bad).expect_err("flip must not open");
        assert!(
            matches!(err, StorageError::HeaderChecksum),
            "header byte {at}: {err:?}"
        );
    }
}

#[test]
fn resigned_shape_lies_are_inconsistent() {
    let image = encode_index(&build(false));
    // (offset, value, label): each patches one shape field to a lie and
    // re-signs, so only the semantic validation can catch it.
    let lies: &[(usize, u64, &str)] = &[
        (16, 0, "dim 0"),
        (16, 1 << 21, "dim too large"),
        (24, 3, "m does not divide dim"),
        (32, 1, "ksub below 2"),
        (32, 257, "ksub above 256"),
        (48, u64::from(u32::MAX) + 1, "ntotal beyond id space"),
        (56, 2, "unknown flag bits"),
        (88, 9, "wrong section count"),
    ];
    for &(at, value, label) in lies {
        let mut bad = image.clone();
        put_u64(&mut bad, at, value);
        resign(&mut bad);
        let err = open_bytes(&format!("shape-{at}-{value}"), &bad).expect_err(label);
        assert!(
            matches!(err, StorageError::Inconsistent(_)),
            "{label}: {err:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Section-table damage
// ---------------------------------------------------------------------------

#[test]
fn every_table_byte_flip_fails_the_table_checksum() {
    let image = encode_index(&build(true));
    let table_end = HEADER_LEN + section_count(&image) * SECTION_ENTRY_LEN;
    for at in HEADER_LEN..table_end {
        let mut bad = image.clone();
        bad[at] ^= 0x01;
        let err = open_bytes(&format!("table-{at}"), &bad).expect_err("flip must not open");
        assert!(
            matches!(err, StorageError::TableChecksum),
            "table byte {at}: {err:?}"
        );
    }
}

#[test]
fn misaligned_section_offset_is_rejected() {
    let image = encode_index(&build(false));
    for i in 0..section_count(&image) {
        let (_, offset, _) = entry(&image, i);
        let mut bad = image.clone();
        put_u64(&mut bad, HEADER_LEN + i * SECTION_ENTRY_LEN + 8, offset + 8);
        resign(&mut bad);
        let err = open_bytes(&format!("misalign-{i}"), &bad).expect_err("must not open");
        assert!(
            matches!(err, StorageError::Misaligned(_)),
            "section {i}: {err:?}"
        );
    }
}

#[test]
fn out_of_bounds_section_offset_is_rejected() {
    let image = encode_index(&build(false));
    let past_end = (image.len() as u64).div_ceil(64) * 64 + 64;
    for i in 0..section_count(&image) {
        for target in [past_end, 0, u64::MAX - 63] {
            let mut bad = image.clone();
            put_u64(&mut bad, HEADER_LEN + i * SECTION_ENTRY_LEN + 8, target);
            resign(&mut bad);
            let err = open_bytes(&format!("oob-{i}-{target}"), &bad).expect_err("must not open");
            assert!(
                matches!(err, StorageError::OutOfBounds(_)),
                "section {i} offset {target}: {err:?}"
            );
        }
    }
}

#[test]
fn wrong_section_length_is_inconsistent() {
    let image = encode_index(&build(false));
    for i in 0..section_count(&image) {
        let (_, _, len) = entry(&image, i);
        assert!(len >= 8, "test expects non-trivial sections");
        let mut bad = image.clone();
        // Shrinking keeps the range in bounds so the length check itself
        // (not the bounds check) must fire.
        put_u64(&mut bad, HEADER_LEN + i * SECTION_ENTRY_LEN + 16, len - 8);
        resign(&mut bad);
        let err = open_bytes(&format!("len-{i}"), &bad).expect_err("must not open");
        assert!(
            matches!(err, StorageError::Inconsistent(_)),
            "section {i}: {err:?}"
        );
    }
}

#[test]
fn unknown_or_reordered_section_kinds_are_inconsistent() {
    let image = encode_index(&build(false));
    // Unknown tag.
    let mut bad = image.clone();
    put_u32(&mut bad, HEADER_LEN, 99);
    resign(&mut bad);
    let err = open_bytes("kind-unknown", &bad).expect_err("must not open");
    assert!(matches!(err, StorageError::Inconsistent(_)), "{err:?}");
    // Known tag in the wrong slot (swap the first two entries' tags).
    let (tag0, _, _) = entry(&image, 0);
    let (tag1, _, _) = entry(&image, 1);
    let mut bad = image.clone();
    put_u32(&mut bad, HEADER_LEN, tag1);
    put_u32(&mut bad, HEADER_LEN + SECTION_ENTRY_LEN, tag0);
    resign(&mut bad);
    let err = open_bytes("kind-swapped", &bad).expect_err("must not open");
    assert!(matches!(err, StorageError::Inconsistent(_)), "{err:?}");
}

// ---------------------------------------------------------------------------
// Payload damage
// ---------------------------------------------------------------------------

#[test]
fn every_section_payload_flip_fails_that_sections_checksum() {
    let image = encode_index(&build(true));
    for i in 0..section_count(&image) {
        let (tag, offset, len) = entry(&image, i);
        for at in [offset, offset + len / 2, offset + len - 1] {
            let mut bad = image.clone();
            bad[at as usize] ^= 0x80;
            let err = open_bytes(&format!("payload-{i}-{at}"), &bad).expect_err("must not open");
            match err {
                StorageError::SectionChecksum(kind) => {
                    assert_eq!(kind as u32, tag, "wrong section blamed for byte {at}")
                }
                other => panic!("section {i} byte {at}: {other:?}, expected SectionChecksum"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Exhaustive sweep
// ---------------------------------------------------------------------------

/// Flips every single byte of the image, one at a time. Each flip must
/// either fail with a typed error or — for the handful of pad bytes no
/// checksum covers — open to an index structurally identical to the
/// pristine one. `open_index` must never panic and never return garbage.
#[test]
fn single_byte_flip_sweep_never_panics_and_never_lies() {
    let index = tiny_build();
    let image = encode_index(&index);
    let mut opened_ok = 0usize;
    for at in 0..image.len() {
        let mut bad = image.clone();
        bad[at] ^= 0xA5;
        match open_bytes("sweep", &bad) {
            Err(_) => {}
            Ok(mapped) => {
                // Only CRC-free padding can survive a flip; the mapped view
                // must still describe exactly the original index.
                opened_ok += 1;
                assert_eq!(IvfSource::dim(&mapped), index.dim(), "byte {at}");
                assert_eq!(IvfSource::ntotal(&mapped), index.ntotal(), "byte {at}");
                assert_eq!(
                    IvfSource::centroids(&mapped),
                    index.coarse().centroids(),
                    "byte {at}"
                );
                for cell in 0..index.nlist() {
                    assert_eq!(
                        mapped.list_ids(cell),
                        &index.list(cell).ids[..],
                        "byte {at}"
                    );
                    assert_eq!(
                        mapped.list_codes(cell),
                        &index.list(cell).codes[..],
                        "byte {at}"
                    );
                }
            }
        }
    }
    // The format is almost fully covered: only alignment padding (header pad
    // word + inter-section pad) is outside a CRC. On this shape that is a
    // small, bounded fraction of the file.
    assert!(
        opened_ok < image.len() / 10,
        "{opened_ok} of {} flipped images opened — checksum coverage regressed",
        image.len()
    );
}
