//! Model-based mutation battery for the segmented mutable IVF layer.
//!
//! Each property drives a [`SegmentedIndex`] through a random interleaving
//! of insert / delete / search / compact operations and checks every
//! observable against a brute-force `Vec`-backed reference model:
//!
//! 1. **No resurrection** — a search never returns a tombstoned id, at any
//!    point of any interleaving.
//! 2. **Live vectors stay findable** — under full probe (`nprobe = nlist`)
//!    with `k ≥ live`, the returned id set equals the model's live id set
//!    exactly (fresh write-segment inserts included).
//! 3. **Compaction is result-invariant** — under full probe the id set
//!    returned before and after a compaction is identical, and ids that
//!    were sealed *before* the compaction keep bit-identical ADC distances
//!    (their PQ codes are copied verbatim, never re-encoded).
//!
//! The shimmed `proptest` runs each property over 192 deterministic cases;
//! the op sequence per case is derived from the drawn seed with SplitMix64,
//! so failures replay exactly.

use std::collections::HashSet;
use std::sync::OnceLock;

use proptest::prelude::*;

use fanns_dataset::synth::SyntheticSpec;
use fanns_dataset::types::VectorDataset;
use fanns_ivf::index::{IvfPqIndex, IvfPqTrainConfig};
use fanns_ivf::segmented::{SegmentedConfig, SegmentedIndex};

const NLIST: usize = 4;
const INITIAL: usize = 160;

/// Deterministic op-sequence RNG (SplitMix64 over the drawn case seed).
struct OpRng(u64);

impl OpRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The reference model: every ever-inserted vector by id, live or
/// tombstoned. Brute force, no quantization, no segments.
struct RefModel {
    vectors: Vec<Vec<f32>>,
    live: Vec<bool>,
}

impl RefModel {
    fn new(initial: &VectorDataset) -> Self {
        Self {
            vectors: initial.iter().map(|v| v.to_vec()).collect(),
            live: vec![true; initial.len()],
        }
    }

    fn insert(&mut self, v: &[f32]) -> u32 {
        self.vectors.push(v.to_vec());
        self.live.push(true);
        (self.vectors.len() - 1) as u32
    }

    /// Mirrors `SegmentedIndex::delete`: true iff the id existed and was live.
    fn delete(&mut self, id: u32) -> bool {
        match self.live.get_mut(id as usize) {
            Some(l) if *l => {
                *l = false;
                true
            }
            _ => false,
        }
    }

    fn live_ids(&self) -> HashSet<u32> {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, l)| **l)
            .map(|(id, _)| id as u32)
            .collect()
    }

    fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    fn deleted_ids(&self) -> HashSet<u32> {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, l)| !**l)
            .map(|(id, _)| id as u32)
            .collect()
    }
}

/// Shared fixtures: the initial database, a query/insert vector pool, and
/// the base index — trained and populated once, cloned per case.
fn fixtures() -> &'static (VectorDataset, Vec<Vec<f32>>, IvfPqIndex) {
    static FIXTURES: OnceLock<(VectorDataset, Vec<Vec<f32>>, IvfPqIndex)> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let (db, queries) = SyntheticSpec::sift_small(1007)
            .with_vectors(INITIAL)
            .with_queries(32)
            .generate();
        let index = IvfPqIndex::build(
            &db,
            &IvfPqTrainConfig::new(NLIST)
                .with_m(8)
                .with_ksub(16)
                .with_train_sample(INITIAL)
                .with_seed(31),
        );
        let pool = queries.iter().map(|q| q.to_vec()).collect();
        (db, pool, index)
    })
}

fn fresh_case(seal_threshold: usize) -> (SegmentedIndex, RefModel) {
    let (db, _, index) = fixtures();
    let segmented = SegmentedIndex::new(
        index.clone(),
        SegmentedConfig::default().with_seal_threshold(seal_threshold),
    );
    (segmented, RefModel::new(db))
}

/// One full-probe search checked against the model: no tombstoned id is
/// returned, and with `k ≥ live` the id set equals the live set exactly.
fn check_search(segmented: &SegmentedIndex, model: &RefModel, query: &[f32]) {
    let k = model.live_count() + 4;
    let results = segmented.search(query, k, NLIST);
    let returned: HashSet<u32> = results.iter().map(|r| r.id).collect();
    assert_eq!(
        returned.len(),
        results.len(),
        "search returned a duplicate id"
    );
    let deleted = model.deleted_ids();
    for id in &returned {
        assert!(!deleted.contains(id), "tombstoned id {id} was resurrected");
    }
    assert_eq!(
        returned,
        model.live_ids(),
        "full-probe search with k >= live must return exactly the live set"
    );
}

proptest! {
    #[test]
    fn random_interleavings_match_the_reference_model(
        seed in 0u64..1_000_000,
        ops in 10usize..36,
    ) {
        let mut rng = OpRng(seed);
        // Vary the seal threshold so some cases compact mid-sequence via
        // tiny write segments and others batch everything up.
        let (segmented, mut model) = fresh_case([8, 16, 64][(seed % 3) as usize]);
        let (_, pool, _) = fixtures();

        for _ in 0..ops {
            match rng.below(100) {
                0..=39 => {
                    let v = &pool[rng.below(pool.len() as u64) as usize];
                    let got = segmented.insert(v);
                    let want = model.insert(v);
                    prop_assert_eq!(got, want, "insert ids must match the model");
                }
                40..=69 => {
                    // Mostly existing ids, occasionally out of range.
                    let span = model.vectors.len() as u64 + 4;
                    let id = rng.below(span) as u32;
                    let got = segmented.delete(id);
                    let want = model.delete(id);
                    prop_assert_eq!(got, want, "delete outcome must match the model");
                }
                70..=89 => {
                    let q = &pool[rng.below(pool.len() as u64) as usize];
                    check_search(&segmented, &model, q);
                }
                _ => {
                    let report = segmented.compact();
                    if !report.skipped {
                        prop_assert_eq!(report.live, model.live_count());
                    }
                }
            }
        }

        // Terminal audit: every query in the pool agrees with the model,
        // and the structural counters reconcile.
        for q in pool.iter().take(4) {
            check_search(&segmented, &model, q);
        }
        prop_assert_eq!(segmented.live(), model.live_count());
        let live: HashSet<u32> = segmented.live_ids().into_iter().collect();
        prop_assert_eq!(live, model.live_ids());
    }

    #[test]
    fn compaction_is_result_invariant_under_full_probe(
        seed in 0u64..1_000_000,
        churn in 4usize..24,
    ) {
        let mut rng = OpRng(seed ^ 0xC0DE);
        let (segmented, mut model) = fresh_case(1 << 20); // never auto-advised
        let (_, pool, _) = fixtures();

        // Random churn: inserts and deletes, no compaction yet.
        for _ in 0..churn {
            if rng.below(2) == 0 {
                let v = &pool[rng.below(pool.len() as u64) as usize];
                segmented.insert(v);
                model.insert(v);
            } else {
                let id = rng.below(model.vectors.len() as u64) as u32;
                let got = segmented.delete(id);
                prop_assert_eq!(got, model.delete(id));
            }
        }

        let probe = &pool[rng.below(pool.len() as u64) as usize];
        let k = model.live_count();
        let sealed_before: HashSet<u32> = segmented.sealed_ids().into_iter().collect();
        let before = segmented.search(probe, k, NLIST);

        let report = segmented.compact();
        prop_assert!(!report.skipped || segmented.stats().write_vectors == 0);

        let after = segmented.search(probe, k, NLIST);

        // Property 3a: the returned id set is unchanged by the compaction.
        let ids_before: HashSet<u32> = before.iter().map(|r| r.id).collect();
        let ids_after: HashSet<u32> = after.iter().map(|r| r.id).collect();
        prop_assert_eq!(&ids_before, &ids_after, "compaction changed the result id set");

        // Property 3b: ids sealed before the compaction keep bit-identical
        // ADC distances (codes copied verbatim, same LUT, same kernels).
        let after_by_id: std::collections::HashMap<u32, u32> =
            after.iter().map(|r| (r.id, r.distance.to_bits())).collect();
        for r in &before {
            if sealed_before.contains(&r.id) {
                prop_assert_eq!(
                    after_by_id.get(&r.id).copied(),
                    Some(r.distance.to_bits()),
                    "sealed id {} distance not bitwise preserved",
                    r.id
                );
            }
        }

        // And the merged structure still matches the model.
        check_search(&segmented, &model, probe);
        prop_assert_eq!(segmented.live(), model.live_count());
    }

    #[test]
    fn deletes_never_resurface_across_repeated_compactions(
        seed in 0u64..1_000_000,
        rounds in 2usize..6,
    ) {
        let mut rng = OpRng(seed ^ 0xDEAD);
        let (segmented, mut model) = fresh_case(16);
        let (_, pool, _) = fixtures();

        for _ in 0..rounds {
            // A burst of inserts, then delete a slice of everything ever
            // inserted (some sealed, some fresh, some already deleted).
            for _ in 0..rng.below(8) {
                let v = &pool[rng.below(pool.len() as u64) as usize];
                segmented.insert(v);
                model.insert(v);
            }
            for _ in 0..rng.below(12) {
                let id = rng.below(model.vectors.len() as u64) as u32;
                let got = segmented.delete(id);
                prop_assert_eq!(got, model.delete(id));
            }
            segmented.compact();
            let q = &pool[rng.below(pool.len() as u64) as usize];
            check_search(&segmented, &model, q);
        }

        // After the final round every tombstone has been reclaimed.
        let stats = segmented.stats();
        prop_assert_eq!(stats.pending_tombstones, 0);
        prop_assert_eq!(stats.sealed_segments, 1);
        prop_assert_eq!(stats.live, model.live_count());
    }
}
