//! Property tests: arbitrary indexes survive a write → `mmap`-open round
//! trip with bit-identical structure and bit-identical search results on
//! every scan kernel.
//!
//! The storage contract is stronger than "same recall": a mapped index must
//! run the *same arithmetic in the same order* as the heap index it was
//! written from, so every `SearchResult` — ids and f32 distances — must
//! compare equal bit for bit. The proptest sweep varies dimensionality,
//! sub-quantizer count, cell count, database size, OPQ on/off and the seed;
//! each case builds a real (tiny) index, persists it, reopens it and drives
//! both forms through identical queries.

use proptest::prelude::*;

use fanns_dataset::synth::{DatasetKind, SyntheticSpec};
use fanns_dataset::types::{QuerySet, VectorDataset};
use fanns_ivf::params::IvfPqParams;
use fanns_ivf::simd::ALL_KERNELS;
use fanns_ivf::source::IvfSource;
use fanns_ivf::storage::open_index;
use fanns_ivf::{CpuSearcher, IvfPqIndex, IvfPqTrainConfig};

fn scratch_path(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fanns-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{tag}-{seed}.fanns"))
}

/// A tiny clustered dataset of arbitrary dimensionality (the presets are
/// fixed at 128-d; `Custom` keeps property cases cheap).
fn tiny_dataset(dim: usize, n: usize, queries: usize, seed: u64) -> (VectorDataset, QuerySet) {
    SyntheticSpec {
        kind: DatasetKind::Custom(dim),
        num_vectors: n,
        num_queries: queries,
        n_concepts: 8,
        skew: 0.8,
        noise: 0.25,
        seed,
    }
    .generate()
}

/// Maps the drawn case onto a valid index shape: `m` ∈ {2, 4, 8} and
/// `dim = m * dim_units`, so `m` always divides `dim`.
fn case_shape(dim_units: usize, m_choice: usize) -> (usize, usize) {
    let m = [2usize, 4, 8][m_choice % 3];
    (m * dim_units, m)
}

fn tiny_config(nlist: usize, m: usize, opq: bool, seed: u64) -> IvfPqTrainConfig {
    IvfPqTrainConfig::new(nlist)
        .with_m(m)
        .with_ksub(8)
        .with_opq(opq)
        .with_train_sample(200)
        .with_seed(seed)
}

proptest! {
    /// Write → open preserves every structural field and every byte of every
    /// inverted list, and `to_owned_index` reproduces the heap form.
    #[test]
    fn structure_round_trips(
        dim_units in 2usize..5,
        m_choice in 0usize..3,
        nlist in 2usize..6,
        n in 50usize..220,
        opq_flag in 0usize..2,
        seed in 1u64..5_000,
    ) {
        let (dim, m) = case_shape(dim_units, m_choice);
        let (db, _) = tiny_dataset(dim, n, 1, seed);
        let index = IvfPqIndex::build(&db, &tiny_config(nlist, m, opq_flag == 1, seed));
        let path = scratch_path("structure", seed);
        index.write_index(&path).expect("write");
        let mapped = open_index(&path).expect("open");

        prop_assert_eq!(IvfSource::dim(&mapped), index.dim());
        prop_assert_eq!(IvfSource::m(&mapped), index.m());
        prop_assert_eq!(IvfSource::ksub(&mapped), index.pq().ksub());
        prop_assert_eq!(IvfSource::nlist(&mapped), index.nlist());
        prop_assert_eq!(IvfSource::ntotal(&mapped), index.ntotal());
        prop_assert_eq!(IvfSource::opq(&mapped).is_some(), index.has_opq());
        prop_assert_eq!(IvfSource::centroids(&mapped), index.coarse().centroids());
        for cell in 0..index.nlist() {
            prop_assert_eq!(mapped.list_ids(cell), &index.list(cell).ids[..]);
            prop_assert_eq!(mapped.list_codes(cell), &index.list(cell).codes[..]);
            prop_assert_eq!(IvfSource::slab(&mapped, cell), index.slab(cell));
        }
        let owned = mapped.to_owned_index();
        prop_assert_eq!(owned.ntotal(), index.ntotal());
        prop_assert_eq!(owned.coarse().centroids(), index.coarse().centroids());
        prop_assert_eq!(owned.pq().codebooks(), index.pq().codebooks());
        prop_assert_eq!(owned.config(), index.config());
        let _ = std::fs::remove_file(&path);
    }

    /// Searching the mapped index returns bit-identical results (ids and
    /// f32 distances) to the heap original on every scan kernel, for every
    /// shape and seed — the core acceptance criterion of the format.
    #[test]
    fn search_results_are_bit_identical(
        dim_units in 2usize..5,
        m_choice in 0usize..3,
        nlist in 2usize..6,
        n in 50usize..220,
        opq_flag in 0usize..2,
        seed in 1u64..5_000,
    ) {
        let (dim, m) = case_shape(dim_units, m_choice);
        let (db, queries) = tiny_dataset(dim, n, 4, seed);
        let index = IvfPqIndex::build(&db, &tiny_config(nlist, m, opq_flag == 1, seed));
        let path = scratch_path("search", seed);
        index.write_index(&path).expect("write");
        let mapped = open_index(&path).expect("open");
        if seed % 2 == 0 {
            mapped.warm(); // exercise both lazy and eager slab rebuilds
        }

        let params = IvfPqParams::new(nlist, (nlist / 2).max(1), 5).with_m(m);
        for kernel in ALL_KERNELS {
            if !kernel.is_available() {
                continue;
            }
            let heap = CpuSearcher::new(&index, params).with_kernel(kernel);
            let disk = CpuSearcher::new(&mapped, params).with_kernel(kernel);
            for q in 0..queries.len() {
                let expect = heap.search_one(queries.get(q));
                let got = disk.search_one(queries.get(q));
                prop_assert_eq!(expect.len(), got.len());
                for (e, g) in expect.iter().zip(&got) {
                    prop_assert_eq!(e.id, g.id);
                    prop_assert_eq!(e.distance.to_bits(), g.distance.to_bits());
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
