//! Property tests: every scan kernel is equivalent to the scalar ADC
//! reference across random shapes (`m`, `ksub`, list length, table and code
//! contents).
//!
//! The f32 kernels must match the scalar reference *bitwise* — each lane
//! sums its `m` LUT entries in the same order, so there is no 1-ulp slack to
//! grant. The int8 path must respect its documented affine error bound and
//! rank raw sums exactly as dequantized distances (the invariant the
//! re-ranking pass relies on).

use proptest::prelude::*;

use fanns_ivf::simd::{int8, kernels, CodeSlab};
use fanns_quantize::pq::DistanceTable;

/// Deterministic xorshift stream for table/code contents.
struct Stream(u64);

impl Stream {
    fn new(seed: u64) -> Self {
        Stream(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn f32(&mut self) -> f32 {
        (self.next() >> 40) as f32 / 257.0
    }
}

fn random_case(m: usize, ksub: usize, len: usize, seed: u64) -> (CodeSlab, Vec<u8>, DistanceTable) {
    let mut stream = Stream::new(seed);
    let table: Vec<f32> = (0..m * ksub).map(|_| stream.f32()).collect();
    let lut = DistanceTable::from_flat(m, ksub, table);
    let codes: Vec<u8> = (0..len * m)
        .map(|_| (stream.next() as usize % ksub) as u8)
        .collect();
    (CodeSlab::from_codes(&codes, m), codes, lut)
}

proptest! {
    /// The portable chunked kernel returns bit-identical distances to the
    /// per-code scalar reference for every shape.
    #[test]
    fn portable_matches_scalar_bitwise(
        m in 1usize..20,
        ksub in 2usize..257,
        len in 0usize..150,
        seed in 1u64..u64::MAX,
    ) {
        let (slab, codes, lut) = random_case(m, ksub, len, seed);
        let mut out = vec![0.0f32; slab.padded_len()];
        kernels::scan_f32_portable(&slab, &lut, &mut out);
        for (i, code) in codes.chunks_exact(m).enumerate() {
            prop_assert_eq!(out[i].to_bits(), lut.adc(code).to_bits());
        }
    }

    /// The AVX2 gather kernel (or its portable fallback on non-AVX2 hosts)
    /// returns bit-identical distances to the scalar reference.
    #[test]
    fn avx2_matches_scalar_bitwise(
        m in 1usize..20,
        ksub in 2usize..257,
        len in 0usize..150,
        seed in 1u64..u64::MAX,
    ) {
        let (slab, codes, lut) = random_case(m, ksub, len, seed);
        let mut out = vec![0.0f32; slab.padded_len()];
        kernels::scan_f32_avx2(&slab, &lut, &mut out);
        for (i, code) in codes.chunks_exact(m).enumerate() {
            prop_assert_eq!(out[i].to_bits(), lut.adc(code).to_bits());
        }
    }

    /// Dequantized int8 sums stay within the documented affine error bound
    /// of the exact f32 distance, and both int8 kernels agree exactly.
    #[test]
    fn int8_respects_error_bound_and_kernels_agree(
        m in 1usize..20,
        ksub in 2usize..257,
        len in 1usize..150,
        seed in 1u64..u64::MAX,
    ) {
        let (slab, codes, lut) = random_case(m, ksub, len, seed);
        let qlut = lut.quantize_i8();
        let mut portable = vec![0u32; slab.padded_len()];
        let mut avx2 = vec![0u32; slab.padded_len()];
        int8::scan_i8_portable(&slab, &qlut, &mut portable);
        int8::scan_i8_avx2(&slab, &qlut, &mut avx2);
        prop_assert_eq!(&portable, &avx2);
        let bound = qlut.max_abs_error() + 1e-3;
        for (i, code) in codes.chunks_exact(m).enumerate() {
            let exact = lut.adc(code);
            let approx = qlut.dequantize(portable[i]);
            prop_assert!(
                (approx - exact).abs() <= bound,
                "code {}: approx {} vs exact {} (bound {})", i, approx, exact, bound
            );
        }
    }

    /// Raw integer sums rank candidates exactly as their dequantized
    /// distances — the monotone-affine invariant the int8 first pass uses
    /// to rank without dequantizing.
    #[test]
    fn raw_sums_rank_like_dequantized_distances(
        m in 1usize..20,
        ksub in 2usize..257,
        len in 2usize..150,
        seed in 1u64..u64::MAX,
    ) {
        let (slab, _, lut) = random_case(m, ksub, len, seed);
        let qlut = lut.quantize_i8();
        let mut sums = vec![0u32; slab.padded_len()];
        int8::scan_i8_portable(&slab, &qlut, &mut sums);
        let mut by_raw: Vec<usize> = (0..len).collect();
        by_raw.sort_by_key(|&i| (sums[i], i));
        let mut by_deq: Vec<usize> = (0..len).collect();
        by_deq.sort_by(|&a, &b| {
            qlut.dequantize(sums[a])
                .partial_cmp(&qlut.dequantize(sums[b]))
                .unwrap()
                .then(a.cmp(&b))
        });
        prop_assert_eq!(by_raw, by_deq);
    }
}
